//! Streaming summary statistics (Welford) and confidence intervals.
//!
//! The Monte-Carlo harness aggregates per-trial metrics (failed
//! transmissions, throughput) across thousands of trials, often in
//! parallel; [`OnlineStats`] supports O(1) merge so rayon reductions can
//! combine per-thread partials exactly.

use serde::{Deserialize, Serialize};

/// Welford-style online mean/variance accumulator with exact merge.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (Chan's parallel update).
    pub fn merge(&mut self, other: &Self) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 when fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count as f64 - 1.0)
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Smallest observation (`+∞` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`−∞` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Freezes the accumulator into a serializable [`Summary`].
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count,
            mean: self.mean(),
            std_dev: self.std_dev(),
            ci95: ci95_half_width(self),
            min: if self.count == 0 { f64::NAN } else { self.min },
            max: if self.count == 0 { f64::NAN } else { self.max },
        }
    }
}

/// Half-width of the normal-approximation 95% confidence interval for
/// the mean (`1.96 · SE`). Adequate for the trial counts (≥ 100) used by
/// the experiment harness.
pub fn ci95_half_width(stats: &OnlineStats) -> f64 {
    1.96 * stats.std_err()
}

/// Frozen summary of a metric series, suitable for result tables.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: u64,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// 95% CI half-width for the mean.
    pub ci95: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn stats_of(xs: &[f64]) -> OnlineStats {
        let mut s = OnlineStats::new();
        for &x in xs {
            s.push(x);
        }
        s
    }

    #[test]
    fn empty_stats_are_benign() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.std_err(), 0.0);
    }

    #[test]
    fn known_sequence() {
        let s = stats_of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // population variance is 4; sample variance = 32/7
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn single_observation() {
        let s = stats_of(&[3.0]);
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 3.0);
        assert_eq!(s.max(), 3.0);
    }

    #[test]
    fn merge_empty_is_identity() {
        let mut a = stats_of(&[1.0, 2.0, 3.0]);
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);
        let mut e = OnlineStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn summary_roundtrips_through_serde() {
        let s = stats_of(&[1.0, 2.0, 3.0]).summary();
        let json = serde_json::to_string(&s).unwrap();
        let back: Summary = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    proptest! {
        #[test]
        fn merge_equals_sequential(
            xs in proptest::collection::vec(-1e3f64..1e3, 1..100),
            ys in proptest::collection::vec(-1e3f64..1e3, 1..100),
        ) {
            let mut merged = stats_of(&xs);
            merged.merge(&stats_of(&ys));
            let all: Vec<f64> = xs.iter().chain(ys.iter()).copied().collect();
            let seq = stats_of(&all);
            prop_assert_eq!(merged.count(), seq.count());
            prop_assert!((merged.mean() - seq.mean()).abs() < 1e-9);
            prop_assert!((merged.variance() - seq.variance()).abs() < 1e-6);
            prop_assert_eq!(merged.min(), seq.min());
            prop_assert_eq!(merged.max(), seq.max());
        }

        #[test]
        fn variance_is_nonnegative(xs in proptest::collection::vec(-1e6f64..1e6, 0..200)) {
            let s = stats_of(&xs);
            prop_assert!(s.variance() >= 0.0);
        }

        #[test]
        fn mean_is_bounded_by_min_max(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let s = stats_of(&xs);
            prop_assert!(s.min() <= s.mean() + 1e-9);
            prop_assert!(s.mean() <= s.max() + 1e-9);
        }
    }
}
