//! Compensated (Kahan–Neumaier) summation.
//!
//! The feasibility test of Corollary 3.1 compares a sum of up to `N`
//! interference factors against the tiny constant `γ_ε ≈ ε`. With
//! ε = 0.01 and hundreds of addends spanning ten orders of magnitude,
//! naive summation can mis-classify borderline schedules; Neumaier's
//! variant keeps the error independent of the addend order.

/// A running compensated sum (Neumaier variant of Kahan summation).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KahanSum {
    sum: f64,
    compensation: f64,
}

impl KahanSum {
    /// Creates an empty sum.
    #[inline]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one value.
    #[inline]
    pub fn add(&mut self, value: f64) {
        let t = self.sum + value;
        if self.sum.abs() >= value.abs() {
            self.compensation += (self.sum - t) + value;
        } else {
            self.compensation += (value - t) + self.sum;
        }
        self.sum = t;
    }

    /// Current value of the sum including the compensation term.
    #[inline]
    pub fn value(&self) -> f64 {
        self.sum + self.compensation
    }

    /// Sums an iterator of values with compensation.
    pub fn sum_iter<I: IntoIterator<Item = f64>>(iter: I) -> f64 {
        let mut acc = Self::new();
        for v in iter {
            acc.add(v);
        }
        acc.value()
    }
}

impl std::iter::FromIterator<f64> for KahanSum {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut acc = Self::new();
        for v in iter {
            acc.add(v);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_sum_is_zero() {
        assert_eq!(KahanSum::new().value(), 0.0);
    }

    #[test]
    fn sums_simple_sequence() {
        let s = KahanSum::sum_iter((1..=100).map(|i| i as f64));
        assert_eq!(s, 5050.0);
    }

    #[test]
    fn classic_kahan_counterexample() {
        // 1 + 1e100 + 1 - 1e100 = 2 exactly with Neumaier; naive gives 0.
        let vals = [1.0, 1e100, 1.0, -1e100];
        let naive: f64 = vals.iter().sum();
        let comp = KahanSum::sum_iter(vals.iter().copied());
        assert_eq!(naive, 0.0, "sanity: naive summation loses the ones");
        assert_eq!(comp, 2.0);
    }

    #[test]
    fn many_tiny_addends_survive_a_large_one() {
        // 1e16 + 1.0 * 4096 times: each 1.0 is below the ulp of 1e16, so
        // naive summation drops them all; compensation keeps them.
        let mut acc = KahanSum::new();
        acc.add(1e16);
        for _ in 0..4096 {
            acc.add(1.0);
        }
        let err = (acc.value() - (1e16 + 4096.0)).abs();
        assert!(err <= 2.0, "err={err}");
    }

    proptest! {
        #[test]
        fn order_independent_within_tolerance(
            mut xs in proptest::collection::vec(-1e6f64..1e6, 0..200)
        ) {
            let fwd = KahanSum::sum_iter(xs.iter().copied());
            xs.reverse();
            let rev = KahanSum::sum_iter(xs.iter().copied());
            let scale = xs.iter().map(|x| x.abs()).sum::<f64>().max(1.0);
            prop_assert!((fwd - rev).abs() <= 1e-9 * scale);
        }

        #[test]
        fn matches_naive_on_benign_inputs(
            xs in proptest::collection::vec(0.0f64..1.0, 0..100)
        ) {
            let naive: f64 = xs.iter().sum();
            let comp = KahanSum::sum_iter(xs.iter().copied());
            prop_assert!((naive - comp).abs() <= 1e-10 * naive.max(1.0));
        }
    }
}
