//! Percentile-bootstrap confidence intervals.
//!
//! Failure counts per slot are heavily skewed (most slots lose nothing,
//! a few lose several links), so the normal-approximation CI of
//! [`crate::stats`] can be misleading near zero. The percentile
//! bootstrap makes no distributional assumption: resample with
//! replacement, recompute the statistic, take empirical quantiles.

use crate::quantile::quantile;
use crate::rng::{seeded_rng, split_seed};
use rand::Rng;

/// A two-sided bootstrap confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BootstrapCi {
    /// Lower endpoint.
    pub lo: f64,
    /// Point estimate (the statistic on the original sample).
    pub point: f64,
    /// Upper endpoint.
    pub hi: f64,
}

/// Percentile-bootstrap CI for an arbitrary statistic.
///
/// * `data` — the sample;
/// * `statistic` — e.g. mean, median, `|{x > 0}|/n`;
/// * `resamples` — bootstrap replicates (≥ 100 recommended);
/// * `confidence` — e.g. 0.95;
/// * `seed` — reproducibility.
///
/// # Panics
/// Panics if `data` is empty, `resamples == 0`, or `confidence`
/// outside `(0, 1)`.
pub fn bootstrap_ci<F>(
    data: &[f64],
    statistic: F,
    resamples: u32,
    confidence: f64,
    seed: u64,
) -> BootstrapCi
where
    F: Fn(&[f64]) -> f64,
{
    assert!(!data.is_empty(), "bootstrap of empty sample");
    assert!(resamples > 0, "need at least one resample");
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0,1), got {confidence}"
    );
    let point = statistic(data);
    let mut replicates = Vec::with_capacity(resamples as usize);
    let mut buf = vec![0.0; data.len()];
    for b in 0..resamples {
        let mut rng = seeded_rng(split_seed(seed, b as u64));
        for slot in buf.iter_mut() {
            *slot = data[rng.gen_range(0..data.len())];
        }
        replicates.push(statistic(&buf));
    }
    let alpha = 1.0 - confidence;
    BootstrapCi {
        lo: quantile(&replicates, alpha / 2.0),
        point,
        hi: quantile(&replicates, 1.0 - alpha / 2.0),
    }
}

/// Bootstrap CI of the mean — the common case.
pub fn bootstrap_mean_ci(data: &[f64], resamples: u32, confidence: f64, seed: u64) -> BootstrapCi {
    bootstrap_ci(
        data,
        |xs| xs.iter().sum::<f64>() / xs.len() as f64,
        resamples,
        confidence,
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;
    use rand::Rng;

    #[test]
    fn point_estimate_is_the_sample_statistic() {
        let data = [1.0, 2.0, 3.0, 4.0];
        let ci = bootstrap_mean_ci(&data, 200, 0.95, 1);
        assert_eq!(ci.point, 2.5);
        assert!(ci.lo <= ci.point && ci.point <= ci.hi);
    }

    #[test]
    fn interval_shrinks_with_sample_size() {
        let mut rng = seeded_rng(2);
        let small: Vec<f64> = (0..20).map(|_| rng.gen_range(0.0..1.0)).collect();
        let large: Vec<f64> = (0..2000).map(|_| rng.gen_range(0.0..1.0)).collect();
        let ci_small = bootstrap_mean_ci(&small, 300, 0.95, 3);
        let ci_large = bootstrap_mean_ci(&large, 300, 0.95, 4);
        assert!(
            ci_large.hi - ci_large.lo < ci_small.hi - ci_small.lo,
            "more data should tighten the CI"
        );
    }

    #[test]
    fn covers_the_true_mean_most_of_the_time() {
        // 40 independent experiments with true mean 0.5; the 95% CI
        // should cover ≥ 80% of them (loose check — small samples).
        let mut covered = 0;
        for trial in 0..40u64 {
            let mut rng = seeded_rng(100 + trial);
            let data: Vec<f64> = (0..60).map(|_| rng.gen_range(0.0..1.0)).collect();
            let ci = bootstrap_mean_ci(&data, 200, 0.95, trial);
            if ci.lo <= 0.5 && 0.5 <= ci.hi {
                covered += 1;
            }
        }
        assert!(
            covered >= 32,
            "only {covered}/40 intervals covered the mean"
        );
    }

    #[test]
    fn works_with_custom_statistics() {
        // Fraction of positives of an all-positive sample is exactly 1
        // in every resample.
        let data = [1.0, 2.0, 3.0];
        let ci = bootstrap_ci(
            &data,
            |xs| xs.iter().filter(|&&x| x > 0.0).count() as f64 / xs.len() as f64,
            100,
            0.9,
            5,
        );
        assert_eq!((ci.lo, ci.point, ci.hi), (1.0, 1.0, 1.0));
    }

    #[test]
    fn deterministic_per_seed() {
        let data = [0.0, 1.0, 0.0, 2.0, 0.0];
        let a = bootstrap_mean_ci(&data, 150, 0.95, 9);
        let b = bootstrap_mean_ci(&data, 150, 0.95, 9);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn rejects_empty_sample() {
        bootstrap_mean_ci(&[], 10, 0.95, 0);
    }
}
