//! Reproducible random-number generation helpers.
//!
//! Every stochastic component of the workspace (topology generators,
//! Rayleigh gain draws, decentralized backoff) is seeded explicitly so
//! that experiments are replayable. Parallel Monte-Carlo trials each get
//! an independent stream derived from a base seed via [`split_seed`].

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Creates a [`StdRng`] from a `u64` seed.
#[inline]
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives an independent sub-seed from `(base, index)`.
///
/// Uses the SplitMix64 finalizer, whose output is equidistributed over
/// `u64`; adjacent indices map to uncorrelated streams, so trial `i` of a
/// Monte-Carlo run can use `split_seed(base, i)` safely in parallel.
#[inline]
pub fn split_seed(base: u64, index: u64) -> u64 {
    let mut z = base.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use std::collections::HashSet;

    #[test]
    fn same_seed_same_stream() {
        let mut a = seeded_rng(42);
        let mut b = seeded_rng(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_different_stream() {
        let mut a = seeded_rng(1);
        let mut b = seeded_rng(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn split_seed_is_injective_on_small_ranges() {
        let mut seen = HashSet::new();
        for base in 0..32u64 {
            for idx in 0..256u64 {
                assert!(
                    seen.insert(split_seed(base, idx)),
                    "collision at ({base},{idx})"
                );
            }
        }
    }

    #[test]
    fn split_seed_is_deterministic() {
        assert_eq!(split_seed(7, 9), split_seed(7, 9));
        assert_ne!(split_seed(7, 9), split_seed(7, 10));
        assert_ne!(split_seed(7, 9), split_seed(8, 9));
    }

    #[test]
    fn split_seed_bits_look_balanced() {
        // Crude avalanche check: across 4096 outputs every bit flips
        // at least once.
        let mut or_acc = 0u64;
        let mut and_acc = u64::MAX;
        for i in 0..4096 {
            let s = split_seed(0xDEADBEEF, i);
            or_acc |= s;
            and_acc &= s;
        }
        assert_eq!(or_acc, u64::MAX);
        assert_eq!(and_acc, 0);
    }
}
