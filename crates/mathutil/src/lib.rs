//! Numeric substrate for the fading-rls workspace.
//!
//! Everything here is deliberately dependency-light and deterministic:
//! the scheduling algorithms need the Riemann zeta function for their
//! geometric constants (`β` in LDP, `c₁` in RLE), the feasibility checker
//! needs compensated summation so that the `Σ f_{i,j} ≤ γ_ε` test is not
//! at the mercy of float association order, and the Monte-Carlo harness
//! needs reproducible random sampling plus summary statistics with
//! confidence intervals.

pub mod bootstrap;
pub mod expdist;
pub mod histogram;
pub mod integrate;
pub mod kahan;
pub mod quantile;
pub mod rng;
pub mod stats;
pub mod zeta;

pub use bootstrap::{bootstrap_ci, bootstrap_mean_ci, BootstrapCi};
pub use expdist::Exponential;
pub use histogram::Histogram;
pub use integrate::{integrate, integrate_to_infinity};
pub use kahan::KahanSum;
pub use quantile::{iqr, median, quantile};
pub use rng::{seeded_rng, split_seed};
pub use stats::{ci95_half_width, OnlineStats, Summary};
pub use zeta::zeta;

/// Natural log of `1/(1-eps)` — the paper's `γ_ε` constant
/// (Corollary 3.1) — computed via `ln_1p` for accuracy at small `eps`.
///
/// # Panics
/// Panics if `eps` is not in `(0, 1)`.
pub fn gamma_eps(eps: f64) -> f64 {
    assert!(
        eps > 0.0 && eps < 1.0,
        "acceptable error rate must lie in (0,1), got {eps}"
    );
    // ln(1/(1-eps)) = -ln(1-eps) = -ln_1p(-eps)
    -(-eps).ln_1p()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_eps_matches_direct_formula() {
        for &eps in &[1e-6f64, 1e-3, 0.01, 0.1, 0.5, 0.99] {
            let direct = (1.0 / (1.0 - eps)).ln();
            let ours = gamma_eps(eps);
            assert!(
                (direct - ours).abs() <= 1e-12 * direct.max(1.0),
                "eps={eps}: {direct} vs {ours}"
            );
        }
    }

    #[test]
    fn gamma_eps_is_monotone_in_eps() {
        let mut prev = 0.0;
        for i in 1..100 {
            let eps = i as f64 / 100.0;
            let g = gamma_eps(eps);
            assert!(g > prev, "γ_ε must increase with ε");
            prev = g;
        }
    }

    #[test]
    fn gamma_eps_small_eps_is_accurate() {
        // For tiny ε, γ_ε ≈ ε + ε²/2; naive ln(1/(1-ε)) would lose digits.
        let eps = 1e-12;
        let g = gamma_eps(eps);
        assert!((g - eps).abs() < 1e-24, "g={g}");
    }

    #[test]
    #[should_panic(expected = "acceptable error rate")]
    fn gamma_eps_rejects_zero() {
        gamma_eps(0.0);
    }

    #[test]
    #[should_panic(expected = "acceptable error rate")]
    fn gamma_eps_rejects_one() {
        gamma_eps(1.0);
    }
}
