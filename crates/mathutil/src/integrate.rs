//! Adaptive Simpson quadrature.
//!
//! The ergodic-capacity extension needs
//! `E[log₂(1+X)] = ∫₀^∞ Pr(X ≥ x)/((1+x)·ln 2) dx`
//! where the integrand is smooth, positive and decaying — a perfect fit
//! for adaptive Simpson with interval doubling for the infinite tail.

/// Adaptive Simpson integral of `f` over `[a, b]` to absolute
/// tolerance `tol`.
///
/// # Panics
/// Panics unless `a ≤ b`, both finite, and `tol > 0`.
pub fn integrate<F: Fn(f64) -> f64>(f: &F, a: f64, b: f64, tol: f64) -> f64 {
    assert!(
        a.is_finite() && b.is_finite() && a <= b,
        "bad interval [{a}, {b}]"
    );
    assert!(tol > 0.0, "tolerance must be positive");
    if a == b {
        return 0.0;
    }
    let fa = f(a);
    let fb = f(b);
    let m = 0.5 * (a + b);
    let fm = f(m);
    adaptive(f, a, b, fa, fb, fm, simpson(a, b, fa, fm, fb), tol, 50)
}

#[inline]
fn simpson(a: f64, b: f64, fa: f64, fm: f64, fb: f64) -> f64 {
    (b - a) / 6.0 * (fa + 4.0 * fm + fb)
}

#[allow(clippy::too_many_arguments)]
fn adaptive<F: Fn(f64) -> f64>(
    f: &F,
    a: f64,
    b: f64,
    fa: f64,
    fb: f64,
    fm: f64,
    whole: f64,
    tol: f64,
    depth: u32,
) -> f64 {
    let m = 0.5 * (a + b);
    let lm = 0.5 * (a + m);
    let rm = 0.5 * (m + b);
    let flm = f(lm);
    let frm = f(rm);
    let left = simpson(a, m, fa, flm, fm);
    let right = simpson(m, b, fm, frm, fb);
    let delta = left + right - whole;
    if depth == 0 || delta.abs() <= 15.0 * tol {
        left + right + delta / 15.0
    } else {
        adaptive(f, a, m, fa, fm, flm, left, tol / 2.0, depth - 1)
            + adaptive(f, m, b, fm, fb, frm, right, tol / 2.0, depth - 1)
    }
}

/// Integral of `f` over `[a, ∞)` for integrands that decay to zero:
/// doubles the upper limit until the last panel contributes less than
/// `tol`.
///
/// # Panics
/// Panics unless `a` is finite and `tol > 0`.
pub fn integrate_to_infinity<F: Fn(f64) -> f64>(f: &F, a: f64, tol: f64) -> f64 {
    assert!(a.is_finite(), "lower limit must be finite");
    assert!(tol > 0.0, "tolerance must be positive");
    let mut lo = a;
    let mut hi = a + 1.0;
    let mut total = 0.0;
    for _ in 0..64 {
        let panel = integrate(f, lo, hi, tol / 4.0);
        total += panel;
        if panel.abs() < tol && (hi - a) > 8.0 {
            return total;
        }
        lo = hi;
        hi = a + (hi - a) * 2.0;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{E, PI};

    #[test]
    fn polynomial_is_exact() {
        // Simpson is exact on cubics.
        let got = integrate(&|x| x * x * x - 2.0 * x + 1.0, 0.0, 2.0, 1e-12);
        assert!((got - (4.0 - 4.0 + 2.0)).abs() < 1e-12);
    }

    #[test]
    fn integrates_transcendentals() {
        let got = integrate(&f64::sin, 0.0, PI, 1e-10);
        assert!((got - 2.0).abs() < 1e-9, "{got}");
        let got = integrate(&f64::exp, 0.0, 1.0, 1e-10);
        assert!((got - (E - 1.0)).abs() < 1e-9);
    }

    #[test]
    fn handles_sharp_peaks() {
        // ∫ 1/(1+x²) over [-50, 50] ≈ π.
        let got = integrate(&|x| 1.0 / (1.0 + x * x), -50.0, 50.0, 1e-10);
        assert!((got - (50f64.atan() * 2.0)).abs() < 1e-8, "{got}");
    }

    #[test]
    fn empty_interval_is_zero() {
        assert_eq!(integrate(&f64::exp, 1.0, 1.0, 1e-9), 0.0);
    }

    #[test]
    fn infinite_tail_exponential() {
        let got = integrate_to_infinity(&|x| (-x).exp(), 0.0, 1e-10);
        assert!((got - 1.0).abs() < 1e-8, "{got}");
    }

    #[test]
    fn infinite_tail_heavy() {
        // ∫₀^∞ 1/(1+x)³ dx = 1/2.
        let got = integrate_to_infinity(&|x| (1.0 + x).powi(-3), 0.0, 1e-10);
        assert!((got - 0.5).abs() < 1e-7, "{got}");
    }

    #[test]
    fn shifted_lower_limit() {
        // ∫₂^∞ e^{-x} dx = e^{-2}.
        let got = integrate_to_infinity(&|x| (-x).exp(), 2.0, 1e-10);
        assert!((got - (-2f64).exp()).abs() < 1e-8);
    }

    #[test]
    #[should_panic(expected = "bad interval")]
    fn rejects_reversed_interval() {
        integrate(&|x| x, 1.0, 0.0, 1e-9);
    }
}
