//! Riemann zeta function for real arguments `s > 1`.
//!
//! The scheduling constants in the paper depend on `ζ(α − 1)` where `α`
//! is the path-loss exponent (`α > 2`, so the argument is `> 1` and the
//! series converges). We evaluate the Dirichlet series with an
//! Euler–Maclaurin tail correction, which gives ~1e-12 relative accuracy
//! with a few hundred terms even for arguments barely above 1.

/// Number of terms summed explicitly before switching to the tail
/// expansion. Chosen so the Euler–Maclaurin correction terms are tiny.
const EXPLICIT_TERMS: usize = 256;

/// Riemann zeta `ζ(s)` for real `s > 1`.
///
/// Uses `Σ_{n=1}^{N} n^{-s}` plus the Euler–Maclaurin tail
/// `N^{1-s}/(s-1) − N^{-s}/2 + s·N^{-s-1}/12 − s(s+1)(s+2)·N^{-s-3}/720`.
///
/// # Panics
/// Panics if `s <= 1` (the series diverges at `s = 1`).
pub fn zeta(s: f64) -> f64 {
    assert!(s > 1.0, "zeta(s) requires s > 1, got {s}");
    let n = EXPLICIT_TERMS as f64;
    let mut sum = 0.0f64;
    // Sum smallest terms first to limit rounding error.
    for k in (1..=EXPLICIT_TERMS).rev() {
        sum += (k as f64).powf(-s);
    }
    // Tail Σ_{k=N+1}^∞ k^{-s} = N^{1-s}/(s−1) − N^{-s}/2 + s·N^{-s-1}/12 − …
    let tail = n.powf(1.0 - s) / (s - 1.0) - 0.5 * n.powf(-s) + s * n.powf(-s - 1.0) / 12.0
        - s * (s + 1.0) * (s + 2.0) * n.powf(-s - 3.0) / 720.0;
    sum + tail
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn assert_close(a: f64, b: f64, rel: f64) {
        assert!(
            (a - b).abs() <= rel * b.abs().max(1.0),
            "{a} vs {b} (rel {rel})"
        );
    }

    #[test]
    fn zeta_2_is_pi_squared_over_6() {
        assert_close(zeta(2.0), PI * PI / 6.0, 1e-12);
    }

    #[test]
    fn zeta_4_is_pi_fourth_over_90() {
        assert_close(zeta(4.0), PI.powi(4) / 90.0, 1e-12);
    }

    #[test]
    fn zeta_6_is_pi_sixth_over_945() {
        assert_close(zeta(6.0), PI.powi(6) / 945.0, 1e-12);
    }

    #[test]
    fn zeta_3_matches_apery_constant() {
        assert_close(zeta(3.0), 1.202_056_903_159_594_2, 1e-12);
    }

    #[test]
    fn zeta_1_5_matches_reference() {
        // Mathematica: Zeta[3/2] = 2.612375348685488...
        assert_close(zeta(1.5), 2.612_375_348_685_488, 1e-10);
    }

    #[test]
    fn zeta_near_one_is_large_but_finite() {
        let z = zeta(1.001);
        // ζ(1+δ) ≈ 1/δ + γ (Euler–Mascheroni)
        assert_close(z, 1000.0 + 0.577_215_664_901_532_9, 1e-6);
    }

    #[test]
    fn zeta_is_decreasing_for_s_above_one() {
        let mut prev = f64::INFINITY;
        for i in 0..40 {
            let s = 1.05 + 0.25 * i as f64;
            let z = zeta(s);
            assert!(z < prev, "ζ must decrease on (1, ∞): s={s}");
            assert!(z > 1.0, "ζ(s) > 1 for finite s");
            prev = z;
        }
    }

    #[test]
    fn zeta_tends_to_one_for_large_s() {
        assert_close(zeta(50.0), 1.0, 1e-12);
    }

    #[test]
    #[should_panic(expected = "requires s > 1")]
    fn zeta_rejects_s_at_one() {
        zeta(1.0);
    }
}
