//! Fixed-width histogram over a closed range.
//!
//! Used by the experiment harness to characterize per-link SINR and
//! success-probability distributions (the paper reports aggregates; the
//! histogram lets EXPERIMENTS.md show the underlying spread).

use serde::{Deserialize, Serialize};

/// Fixed-width histogram over `[lo, hi]` with out-of-range counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width buckets over `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `lo >= hi` or the bounds are not finite.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "invalid histogram range [{lo}, {hi}]"
        );
        Self {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x > self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = (((x - self.lo) / width) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Number of in-range buckets.
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// Count in bucket `i`.
    pub fn bin_count(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// `[lo, hi)` edges of bucket `i` (last bucket is closed at `hi`).
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + width * i as f64, self.lo + width * (i + 1) as f64)
    }

    /// Observations below `lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations above `hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations recorded, including out-of-range ones.
    pub fn total(&self) -> u64 {
        self.underflow + self.overflow + self.bins.iter().sum::<u64>()
    }

    /// Fraction of in-range mass at or below the upper edge of bucket `i`.
    pub fn cumulative_fraction(&self, i: usize) -> f64 {
        let in_range: u64 = self.bins.iter().sum();
        if in_range == 0 {
            return 0.0;
        }
        let cum: u64 = self.bins[..=i].iter().sum();
        cum as f64 / in_range as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn records_into_expected_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(0.5);
        h.record(9.99);
        h.record(5.0);
        assert_eq!(h.bin_count(0), 1);
        assert_eq!(h.bin_count(9), 1);
        assert_eq!(h.bin_count(5), 1);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn upper_boundary_lands_in_last_bin() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(1.0);
        assert_eq!(h.bin_count(3), 1);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn out_of_range_counted_separately() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.record(-0.1);
        h.record(1.1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 2);
    }

    #[test]
    fn bin_edges_tile_the_range() {
        let h = Histogram::new(2.0, 4.0, 4);
        assert_eq!(h.bin_edges(0), (2.0, 2.5));
        assert_eq!(h.bin_edges(3), (3.5, 4.0));
    }

    #[test]
    fn cumulative_fraction_reaches_one() {
        let mut h = Histogram::new(0.0, 1.0, 5);
        for i in 0..50 {
            h.record(i as f64 / 50.0);
        }
        assert!((h.cumulative_fraction(4) - 1.0).abs() < 1e-12);
        assert!(h.cumulative_fraction(0) > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn rejects_zero_bins() {
        Histogram::new(0.0, 1.0, 0);
    }

    proptest! {
        #[test]
        fn total_matches_record_count(
            xs in proptest::collection::vec(-2.0f64..3.0, 0..500)
        ) {
            let mut h = Histogram::new(0.0, 1.0, 7);
            for &x in &xs { h.record(x); }
            prop_assert_eq!(h.total(), xs.len() as u64);
        }

        #[test]
        fn cumulative_fraction_is_monotone(
            xs in proptest::collection::vec(0.0f64..1.0, 1..300)
        ) {
            let mut h = Histogram::new(0.0, 1.0, 10);
            for &x in &xs { h.record(x); }
            let mut prev = 0.0;
            for i in 0..h.num_bins() {
                let c = h.cumulative_fraction(i);
                prop_assert!(c + 1e-12 >= prev);
                prev = c;
            }
        }
    }
}
