//! Exponential distribution with a given *mean* (not rate).
//!
//! The Rayleigh-fading model of the paper states that received powers
//! `|h|²·P·d^{−α}` are exponentially distributed with mean `P·d^{−α}`
//! (Eq. (4)–(5)). Sampling uses the inverse-CDF transform, which keeps us
//! free of an extra distribution crate and is exact.

use rand::Rng;

/// Exponential distribution parameterized by its mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    mean: f64,
}

impl Exponential {
    /// Creates a distribution with the given mean.
    ///
    /// # Panics
    /// Panics if `mean` is not finite and positive.
    pub fn with_mean(mean: f64) -> Self {
        assert!(
            mean.is_finite() && mean > 0.0,
            "exponential mean must be finite and positive, got {mean}"
        );
        Self { mean }
    }

    /// The distribution mean.
    #[inline]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Draws one sample via inverse transform: `-mean · ln(1 − U)`.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // gen::<f64>() ∈ [0,1); 1-u ∈ (0,1] so ln is finite.
        let u: f64 = rng.gen();
        -self.mean * (1.0 - u).ln()
    }

    /// CDF `Pr(X ≤ x) = 1 − e^{−x/mean}` (Eq. (5) of the paper).
    #[inline]
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            -(-x / self.mean).exp_m1()
        }
    }

    /// Survival function `Pr(X > x) = e^{−x/mean}`.
    #[inline]
    pub fn sf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            1.0
        } else {
            (-x / self.mean).exp()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;
    use crate::stats::OnlineStats;
    use proptest::prelude::*;

    #[test]
    fn sample_mean_converges_to_parameter() {
        let dist = Exponential::with_mean(3.5);
        let mut rng = seeded_rng(11);
        let mut stats = OnlineStats::new();
        for _ in 0..200_000 {
            stats.push(dist.sample(&mut rng));
        }
        let rel = (stats.mean() - 3.5).abs() / 3.5;
        assert!(rel < 0.02, "relative error {rel}");
    }

    #[test]
    fn sample_variance_is_mean_squared() {
        let dist = Exponential::with_mean(2.0);
        let mut rng = seeded_rng(12);
        let mut stats = OnlineStats::new();
        for _ in 0..200_000 {
            stats.push(dist.sample(&mut rng));
        }
        let rel = (stats.variance() - 4.0).abs() / 4.0;
        assert!(rel < 0.05, "relative error {rel}");
    }

    #[test]
    fn samples_are_nonnegative_and_finite() {
        let dist = Exponential::with_mean(1e-9);
        let mut rng = seeded_rng(13);
        for _ in 0..10_000 {
            let x = dist.sample(&mut rng);
            assert!(x.is_finite() && x >= 0.0);
        }
    }

    #[test]
    fn cdf_matches_paper_equation_5() {
        let dist = Exponential::with_mean(2.0);
        assert_eq!(dist.cdf(0.0), 0.0);
        let x = 1.3;
        let expect = 1.0 - (-x / 2.0f64).exp();
        assert!((dist.cdf(x) - expect).abs() < 1e-15);
        assert!((dist.cdf(x) + dist.sf(x) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn empirical_cdf_matches_analytic() {
        let dist = Exponential::with_mean(1.0);
        let mut rng = seeded_rng(14);
        let n = 100_000;
        let below: usize = (0..n).filter(|_| dist.sample(&mut rng) <= 1.0).count();
        let emp = below as f64 / n as f64;
        assert!((emp - dist.cdf(1.0)).abs() < 0.01, "emp={emp}");
    }

    #[test]
    #[should_panic(expected = "mean must be finite and positive")]
    fn rejects_zero_mean() {
        Exponential::with_mean(0.0);
    }

    proptest! {
        #[test]
        fn cdf_is_monotone(mean in 1e-6f64..1e6, a in 0.0f64..100.0, b in 0.0f64..100.0) {
            let d = Exponential::with_mean(mean);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(d.cdf(lo) <= d.cdf(hi) + 1e-15);
            prop_assert!((0.0..=1.0).contains(&d.cdf(a)));
        }
    }
}
