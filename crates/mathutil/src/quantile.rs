//! Sample quantiles (linear interpolation, type-7 / default in R and
//! NumPy).
//!
//! The normal-approximation CIs in [`crate::stats`] are fine for means;
//! the experiment reports also quote medians and tail quantiles of the
//! failure distribution, which need order statistics.

/// Returns the `q`-quantile (`0 ≤ q ≤ 1`) of `data` using linear
/// interpolation between order statistics (type 7).
///
/// `data` does not need to be sorted; a sorted copy is made.
///
/// # Panics
/// Panics if `data` is empty, `q` is outside `[0,1]`, or any value is
/// NaN.
pub fn quantile(data: &[f64], q: f64) -> f64 {
    assert!(!data.is_empty(), "quantile of empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile level {q} outside [0,1]");
    assert!(
        data.iter().all(|x| !x.is_nan()),
        "quantile input contains NaN"
    );
    let mut sorted = data.to_vec();
    sorted.sort_by(f64::total_cmp);
    quantile_sorted(&sorted, q)
}

/// [`quantile`] on data already sorted ascending (no copy).
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile level {q} outside [0,1]");
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let h = q * (n as f64 - 1.0);
    let lo = h.floor() as usize;
    let hi = (lo + 1).min(n - 1);
    let frac = h - lo as f64;
    sorted[lo] + frac * (sorted[hi] - sorted[lo])
}

/// Median shorthand.
pub fn median(data: &[f64]) -> f64 {
    quantile(data, 0.5)
}

/// Interquartile range `Q3 − Q1`.
pub fn iqr(data: &[f64]) -> f64 {
    let mut sorted = data.to_vec();
    sorted.sort_by(f64::total_cmp);
    quantile_sorted(&sorted, 0.75) - quantile_sorted(&sorted, 0.25)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn median_of_odd_sample() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
    }

    #[test]
    fn median_of_even_sample_interpolates() {
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), 2.5);
    }

    #[test]
    fn extreme_quantiles_are_min_max() {
        let data = [5.0, -1.0, 3.0, 9.0];
        assert_eq!(quantile(&data, 0.0), -1.0);
        assert_eq!(quantile(&data, 1.0), 9.0);
    }

    #[test]
    fn matches_numpy_reference() {
        // numpy.quantile([1,2,3,4,5,6,7,8,9,10], .3) == 3.7
        let data: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        assert!((quantile(&data, 0.3) - 3.7).abs() < 1e-12);
        // numpy.quantile(..., .95) == 9.55
        assert!((quantile(&data, 0.95) - 9.55).abs() < 1e-12);
    }

    #[test]
    fn single_element() {
        assert_eq!(quantile(&[7.0], 0.25), 7.0);
        assert_eq!(iqr(&[7.0]), 0.0);
    }

    #[test]
    fn iqr_of_uniform_grid() {
        let data: Vec<f64> = (0..=100).map(|i| i as f64).collect();
        assert!((iqr(&data) - 50.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn rejects_empty() {
        quantile(&[], 0.5);
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn rejects_bad_level() {
        quantile(&[1.0], 1.5);
    }

    proptest! {
        #[test]
        fn quantile_is_monotone_in_q(
            data in proptest::collection::vec(-1e6f64..1e6, 1..100),
            a in 0.0f64..1.0,
            b in 0.0f64..1.0,
        ) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(quantile(&data, lo) <= quantile(&data, hi) + 1e-9);
        }

        #[test]
        fn quantile_is_bounded_by_extremes(
            data in proptest::collection::vec(-1e6f64..1e6, 1..100),
            q in 0.0f64..1.0,
        ) {
            let v = quantile(&data, q);
            let min = data.iter().copied().fold(f64::INFINITY, f64::min);
            let max = data.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(v >= min - 1e-9 && v <= max + 1e-9);
        }
    }
}
