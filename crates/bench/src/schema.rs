//! The `BENCH_<date>.json` perf-trajectory schema.
//!
//! Every `fading bench-report` run emits one [`BenchReport`]: a flat,
//! schema-versioned list of [`MetricRecord`]s plus the
//! [`MachineFingerprint`] the numbers were measured on. Reports are
//! committed at the repo root (`BENCH_2026-08-08.json`, …) so the
//! performance trajectory travels with the code, and the regression
//! gates in [`crate::gates`] diff the current run against the newest
//! committed report.
//!
//! Serialization is deterministic: records are sorted by id, maps are
//! `BTreeMap`s, and JSON floats round-trip exactly (the vendored
//! `serde_json` enables `float_roundtrip`), so
//! `serialize(deserialize(x)) == x` byte-for-byte — asserted by
//! `tests/report_schema.rs`. Unknown fields are ignored on read, so a
//! version-1 reader still loads reports written by a later version
//! that only *added* fields.

use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// Version written into every report; bumped on incompatible changes
/// (see `docs/bench-report.md` for the compatibility policy).
pub const BENCH_SCHEMA_VERSION: u64 = 1;

/// What a metric measures — determines how the diff renders it, not
/// how it is gated (all current kinds are gated lower-is-better via
/// [`MetricRecord::lower_is_better`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MetricKind {
    /// Wall-clock nanoseconds per operation (median of samples).
    NsPerOp,
    /// Heap allocations per steady-state call.
    Allocs,
    /// A dimensionless ratio (warm/fresh time, ctx churn fraction).
    Ratio,
    /// A fitted n-scaling exponent (log-log least squares).
    Exponent,
    /// Wall-clock seconds for a single-shot workload (the release
    /// smokes); gated by absolute `[max]` ceilings, not noise bands.
    Seconds,
    /// Operations per second (sustained churn slots/sec); the one kind
    /// where higher is better, gated by a `[min]` floor.
    Rate,
}

/// One measured or derived metric.
///
/// Timing benches use `group/bench/param` ids mirroring the criterion
/// naming (`schedule/rle/1000`); derived probes use dotted metric ids
/// matching the `fading-obs` convention (`engine.rle.warm_ratio`).
/// Gate thresholds in `bench-gates.toml` are keyed by these ids.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricRecord {
    /// Stable identifier, unique within a report.
    pub id: String,
    /// What the value measures.
    pub kind: MetricKind,
    /// Point estimate (median for [`MetricKind::NsPerOp`]).
    pub value: f64,
    /// Half-width of the 95% confidence interval around `value`
    /// (median-notch estimate), `0.0` for derived metrics.
    pub ci95: f64,
    /// Number of measurement samples behind the estimate (`0` for
    /// derived metrics).
    pub samples: u64,
    /// Whether smaller values are better. Drives the regression
    /// direction in the gate check.
    pub lower_is_better: bool,
}

/// The machine a report was measured on. Numbers from different
/// fingerprints are never silently compared: a mismatch downgrades
/// relative regressions to warnings (exit code 2, not 1).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MachineFingerprint {
    /// `model name` from `/proc/cpuinfo`, or `"unknown"`.
    pub cpu_model: String,
    /// Logical core count (`std::thread::available_parallelism`).
    pub cores: u64,
    /// `rustc -V` of the compiler that built the harness. Part of the
    /// fingerprint because a toolchain bump legitimately moves codegen.
    pub rustc: String,
}

impl MachineFingerprint {
    /// Fingerprint of the running process' machine and toolchain.
    pub fn current() -> Self {
        Self {
            cpu_model: cpu_model(),
            cores: std::thread::available_parallelism().map_or(0, |t| t.get() as u64),
            rustc: env!("FADING_BENCH_RUSTC").to_string(),
        }
    }

    /// One-line human form (`"AMD EPYC 7R32 · 8 cores · rustc 1.79"`).
    pub fn describe(&self) -> String {
        format!("{} · {} cores · {}", self.cpu_model, self.cores, self.rustc)
    }
}

fn cpu_model() -> String {
    std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|text| {
            text.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|m| m.trim().to_string())
        })
        .filter(|m| !m.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// A complete perf-trajectory ledger entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// Schema version ([`BENCH_SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// UTC date the report was generated (`YYYY-MM-DD`); also encoded
    /// in the committed filename.
    pub date: String,
    /// `git describe --always --dirty` at run time, or `"unknown"`.
    pub git_describe: String,
    /// `"release"` or `"debug"` — debug numbers must never be
    /// compared against a release baseline.
    pub build_profile: String,
    /// Where the numbers were measured.
    pub fingerprint: MachineFingerprint,
    /// All metrics, sorted by id (the constructor enforces this).
    pub metrics: Vec<MetricRecord>,
}

impl BenchReport {
    /// Assembles a report for the current machine/build, sorting
    /// `metrics` by id and rejecting duplicate ids.
    pub fn new(date: String, mut metrics: Vec<MetricRecord>) -> Result<Self, String> {
        metrics.sort_by(|a, b| a.id.cmp(&b.id));
        if let Some(w) = metrics.windows(2).find(|w| w[0].id == w[1].id) {
            return Err(format!("duplicate metric id {:?} in bench report", w[0].id));
        }
        Ok(Self {
            schema_version: BENCH_SCHEMA_VERSION,
            date,
            git_describe: git_describe(),
            build_profile: if cfg!(debug_assertions) {
                "debug".to_string()
            } else {
                "release".to_string()
            },
            fingerprint: MachineFingerprint::current(),
            metrics,
        })
    }

    /// Looks up a metric by id.
    pub fn metric(&self, id: &str) -> Option<&MetricRecord> {
        self.metrics.iter().find(|m| m.id == id)
    }

    /// Deterministic pretty-printed JSON form.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_default()
    }

    /// Parses a report, ignoring unknown fields (forward compat).
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| format!("invalid bench report: {e}"))
    }

    /// Reads a report file.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read bench report {}: {e}", path.display()))?;
        Self::from_json(&text)
            .map_err(|e| format!("cannot parse bench report {}: {e}", path.display()))
    }

    /// Writes the JSON form to `path`.
    pub fn write(&self, path: &Path) -> Result<(), String> {
        std::fs::write(path, self.to_json())
            .map_err(|e| format!("cannot write bench report {}: {e}", path.display()))
    }
}

/// The newest committed ledger entry in `dir`: the lexicographically
/// greatest `BENCH_*.json` (the `YYYY-MM-DD` date format makes
/// lexicographic order chronological), excluding `exclude` (the
/// report under check, e.g. a `--from` source, which must never be
/// diffed against itself). The exclusion compares canonicalized
/// paths, so a different spelling of the same file (`--dir ./`, an
/// absolute path, a `.` component) cannot defeat it.
pub fn latest_report_path(dir: &Path, exclude: Option<&Path>) -> Option<PathBuf> {
    let excluded = exclude.and_then(|p| p.canonicalize().ok());
    let entries = std::fs::read_dir(dir).ok()?;
    entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            name.starts_with("BENCH_") && name.ends_with(".json")
        })
        .filter(|p| match (&excluded, p.canonicalize().ok()) {
            (Some(x), Some(c)) => *x != c,
            // A nonexistent exclude (canonicalize fails) cannot be an
            // on-disk candidate, so nothing to filter.
            _ => true,
        })
        .max()
}

/// Today's UTC date as `YYYY-MM-DD` (no chrono offline; days-to-civil
/// conversion per Howard Hinnant's algorithm).
pub fn today_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs() as i64);
    let (y, m, d) = civil_from_days(secs.div_euclid(86_400));
    format!("{y:04}-{m:02}-{d:02}")
}

fn civil_from_days(days_since_epoch: i64) -> (i64, u32, u32) {
    let z = days_since_epoch + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn civil_from_days_matches_known_dates() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(19_723), (2024, 1, 1)); // leap year
        assert_eq!(civil_from_days(19_723 + 59), (2024, 2, 29));
        assert_eq!(civil_from_days(20_673), (2026, 8, 8));
    }

    #[test]
    fn new_sorts_and_rejects_duplicate_ids() {
        let rec = |id: &str| MetricRecord {
            id: id.to_string(),
            kind: MetricKind::NsPerOp,
            value: 1.0,
            ci95: 0.0,
            samples: 1,
            lower_is_better: true,
        };
        let report = BenchReport::new("2026-08-08".into(), vec![rec("b"), rec("a")]).unwrap();
        let ids: Vec<&str> = report.metrics.iter().map(|m| m.id.as_str()).collect();
        assert_eq!(ids, ["a", "b"]);
        let err = BenchReport::new("2026-08-08".into(), vec![rec("a"), rec("a")]).unwrap_err();
        assert!(err.contains("duplicate metric id"), "{err}");
    }

    #[test]
    fn latest_report_path_picks_newest_and_honors_exclude() {
        let dir = std::env::temp_dir().join("fading_bench_latest_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(latest_report_path(&dir, None), None);
        for name in [
            "BENCH_2026-01-01.json",
            "BENCH_2026-08-08.json",
            "other.json",
        ] {
            std::fs::write(dir.join(name), "{}").unwrap();
        }
        let newest = dir.join("BENCH_2026-08-08.json");
        assert_eq!(latest_report_path(&dir, None), Some(newest.clone()));
        assert_eq!(
            latest_report_path(&dir, Some(&newest)),
            Some(dir.join("BENCH_2026-01-01.json"))
        );
    }

    #[test]
    fn latest_report_path_exclusion_survives_path_respelling() {
        let dir = std::env::temp_dir().join("fading_bench_exclude_spelling_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("BENCH_2026-08-08.json"), "{}").unwrap();
        // Same file, different spelling: `Path` equality normalizes
        // `.` but not `..`, so this alias is raw-unequal to the scan
        // result while canonicalizing to the same file.
        std::fs::create_dir_all(dir.join("sub")).unwrap();
        let alias = dir.join("sub").join("..").join("BENCH_2026-08-08.json");
        assert_ne!(alias, dir.join("BENCH_2026-08-08.json"));
        assert_eq!(latest_report_path(&dir, Some(&alias)), None);
        // A nonexistent exclude filters nothing.
        let ghost = dir.join("BENCH_9999-01-01.json");
        assert_eq!(
            latest_report_path(&dir, Some(&ghost)),
            Some(dir.join("BENCH_2026-08-08.json"))
        );
    }
}
