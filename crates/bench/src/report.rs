//! Programmatic bench runner behind `fading bench-report`.
//!
//! The vendored criterion is a stub without statistics or persistence,
//! so the ledger does not scrape `target/criterion` — it re-exposes
//! the same workloads the criterion suites (`benches/algorithms.rs`,
//! `benches/substrate.rs`) drive as programmatic entry points, times
//! them with a median-of-samples harness, and adds the probes the
//! ad-hoc gates used to hard-code: warm/fresh ratios and ctx churn
//! (from `tests/engine_gate.rs`) and steady-state allocation counts
//! (from `crates/core/tests/zero_alloc.rs`, via
//! [`crate::alloc::CountingAlloc`] when the binary installs it).
//!
//! `--quick` changes *sampling only* (fewer samples per bench, same
//! per-sample batch budget), never the workload set, so quick and full
//! runs produce the same metric ids, stay diffable against the same
//! baseline, and agree on per-op medians up to noise.

use crate::schema::{BenchReport, MachineFingerprint, MetricKind, MetricRecord};
use fading_core::algo::{GreedyRate, Ldp, Rle};
use fading_core::{
    BackendChoice, LinkIdMap, LinkSpec, MutationBatch, Problem, SchedCtx, Scheduler, SparseConfig,
};
use fading_geom::Point2;
use fading_net::{LinkId, RateModel, TopologyGenerator, UniformGenerator};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// How a report run samples its workloads.
#[derive(Debug, Clone, Default)]
pub struct ReportOptions {
    /// Fewer samples and smaller per-sample budgets; identical
    /// workload set and metric ids.
    pub quick: bool,
    /// Only run metrics whose id contains this substring. Derived
    /// metrics additionally require their inputs to have run.
    pub filter: Option<String>,
    /// Run the release smoke workloads (`smoke.*` metrics, single-shot
    /// wall-clock seconds gated by `[max]` rows) instead of the micro
    /// suite. Functional invariants inside the smokes (storage budget,
    /// packet conservation, trace replay) fail the run outright.
    pub smoke: bool,
}

/// One timing estimate from [`measure_ns`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Median ns per operation across samples.
    pub median_ns: f64,
    /// 95% CI half-width around the median (notch estimate
    /// `1.58 · IQR / √samples`).
    pub ci95_ns: f64,
    /// Number of samples taken.
    pub samples: u64,
}

/// Times `f`: one warm-up call, a calibration call to pick an
/// iteration count filling `target` per sample, then `samples` timed
/// batches. Returns the median ns/op with a notch CI.
pub fn measure_ns<F: FnMut()>(samples: usize, target: Duration, mut f: F) -> Measurement {
    f(); // warm-up
    let probe_start = Instant::now();
    f();
    let probe = probe_start.elapsed().max(Duration::from_nanos(50));
    let iters = (target.as_nanos() / probe.as_nanos()).clamp(1, 1_000_000) as u64;

    let xs: Vec<f64> = (0..samples.max(2))
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    summarize(xs)
}

/// Median + notch CI over raw per-op samples.
fn summarize(mut xs: Vec<f64>) -> Measurement {
    xs.sort_unstable_by(f64::total_cmp);
    let n = xs.len();
    let median = if n.is_multiple_of(2) {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    } else {
        xs[n / 2]
    };
    let iqr = xs[(3 * n) / 4] - xs[n / 4];
    Measurement {
        median_ns: median,
        ci95_ns: 1.58 * iqr / (n as f64).sqrt(),
        samples: n as u64,
    }
}

/// Collects [`MetricRecord`]s, applying the id filter.
struct Recorder {
    filter: Option<String>,
    samples: usize,
    target: Duration,
    metrics: Vec<MetricRecord>,
}

impl Recorder {
    fn wants(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    /// Times `f` under the id, if the filter admits it.
    fn time<F: FnMut()>(&mut self, id: &str, f: F) {
        if !self.wants(id) {
            return;
        }
        let _span = fading_obs::span!("bench.report.measure");
        let m = measure_ns(self.samples, self.target, f);
        fading_obs::counter!("bench.report.benches").incr();
        self.metrics.push(MetricRecord {
            id: id.to_string(),
            kind: MetricKind::NsPerOp,
            value: m.median_ns,
            ci95: m.ci95_ns,
            samples: m.samples,
            lower_is_better: true,
        });
    }

    /// Records an externally collected timing, if the filter admits it
    /// (for workloads whose halves are timed inside one loop and can't
    /// go through [`Self::time`]).
    fn timed(&mut self, id: &str, m: Measurement) {
        if !self.wants(id) {
            return;
        }
        fading_obs::counter!("bench.report.benches").incr();
        self.metrics.push(MetricRecord {
            id: id.to_string(),
            kind: MetricKind::NsPerOp,
            value: m.median_ns,
            ci95: m.ci95_ns,
            samples: m.samples,
            lower_is_better: true,
        });
    }

    /// Records a derived (non-timed) metric, if the filter admits it.
    fn derived(&mut self, id: &str, kind: MetricKind, value: f64) {
        self.derived_dir(id, kind, value, true);
    }

    /// [`Self::derived`] with an explicit regression direction, for
    /// the few higher-is-better metrics (sustained rates).
    fn derived_dir(&mut self, id: &str, kind: MetricKind, value: f64, lower_is_better: bool) {
        if !self.wants(id) {
            return;
        }
        self.metrics.push(MetricRecord {
            id: id.to_string(),
            kind,
            value,
            ci95: 0.0,
            samples: 0,
            lower_is_better,
        });
    }

    fn value_of(&self, id: &str) -> Option<f64> {
        self.metrics.iter().find(|m| m.id == id).map(|m| m.value)
    }
}

/// Sizes shared by the algorithm family benches; three points so the
/// n-scaling exponent fit has a degree of freedom.
const FAMILY_SIZES: [usize; 3] = [100, 300, 1000];

/// Runs the full workload set and assembles a [`BenchReport`] dated
/// today. The caller decides where to write it.
pub fn run_report(opts: &ReportOptions) -> Result<BenchReport, String> {
    let _span = fading_obs::span!("bench.report");
    fading_obs::counter!("bench.report.runs").incr();
    // Quick mode takes fewer samples but keeps the full per-sample
    // batch budget: the batch length sets the iteration count inside
    // [`measure_ns`], and memory-bound sweeps (e.g. the 33 MB dense
    // row-sum walk) measure up to ~2.7x slower per op in short batches
    // on shared vCPUs. Shrinking only the sample count keeps quick and
    // full per-op estimates comparable, so a `--quick --check` against
    // a full-mode committed baseline doesn't trip on calibration bias.
    let samples = if opts.quick { 7 } else { 21 };
    let target = Duration::from_millis(25);
    let mut rec = Recorder {
        filter: opts.filter.clone(),
        samples,
        target,
        metrics: Vec::new(),
    };

    if opts.smoke {
        smoke_benches(&mut rec)?;
    } else {
        schedule_benches(&mut rec);
        substrate_benches(&mut rec);
        mutate_benches(&mut rec);
        mutate_batch_benches(&mut rec);
        churn_benches(&mut rec);
        churn_large_benches(&mut rec);
        engine_probes(&mut rec);
        scaling_exponents(&mut rec);
    }

    fading_obs::gauge("bench.report.metrics").set(rec.metrics.len() as f64);
    if rec.metrics.is_empty() {
        return Err(match &opts.filter {
            Some(f) => format!("filter {f:?} matched no bench ids"),
            None => "no benches ran".to_string(),
        });
    }
    BenchReport::new(crate::schema::today_utc(), rec.metrics)
}

/// The fingerprint a report generated here would carry (re-exported
/// for the CLI's mismatch messaging).
pub fn fingerprint() -> MachineFingerprint {
    MachineFingerprint::current()
}

/// Fresh and warm scheduling benches on the paper workload — the
/// programmatic twin of the criterion `schedule` / `ldp_schedule` /
/// `rle_schedule` groups.
fn schedule_benches(rec: &mut Recorder) {
    const PANEL: [&str; 3] = ["ldp", "rle", "greedy"];
    for &n in &FAMILY_SIZES {
        // Skip the (expensive) problem construction when the filter
        // admits none of this size's ids.
        let any_wanted = PANEL.iter().any(|name| {
            rec.wants(&format!("schedule/{name}/{n}"))
                || (n == 1000 && rec.wants(&format!("schedule_warm/{name}/{n}")))
        });
        if !any_wanted {
            continue;
        }
        let problem = Problem::paper(UniformGenerator::paper(n).generate(42), 3.0);
        let panel: [(&str, Box<dyn Scheduler>); 3] = [
            ("ldp", Box::new(Ldp::new())),
            ("rle", Box::new(Rle::new())),
            ("greedy", Box::new(GreedyRate)),
        ];
        for (name, scheduler) in panel {
            rec.time(&format!("schedule/{name}/{n}"), || {
                black_box(scheduler.schedule(&problem));
            });
        }
        if n == 1000 {
            for (name, scheduler) in [
                ("ldp", Box::new(Ldp::new()) as Box<dyn Scheduler>),
                ("rle", Box::new(Rle::new())),
            ] {
                if !rec.wants(&format!("schedule_warm/{name}/{n}")) {
                    continue;
                }
                let mut ctx = SchedCtx::with_capacity(n);
                let problem = &problem;
                rec.time(&format!("schedule_warm/{name}/{n}"), move || {
                    let s = black_box(scheduler.schedule_in(problem, &mut ctx));
                    ctx.recycle(s);
                });
            }
        }
    }
}

/// Substrate hot paths — the programmatic twin of the criterion
/// `interference_build` / `interference_row_sum` /
/// `residual_construction` / `queueing` groups (sizes trimmed to keep
/// a full report under the CI wall guard).
fn substrate_benches(rec: &mut Recorder) {
    let params = fading_channel::ChannelParams::paper_defaults();
    // Paper-density instance scaled to `n` links, as in the criterion
    // substrate suite: side grows as √(n/300).
    let scaled = |n: usize| UniformGenerator {
        side: 500.0 * (n as f64 / 300.0).sqrt(),
        n,
        len_lo: 5.0,
        len_hi: 20.0,
        rates: RateModel::Fixed(1.0),
    };
    let sparse_backend = || BackendChoice::parse("sparse").expect("sparse backend parses");

    for &n in &[256usize, 2048] {
        if !rec.wants(&format!("interference_build/dense/{n}"))
            && !rec.wants(&format!("interference_build/sparse/{n}"))
        {
            continue;
        }
        let links = scaled(n).generate(7);
        rec.time(&format!("interference_build/dense/{n}"), || {
            black_box(
                Problem::builder(links.clone(), params)
                    .backend(BackendChoice::Dense)
                    .build(),
            );
        });
        rec.time(&format!("interference_build/sparse/{n}"), || {
            black_box(
                Problem::builder(links.clone(), params)
                    .backend(sparse_backend())
                    .build(),
            );
        });
    }

    {
        let n = 2048usize;
        if rec.wants(&format!("interference_row_sum/dense/{n}"))
            || rec.wants(&format!("interference_row_sum/sparse/{n}"))
        {
            let links = scaled(n).generate(9);
            let sum_all = |p: &Problem| {
                let mut total = 0.0f64;
                for i in p.links().ids() {
                    if let Some(row) = p.factors().dense_row(i) {
                        total += fading_core::kernel::row_sum(row);
                    } else {
                        let (_, fact) = p
                            .factors()
                            .as_sparse()
                            .expect("backend is dense or sparse")
                            .row_slices(i);
                        total += fading_core::kernel::row_sum(fact);
                    }
                }
                total
            };
            let dense = Problem::builder(links.clone(), params)
                .backend(BackendChoice::Dense)
                .build();
            rec.time(&format!("interference_row_sum/dense/{n}"), || {
                black_box(sum_all(&dense));
            });
            let sparse = Problem::builder(links, params)
                .backend(sparse_backend())
                .build();
            rec.time(&format!("interference_row_sum/sparse/{n}"), || {
                black_box(sum_all(&sparse));
            });
        }
    }

    {
        // The lane-blocked row-sum kernel against its scalar reference
        // on a synthetic 10⁵-factor row: the scalar sum is a serial
        // f64-add dependency chain, the kernel's 8 independent lanes
        // break it. `row_sum_kernel.speedup` is the ledgered contract
        // (gated ≥ 2× in `bench-gates.toml`).
        let n = 100_000usize;
        let scalar_id = format!("row_sum_kernel/scalar/{n}");
        let vector_id = format!("row_sum_kernel/vector/{n}");
        if rec.wants(&scalar_id) || rec.wants(&vector_id) || rec.wants("row_sum_kernel.speedup") {
            let channel = fading_channel::RayleighChannel::new(params);
            let xs: Vec<f64> = (0..n)
                .map(|k| channel.interference_factor(5.0 + (k % 997) as f64, 10.0))
                .collect();
            rec.time(&scalar_id, || {
                black_box(fading_core::kernel::row_sum_scalar(black_box(&xs)));
            });
            rec.time(&vector_id, || {
                black_box(fading_core::kernel::row_sum(black_box(&xs)));
            });
            if let (Some(s), Some(v)) = (rec.value_of(&scalar_id), rec.value_of(&vector_id)) {
                if v > 0.0 {
                    rec.derived_dir("row_sum_kernel.speedup", MetricKind::Ratio, s / v, false);
                }
            }
        }
    }

    {
        let n = 1000usize;
        if rec.wants(&format!("residual/restrict/{n}"))
            || rec.wants(&format!("residual/rebuild/{n}"))
        {
            let links = scaled(n).generate(11);
            let keep: Vec<LinkId> = links.ids().step_by(2).collect();
            let dense = Problem::builder(links, params)
                .backend(BackendChoice::Dense)
                .build();
            rec.time(&format!("residual/restrict/{n}"), || {
                black_box(dense.restrict(&keep));
            });
            rec.time(&format!("residual/rebuild/{n}"), || {
                let (sub_links, _) = dense.links().restrict(&keep);
                black_box(
                    Problem::builder(sub_links, params)
                        .backend(BackendChoice::Dense)
                        .build(),
                );
            });
        }
    }

    if rec.wants("simulate_slot/rle/300") {
        let problem = Problem::paper(UniformGenerator::paper(300).generate(1), 3.0);
        let schedule = Rle::new().schedule(&problem);
        let mut rng = fading_math::seeded_rng(3);
        rec.time("simulate_slot/rle/300", move || {
            black_box(fading_sim::simulate_slot(&problem, &schedule, &mut rng));
        });
    }

    if rec.wants("queueing/greedy/100x50") {
        let problem = Problem::paper(UniformGenerator::paper(100).generate(8), 3.0);
        rec.time("queueing/greedy/100x50", || {
            black_box(fading_sim::simulate_queueing(
                &problem,
                &GreedyRate,
                &fading_sim::QueueConfig {
                    arrival_prob: 0.05,
                    slots: 50,
                    seed: 1,
                },
            ));
        });
    }
}

/// Paper-density generator scaled to `n` links (side `√(n/300)·500`).
fn density_scaled(n: usize) -> UniformGenerator {
    UniformGenerator {
        side: 500.0 * (n as f64 / 300.0).sqrt(),
        n,
        len_lo: 5.0,
        len_hi: 20.0,
        rates: RateModel::Fixed(1.0),
    }
}

/// The online-engine mutate benches: single-link `add_links` /
/// `remove_links` cycles against the from-scratch rebuild they
/// replace, at n = 10 000 on the sparse backend (α = 4, the large-N
/// smoke config — the dense matrix at this size would be 800 MB).
/// `mutate.vs_rebuild.ratio` is the headline contract, gated by a
/// `[max]` ceiling of 0.1 in `bench-gates.toml`: a single-link patch
/// must stay ≥ 10× cheaper than rebuilding. (The transactional batch
/// contract is gated separately, at the churn scale where it matters —
/// see [`mutate_batch_benches`].)
fn mutate_benches(rec: &mut Recorder) {
    const N: usize = 10_000;
    let add_id = format!("mutate/add/{N}");
    let remove_id = format!("mutate/remove/{N}");
    let rebuild_id = format!("mutate/rebuild/{N}");
    let cycle_wanted = rec.wants(&add_id) || rec.wants(&remove_id);
    if !cycle_wanted && !rec.wants(&rebuild_id) {
        return;
    }
    let gen = density_scaled(N);
    let links = gen.generate(13);
    let params = fading_channel::ChannelParams::with_alpha(4.0);
    let backend = BackendChoice::Sparse(SparseConfig::default());
    let mut problem = Problem::builder(links.clone(), params)
        .backend(backend)
        .build();
    // Strictly interior positions (region center, sub-unit jitter so
    // the duplicate-position guard never trips) and short lengths: the
    // cost measured is the CSR/grid patch itself, not an
    // envelope-reconcile scan a boundary-growing link would force.
    let mid = gen.side / 2.0;
    let spec_at = |i: usize| {
        let dx = (i % 97) as f64 * 0.017;
        let dy = (i % 89) as f64 * 0.013;
        LinkSpec::new(
            Point2::new(mid + dx, mid + dy),
            Point2::new(mid + dx + 7.0, mid + dy + 5.0),
        )
    };

    if cycle_wanted {
        let rounds = rec.samples * 40;
        let mut add_ns = Vec::with_capacity(rounds);
        let mut remove_ns = Vec::with_capacity(rounds);
        for i in 0..4 {
            // Warm-up cycles (first mutation on a fresh build also
            // pays the one-time envelope reconcile).
            let ids = problem.add_links(&[spec_at(i)]).expect("interior spec");
            problem.remove_links(&ids);
        }
        for i in 0..rounds {
            let spec = spec_at(i);
            let start = Instant::now();
            let ids = problem.add_links(&[spec]).expect("interior spec");
            add_ns.push(start.elapsed().as_nanos() as f64);
            let start = Instant::now();
            problem.remove_links(&ids);
            remove_ns.push(start.elapsed().as_nanos() as f64);
        }
        rec.timed(&add_id, summarize(add_ns));
        rec.timed(&remove_id, summarize(remove_ns));
    }

    rec.time(&rebuild_id, || {
        black_box(
            Problem::builder(links.clone(), params)
                .backend(backend)
                .build(),
        );
    });

    if let (Some(add), Some(rebuild)) = (rec.value_of(&add_id), rec.value_of(&rebuild_id)) {
        if rebuild > 0.0 {
            rec.derived("mutate.vs_rebuild.ratio", MetricKind::Ratio, add / rebuild);
        }
    }
}

/// Steady-state churn-engine slot latency at n = 2000 (the release
/// smoke scale): Poisson arrivals and exponential departures patching
/// the live problem in place, greedy MaxWeight service every slot.
/// The derived `churn.slots_per_sec` is the sustained-throughput
/// contract, gated by a `[min]` floor in `bench-gates.toml`.
fn churn_benches(rec: &mut Recorder) {
    const N: usize = 2000;
    let slot_id = format!("churn_slot/maxweight/{N}");
    let tel_id = format!("churn_slot_telemetry/maxweight/{N}");
    let overhead_wanted = rec.wants(&tel_id) || rec.wants("churn_slot.telemetry_overhead");
    if !rec.wants(&slot_id) && !rec.wants("churn.slots_per_sec") && !overhead_wanted {
        return;
    }
    let gen = density_scaled(N);
    let problem = Problem::builder(
        gen.generate(17),
        fading_channel::ChannelParams::paper_defaults(),
    )
    .backend(BackendChoice::Dense)
    .build();
    // Arrival rate × lifetime = N keeps the population at equilibrium,
    // so every timed step sees the same regime.
    let cfg = fading_sim::ChurnConfig {
        slots: 1_000_000,
        link_arrival_rate: N as f64 / 100.0,
        mean_lifetime: 100.0,
        packet_prob: 0.2,
        seed: 5,
    };
    let mut engine = fading_sim::ChurnEngine::new(problem.clone(), gen, cfg);
    rec.time(&slot_id, move || {
        black_box(engine.step(&GreedyRate, fading_sim::ServicePolicy::MaxWeight));
    });
    if let Some(slot_ns) = rec.value_of(&slot_id) {
        if slot_ns > 0.0 {
            rec.derived_dir(
                "churn.slots_per_sec",
                MetricKind::Rate,
                1e9 / slot_ns,
                false,
            );
        }
    }

    if !overhead_wanted {
        return;
    }
    // Telemetry-overhead probe: two fresh same-seed engines walk the
    // same churn stream in lockstep — one bare, one with the full
    // steady-state telemetry footprint armed (in-memory series ring,
    // flight recorder with its detectors effectively disabled so the
    // probe measures the per-slot bookkeeping, not an anomaly dump).
    // Pairing the steps makes the ratio robust to machine drift within
    // the run; `churn_slot.telemetry_overhead` carries an absolute
    // `[max]` ceiling of 1.02 in `bench-gates.toml` — the armed path
    // may cost at most 2% on the release smoke scale.
    let mut plain = fading_sim::ChurnEngine::new(problem.clone(), gen, cfg);
    let mut armed = fading_sim::ChurnEngine::new(problem, gen, cfg);
    armed.arm(
        fading_sim::TelemetryConfig::new()
            .series(fading_obs::SlotSeries::in_memory(
                fading_obs::SeriesConfig::default(),
            ))
            .flight(
                fading_obs::FlightConfig {
                    min_stall_ns: u64::MAX,
                    growth_window: u32::MAX,
                    zero_delivery_window: u32::MAX,
                    capture_trace: false,
                    ..Default::default()
                },
                None,
            ),
    );
    for _ in 0..32 {
        // Warm both engines past the cold caches and ring growth.
        plain.step(&GreedyRate, fading_sim::ServicePolicy::MaxWeight);
        armed.step(&GreedyRate, fading_sim::ServicePolicy::MaxWeight);
    }
    let rounds = rec.samples * 16;
    let mut plain_ns = Vec::with_capacity(rounds);
    let mut armed_ns = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let start = Instant::now();
        black_box(plain.step(&GreedyRate, fading_sim::ServicePolicy::MaxWeight));
        plain_ns.push(start.elapsed().as_nanos() as f64);
        let start = Instant::now();
        black_box(armed.step(&GreedyRate, fading_sim::ServicePolicy::MaxWeight));
        armed_ns.push(start.elapsed().as_nanos() as f64);
    }
    let plain_total: f64 = plain_ns.iter().sum();
    let armed_total: f64 = armed_ns.iter().sum();
    rec.timed(&tel_id, summarize(armed_ns));
    if plain_total > 0.0 {
        rec.derived(
            "churn_slot.telemetry_overhead",
            MetricKind::Ratio,
            armed_total / plain_total,
        );
    }
}

/// The transactional mutate contract at the churn scale: one
/// `Problem::apply` of a 64-add `MutationBatch` versus the same 64
/// links pushed one `add_links` call at a time, at n = 100 000 on the
/// sparse substrate (α = 4, the sustained-churn geometry). At this n a
/// single add is dominated by the per-commit `O(n)` terms — the
/// envelope reconcile scan and the exactness sweep — while the
/// per-link CSR wiring (factor evaluations against the ~constant local
/// neighborhood; density-scaled, so independent of n) stays small. The
/// batch pays the `O(n)` terms once where the sequential path pays
/// them 64 times, and the derived `mutate.batch.vs_sequential`
/// quotient certifies it: its `[max]` ceiling of 0.0625 in
/// `bench-gates.toml` says the whole 64-link batch must cost less than
/// four single adds.
fn mutate_batch_benches(rec: &mut Recorder) {
    const N: usize = 100_000;
    const K: usize = 64;
    let batch_id = format!("mutate/batch64/{N}");
    let seq_id = format!("mutate/seq64/{N}");
    if !rec.wants(&batch_id) && !rec.wants(&seq_id) && !rec.wants("mutate.batch.vs_sequential") {
        return;
    }
    let gen = density_scaled(N);
    let mut problem = Problem::builder(
        gen.generate(13),
        fading_channel::ChannelParams::with_alpha(4.0),
    )
    .backend(BackendChoice::Sparse(SparseConfig::default()))
    .build();
    // Strictly interior positions (region center, sub-unit jitter so
    // the duplicate-position guard never trips): boundary-growing links
    // would force envelope *changes* and annulus rewiring, which is a
    // different (and rarer) regime than the steady interior churn the
    // engine sustains.
    let mid = gen.side / 2.0;
    let spec_at = |i: usize| {
        let dx = (i % 97) as f64 * 0.017;
        let dy = (i % 89) as f64 * 0.013;
        LinkSpec::new(
            Point2::new(mid + dx, mid + dy),
            Point2::new(mid + dx + 7.0, mid + dy + 5.0),
        )
    };
    // Both paths append at the tail and then retire exactly that tail
    // block (descending removes never disturb lower dense ids), so the
    // external-id map stays valid across the interleaving. Round 0 is
    // warm-up: on a fresh build the first mutation also pays the
    // one-time envelope reconcile.
    let mut map = LinkIdMap::with_len(problem.len());
    let rounds = rec.samples * 4;
    let mut batch_ns = Vec::with_capacity(rounds);
    let mut seq_ns = Vec::with_capacity(rounds);
    for round in 0..=rounds {
        let mut batch = MutationBatch::new();
        for i in 0..K {
            batch.add(spec_at(i));
        }
        let start = Instant::now();
        let receipt = problem.apply(&batch, &mut map).expect("interior specs");
        let elapsed = start.elapsed().as_nanos() as f64;
        if round > 0 {
            batch_ns.push(elapsed);
        }
        let mut undo = MutationBatch::new();
        for &ext in &receipt.added {
            undo.remove(ext);
        }
        problem
            .apply(&undo, &mut map)
            .expect("just-added externals");

        let mut dense = Vec::with_capacity(K);
        let start = Instant::now();
        for i in 0..K {
            dense.extend(problem.add_links(&[spec_at(i)]).expect("interior spec"));
        }
        let elapsed = start.elapsed().as_nanos() as f64;
        if round > 0 {
            seq_ns.push(elapsed);
        }
        problem.remove_links(&dense);
    }
    rec.timed(&batch_id, summarize(batch_ns));
    rec.timed(&seq_id, summarize(seq_ns));
    if let (Some(batch), Some(seq)) = (rec.value_of(&batch_id), rec.value_of(&seq_id)) {
        if seq > 0.0 {
            rec.derived("mutate.batch.vs_sequential", MetricKind::Ratio, batch / seq);
        }
    }
}

/// Sustained-churn slot latency at n = 100 000 on the sparse substrate
/// (α = 4, the large-N smoke geometry): the transactional mutate path
/// — one `MutationBatch` committed per slot — plus the stamp-keyed
/// backlog sub-problem cache are what keep a slot affordable at this
/// scale; the per-slot restrict-from-scratch it replaced was `O(n)` in
/// the full population every slot. Arrival rate 200 × mean lifetime
/// 500 holds the population at the 100 000 equilibrium, and the light
/// packet load keeps the backlog (and so the scheduled sub-problem)
/// stationary, so every timed step sees the same regime. The derived
/// `churn.slots_per_sec.100k` carries a `[min]` floor in
/// `bench-gates.toml` — the sustained-churn contract at n = 10^5.
fn churn_large_benches(rec: &mut Recorder) {
    const N: usize = 100_000;
    let slot_id = format!("churn_slot/maxweight/{N}");
    if !rec.wants(&slot_id) && !rec.wants("churn.slots_per_sec.100k") {
        return;
    }
    let gen = density_scaled(N);
    let problem = Problem::builder(
        gen.generate(29),
        fading_channel::ChannelParams::with_alpha(4.0),
    )
    .backend(BackendChoice::Sparse(SparseConfig::default()))
    .build();
    let cfg = fading_sim::ChurnConfig {
        slots: 1_000_000,
        link_arrival_rate: 200.0,
        mean_lifetime: 500.0,
        packet_prob: 0.001,
        seed: 7,
    };
    let mut engine = fading_sim::ChurnEngine::new(problem, gen, cfg);
    rec.time(&slot_id, move || {
        black_box(engine.step(&GreedyRate, fading_sim::ServicePolicy::MaxWeight));
    });
    if let Some(slot_ns) = rec.value_of(&slot_id) {
        if slot_ns > 0.0 {
            rec.derived_dir(
                "churn.slots_per_sec.100k",
                MetricKind::Rate,
                1e9 / slot_ns,
                false,
            );
        }
    }
}

/// The engine-contract probes the ad-hoc gates used to hard-code:
/// warm/fresh ratio and ctx churn per scheduler (`engine_gate.rs`) and
/// steady-state allocations per warm call (`zero_alloc.rs`). The
/// ratios divide this run's own `schedule*/…/1000` medians, so they
/// are only emitted when those benches ran (filters can exclude them).
fn engine_probes(rec: &mut Recorder) {
    // Ctx construction + drop, the only cost `schedule()` pays for the
    // workspace indirection. Measured once, shared by both schedulers.
    let churn_wanted = ["rle", "ldp"].iter().any(|name| {
        rec.wants(&format!("engine.{name}.ctx_churn_frac"))
            && rec.value_of(&format!("schedule/{name}/1000")).is_some()
    });
    let churn = churn_wanted.then(|| {
        measure_ns(rec.samples, rec.target, || {
            black_box(SchedCtx::new());
        })
        .median_ns
    });

    for name in ["rle", "ldp"] {
        let fresh = rec.value_of(&format!("schedule/{name}/1000"));
        let warm = rec.value_of(&format!("schedule_warm/{name}/1000"));
        if let (Some(fresh), Some(warm)) = (fresh, warm) {
            rec.derived(
                &format!("engine.{name}.warm_ratio"),
                MetricKind::Ratio,
                warm / fresh,
            );
        }
        if let (Some(fresh), Some(churn)) = (fresh, churn) {
            rec.derived(
                &format!("engine.{name}.ctx_churn_frac"),
                MetricKind::Ratio,
                churn / fresh,
            );
        }
    }

    // Steady-state allocations, only when the binary installed the
    // counting allocator (the `fading` CLI does; plain test binaries
    // do not).
    let allocs_wanted = ["rle", "ldp"]
        .iter()
        .any(|name| rec.wants(&format!("engine.{name}.steady_allocs")));
    if allocs_wanted && crate::alloc::counter_active() {
        let n = 256usize;
        let problem = Problem::paper(UniformGenerator::paper(n).generate(0), 3.0);
        for (name, scheduler) in [
            ("rle", Box::new(Rle::new()) as Box<dyn Scheduler>),
            ("ldp", Box::new(Ldp::new())),
        ] {
            let id = format!("engine.{name}.steady_allocs");
            if !rec.wants(&id) {
                continue;
            }
            let mut ctx = SchedCtx::with_capacity(n);
            for _ in 0..3 {
                let s = scheduler.schedule_in(&problem, &mut ctx);
                ctx.recycle(s);
            }
            const CALLS: u64 = 10;
            let before = crate::alloc::allocations();
            for _ in 0..CALLS {
                let s = black_box(scheduler.schedule_in(&problem, &mut ctx));
                ctx.recycle(s);
            }
            let per_call = (crate::alloc::allocations() - before) as f64 / CALLS as f64;
            rec.derived(&id, MetricKind::Allocs, per_call);
        }
    }
}

// ---- release smokes (`bench-report --smoke`) -------------------------

/// The release smoke workloads, formerly four separate ignored CI test
/// steps (`large_n_smoke.rs`, `queueing_smoke.rs`, the ignored
/// `traced_smoke` case, plus the new churn smoke). Functional
/// invariants are hard errors; wall clocks land in the ledger as
/// `smoke.*` [`MetricKind::Seconds`] rows whose `[max]` ceilings in
/// `bench-gates.toml` replace the old inline `Duration` guards.
fn smoke_benches(rec: &mut Recorder) -> Result<(), String> {
    smoke_large_n(rec)?;
    smoke_queueing(rec)?;
    smoke_traced(rec)?;
    smoke_churn(rec)?;
    smoke_churn_100k(rec)?;
    smoke_million(rec)
}

/// The sparse substrate at N = 100 000: build, RLE end-to-end, storage
/// budget, certified truncation, and sampled exact feasibility (see
/// `docs/interference.md`).
fn smoke_large_n(rec: &mut Recorder) -> Result<(), String> {
    if !rec.wants("smoke.large_n.build_s") && !rec.wants("smoke.large_n.wall_s") {
        return Ok(());
    }
    let n = 100_000usize;
    let started = Instant::now();
    // α = 4 (a Fig. 5(b) sweep value): the default truncation radius
    // keeps the near-field store inside the 1 GB budget.
    let links = density_scaled(n).generate(20170714);
    let build_started = Instant::now();
    let problem = Problem::builder(links, fading_channel::ChannelParams::with_alpha(4.0))
        .backend(BackendChoice::Sparse(SparseConfig::default()))
        .build();
    let build_s = build_started.elapsed().as_secs_f64();
    let model = problem
        .factors()
        .as_sparse()
        .ok_or("large-N smoke must run on the sparse backend")?;
    let storage = model.storage_bytes();
    if storage >= 1_000_000_000 {
        return Err(format!(
            "large-N smoke: interference storage is {storage} B, over the 1 GB budget"
        ));
    }
    if model.max_tail_cut() <= 0.0 {
        return Err(
            "large-N smoke: instance was stored exhaustively, truncation unexercised".into(),
        );
    }
    let schedule = Rle::new().schedule(&problem);
    if schedule.len() <= 1_000 {
        return Err(format!(
            "large-N smoke: RLE picked only {} links at N = 100k",
            schedule.len()
        ));
    }
    // Exact feasibility on a sample of receivers; factors recompute
    // exactly regardless of truncation.
    let members: Vec<_> = schedule.iter().collect();
    let budget = problem.gamma_eps();
    let step = (members.len() / 256).max(1);
    for &j in members.iter().step_by(step) {
        let sum: f64 = members
            .iter()
            .filter(|&&i| i != j)
            .map(|&i| problem.factor(i, j))
            .sum();
        if !fading_core::feasibility::within_budget(sum, budget) {
            return Err(format!(
                "large-N smoke: receiver {j} exceeds γ_ε: {sum} > {budget}"
            ));
        }
    }
    rec.derived("smoke.large_n.build_s", MetricKind::Seconds, build_s);
    rec.derived(
        "smoke.large_n.wall_s",
        MetricKind::Seconds,
        started.elapsed().as_secs_f64(),
    );
    Ok(())
}

/// The restrict-based queueing loop at n = 2000 × 200 slots under
/// MaxWeight (see `docs/residual.md`), with packet conservation.
fn smoke_queueing(rec: &mut Recorder) -> Result<(), String> {
    if !rec.wants("smoke.queueing.wall_s") {
        return Ok(());
    }
    let n = 2000usize;
    let problem = Problem::builder(
        density_scaled(n).generate(20170715),
        fading_channel::ChannelParams::paper_defaults(),
    )
    .backend(BackendChoice::Dense)
    .build();
    let cfg = fading_sim::QueueConfig {
        arrival_prob: 0.2,
        slots: 200,
        seed: 3,
    };
    let started = Instant::now();
    let result = fading_sim::simulate_queueing_with_policy(
        &problem,
        &GreedyRate,
        &cfg,
        fading_sim::ServicePolicy::MaxWeight,
    );
    let wall_s = started.elapsed().as_secs_f64();
    if result.delivered == 0 {
        return Err("queueing smoke: nothing delivered in 200 slots at n = 2000".into());
    }
    if result.arrived != result.delivered + result.final_backlog {
        return Err(format!(
            "queueing smoke: packet conservation violated ({} arrived, {} delivered, {} queued)",
            result.arrived, result.delivered, result.final_backlog
        ));
    }
    rec.derived("smoke.queueing.wall_s", MetricKind::Seconds, wall_s);
    Ok(())
}

/// LDP and RLE at n = 1000 with the decision trace on (plus RLE on the
/// sparse backend): the JSONL stream must be complete, round-trip, and
/// replay to the emitted schedule with an audited γ_ε ledger (see
/// `docs/tracing.md`).
fn smoke_traced(rec: &mut Recorder) -> Result<(), String> {
    if !rec.wants("smoke.traced.wall_s") {
        return Ok(());
    }
    let started = Instant::now();
    let links = UniformGenerator::paper(1000).generate(42);
    let panel: [(&str, Box<dyn Scheduler>, BackendChoice); 3] = [
        ("ldp", Box::new(Ldp::default()), BackendChoice::Dense),
        ("rle", Box::new(Rle::default()), BackendChoice::Dense),
        (
            "rle-sparse",
            Box::new(Rle::default()),
            BackendChoice::Sparse(SparseConfig::default()),
        ),
    ];
    for (tag, scheduler, backend) in panel {
        let problem = Problem::builder(
            links.clone(),
            fading_channel::ChannelParams::with_alpha(3.0),
        )
        .backend(backend)
        .build();
        fading_obs::set_tracing(true);
        let _ = fading_obs::take_trace(); // start from an empty ring
        let schedule = scheduler.schedule(&problem);
        let trace = fading_obs::take_trace();
        fading_obs::set_tracing(false);
        if !trace.is_complete() {
            return Err(format!("traced smoke: {tag} trace truncated at n = 1000"));
        }
        let round_tripped = fading_obs::Trace::from_jsonl(&trace.to_jsonl())
            .map_err(|e| format!("traced smoke: {tag} JSONL does not round-trip: {e}"))?;
        let cert = fading_core::verify_schedule(&problem, &round_tripped, &schedule)
            .map_err(|e| format!("traced smoke: {tag} replay failed: {e}"))?;
        if !cert.ledger_checked {
            return Err(format!("traced smoke: {tag} ledger not audited"));
        }
    }
    rec.derived(
        "smoke.traced.wall_s",
        MetricKind::Seconds,
        started.elapsed().as_secs_f64(),
    );
    Ok(())
}

/// The streaming engine at the queueing-smoke scale: n = 2000 seed
/// population, 200 slots of per-slot Poisson arrivals / exponential
/// departures patching the problem in place, greedy MaxWeight service,
/// packet conservation across departures (see `docs/online.md`).
fn smoke_churn(rec: &mut Recorder) -> Result<(), String> {
    if !rec.wants("smoke.churn.wall_s") {
        return Ok(());
    }
    let n = 2000usize;
    let gen = density_scaled(n);
    let problem = Problem::builder(
        gen.generate(20170716),
        fading_channel::ChannelParams::paper_defaults(),
    )
    .backend(BackendChoice::Dense)
    .build();
    let cfg = fading_sim::ChurnConfig {
        slots: 200,
        link_arrival_rate: n as f64 / 100.0,
        mean_lifetime: 100.0,
        packet_prob: 0.2,
        seed: 11,
    };
    let started = Instant::now();
    let result = fading_sim::ChurnEngine::new(problem, gen, cfg)
        .run(&GreedyRate, fading_sim::ServicePolicy::MaxWeight);
    let wall_s = started.elapsed().as_secs_f64();
    if result.links_arrived == 0 || result.links_departed == 0 {
        return Err(format!(
            "churn smoke: no topology churn over 200 slots ({} arrived, {} departed)",
            result.links_arrived, result.links_departed
        ));
    }
    if result.packets_delivered == 0 {
        return Err("churn smoke: nothing delivered over 200 slots at n = 2000".into());
    }
    if !result.conserves_packets() {
        return Err(format!(
            "churn smoke: packet conservation violated ({} arrived != {} delivered + {} abandoned + {} queued)",
            result.packets_arrived,
            result.packets_delivered,
            result.packets_abandoned,
            result.final_backlog
        ));
    }
    rec.derived("smoke.churn.wall_s", MetricKind::Seconds, wall_s);
    Ok(())
}

/// Sustained churn at n = 100 000: the transactional per-slot mutate
/// path and the cached backlog restriction, end-to-end through the
/// engine for 50 slots on the sparse substrate. Functional invariants
/// (churn actually happened, packets conserved) are hard errors; the
/// wall clock lands as `smoke.churn_100k.wall_s` with a `[max]`
/// ceiling in `bench-gates.toml`.
fn smoke_churn_100k(rec: &mut Recorder) -> Result<(), String> {
    if !rec.wants("smoke.churn_100k.wall_s") {
        return Ok(());
    }
    let n = 100_000usize;
    let gen = density_scaled(n);
    let problem = Problem::builder(
        gen.generate(20170718),
        fading_channel::ChannelParams::with_alpha(4.0),
    )
    .backend(BackendChoice::Sparse(SparseConfig::default()))
    .build();
    let cfg = fading_sim::ChurnConfig {
        slots: 50,
        link_arrival_rate: 200.0,
        mean_lifetime: 500.0,
        packet_prob: 0.001,
        seed: 13,
    };
    let started = Instant::now();
    let result = fading_sim::ChurnEngine::new(problem, gen, cfg)
        .run(&GreedyRate, fading_sim::ServicePolicy::MaxWeight);
    let wall_s = started.elapsed().as_secs_f64();
    if result.links_arrived == 0 || result.links_departed == 0 {
        return Err(format!(
            "churn 100k smoke: no topology churn over 50 slots ({} arrived, {} departed)",
            result.links_arrived, result.links_departed
        ));
    }
    if result.packets_delivered == 0 {
        return Err("churn 100k smoke: nothing delivered over 50 slots at n = 100 000".into());
    }
    if !result.conserves_packets() {
        return Err(format!(
            "churn 100k smoke: packet conservation violated ({} arrived != {} delivered + {} abandoned + {} queued)",
            result.packets_arrived,
            result.packets_delivered,
            result.packets_abandoned,
            result.final_backlog
        ));
    }
    rec.derived("smoke.churn_100k.wall_s", MetricKind::Seconds, wall_s);
    Ok(())
}

/// The million-link substrate end-to-end: tile-sharded spatial build,
/// sparse CSR under a relaxed certified tail (`tail_rtol = 0.1` keeps
/// the store a few hundred MB where the default rtol would need
/// ~2.5 GB), RLE and LDP schedules, and sampled exact feasibility on
/// the RLE output. Wall ceilings live in `bench-gates.toml`
/// (`smoke.million.{build_s,wall_s}`).
fn smoke_million(rec: &mut Recorder) -> Result<(), String> {
    if !rec.wants("smoke.million.build_s") && !rec.wants("smoke.million.wall_s") {
        return Ok(());
    }
    let n = 1_000_000usize;
    let started = Instant::now();
    let links = density_scaled(n).generate(20170717);
    let build_started = Instant::now();
    let problem = Problem::builder(links, fading_channel::ChannelParams::with_alpha(4.0))
        .backend(BackendChoice::Sparse(SparseConfig { tail_rtol: 0.1 }))
        .build();
    let build_s = build_started.elapsed().as_secs_f64();
    let model = problem
        .factors()
        .as_sparse()
        .ok_or("million smoke must run on the sparse backend")?;
    let storage = model.storage_bytes();
    if storage >= 1_000_000_000 {
        return Err(format!(
            "million smoke: interference storage is {storage} B, over the 1 GB budget"
        ));
    }
    if model.max_tail_cut() <= 0.0 {
        return Err(
            "million smoke: instance was stored exhaustively, truncation unexercised".into(),
        );
    }
    let rle_schedule = Rle::new().schedule(&problem);
    if rle_schedule.len() <= 1_000 {
        return Err(format!(
            "million smoke: RLE picked only {} links at N = 10⁶",
            rle_schedule.len()
        ));
    }
    let ldp_schedule = Ldp::new().schedule(&problem);
    if ldp_schedule.is_empty() {
        return Err("million smoke: LDP scheduled nothing at N = 10⁶".into());
    }
    // Exact feasibility on a sample of RLE receivers; factors
    // recompute exactly regardless of truncation.
    let members: Vec<_> = rle_schedule.iter().collect();
    let budget = problem.gamma_eps();
    let step = (members.len() / 256).max(1);
    for &j in members.iter().step_by(step) {
        let sum: f64 = members
            .iter()
            .filter(|&&i| i != j)
            .map(|&i| problem.factor(i, j))
            .sum();
        if !fading_core::feasibility::within_budget(sum, budget) {
            return Err(format!(
                "million smoke: receiver {j} exceeds γ_ε: {sum} > {budget}"
            ));
        }
    }
    rec.derived("smoke.million.build_s", MetricKind::Seconds, build_s);
    rec.derived(
        "smoke.million.wall_s",
        MetricKind::Seconds,
        started.elapsed().as_secs_f64(),
    );
    Ok(())
}

/// Least-squares log-log slope of ns/op over the family sizes — the
/// empirical n-scaling exponent per scheduler.
fn scaling_exponents(rec: &mut Recorder) {
    for name in ["ldp", "rle", "greedy"] {
        let points: Vec<(f64, f64)> = FAMILY_SIZES
            .iter()
            .filter_map(|&n| {
                rec.value_of(&format!("schedule/{name}/{n}"))
                    .filter(|&v| v > 0.0)
                    .map(|v| ((n as f64).ln(), v.ln()))
            })
            .collect();
        if points.len() < 2 {
            continue;
        }
        let m = points.len() as f64;
        let (sx, sy) = points
            .iter()
            .fold((0.0, 0.0), |(sx, sy), (x, y)| (sx + x, sy + y));
        let (mx, my) = (sx / m, sy / m);
        let num: f64 = points.iter().map(|(x, y)| (x - mx) * (y - my)).sum();
        let den: f64 = points.iter().map(|(x, _)| (x - mx) * (x - mx)).sum();
        if den > 0.0 {
            rec.derived(
                &format!("scaling.{name}.exponent"),
                MetricKind::Exponent,
                num / den,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_ns_reports_plausible_timings() {
        let m = measure_ns(5, Duration::from_micros(200), || {
            black_box((0..100u64).sum::<u64>());
        });
        assert!(m.median_ns > 0.0);
        assert!(m.ci95_ns >= 0.0);
        assert_eq!(m.samples, 5);
    }

    #[test]
    fn filtered_report_runs_only_matching_ids_and_derives_exponent() {
        // Debug-build timings are meaningless but the plumbing is not:
        // a greedy-only filter must produce exactly the greedy family
        // plus its fitted exponent, sorted, with a valid schema.
        let report = run_report(&ReportOptions {
            quick: true,
            filter: Some("greedy".to_string()),
            smoke: false,
        })
        .unwrap();
        let ids: Vec<&str> = report.metrics.iter().map(|m| m.id.as_str()).collect();
        assert_eq!(
            ids,
            [
                "queueing/greedy/100x50",
                "scaling.greedy.exponent",
                "schedule/greedy/100",
                "schedule/greedy/1000",
                "schedule/greedy/300",
            ]
        );
        assert_eq!(report.schema_version, crate::schema::BENCH_SCHEMA_VERSION);
    }

    #[test]
    fn unmatched_filter_is_a_clean_error() {
        let err = run_report(&ReportOptions {
            quick: true,
            filter: Some("no-such-bench".to_string()),
            smoke: false,
        })
        .unwrap_err();
        assert!(err.contains("no-such-bench"), "{err}");
    }
}
