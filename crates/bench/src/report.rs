//! Programmatic bench runner behind `fading bench-report`.
//!
//! The vendored criterion is a stub without statistics or persistence,
//! so the ledger does not scrape `target/criterion` — it re-exposes
//! the same workloads the criterion suites (`benches/algorithms.rs`,
//! `benches/substrate.rs`) drive as programmatic entry points, times
//! them with a median-of-samples harness, and adds the probes the
//! ad-hoc gates used to hard-code: warm/fresh ratios and ctx churn
//! (from `tests/engine_gate.rs`) and steady-state allocation counts
//! (from `crates/core/tests/zero_alloc.rs`, via
//! [`crate::alloc::CountingAlloc`] when the binary installs it).
//!
//! `--quick` changes *sampling only* (fewer samples, smaller per-sample
//! budget), never the workload set, so quick and full runs produce the
//! same metric ids and stay diffable against the same baseline.

use crate::schema::{BenchReport, MachineFingerprint, MetricKind, MetricRecord};
use fading_core::algo::{GreedyRate, Ldp, Rle};
use fading_core::{BackendChoice, Problem, SchedCtx, Scheduler};
use fading_net::{LinkId, RateModel, TopologyGenerator, UniformGenerator};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// How a report run samples its workloads.
#[derive(Debug, Clone, Default)]
pub struct ReportOptions {
    /// Fewer samples and smaller per-sample budgets; identical
    /// workload set and metric ids.
    pub quick: bool,
    /// Only run metrics whose id contains this substring. Derived
    /// metrics additionally require their inputs to have run.
    pub filter: Option<String>,
}

/// One timing estimate from [`measure_ns`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Median ns per operation across samples.
    pub median_ns: f64,
    /// 95% CI half-width around the median (notch estimate
    /// `1.58 · IQR / √samples`).
    pub ci95_ns: f64,
    /// Number of samples taken.
    pub samples: u64,
}

/// Times `f`: one warm-up call, a calibration call to pick an
/// iteration count filling `target` per sample, then `samples` timed
/// batches. Returns the median ns/op with a notch CI.
pub fn measure_ns<F: FnMut()>(samples: usize, target: Duration, mut f: F) -> Measurement {
    f(); // warm-up
    let probe_start = Instant::now();
    f();
    let probe = probe_start.elapsed().max(Duration::from_nanos(50));
    let iters = (target.as_nanos() / probe.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut xs: Vec<f64> = (0..samples.max(2))
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    xs.sort_unstable_by(f64::total_cmp);
    let n = xs.len();
    let median = if n.is_multiple_of(2) {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    } else {
        xs[n / 2]
    };
    let iqr = xs[(3 * n) / 4] - xs[n / 4];
    Measurement {
        median_ns: median,
        ci95_ns: 1.58 * iqr / (n as f64).sqrt(),
        samples: n as u64,
    }
}

/// Collects [`MetricRecord`]s, applying the id filter.
struct Recorder {
    filter: Option<String>,
    samples: usize,
    target: Duration,
    metrics: Vec<MetricRecord>,
}

impl Recorder {
    fn wants(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    /// Times `f` under the id, if the filter admits it.
    fn time<F: FnMut()>(&mut self, id: &str, f: F) {
        if !self.wants(id) {
            return;
        }
        let _span = fading_obs::span!("bench.report.measure");
        let m = measure_ns(self.samples, self.target, f);
        fading_obs::counter!("bench.report.benches").incr();
        self.metrics.push(MetricRecord {
            id: id.to_string(),
            kind: MetricKind::NsPerOp,
            value: m.median_ns,
            ci95: m.ci95_ns,
            samples: m.samples,
            lower_is_better: true,
        });
    }

    /// Records a derived (non-timed) metric, if the filter admits it.
    fn derived(&mut self, id: &str, kind: MetricKind, value: f64) {
        if !self.wants(id) {
            return;
        }
        self.metrics.push(MetricRecord {
            id: id.to_string(),
            kind,
            value,
            ci95: 0.0,
            samples: 0,
            lower_is_better: true,
        });
    }

    fn value_of(&self, id: &str) -> Option<f64> {
        self.metrics.iter().find(|m| m.id == id).map(|m| m.value)
    }
}

/// Sizes shared by the algorithm family benches; three points so the
/// n-scaling exponent fit has a degree of freedom.
const FAMILY_SIZES: [usize; 3] = [100, 300, 1000];

/// Runs the full workload set and assembles a [`BenchReport`] dated
/// today. The caller decides where to write it.
pub fn run_report(opts: &ReportOptions) -> Result<BenchReport, String> {
    let _span = fading_obs::span!("bench.report");
    fading_obs::counter!("bench.report.runs").incr();
    let (samples, target) = if opts.quick {
        (7, Duration::from_millis(8))
    } else {
        (21, Duration::from_millis(25))
    };
    let mut rec = Recorder {
        filter: opts.filter.clone(),
        samples,
        target,
        metrics: Vec::new(),
    };

    schedule_benches(&mut rec);
    substrate_benches(&mut rec);
    engine_probes(&mut rec);
    scaling_exponents(&mut rec);

    fading_obs::gauge("bench.report.metrics").set(rec.metrics.len() as f64);
    if rec.metrics.is_empty() {
        return Err(match &opts.filter {
            Some(f) => format!("filter {f:?} matched no bench ids"),
            None => "no benches ran".to_string(),
        });
    }
    BenchReport::new(crate::schema::today_utc(), rec.metrics)
}

/// The fingerprint a report generated here would carry (re-exported
/// for the CLI's mismatch messaging).
pub fn fingerprint() -> MachineFingerprint {
    MachineFingerprint::current()
}

/// Fresh and warm scheduling benches on the paper workload — the
/// programmatic twin of the criterion `schedule` / `ldp_schedule` /
/// `rle_schedule` groups.
fn schedule_benches(rec: &mut Recorder) {
    const PANEL: [&str; 3] = ["ldp", "rle", "greedy"];
    for &n in &FAMILY_SIZES {
        // Skip the (expensive) problem construction when the filter
        // admits none of this size's ids.
        let any_wanted = PANEL.iter().any(|name| {
            rec.wants(&format!("schedule/{name}/{n}"))
                || (n == 1000 && rec.wants(&format!("schedule_warm/{name}/{n}")))
        });
        if !any_wanted {
            continue;
        }
        let problem = Problem::paper(UniformGenerator::paper(n).generate(42), 3.0);
        let panel: [(&str, Box<dyn Scheduler>); 3] = [
            ("ldp", Box::new(Ldp::new())),
            ("rle", Box::new(Rle::new())),
            ("greedy", Box::new(GreedyRate)),
        ];
        for (name, scheduler) in panel {
            rec.time(&format!("schedule/{name}/{n}"), || {
                black_box(scheduler.schedule(&problem));
            });
        }
        if n == 1000 {
            for (name, scheduler) in [
                ("ldp", Box::new(Ldp::new()) as Box<dyn Scheduler>),
                ("rle", Box::new(Rle::new())),
            ] {
                if !rec.wants(&format!("schedule_warm/{name}/{n}")) {
                    continue;
                }
                let mut ctx = SchedCtx::with_capacity(n);
                let problem = &problem;
                rec.time(&format!("schedule_warm/{name}/{n}"), move || {
                    let s = black_box(scheduler.schedule_in(problem, &mut ctx));
                    ctx.recycle(s);
                });
            }
        }
    }
}

/// Substrate hot paths — the programmatic twin of the criterion
/// `interference_build` / `interference_row_sum` /
/// `residual_construction` / `queueing` groups (sizes trimmed to keep
/// a full report under the CI wall guard).
fn substrate_benches(rec: &mut Recorder) {
    let params = fading_channel::ChannelParams::paper_defaults();
    // Paper-density instance scaled to `n` links, as in the criterion
    // substrate suite: side grows as √(n/300).
    let scaled = |n: usize| UniformGenerator {
        side: 500.0 * (n as f64 / 300.0).sqrt(),
        n,
        len_lo: 5.0,
        len_hi: 20.0,
        rates: RateModel::Fixed(1.0),
    };
    let sparse_backend = || BackendChoice::parse("sparse").expect("sparse backend parses");

    for &n in &[256usize, 2048] {
        if !rec.wants(&format!("interference_build/dense/{n}"))
            && !rec.wants(&format!("interference_build/sparse/{n}"))
        {
            continue;
        }
        let links = scaled(n).generate(7);
        rec.time(&format!("interference_build/dense/{n}"), || {
            black_box(
                Problem::builder(links.clone(), params)
                    .backend(BackendChoice::Dense)
                    .build(),
            );
        });
        rec.time(&format!("interference_build/sparse/{n}"), || {
            black_box(
                Problem::builder(links.clone(), params)
                    .backend(sparse_backend())
                    .build(),
            );
        });
    }

    {
        let n = 2048usize;
        if rec.wants(&format!("interference_row_sum/dense/{n}"))
            || rec.wants(&format!("interference_row_sum/sparse/{n}"))
        {
            let links = scaled(n).generate(9);
            let sum_all = |p: &Problem| {
                let mut total = 0.0f64;
                for i in p.links().ids() {
                    if let Some(row) = p.factors().dense_row(i) {
                        total += row.iter().sum::<f64>();
                    } else {
                        p.factors().for_each_out(i, &mut |_, f| total += f);
                    }
                }
                total
            };
            let dense = Problem::builder(links.clone(), params)
                .backend(BackendChoice::Dense)
                .build();
            rec.time(&format!("interference_row_sum/dense/{n}"), || {
                black_box(sum_all(&dense));
            });
            let sparse = Problem::builder(links, params)
                .backend(sparse_backend())
                .build();
            rec.time(&format!("interference_row_sum/sparse/{n}"), || {
                black_box(sum_all(&sparse));
            });
        }
    }

    {
        let n = 1000usize;
        if rec.wants(&format!("residual/restrict/{n}"))
            || rec.wants(&format!("residual/rebuild/{n}"))
        {
            let links = scaled(n).generate(11);
            let keep: Vec<LinkId> = links.ids().step_by(2).collect();
            let dense = Problem::builder(links, params)
                .backend(BackendChoice::Dense)
                .build();
            rec.time(&format!("residual/restrict/{n}"), || {
                black_box(dense.restrict(&keep));
            });
            rec.time(&format!("residual/rebuild/{n}"), || {
                let (sub_links, _) = dense.links().restrict(&keep);
                black_box(
                    Problem::builder(sub_links, params)
                        .backend(BackendChoice::Dense)
                        .build(),
                );
            });
        }
    }

    if rec.wants("simulate_slot/rle/300") {
        let problem = Problem::paper(UniformGenerator::paper(300).generate(1), 3.0);
        let schedule = Rle::new().schedule(&problem);
        let mut rng = fading_math::seeded_rng(3);
        rec.time("simulate_slot/rle/300", move || {
            black_box(fading_sim::simulate_slot(&problem, &schedule, &mut rng));
        });
    }

    if rec.wants("queueing/greedy/100x50") {
        let problem = Problem::paper(UniformGenerator::paper(100).generate(8), 3.0);
        rec.time("queueing/greedy/100x50", || {
            black_box(fading_sim::simulate_queueing(
                &problem,
                &GreedyRate,
                &fading_sim::QueueConfig {
                    arrival_prob: 0.05,
                    slots: 50,
                    seed: 1,
                },
            ));
        });
    }
}

/// The engine-contract probes the ad-hoc gates used to hard-code:
/// warm/fresh ratio and ctx churn per scheduler (`engine_gate.rs`) and
/// steady-state allocations per warm call (`zero_alloc.rs`). The
/// ratios divide this run's own `schedule*/…/1000` medians, so they
/// are only emitted when those benches ran (filters can exclude them).
fn engine_probes(rec: &mut Recorder) {
    // Ctx construction + drop, the only cost `schedule()` pays for the
    // workspace indirection. Measured once, shared by both schedulers.
    let churn_wanted = ["rle", "ldp"].iter().any(|name| {
        rec.wants(&format!("engine.{name}.ctx_churn_frac"))
            && rec.value_of(&format!("schedule/{name}/1000")).is_some()
    });
    let churn = churn_wanted.then(|| {
        measure_ns(rec.samples, rec.target, || {
            black_box(SchedCtx::new());
        })
        .median_ns
    });

    for name in ["rle", "ldp"] {
        let fresh = rec.value_of(&format!("schedule/{name}/1000"));
        let warm = rec.value_of(&format!("schedule_warm/{name}/1000"));
        if let (Some(fresh), Some(warm)) = (fresh, warm) {
            rec.derived(
                &format!("engine.{name}.warm_ratio"),
                MetricKind::Ratio,
                warm / fresh,
            );
        }
        if let (Some(fresh), Some(churn)) = (fresh, churn) {
            rec.derived(
                &format!("engine.{name}.ctx_churn_frac"),
                MetricKind::Ratio,
                churn / fresh,
            );
        }
    }

    // Steady-state allocations, only when the binary installed the
    // counting allocator (the `fading` CLI does; plain test binaries
    // do not).
    let allocs_wanted = ["rle", "ldp"]
        .iter()
        .any(|name| rec.wants(&format!("engine.{name}.steady_allocs")));
    if allocs_wanted && crate::alloc::counter_active() {
        let n = 256usize;
        let problem = Problem::paper(UniformGenerator::paper(n).generate(0), 3.0);
        for (name, scheduler) in [
            ("rle", Box::new(Rle::new()) as Box<dyn Scheduler>),
            ("ldp", Box::new(Ldp::new())),
        ] {
            let id = format!("engine.{name}.steady_allocs");
            if !rec.wants(&id) {
                continue;
            }
            let mut ctx = SchedCtx::with_capacity(n);
            for _ in 0..3 {
                let s = scheduler.schedule_in(&problem, &mut ctx);
                ctx.recycle(s);
            }
            const CALLS: u64 = 10;
            let before = crate::alloc::allocations();
            for _ in 0..CALLS {
                let s = black_box(scheduler.schedule_in(&problem, &mut ctx));
                ctx.recycle(s);
            }
            let per_call = (crate::alloc::allocations() - before) as f64 / CALLS as f64;
            rec.derived(&id, MetricKind::Allocs, per_call);
        }
    }
}

/// Least-squares log-log slope of ns/op over the family sizes — the
/// empirical n-scaling exponent per scheduler.
fn scaling_exponents(rec: &mut Recorder) {
    for name in ["ldp", "rle", "greedy"] {
        let points: Vec<(f64, f64)> = FAMILY_SIZES
            .iter()
            .filter_map(|&n| {
                rec.value_of(&format!("schedule/{name}/{n}"))
                    .filter(|&v| v > 0.0)
                    .map(|v| ((n as f64).ln(), v.ln()))
            })
            .collect();
        if points.len() < 2 {
            continue;
        }
        let m = points.len() as f64;
        let (sx, sy) = points
            .iter()
            .fold((0.0, 0.0), |(sx, sy), (x, y)| (sx + x, sy + y));
        let (mx, my) = (sx / m, sy / m);
        let num: f64 = points.iter().map(|(x, y)| (x - mx) * (y - my)).sum();
        let den: f64 = points.iter().map(|(x, _)| (x - mx) * (x - mx)).sum();
        if den > 0.0 {
            rec.derived(
                &format!("scaling.{name}.exponent"),
                MetricKind::Exponent,
                num / den,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_ns_reports_plausible_timings() {
        let m = measure_ns(5, Duration::from_micros(200), || {
            black_box((0..100u64).sum::<u64>());
        });
        assert!(m.median_ns > 0.0);
        assert!(m.ci95_ns >= 0.0);
        assert_eq!(m.samples, 5);
    }

    #[test]
    fn filtered_report_runs_only_matching_ids_and_derives_exponent() {
        // Debug-build timings are meaningless but the plumbing is not:
        // a greedy-only filter must produce exactly the greedy family
        // plus its fitted exponent, sorted, with a valid schema.
        let report = run_report(&ReportOptions {
            quick: true,
            filter: Some("greedy".to_string()),
        })
        .unwrap();
        let ids: Vec<&str> = report.metrics.iter().map(|m| m.id.as_str()).collect();
        assert_eq!(
            ids,
            [
                "queueing/greedy/100x50",
                "scaling.greedy.exponent",
                "schedule/greedy/100",
                "schedule/greedy/1000",
                "schedule/greedy/300",
            ]
        );
        assert_eq!(report.schema_version, crate::schema::BENCH_SCHEMA_VERSION);
    }

    #[test]
    fn unmatched_filter_is_a_clean_error() {
        let err = run_report(&ReportOptions {
            quick: true,
            filter: Some("no-such-bench".to_string()),
        })
        .unwrap_err();
        assert!(err.contains("no-such-bench"), "{err}");
    }
}
