//! Extension E3: schedule staleness under mobility.
//!
//! A schedule is computed at t = 0; nodes then move (random waypoint,
//! rigid sender–receiver pairs). The analytic expected failures per
//! slot (Theorem 3.1, exact) are tracked per step: how long does a
//! schedule stay within its ε budget, and how do the algorithms'
//! staleness profiles compare?

use fading_core::algo::{GreedyRate, Ldp, Rle};
use fading_core::{Problem, Scheduler};
use fading_net::{TopologyGenerator, UniformGenerator};
use fading_sim::robustness::drift_reliability;

fn main() {
    let cli = fading_bench::Cli::parse();
    let quick = cli.quick;
    let steps = if quick { 5 } else { 20 };
    let speed = 5.0; // units per step; links are 5–20 units long
    let algos: Vec<Box<dyn Scheduler>> = vec![
        Box::new(Ldp::new()),
        Box::new(Rle::new()),
        Box::new(GreedyRate),
    ];
    println!("# Extension E3 — expected failures/slot of a t=0 schedule as nodes move");
    println!("# (speed {speed} units/step, random waypoint, rigid link pairs)");
    println!();
    print!("{:<12} {:>5} {:>9}", "algorithm", "|S|", "budget");
    for t in 0..=steps {
        print!(" {:>8}", format!("t={t}"));
    }
    println!();
    let p = Problem::paper(UniformGenerator::paper(300).generate(9), 3.0);
    for algo in &algos {
        let s = algo.schedule(&p);
        let curve = drift_reliability(&p, &s, speed, 1.0, steps, 77);
        print!(
            "{:<12} {:>5} {:>9.3}",
            algo.name(),
            s.len(),
            p.epsilon() * s.len() as f64
        );
        for v in &curve {
            print!(" {:>8.3}", v);
        }
        println!();
    }
    println!();
    println!("Values above the budget column mean the stale schedule now violates ε.");
    cli.write_manifest("ext_mobility");
}
