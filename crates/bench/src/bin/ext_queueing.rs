//! Extension E9: stability regions under online packet arrivals.
//!
//! Bernoulli arrivals per link per slot; the scheduler serves the
//! backlog every slot; the Rayleigh channel decides delivery. Sweeping
//! the offered load locates each algorithm's saturation point — the
//! queueing-theoretic meaning of "throughput".

use fading_core::algo::{Dls, GreedyRate, Ldp, Rle};
use fading_core::{Problem, Scheduler};
use fading_net::{TopologyGenerator, UniformGenerator};
use fading_sim::{simulate_queueing_with_policy, QueueConfig, ServicePolicy};

fn main() {
    let cli = fading_bench::Cli::parse();
    let quick = cli.quick;
    let slots: u64 = if quick { 300 } else { 1500 };
    let n = 150;
    let loads = [0.01, 0.03, 0.05, 0.10, 0.20];
    let algos: Vec<Box<dyn Scheduler>> = vec![
        Box::new(Ldp::new()),
        Box::new(Rle::new()),
        Box::new(Dls::new()),
        Box::new(GreedyRate),
    ];
    println!("# Extension E9 — queueing: mean backlog (packets) vs offered load");
    println!("# N = {n} links, {slots} slots; offered load = N · arrival_prob packets/slot");
    println!();
    print!("{:<12}", "algorithm");
    for l in loads {
        print!(" {:>12}", format!("p={l}"));
    }
    println!();
    let p = Problem::paper(UniformGenerator::paper(n).generate(17), 3.0);
    for algo in &algos {
        print!("{:<12}", algo.name());
        for &load in &loads {
            let r = simulate_queueing_with_policy(
                &p,
                algo.as_ref(),
                &QueueConfig {
                    arrival_prob: load,
                    slots,
                    seed: 5,
                },
                ServicePolicy::PlainRates,
            );
            print!(" {:>12.1}", r.mean_backlog);
        }
        println!();
    }
    // Backpressure variant of the strongest scheduler.
    print!("{:<12}", "Greedy+MaxW");
    for &load in &loads {
        let r = simulate_queueing_with_policy(
            &p,
            &GreedyRate,
            &QueueConfig {
                arrival_prob: load,
                slots,
                seed: 5,
            },
            ServicePolicy::MaxWeight,
        );
        print!(" {:>12.1}", r.mean_backlog);
    }
    println!();
    println!();
    println!("A backlog that grows with the horizon marks an unstable load; the");
    println!("feasibility-aware greedy sustains several times the load of the");
    println!("worst-case-guaranteed algorithms.");
    cli.write_manifest("ext_queueing");
}
