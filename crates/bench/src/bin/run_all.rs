//! Convenience driver: regenerates every figure, ablation, and
//! extension into `results/` in one command.
//!
//! `cargo run --release -p fading-bench --bin run_all [-- --quick]`

use std::process::Command;

const BINS: &[&str] = &[
    "fig5a",
    "fig5b",
    "fig6a",
    "fig6b",
    "ablation_classes",
    "ablation_c2",
    "ablation_ratio",
    "multislot_compare",
    "ext_nakagami",
    "ext_shadowing",
    "ext_mobility",
    "ext_noise",
    "ext_sinr_hist",
    "ext_capacity",
    "ext_dls_overhead",
    "ext_queueing",
    "ext_power",
    "ext_graph_model",
    "ext_bursts",
];

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let exe_dir = std::env::current_exe()
        .expect("own path")
        .parent()
        .expect("bin dir")
        .to_path_buf();
    std::fs::create_dir_all("results").expect("results dir");
    let mut failures = Vec::new();
    for bin in BINS {
        let path = exe_dir.join(bin);
        let mut cmd = Command::new(&path);
        if quick {
            cmd.arg("--quick");
        }
        // One manifest per figure: config, wall time, metric snapshot,
        // and span timings, next to the figure's text output.
        cmd.args(["--metrics-out", &format!("results/{bin}_manifest.json")]);
        eprintln!("running {bin}{}…", if quick { " --quick" } else { "" });
        match cmd.output() {
            Ok(out) if out.status.success() => {
                let dest = format!("results/{bin}.txt");
                std::fs::write(&dest, &out.stdout).expect("write result");
                eprintln!("  → {dest}");
            }
            Ok(out) => {
                eprintln!("  FAILED (exit {:?})", out.status.code());
                failures.push(*bin);
            }
            Err(e) => {
                eprintln!("  cannot launch {}: {e}", path.display());
                failures.push(*bin);
            }
        }
    }
    if failures.is_empty() {
        println!("all {} experiments regenerated into results/", BINS.len());
    } else {
        println!("failed: {failures:?}");
        std::process::exit(1);
    }
}
