//! Ablation A3: empirical approximation ratios on small instances.
//!
//! Compares LDP, RLE, DLS and GreedyRate against the exact
//! branch-and-bound optimum on dense small instances, reporting the
//! worst and mean utility ratio OPT/ALG. Theorems 4.2/4.4 bound these
//! by O(g(L)) and a constant respectively; empirically the ratios are
//! far smaller.

use fading_core::algo::{exact::branch_and_bound, Anneal, Dls, GreedyRate, Ldp, Rle};
use fading_core::{Problem, Scheduler};
use fading_net::{RateModel, TopologyGenerator, UniformGenerator};

fn main() {
    let cli = fading_bench::Cli::parse();
    let quick = cli.quick;
    let instances = if quick { 5 } else { 30 };
    let n = 16;
    let algos: Vec<Box<dyn Scheduler>> = vec![
        Box::new(Ldp::new()),
        Box::new(Rle::new()),
        Box::new(Dls::new()),
        Box::new(GreedyRate),
        Box::new(Anneal::new(0)),
    ];
    println!("# Ablation A3 — empirical approximation ratio (N = {n}, dense 120×120 field)");
    println!();
    println!(
        "{:<14} {:>10} {:>10} {:>10}",
        "algorithm", "mean", "worst", "best"
    );
    for algo in &algos {
        let mut ratios = Vec::new();
        for seed in 0..instances {
            let gen = UniformGenerator {
                side: 120.0,
                n,
                len_lo: 5.0,
                len_hi: 20.0,
                rates: RateModel::Fixed(1.0),
            };
            let p = Problem::paper(gen.generate(seed), 3.0);
            let opt = branch_and_bound(&p).utility(&p);
            let got = algo.schedule(&p).utility(&p).max(f64::MIN_POSITIVE);
            ratios.push(opt / got);
        }
        let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
        let worst = ratios.iter().copied().fold(0.0, f64::max);
        let best = ratios.iter().copied().fold(f64::INFINITY, f64::min);
        println!(
            "{:<14} {:>10.3} {:>10.3} {:>10.3}",
            algo.name(),
            mean,
            worst,
            best
        );
    }
    cli.write_manifest("ablation_ratio");
}
