//! Extension E5: realized-SINR distributions.
//!
//! Prints an ASCII histogram of the realized SINR (dB) for a
//! fading-resistant schedule (RLE) and a fading-susceptible one
//! (ApproxDiversity) on the same instance. The baseline's mass hugs the
//! 0 dB decoding threshold; RLE's sits far above it.

use fading_core::algo::{ApproxDiversity, Rle};
use fading_core::{Problem, Scheduler};
use fading_net::{TopologyGenerator, UniformGenerator};
use fading_sim::robustness::sinr_histogram;

fn main() {
    let cli = fading_bench::Cli::parse();
    let quick = cli.quick;
    let trials: u64 = if quick { 100 } else { 1000 };
    let p = Problem::paper(UniformGenerator::paper(300).generate(12), 3.0);
    println!("# Extension E5 — realized SINR distribution (dB); threshold γ_th = 0 dB");
    for algo in [&Rle::new() as &dyn Scheduler, &ApproxDiversity::new()] {
        let s = algo.schedule(&p);
        let hist = sinr_histogram(&p, &s, trials, 55, 24, -12.0, 60.0);
        println!();
        println!(
            "{} — {} links, {} samples (underflow {}, overflow {}):",
            algo.name(),
            s.len(),
            hist.total(),
            hist.underflow(),
            hist.overflow()
        );
        let max_count = (0..hist.num_bins())
            .map(|i| hist.bin_count(i))
            .max()
            .unwrap_or(1);
        for i in 0..hist.num_bins() {
            let (lo, hi) = hist.bin_edges(i);
            let count = hist.bin_count(i);
            let width = (count as f64 / max_count as f64 * 50.0).round() as usize;
            println!(
                "{:>6.1}..{:>6.1} dB {:>8} {}{}",
                lo,
                hi,
                count,
                if lo < 0.0 && count > 0 { "!" } else { " " },
                "#".repeat(width)
            );
        }
    }
    println!();
    println!("Bars marked '!' are below the decoding threshold — lost transmissions.");
    cli.write_manifest("ext_sinr_hist");
}
