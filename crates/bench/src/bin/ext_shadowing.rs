//! Extension E2: log-normal shadowing on top of Rayleigh fast fading.
//!
//! Quasi-static shadowing (σ ∈ {0, 2, 4, 8} dB) is invisible to the
//! paper's model; this experiment measures how quickly the 1 − ε
//! guarantee of LDP/RLE erodes as σ grows.

use fading_core::algo::{Ldp, Rle};
use fading_core::{Problem, Scheduler};
use fading_net::{TopologyGenerator, UniformGenerator};
use fading_sim::robustness::simulate_many_shadowed;

fn main() {
    let cli = fading_bench::Cli::parse();
    let quick = cli.quick;
    let (instances, trials): (u64, u64) = if quick { (2, 300) } else { (5, 2000) };
    let sigmas = [0.0, 2.0, 4.0, 8.0];
    let algos: Vec<Box<dyn Scheduler>> = vec![Box::new(Ldp::new()), Box::new(Rle::new())];
    println!("# Extension E2 — failures/slot under log-normal shadowing (σ in dB)");
    println!();
    print!("{:<12} {:>7}", "algorithm", "|S|");
    for s in sigmas {
        print!(" {:>9}", format!("σ={s}"));
    }
    println!();
    for algo in &algos {
        let mut scheduled = 0.0;
        let mut failures = vec![0.0f64; sigmas.len()];
        for seed in 0..instances {
            let p = Problem::paper(UniformGenerator::paper(300).generate(seed), 3.0);
            let s = algo.schedule(&p);
            scheduled += s.len() as f64;
            for (k, &sigma) in sigmas.iter().enumerate() {
                failures[k] += simulate_many_shadowed(&p, &s, sigma, trials, seed)
                    .failed
                    .mean;
            }
        }
        print!("{:<12} {:>7.1}", algo.name(), scheduled / instances as f64);
        for f in &failures {
            print!(" {:>9.3}", f / instances as f64);
        }
        println!();
    }
    cli.write_manifest("ext_shadowing");
}
