//! Fig. 6(a): throughput vs number of links (LDP vs RLE, plus the DLS
//! reconstruction the paper's text references).
//!
//! Expected shape: RLE > LDP at every N; throughput grows with N.

use fading_bench::Cli;
use fading_core::algo::{Dls, Ldp, Rle};
use fading_core::Scheduler;
use fading_sim::sweep_n;

fn main() {
    let cli = Cli::parse();
    let config = cli.config();
    let schedulers: [&dyn Scheduler; 3] = [&Ldp::new(), &Rle::new(), &Dls::new()];
    let table = sweep_n(&config, &schedulers);
    cli.emit(
        "fig6a",
        "Fig. 6(a) — throughput vs number of links (α = 3)",
        &table,
    );
}
