//! Fig. 6(a): throughput vs number of links (LDP vs RLE, plus the DLS
//! reconstruction the paper's text references).
//!
//! Expected shape: RLE > LDP at every N; throughput grows with N.

use fading_bench::Cli;
use fading_core::{AlgoId, Scheduler};
use fading_sim::sweep_n;

fn main() {
    let cli = Cli::parse();
    let config = cli.config();
    let schedulers = cli.schedulers(&[AlgoId::Ldp, AlgoId::Rle, AlgoId::Dls]);
    let refs: Vec<&dyn Scheduler> = schedulers.iter().map(Box::as_ref).collect();
    let table = sweep_n(&config, &refs);
    cli.emit(
        "fig6a",
        "Fig. 6(a) — throughput vs number of links (α = 3)",
        &table,
    );
}
