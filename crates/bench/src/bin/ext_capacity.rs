//! Extension E7: fixed-rate vs Shannon (rate-adaptive) throughput.
//!
//! The paper's objective counts a fixed rate λ per successful link.
//! With rate adaptation, a link instead delivers log₂(1+SINR) per
//! realization; Theorem 3.1's generalized CCDF makes the *ergodic*
//! Shannon throughput of any schedule computable in closed form
//! (quadrature). The comparison flips part of the story: the
//! conservative schedules win per link, the aggressive baselines win in
//! aggregate Shannon rate because many medium-SINR links beat few
//! high-SINR ones.

use fading_channel::ergodic_capacity;
use fading_core::algo::{ApproxDiversity, ApproxLogN, GreedyRate, Ldp, Rle};
use fading_core::{Problem, Scheduler};
use fading_net::{TopologyGenerator, UniformGenerator};
use fading_sim::simulate_many;

fn main() {
    let cli = fading_bench::Cli::parse();
    let quick = cli.quick;
    let (instances, trials): (u64, u64) = if quick { (2, 200) } else { (5, 1500) };
    let algos: Vec<Box<dyn Scheduler>> = vec![
        Box::new(Ldp::new()),
        Box::new(Rle::new()),
        Box::new(GreedyRate),
        Box::new(ApproxLogN),
        Box::new(ApproxDiversity::new()),
    ];
    println!("# Extension E7 — fixed-rate vs ergodic Shannon throughput (paper workload, N=300)");
    println!();
    println!(
        "{:<16} {:>6} {:>14} {:>16} {:>14}",
        "algorithm", "|S|", "fixed tput", "Shannon (bit/sHz)", "Shannon/link"
    );
    for algo in &algos {
        let mut scheduled = 0.0;
        let mut fixed = 0.0;
        let mut shannon = 0.0;
        for seed in 0..instances {
            let p = Problem::paper(UniformGenerator::paper(300).generate(seed), 3.0);
            let s = algo.schedule(&p);
            scheduled += s.len() as f64;
            fixed += simulate_many(&p, &s, trials, seed).throughput.mean;
            // Analytic ergodic Shannon throughput of the schedule.
            for j in s.iter() {
                let d_jj = p.links().length(j);
                let ds: Vec<f64> = s
                    .iter()
                    .filter(|&i| i != j)
                    .map(|i| p.links().sender_receiver_distance(i, j))
                    .collect();
                if ds.is_empty() {
                    continue; // infinite capacity; exclude from totals
                }
                shannon += ergodic_capacity(p.params(), d_jj, &ds);
            }
        }
        let k = instances as f64;
        println!(
            "{:<16} {:>6.1} {:>14.2} {:>16.2} {:>14.2}",
            algo.name(),
            scheduled / k,
            fixed / k,
            shannon / k,
            shannon / scheduled.max(1.0)
        );
    }
    println!();
    println!("Fixed-rate: reliability rules, the fading-aware algorithms deliver what they");
    println!("schedule. Shannon: aggregate favors dense schedules, but the per-link rate");
    println!("column shows what each selected link actually gets.");
    cli.write_manifest("ext_capacity");
}
