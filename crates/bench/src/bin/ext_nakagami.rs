//! Extension E1: sensitivity of the Rayleigh-designed guarantee to the
//! true fading law.
//!
//! LDP/RLE schedules are computed assuming Rayleigh fading (m = 1);
//! this experiment evaluates them under Nakagami-m channels for
//! m ∈ {0.5, 0.75, 1, 2, 4}: milder fading (m > 1) keeps the ε target,
//! more severe fading (m < 1) breaks it.

use fading_core::algo::{ApproxLogN, Ldp, Rle};
use fading_core::{Problem, Scheduler};
use fading_net::{TopologyGenerator, UniformGenerator};
use fading_sim::robustness::simulate_many_nakagami;

fn main() {
    let cli = fading_bench::Cli::parse();
    let quick = cli.quick;
    let (instances, trials): (u64, u64) = if quick { (2, 300) } else { (5, 2000) };
    let ms = [0.5, 0.75, 1.0, 2.0, 4.0];
    let algos: Vec<Box<dyn Scheduler>> = vec![
        Box::new(Ldp::new()),
        Box::new(Rle::new()),
        Box::new(ApproxLogN),
    ];
    println!(
        "# Extension E1 — failures/slot under Nakagami-m fading (schedules designed for m = 1)"
    );
    println!();
    print!("{:<12} {:>7}", "algorithm", "|S|");
    for m in ms {
        print!(" {:>9}", format!("m={m}"));
    }
    println!();
    for algo in &algos {
        let mut scheduled = 0.0;
        let mut failures = vec![0.0f64; ms.len()];
        for seed in 0..instances {
            let p = Problem::paper(UniformGenerator::paper(300).generate(seed), 3.0);
            let s = algo.schedule(&p);
            scheduled += s.len() as f64;
            for (k, &m) in ms.iter().enumerate() {
                failures[k] += simulate_many_nakagami(&p, &s, m, trials, seed).failed.mean;
            }
        }
        print!("{:<12} {:>7.1}", algo.name(), scheduled / instances as f64);
        for f in &failures {
            print!(" {:>9.3}", f / instances as f64);
        }
        println!();
    }
    println!();
    println!("ε·|S| is the per-slot budget the m = 1 design promises; watch it hold for");
    println!("m ≥ 1 and break for m < 1 (heavier-than-Rayleigh fading).");
    cli.write_manifest("ext_nakagami");
}
