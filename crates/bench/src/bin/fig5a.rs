//! Fig. 5(a): number of failed transmissions vs number of links.
//!
//! Four algorithms (LDP, RLE, ApproxLogN, ApproxDiversity) on the
//! paper workload, α = 3. Expected shape: LDP/RLE ≈ 0 failures; the
//! deterministic baselines fail increasingly with N.

use fading_bench::Cli;
use fading_core::algo::{ApproxDiversity, ApproxLogN, Ldp, Rle};
use fading_core::Scheduler;
use fading_sim::sweep_n;

fn main() {
    let cli = Cli::parse();
    let config = cli.config();
    let schedulers: [&dyn Scheduler; 4] = [
        &Ldp::new(),
        &Rle::new(),
        &ApproxLogN,
        &ApproxDiversity::new(),
    ];
    let table = sweep_n(&config, &schedulers);
    cli.emit(
        "fig5a",
        "Fig. 5(a) — failed transmissions vs number of links (α = 3)",
        &table,
    );
}
