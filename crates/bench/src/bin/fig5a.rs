//! Fig. 5(a): number of failed transmissions vs number of links.
//!
//! Four algorithms (LDP, RLE, ApproxLogN, ApproxDiversity) on the
//! paper workload, α = 3. Expected shape: LDP/RLE ≈ 0 failures; the
//! deterministic baselines fail increasingly with N.

use fading_bench::Cli;
use fading_core::{AlgoId, Scheduler};
use fading_sim::sweep_n;

fn main() {
    let cli = Cli::parse();
    let config = cli.config();
    let schedulers = cli.schedulers(&[
        AlgoId::Ldp,
        AlgoId::Rle,
        AlgoId::ApproxLogN,
        AlgoId::ApproxDiversity,
    ]);
    let refs: Vec<&dyn Scheduler> = schedulers.iter().map(Box::as_ref).collect();
    let table = sweep_n(&config, &refs);
    cli.emit(
        "fig5a",
        "Fig. 5(a) — failed transmissions vs number of links (α = 3)",
        &table,
    );
}
