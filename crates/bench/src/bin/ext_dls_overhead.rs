//! Extension E8: communication cost of the DLS protocol.
//!
//! Runs DLS as an explicit message-passing protocol (fading-proto) and
//! reports convergence rounds and traffic by message kind across N —
//! the numbers a protocol evaluation would quote. The executed protocol
//! is checked (in fading-proto's tests) to produce exactly the
//! centralized DLS schedule.

use fading_core::Problem;
use fading_net::{TopologyGenerator, UniformGenerator};
use fading_proto::DlsProtocol;

fn main() {
    let cli = fading_bench::Cli::parse();
    let quick = cli.quick;
    let (ns, instances): (&[usize], u64) = if quick {
        (&[100, 300], 2)
    } else {
        (&[100, 200, 300, 400, 500], 5)
    };
    println!("# Extension E8 — DLS protocol overhead (means over instances)");
    println!();
    println!(
        "{:>6} {:>7} {:>8} {:>8} {:>9} {:>7} {:>6} {:>12}",
        "N", "|S|", "rounds", "hello", "status", "clear", "nack", "msgs/node"
    );
    for &n in ns {
        let mut sched = 0.0;
        let mut rounds = 0.0;
        let (mut hello, mut status, mut clear, mut nack) = (0.0, 0.0, 0.0, 0.0);
        for seed in 0..instances {
            let p = Problem::paper(UniformGenerator::paper(n).generate(seed), 3.0);
            let out = DlsProtocol::new().run(&p);
            sched += out.schedule.len() as f64;
            rounds += out.rounds as f64;
            hello += out.traffic.hello as f64;
            status += out.traffic.status as f64;
            clear += out.traffic.clear as f64;
            nack += out.traffic.nack as f64;
        }
        let k = instances as f64;
        let total = (hello + status + clear + nack) / k;
        println!(
            "{:>6} {:>7.1} {:>8.1} {:>8.1} {:>9.1} {:>7.1} {:>6.1} {:>12.2}",
            n,
            sched / k,
            rounds / k,
            hello / k,
            status / k,
            clear / k,
            nack / k,
            total / n as f64
        );
    }
    println!();
    println!("Traffic is dominated by per-round Status beacons; rounds stay flat in N");
    println!("because non-contending links activate in parallel.");
    cli.write_manifest("ext_dls_overhead");
}
