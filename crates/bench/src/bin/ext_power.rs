//! Extension E10: oblivious power assignments.
//!
//! The paper fixes uniform power. Because Theorem 3.1 generalizes to
//! per-link powers, the same fading-aware machinery can schedule under
//! the classic oblivious assignments P ∝ d^{τα}. This experiment
//! measures how many links a feasibility-aware greedy schedules (all
//! provably 1−ε reliable) under τ ∈ {0, 1/2, 1}, across length spreads.

use fading_channel::ChannelParams;
use fading_core::algo::{GreedyRate, PowerAssignment};
use fading_core::{Problem, Scheduler};
use fading_net::{RateModel, TopologyGenerator, UniformGenerator};
use fading_sim::simulate_many;

fn main() {
    let cli = fading_bench::Cli::parse();
    let quick = cli.quick;
    let (instances, trials): (u64, u64) = if quick { (2, 200) } else { (8, 1000) };
    let assignments = [
        PowerAssignment::Uniform,
        PowerAssignment::SquareRoot,
        PowerAssignment::Linear,
    ];
    println!(
        "# Extension E10 — links scheduled (all ≥ 1−ε reliable) under oblivious power control"
    );
    println!("# GreedyRate on 500×500 with increasing link-length spread; total power normalized.");
    println!();
    println!(
        "{:>14} {:>12} {:>12} {:>12}",
        "lengths", "uniform", "square-root", "linear"
    );
    for &(lo, hi) in &[(5.0, 20.0), (5.0, 40.0), (5.0, 80.0)] {
        print!("{:>14}", format!("U[{lo},{hi}]"));
        for a in assignments {
            let mut scheduled = 0.0;
            let mut failed = 0.0;
            for seed in 0..instances {
                let gen = UniformGenerator {
                    side: 500.0,
                    n: 300,
                    len_lo: lo,
                    len_hi: hi,
                    rates: RateModel::Fixed(1.0),
                };
                let links = gen.generate(seed);
                let scales = a.scales(&links, 3.0);
                let p = Problem::builder(links, ChannelParams::paper_defaults())
                    .power_scales(scales)
                    .build();
                let s = GreedyRate.schedule(&p);
                scheduled += s.len() as f64;
                failed += simulate_many(&p, &s, trials, seed).failed.mean;
            }
            let k = instances as f64;
            print!(
                " {:>12}",
                format!("{:.1}({:.2})", scheduled / k, failed / k)
            );
        }
        println!();
    }
    println!();
    println!("Cells: links/slot (empirical failures/slot). Wider length spreads favor");
    println!("length-aware assignments: boosting long links buys more concurrent links");
    println!("than it costs in interference.");
    cli.write_manifest("ext_power");
}
