//! Fig. 5(b): number of failed transmissions vs path-loss exponent α.
//!
//! N fixed at the default; expected shape: baselines' failures decrease
//! as α grows (remote interference attenuates faster, Eq. (17)), while
//! LDP/RLE stay ≈ 0 throughout.

use fading_bench::Cli;
use fading_core::{AlgoId, Scheduler};
use fading_sim::sweep_alpha;

fn main() {
    let cli = Cli::parse();
    let config = cli.config();
    let schedulers = cli.schedulers(&[
        AlgoId::Ldp,
        AlgoId::Rle,
        AlgoId::ApproxLogN,
        AlgoId::ApproxDiversity,
    ]);
    let refs: Vec<&dyn Scheduler> = schedulers.iter().map(Box::as_ref).collect();
    let table = sweep_alpha(&config, &refs);
    cli.emit(
        "fig5b",
        "Fig. 5(b) — failed transmissions vs path-loss exponent (N = default)",
        &table,
    );
}
