//! Fig. 5(b): number of failed transmissions vs path-loss exponent α.
//!
//! N fixed at the default; expected shape: baselines' failures decrease
//! as α grows (remote interference attenuates faster, Eq. (17)), while
//! LDP/RLE stay ≈ 0 throughout.

use fading_bench::Cli;
use fading_core::algo::{ApproxDiversity, ApproxLogN, Ldp, Rle};
use fading_core::Scheduler;
use fading_sim::sweep_alpha;

fn main() {
    let cli = Cli::parse();
    let config = cli.config();
    let schedulers: [&dyn Scheduler; 4] = [
        &Ldp::new(),
        &Rle::new(),
        &ApproxLogN,
        &ApproxDiversity::new(),
    ];
    let table = sweep_alpha(&config, &schedulers);
    cli.emit(
        "fig5b",
        "Fig. 5(b) — failed transmissions vs path-loss exponent (N = default)",
        &table,
    );
}
