//! Extension E11: graph-based interference models vs the SINR reality.
//!
//! The paper's introduction argues graph models fail because they
//! ignore *accumulated* interference. This experiment schedules with
//! two pairwise (graph) rules and with the fading-aware algorithms,
//! then simulates all of them under Rayleigh fading: the graph
//! schedules look bigger on paper and shed the difference to failures.

use fading_core::algo::{GraphModel, Ldp, Rle};
use fading_core::{FeasibilityReport, Problem, Scheduler};
use fading_net::{TopologyGenerator, UniformGenerator};
use fading_sim::simulate_many;

fn main() {
    let cli = fading_bench::Cli::parse();
    let quick = cli.quick;
    let (instances, trials): (u64, u64) = if quick { (2, 300) } else { (8, 2000) };
    let algos: Vec<Box<dyn Scheduler>> = vec![
        Box::new(GraphModel::pairwise_budget()),
        Box::new(GraphModel::protocol(2.0)),
        Box::new(GraphModel::protocol(4.0)),
        Box::new(Rle::new()),
        Box::new(Ldp::new()),
    ];
    println!("# Extension E11 — graph (pairwise) models vs accumulated-interference reality");
    println!("# paper workload, N = 300, α = 3; 'unreliable' = links missing the 1−ε target");
    println!();
    println!(
        "{:<24} {:>7} {:>12} {:>14} {:>14}",
        "algorithm", "|S|", "unreliable", "E[fail]/slot", "delivered"
    );
    for algo in &algos {
        let mut scheduled = 0.0;
        let mut unreliable = 0.0;
        let mut failed = 0.0;
        let mut delivered = 0.0;
        for seed in 0..instances {
            let p = Problem::paper(UniformGenerator::paper(300).generate(seed), 3.0);
            let s = algo.schedule(&p);
            scheduled += s.len() as f64;
            unreliable += FeasibilityReport::evaluate(&p, &s).violations().len() as f64;
            let stats = simulate_many(&p, &s, trials, seed);
            failed += stats.failed.mean;
            delivered += stats.throughput.mean;
        }
        let k = instances as f64;
        println!(
            "{:<24} {:>7.1} {:>12.1} {:>14.3} {:>14.2}",
            algo.name(),
            scheduled / k,
            unreliable / k,
            failed / k,
            delivered / k
        );
    }
    println!();
    println!("Pairwise compatibility admits large schedules whose *sums* of individually");
    println!("negligible factors cross γ_ε — the accumulation effect the paper's intro");
    println!("cites as the reason graph models are unsound under SINR.");
    cli.write_manifest("ext_graph_model");
}
