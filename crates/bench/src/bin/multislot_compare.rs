//! Extension experiment: multi-slot scheduling (the paper's future
//! work) — how many slots each one-shot algorithm needs to drain every
//! link, on the paper workload.

use fading_core::algo::{Dls, GreedyRate, Ldp, Rle};
use fading_core::{
    multislot::{conflict_clique_lower_bound, schedule_all},
    Problem, Scheduler,
};
use fading_net::{TopologyGenerator, UniformGenerator};

fn main() {
    let cli = fading_bench::Cli::parse();
    let quick = cli.quick;
    let (ns, instances): (&[usize], u64) = if quick {
        (&[100], 2)
    } else {
        (&[100, 200, 300], 5)
    };
    let algos: Vec<Box<dyn Scheduler>> = vec![
        Box::new(Ldp::new()),
        Box::new(Rle::new()),
        Box::new(Dls::new()),
        Box::new(GreedyRate),
    ];
    println!("# Extension — slots needed to schedule every link (mean over instances)");
    println!("# 'clique LB' = greedy pairwise-conflict clique: no plan can use fewer slots.");
    println!();
    println!(
        "{:<12} {:>6} {:>12} {:>11}",
        "algorithm", "N", "slots(mean)", "clique LB"
    );
    for &n in ns {
        let mut bound_total = 0usize;
        for seed in 0..instances {
            let p = Problem::paper(UniformGenerator::paper(n).generate(seed), 3.0);
            bound_total += conflict_clique_lower_bound(&p);
        }
        let bound_mean = bound_total as f64 / instances as f64;
        for algo in &algos {
            let mut total = 0usize;
            for seed in 0..instances {
                let p = Problem::paper(UniformGenerator::paper(n).generate(seed), 3.0);
                total += schedule_all(&p, algo.as_ref()).num_slots();
            }
            println!(
                "{:<12} {:>6} {:>12.1} {:>11.1}",
                algo.name(),
                n,
                total as f64 / instances as f64,
                bound_mean
            );
        }
    }
    cli.write_manifest("multislot_compare");
}
