//! Ablation A2: RLE's budget split c₂.
//!
//! c₂ splits the γ_ε budget between already-picked senders (line 5 of
//! Algorithm 2) and later-picked senders (through the deletion radius
//! c₁, Eq. (59)). The paper leaves c₂ open; this sweep shows the
//! throughput across the range.

use fading_bench::Cli;
use fading_core::algo::Rle;
use fading_core::Scheduler;
use fading_sim::sweep_n;

fn main() {
    let cli = Cli::parse();
    let config = cli.config();
    let variants: Vec<Rle> = [0.1, 0.3, 0.5, 0.7, 0.9]
        .iter()
        .map(|&c2| Rle::with_c2(c2))
        .collect();
    // All variants share the name "RLE"; disambiguate via x rows by
    // running one sweep per variant and renaming.
    let mut all_rows = Vec::new();
    for v in &variants {
        let schedulers: [&dyn Scheduler; 1] = [v];
        let mut table = sweep_n(&config, &schedulers);
        for row in &mut table.rows {
            row.algorithm = format!("RLE(c2={})", v.c2);
        }
        all_rows.extend(table.rows);
    }
    let table = fading_sim::ResultTable::new(all_rows);
    cli.emit(
        "ablation_c2",
        "Ablation A2 — RLE throughput vs budget split c₂",
        &table,
    );
}
