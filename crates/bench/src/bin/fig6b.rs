//! Fig. 6(b): throughput vs path-loss exponent α (LDP vs RLE, plus the
//! DLS reconstruction).
//!
//! Expected shape: throughput increases with α for both algorithms
//! (smaller grid squares for LDP, smaller deletion radius for RLE);
//! RLE > LDP throughout.

use fading_bench::Cli;
use fading_core::{AlgoId, Scheduler};
use fading_sim::sweep_alpha;

fn main() {
    let cli = Cli::parse();
    let config = cli.config();
    let schedulers = cli.schedulers(&[AlgoId::Ldp, AlgoId::Rle, AlgoId::Dls]);
    let refs: Vec<&dyn Scheduler> = schedulers.iter().map(Box::as_ref).collect();
    let table = sweep_alpha(&config, &refs);
    cli.emit(
        "fig6b",
        "Fig. 6(b) — throughput vs path-loss exponent (N = default)",
        &table,
    );
}
