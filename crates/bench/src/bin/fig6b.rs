//! Fig. 6(b): throughput vs path-loss exponent α (LDP vs RLE, plus the
//! DLS reconstruction).
//!
//! Expected shape: throughput increases with α for both algorithms
//! (smaller grid squares for LDP, smaller deletion radius for RLE);
//! RLE > LDP throughout.

use fading_bench::Cli;
use fading_core::algo::{Dls, Ldp, Rle};
use fading_core::Scheduler;
use fading_sim::sweep_alpha;

fn main() {
    let cli = Cli::parse();
    let config = cli.config();
    let schedulers: [&dyn Scheduler; 3] = [&Ldp::new(), &Rle::new(), &Dls::new()];
    let table = sweep_alpha(&config, &schedulers);
    cli.emit(
        "fig6b",
        "Fig. 6(b) — throughput vs path-loss exponent (N = default)",
        &table,
    );
}
