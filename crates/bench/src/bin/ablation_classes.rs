//! Ablation A1: LDP's nested classes vs the original two-sided classes.
//!
//! The paper claims (Section IV-A) that upper-bound-only classes
//! improve throughput because shorter links remain candidates in every
//! larger class. With the paper's unit rates the shortest class usually
//! wins the argmax and the variants coincide; the second pass gives
//! longer links proportionally higher rates, the regime where the
//! nested construction actually pays.

use fading_bench::Cli;
use fading_core::algo::Ldp;
use fading_core::{Problem, Scheduler};
use fading_net::{RateModel, TopologyGenerator, UniformGenerator};
use fading_sim::sweep_n;

fn main() {
    let cli = Cli::parse();
    let config = cli.config();
    let schedulers: [&dyn Scheduler; 2] = [&Ldp::new(), &Ldp::two_sided()];
    let table = sweep_n(&config, &schedulers);
    cli.emit(
        "ablation_classes",
        "Ablation A1 — LDP nested vs two-sided link classes, unit rates",
        &table,
    );

    // On the paper's 500×500 / U[5,20] workload the class-0 grid has
    // ~4× the squares of class 1 at comparable rates, so the lowest
    // class always wins the argmax and the two variants coincide. The
    // improvement needs (i) enough length diversity for several classes
    // to be competitive and (ii) value concentrated on longer links.
    println!();
    println!(
        "# Ablation A1b — wide-diversity workload (2000×2000, lengths U[5,80], rate = length·scale)"
    );
    println!();
    println!(
        "{:>6} {:>18} {:>18} {:>8}",
        "N", "nested", "two-sided", "gain"
    );
    let instances = if cli.quick { 3 } else { 10 };
    for &n in &[300usize, 600, 900] {
        let mut nested_total = 0.0;
        let mut two_sided_total = 0.0;
        for seed in 0..instances {
            let gen = UniformGenerator {
                side: 2000.0,
                n,
                len_lo: 5.0,
                len_hi: 80.0,
                rates: RateModel::LengthProportional { scale: 1.0 },
            };
            let p = Problem::paper(gen.generate(seed), config.default_alpha);
            nested_total += Ldp::new().schedule(&p).utility(&p);
            two_sided_total += Ldp::two_sided().schedule(&p).utility(&p);
        }
        let nested = nested_total / instances as f64;
        let two_sided = two_sided_total / instances as f64;
        println!(
            "{:>6} {:>18.2} {:>18.2} {:>7.1}%",
            n,
            nested,
            two_sided,
            100.0 * (nested - two_sided) / two_sided
        );
    }
}
