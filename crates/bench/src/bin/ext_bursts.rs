//! Extension E12: loss burstiness under temporally correlated fading.
//!
//! The paper's slots are i.i.d. fading draws; real channels decorrelate
//! over a coherence time, so losses cluster. Gauss–Markov correlation
//! preserves the per-slot marginal (Theorem 3.1 still holds slot-wise)
//! but stretches failure runs — the quantity ARQ and jitter budgets
//! actually care about.

use fading_core::algo::{ApproxDiversity, Rle};
use fading_core::{Problem, Scheduler};
use fading_net::{TopologyGenerator, UniformGenerator};
use fading_sim::robustness::burstiness;

fn main() {
    let cli = fading_bench::Cli::parse();
    let quick = cli.quick;
    let slots: u32 = if quick { 1000 } else { 10_000 };
    let rhos = [0.0, 0.5, 0.9, 0.99];
    let p = Problem::paper(UniformGenerator::paper(300).generate(33), 3.0);
    println!(
        "# Extension E12 — failure burstiness vs fading correlation ρ ({slots} consecutive slots)"
    );
    println!();
    println!(
        "{:<18} {:>6} {:>10} {:>12} {:>12} {:>10}",
        "algorithm", "ρ", "rate", "mean burst", "max burst", ""
    );
    for algo in [&Rle::new() as &dyn Scheduler, &ApproxDiversity::new()] {
        let s = algo.schedule(&p);
        for &rho in &rhos {
            let b = burstiness(&p, &s, rho, slots, 9);
            println!(
                "{:<18} {:>6} {:>10.4} {:>12.2} {:>12} {:>10}",
                algo.name(),
                rho,
                b.failure_rate,
                b.mean_burst_len,
                b.max_burst_len,
                ""
            );
        }
    }
    println!();
    println!("The failure *rate* is flat in ρ (the marginal is unchanged), but bursts");
    println!("lengthen by an order of magnitude at ρ = 0.99 — i.i.d.-slot analyses");
    println!("understate worst-case outage durations.");
    cli.write_manifest("ext_bursts");
}
