//! Extension E4: ambient noise sensitivity.
//!
//! The paper drops N₀ from the SINR (Eq. (8)) and Corollary 3.1 relies
//! on that. This experiment re-enables the noise floor in the simulator
//! only — schedules are still computed with the noiseless rule — and
//! measures when the approximation stops being safe. Noise is expressed
//! as a fraction of the weakest scheduled link's mean received power.

use fading_channel::ChannelParams;
use fading_core::algo::{Ldp, Rle};
use fading_core::{Problem, Scheduler};
use fading_net::{TopologyGenerator, UniformGenerator};
use fading_sim::simulate_many;

fn main() {
    let cli = fading_bench::Cli::parse();
    let quick = cli.quick;
    let trials: u64 = if quick { 300 } else { 3000 };
    let fractions = [0.0, 0.01, 0.05, 0.1, 0.2];
    let links = UniformGenerator::paper(300).generate(4);
    // Weakest possible desired signal: longest link (20 units).
    let weakest = ChannelParams::paper_defaults().mean_gain(20.0);
    let algos: Vec<Box<dyn Scheduler>> = vec![Box::new(Ldp::new()), Box::new(Rle::new())];
    println!("# Extension E4 — failures/slot with a noise floor the design ignored");
    println!("# (noise as a fraction of the weakest link's mean signal power)");
    println!();
    print!("{:<12} {:>5}", "algorithm", "|S|");
    for f in fractions {
        print!(" {:>10}", format!("N0={f}·S"));
    }
    println!();
    for algo in &algos {
        // Schedule once with the noiseless design rule.
        let design = Problem::paper(links.clone(), 3.0);
        let s = algo.schedule(&design);
        print!("{:<12} {:>5}", algo.name(), s.len());
        for &f in &fractions {
            let params = ChannelParams::new(3.0, 1.0, 1.0, f * weakest);
            let noisy = Problem::new(links.clone(), params, 0.01);
            let stats = simulate_many(&noisy, &s, trials, 31);
            print!(" {:>10.3}", stats.failed.mean);
        }
        println!();
    }
    cli.write_manifest("ext_noise");
}
