//! A counting global allocator for the steady-state allocation probes.
//!
//! The bench-report runner measures allocations per warm
//! `schedule_in` call (the zero-alloc contract from `docs/engine.md`)
//! by reading a process-wide allocation counter. Counting has to
//! happen in the `#[global_allocator]`, which only the *binary* crate
//! can install — so the `fading` CLI declares
//! `#[global_allocator] static A: fading_bench::alloc::CountingAlloc`
//! and the probe in [`crate::report`] checks at runtime whether the
//! counter is actually live ([`counter_active`]) before trusting it.
//! The overhead is one relaxed `fetch_add` per alloc/realloc, shared
//! equally by every timing bench in the same run.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// System allocator wrapper that counts allocations and reallocations.
pub struct CountingAlloc;

// SAFETY: defers entirely to `System`; the counter is a relaxed atomic.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A realloc that moves (or grows in place) still touches the
        // heap; count it like an allocation.
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// Total allocations counted so far. Meaningless (stuck at zero)
/// unless the running binary installed [`CountingAlloc`].
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Whether the counter is live in this process: performs a real heap
/// allocation and checks that the count moved.
pub fn counter_active() -> bool {
    let before = allocations();
    let probe: Vec<u8> = Vec::with_capacity(64);
    std::hint::black_box(&probe);
    drop(probe);
    allocations() > before
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_inert_without_installation() {
        // The fading-bench test binary does not install the allocator,
        // so the probe must report inactive rather than garbage.
        assert!(!counter_active());
        assert_eq!(allocations(), 0);
    }
}
