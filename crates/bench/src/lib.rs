//! Shared plumbing for the figure-regeneration binaries.
//!
//! Every binary accepts `--quick` (small grids, for smoke-testing the
//! pipeline), `--csv`/`--json` (also emit machine-readable output next
//! to the text table, under `results/`), `--progress` (live sweep
//! progress on stderr), `--quiet` (suppress progress and write
//! chatter), `--metrics-out <path>` (write a
//! [`fading_obs::RunManifest`] with metrics and span timings after the
//! run), and `--trace-out <path>` (write the schedulers' decision
//! trace as JSONL; the file is hashed into the manifest's artifacts).

pub mod alloc;
pub mod gates;
pub mod report;
pub mod schema;

use fading_core::{AlgoId, BackendChoice, Scheduler};
use fading_sim::{ExperimentConfig, ResultTable};
use std::path::PathBuf;
use std::time::Instant;

/// Parsed command-line options shared by all figure binaries.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    /// Use the reduced grid for a fast smoke run.
    pub quick: bool,
    /// Also write `results/<name>.csv`.
    pub csv: bool,
    /// Also write `results/<name>.json`.
    pub json: bool,
    /// Show live progress on stderr.
    pub progress: bool,
    /// Suppress progress and non-essential chatter.
    pub quiet: bool,
    /// Write a run manifest (metrics + spans) to this path.
    pub metrics_out: Option<PathBuf>,
    /// Write the decision trace (JSONL) to this path.
    pub trace_out: Option<PathBuf>,
    /// Interference backend for every `Problem` the sweep builds.
    pub interference: BackendChoice,
    /// Algorithms to sweep (`--algos ldp,rle,…`); `None` keeps each
    /// figure's own default panel.
    pub algos: Option<Vec<AlgoId>>,
    /// When the run started (for the manifest's wall time).
    started: Instant,
}

impl Default for Cli {
    fn default() -> Self {
        Self {
            quick: false,
            csv: false,
            json: false,
            progress: false,
            quiet: false,
            metrics_out: None,
            trace_out: None,
            interference: BackendChoice::Dense,
            algos: None,
            started: Instant::now(),
        }
    }
}

impl Cli {
    /// Parses an argument list (excluding the program name). Unknown
    /// flags are an error, not a warning — a typo'd flag must not
    /// silently run the full paper grid.
    pub fn parse_from<I: IntoIterator<Item = String>>(argv: I) -> Result<Self, String> {
        let mut cli = Self::default();
        let mut it = argv.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--quick" => cli.quick = true,
                "--csv" => cli.csv = true,
                "--json" => cli.json = true,
                "--progress" => cli.progress = true,
                "--quiet" => cli.quiet = true,
                "--metrics-out" => {
                    let path = it.next().ok_or("--metrics-out is missing its path")?;
                    cli.metrics_out = Some(PathBuf::from(path));
                }
                "--trace-out" => {
                    let path = it.next().ok_or("--trace-out is missing its path")?;
                    cli.trace_out = Some(PathBuf::from(path));
                }
                "--interference" => {
                    let name = it.next().ok_or("--interference is missing its backend")?;
                    cli.interference = BackendChoice::parse(&name)?;
                }
                "--algos" => {
                    let csv = it.next().ok_or("--algos is missing its id list")?;
                    let ids = csv
                        .split(',')
                        .map(|name| name.trim().parse::<AlgoId>())
                        .collect::<Result<Vec<_>, _>>()?;
                    cli.algos = Some(ids);
                }
                other => return Err(format!("unknown flag {other}")),
            }
        }
        Ok(cli)
    }

    /// Parses `std::env::args`, exiting with a usage message on error,
    /// and arms the progress reporter.
    pub fn parse() -> Self {
        match Self::parse_from(std::env::args().skip(1)) {
            Ok(cli) => {
                fading_obs::set_progress(cli.progress && !cli.quiet);
                if cli.trace_out.is_some() {
                    fading_obs::set_tracing(true);
                    let _ = fading_obs::take_trace(); // start from an empty ring
                }
                cli
            }
            Err(e) => {
                eprintln!(
                    "error: {e}\nusage: [--quick] [--csv] [--json] [--progress] [--quiet] [--metrics-out <path>] [--trace-out <path>] [--interference dense|sparse|auto] [--algos <id,id,…>]"
                );
                std::process::exit(2);
            }
        }
    }

    /// The scheduler panel to sweep: `--algos` when given, otherwise
    /// the figure's `defaults`. Stochastic schedulers get seed 0, like
    /// the CLI's `--algo` path.
    pub fn schedulers(&self, defaults: &[AlgoId]) -> Vec<Box<dyn Scheduler>> {
        self.algos
            .as_deref()
            .unwrap_or(defaults)
            .iter()
            .map(|id| id.build(0))
            .collect()
    }

    /// The experiment configuration this invocation asked for.
    pub fn config(&self) -> ExperimentConfig {
        let mut config = if self.quick {
            ExperimentConfig::quick()
        } else {
            ExperimentConfig::paper()
        };
        config.interference = self.interference;
        config
    }

    /// Prints the table, writes the requested machine-readable copies
    /// under `results/`, and writes the run manifest if asked to.
    pub fn emit(&self, name: &str, title: &str, table: &ResultTable) {
        println!("# {title}");
        println!();
        print!("{}", table.render_text());
        let dir = PathBuf::from("results");
        if self.csv || self.json {
            if let Err(e) = std::fs::create_dir_all(&dir) {
                eprintln!("warning: cannot create {}: {e}", dir.display());
                return;
            }
        }
        if self.csv {
            let path = dir.join(format!("{name}.csv"));
            if let Err(e) = std::fs::write(&path, table.render_csv()) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else if !self.quiet {
                eprintln!("wrote {}", path.display());
            }
        }
        if self.json {
            let path = dir.join(format!("{name}.json"));
            if let Err(e) = std::fs::write(&path, table.to_json()) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else if !self.quiet {
                eprintln!("wrote {}", path.display());
            }
        }
        self.write_manifest(name);
    }

    /// Writes the run manifest (config, metrics, spans) if
    /// `--metrics-out` was given. Binaries with custom output (the
    /// extension experiments) call this directly instead of [`emit`].
    ///
    /// [`emit`]: Cli::emit
    pub fn write_manifest(&self, name: &str) {
        if let Some(trace_path) = &self.trace_out {
            fading_obs::set_tracing(false);
            let trace = fading_obs::take_trace();
            if let Err(e) = trace.write(trace_path) {
                eprintln!("warning: cannot write {}: {e}", trace_path.display());
            } else if !self.quiet {
                eprintln!(
                    "wrote {} trace events to {}",
                    trace.events.len(),
                    trace_path.display()
                );
            }
        }
        let Some(path) = &self.metrics_out else {
            return;
        };
        let mut builder = fading_obs::ManifestBuilder::new(name)
            .started_at(self.started)
            .seed(self.config().seed)
            .config_kv("quick", self.quick);
        if let Some(trace_path) = &self.trace_out {
            builder = builder.artifact("trace", trace_path);
        }
        let manifest = builder.finish();
        if let Err(e) = manifest.write(path) {
            eprintln!("warning: cannot write {}: {e}", path.display());
        } else if !self.quiet {
            eprintln!("wrote {}", path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_flag_selects_quick_config() {
        let cli = Cli {
            quick: true,
            ..Cli::default()
        };
        assert_eq!(cli.config(), ExperimentConfig::quick());
        assert_eq!(Cli::default().config(), ExperimentConfig::paper());
    }

    #[test]
    fn parse_from_accepts_all_flags() {
        let cli = Cli::parse_from(
            [
                "--quick",
                "--csv",
                "--json",
                "--progress",
                "--quiet",
                "--metrics-out",
                "m.json",
            ]
            .map(String::from),
        )
        .unwrap();
        assert!(cli.quick && cli.csv && cli.json && cli.progress && cli.quiet);
        assert_eq!(
            cli.metrics_out.as_deref(),
            Some(std::path::Path::new("m.json"))
        );
    }

    #[test]
    fn trace_out_flag_parses() {
        let cli = Cli::parse_from(["--trace-out".to_string(), "t.jsonl".to_string()]).unwrap();
        assert_eq!(
            cli.trace_out.as_deref(),
            Some(std::path::Path::new("t.jsonl"))
        );
        let err = Cli::parse_from(["--trace-out".to_string()]).unwrap_err();
        assert!(err.contains("missing its path"), "{err}");
    }

    #[test]
    fn parse_from_rejects_unknown_flags() {
        let err = Cli::parse_from(["--quik".to_string()]).unwrap_err();
        assert!(err.contains("--quik"), "{err}");
        let err = Cli::parse_from(["--metrics-out".to_string()]).unwrap_err();
        assert!(err.contains("missing its path"), "{err}");
    }

    #[test]
    fn algos_flag_overrides_the_default_panel() {
        let cli = Cli::parse_from(["--algos".to_string(), "rle, greedy".to_string()]).unwrap();
        assert_eq!(cli.algos, Some(vec![AlgoId::Rle, AlgoId::Greedy]));
        let names: Vec<&str> = cli
            .schedulers(&[AlgoId::Ldp])
            .iter()
            .map(|s| s.name())
            .collect();
        assert_eq!(names, ["RLE", "GreedyRate"]);
        // Without the flag, the figure's defaults stand.
        let names: Vec<String> = Cli::default()
            .schedulers(&[AlgoId::Ldp, AlgoId::Dls])
            .iter()
            .map(|s| s.name().to_string())
            .collect();
        assert_eq!(names, ["LDP", "DLS"]);
    }

    #[test]
    fn algos_flag_rejects_unknown_and_empty_ids() {
        let err = Cli::parse_from(["--algos".to_string(), "rle,nope".to_string()]).unwrap_err();
        assert!(err.contains("unknown algorithm"), "{err}");
        assert!(err.contains("valid ids"), "{err}");
        let err = Cli::parse_from(["--algos".to_string()]).unwrap_err();
        assert!(err.contains("missing its id list"), "{err}");
    }

    #[test]
    fn interference_flag_threads_into_the_config() {
        let cli = Cli::parse_from(["--interference".to_string(), "auto".to_string()]).unwrap();
        assert_eq!(cli.interference, BackendChoice::Auto);
        assert_eq!(cli.config().interference, BackendChoice::Auto);
        let err = Cli::parse_from(["--interference".to_string(), "csr".to_string()]).unwrap_err();
        assert!(err.contains("unknown interference backend"), "{err}");
        let err = Cli::parse_from(["--interference".to_string()]).unwrap_err();
        assert!(err.contains("missing its backend"), "{err}");
    }
}
