//! Shared plumbing for the figure-regeneration binaries.
//!
//! Every binary accepts `--quick` (small grids, for smoke-testing the
//! pipeline) and `--csv`/`--json` (also emit machine-readable output
//! next to the text table, under `results/`).

use fading_sim::{ExperimentConfig, ResultTable};
use std::path::PathBuf;

/// Parsed command-line options shared by all figure binaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cli {
    /// Use the reduced grid for a fast smoke run.
    pub quick: bool,
    /// Also write `results/<name>.csv`.
    pub csv: bool,
    /// Also write `results/<name>.json`.
    pub json: bool,
}

impl Cli {
    /// Parses `std::env::args`, ignoring unknown flags with a warning.
    pub fn parse() -> Self {
        let mut cli = Self {
            quick: false,
            csv: false,
            json: false,
        };
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--quick" => cli.quick = true,
                "--csv" => cli.csv = true,
                "--json" => cli.json = true,
                other => eprintln!("warning: ignoring unknown flag {other}"),
            }
        }
        cli
    }

    /// The experiment configuration this invocation asked for.
    pub fn config(&self) -> ExperimentConfig {
        if self.quick {
            ExperimentConfig::quick()
        } else {
            ExperimentConfig::paper()
        }
    }

    /// Prints the table and writes the requested machine-readable
    /// copies under `results/`.
    pub fn emit(&self, name: &str, title: &str, table: &ResultTable) {
        println!("# {title}");
        println!();
        print!("{}", table.render_text());
        let dir = PathBuf::from("results");
        if self.csv || self.json {
            if let Err(e) = std::fs::create_dir_all(&dir) {
                eprintln!("warning: cannot create {}: {e}", dir.display());
                return;
            }
        }
        if self.csv {
            let path = dir.join(format!("{name}.csv"));
            if let Err(e) = std::fs::write(&path, table.render_csv()) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                eprintln!("wrote {}", path.display());
            }
        }
        if self.json {
            let path = dir.join(format!("{name}.json"));
            if let Err(e) = std::fs::write(&path, table.to_json()) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                eprintln!("wrote {}", path.display());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_flag_selects_quick_config() {
        let cli = Cli {
            quick: true,
            csv: false,
            json: false,
        };
        assert_eq!(cli.config(), ExperimentConfig::quick());
        let full = Cli {
            quick: false,
            csv: false,
            json: false,
        };
        assert_eq!(full.config(), ExperimentConfig::paper());
    }
}
