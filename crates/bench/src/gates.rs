//! Fitness-function gates: `bench-gates.toml` and the regression
//! detector that diffs two [`BenchReport`]s under it.
//!
//! One config file at the repo root declares every perf threshold the
//! repo enforces — the per-metric relative noise bands for the
//! `fading bench-report --check` trajectory diff *and* the absolute
//! `[max]` ceilings / `[min]` floors the engine gate
//! (`tests/engine_gate.rs`) and the release smokes
//! (`bench-report --smoke`) assert — so a gate is a row in the
//! ledger, not a constant buried in a test.
//!
//! The parser is a deliberate hand-rolled subset of TOML (the build is
//! offline; no `toml` crate is vendored): `[section]` headers and
//! `key = value` lines where keys may be bare or double-quoted and
//! values are numbers, booleans, or double-quoted strings. `#` starts
//! a comment. That subset covers the whole gate file and fails loudly
//! on anything fancier.

use crate::schema::{BenchReport, MetricRecord};
use std::collections::BTreeMap;
use std::path::Path;

/// Parsed `bench-gates.toml`.
#[derive(Debug, Clone, PartialEq)]
pub struct GateConfig {
    /// `[gates] default_noise` — relative band applied to every metric
    /// without a `[noise]` override.
    pub default_noise: f64,
    /// `[noise]` — per-metric relative noise overrides, keyed by
    /// metric id.
    pub noise: BTreeMap<String, f64>,
    /// `[max]` — absolute ceilings, keyed by metric id. A current
    /// value above its ceiling fails the check regardless of the
    /// baseline (these rows subsume the old hard-coded engine gates).
    pub max: BTreeMap<String, f64>,
    /// `[min]` — absolute floors, keyed by metric id, for
    /// higher-is-better metrics (sustained churn slots/sec). A current
    /// value below its floor fails the check regardless of baseline.
    pub min: BTreeMap<String, f64>,
}

impl Default for GateConfig {
    fn default() -> Self {
        Self {
            default_noise: 0.30,
            noise: BTreeMap::new(),
            max: BTreeMap::new(),
            min: BTreeMap::new(),
        }
    }
}

impl GateConfig {
    /// Reads and parses a gate file.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read gate config {}: {e}", path.display()))?;
        Self::from_toml(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Parses the TOML subset described in the module docs.
    pub fn from_toml(text: &str) -> Result<Self, String> {
        let mut config = Self::default();
        let mut section = String::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(header) = line.strip_prefix('[') {
                let name = header
                    .strip_suffix(']')
                    .ok_or_else(|| format!("line {}: unterminated section header", lineno + 1))?
                    .trim();
                if !matches!(name, "gates" | "noise" | "max" | "min") {
                    return Err(format!(
                        "line {}: unknown section [{name}] (expected [gates], [noise], [max], or [min])",
                        lineno + 1
                    ));
                }
                section = name.to_string();
                continue;
            }
            let (key, value) = parse_key_value(line)
                .map_err(|e| format!("line {}: {e} in {line:?}", lineno + 1))?;
            match section.as_str() {
                "gates" => match key.as_str() {
                    "default_noise" => config.default_noise = expect_number(&key, &value)?,
                    other => {
                        return Err(format!(
                            "line {}: unknown key {other:?} in [gates]",
                            lineno + 1
                        ))
                    }
                },
                "noise" => {
                    config
                        .noise
                        .insert(key.clone(), expect_number(&key, &value)?);
                }
                "max" => {
                    config.max.insert(key.clone(), expect_number(&key, &value)?);
                }
                "min" => {
                    config.min.insert(key.clone(), expect_number(&key, &value)?);
                }
                _ => {
                    return Err(format!(
                        "line {}: key {key:?} outside any section",
                        lineno + 1
                    ))
                }
            }
        }
        if !(config.default_noise.is_finite() && config.default_noise >= 0.0) {
            return Err(format!(
                "default_noise must be a nonnegative fraction, got {}",
                config.default_noise
            ));
        }
        // A NaN or negative band (or non-finite ceiling) would make
        // every comparison against it false, silently classifying all
        // changes as WithinNoise and neutering that metric's gate.
        for (key, &band) in &config.noise {
            if !(band.is_finite() && band >= 0.0) {
                return Err(format!(
                    "[noise] {key:?} must be a finite nonnegative fraction, got {band}"
                ));
            }
        }
        for (key, &limit) in &config.max {
            if !limit.is_finite() {
                return Err(format!(
                    "[max] {key:?} must be a finite ceiling, got {limit}"
                ));
            }
        }
        for (key, &limit) in &config.min {
            if !limit.is_finite() {
                return Err(format!("[min] {key:?} must be a finite floor, got {limit}"));
            }
        }
        Ok(config)
    }

    /// The relative noise band for a metric id.
    pub fn noise_for(&self, id: &str) -> f64 {
        self.noise.get(id).copied().unwrap_or(self.default_noise)
    }

    /// The absolute ceiling for a metric id, if one is declared.
    pub fn max_for(&self, id: &str) -> Option<f64> {
        self.max.get(id).copied()
    }

    /// The absolute floor for a metric id, if one is declared.
    pub fn min_for(&self, id: &str) -> Option<f64> {
        self.min.get(id).copied()
    }
}

/// One possible TOML value in the supported subset.
#[derive(Debug, Clone, PartialEq)]
enum TomlValue {
    Number(f64),
    Bool(bool),
    Str(String),
}

fn expect_number(key: &str, value: &TomlValue) -> Result<f64, String> {
    match value {
        TomlValue::Number(n) => Ok(*n),
        other => Err(format!("key {key:?}: expected a number, got {other:?}")),
    }
}

/// Drops a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses `key = value` where the key may be bare or double-quoted.
fn parse_key_value(line: &str) -> Result<(String, TomlValue), String> {
    let (raw_key, raw_value) = line
        .split_once('=')
        .ok_or_else(|| "expected `key = value`".to_string())?;
    let key = unquote(raw_key.trim())?;
    if key.is_empty() {
        return Err("empty key".to_string());
    }
    let raw_value = raw_value.trim();
    let value = if raw_value.starts_with('"') {
        TomlValue::Str(unquote(raw_value)?)
    } else if raw_value == "true" {
        TomlValue::Bool(true)
    } else if raw_value == "false" {
        TomlValue::Bool(false)
    } else {
        TomlValue::Number(
            raw_value
                .parse::<f64>()
                .map_err(|e| format!("cannot parse value {raw_value:?}: {e}"))?,
        )
    };
    Ok((key, value))
}

fn unquote(s: &str) -> Result<String, String> {
    if let Some(inner) = s.strip_prefix('"') {
        let inner = inner
            .strip_suffix('"')
            .ok_or_else(|| format!("unterminated string {s:?}"))?;
        if inner.contains('"') {
            return Err(format!("embedded quote in {s:?}"));
        }
        Ok(inner.to_string())
    } else {
        Ok(s.to_string())
    }
}

// ---- regression detection --------------------------------------------

/// Outcome of comparing one metric across two reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Moved in the good direction by more than the noise band.
    Improved,
    /// Change within the noise band.
    WithinNoise,
    /// Moved in the bad direction by more than the noise band.
    Regressed,
    /// Current value breaks its `[max]` ceiling or `[min]` floor.
    /// Enforced even across fingerprint mismatches (the limits are
    /// absolute contracts, not machine-relative timings).
    OverLimit,
    /// Present only in the current report (new bench).
    Added,
    /// Present only in the baseline (bench removed or not run).
    Removed,
}

/// One row of the diff table.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRow {
    pub id: String,
    pub baseline: Option<f64>,
    pub current: Option<f64>,
    /// Signed relative change `(current - baseline) / baseline`, when
    /// both sides exist and the baseline is nonzero.
    pub delta_frac: Option<f64>,
    /// The noise band (or the ceiling, for [`Status::OverLimit`]) the
    /// verdict was made against.
    pub threshold: f64,
    pub status: Status,
}

/// Final verdict of a `--check` run, in exit-code order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Exit 0: no regressions, no ceiling violations.
    Clean,
    /// Exit 1: a regression on a matching fingerprint, or any ceiling
    /// violation.
    Regression,
    /// Exit 2: would-be regressions, but the machine fingerprints
    /// differ, so they are reported as warnings.
    FingerprintWarning,
}

/// A full two-report comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffReport {
    /// Rows sorted by metric id.
    pub rows: Vec<DiffRow>,
    /// Whether the two reports share a machine fingerprint (and build
    /// profile — debug vs release counts as a mismatch).
    pub fingerprint_match: bool,
    /// Human description of the baseline machine.
    pub baseline_machine: String,
    /// Human description of the current machine.
    pub current_machine: String,
}

impl DiffReport {
    /// Rows with the given status.
    pub fn with_status(&self, status: Status) -> impl Iterator<Item = &DiffRow> {
        self.rows.iter().filter(move |r| r.status == status)
    }

    /// The check verdict under the fingerprint-downgrade rule.
    pub fn verdict(&self) -> Verdict {
        let over_limit = self.with_status(Status::OverLimit).count() > 0;
        let regressed = self.with_status(Status::Regressed).count() > 0;
        match (over_limit, regressed, self.fingerprint_match) {
            (true, _, _) => Verdict::Regression,
            (false, true, true) => Verdict::Regression,
            (false, true, false) => Verdict::FingerprintWarning,
            (false, false, _) => Verdict::Clean,
        }
    }

    /// One line per offending row, naming the metric and the threshold
    /// it broke — the text a failing CI run prints.
    pub fn failures(&self) -> Vec<String> {
        let mut out = Vec::new();
        for row in &self.rows {
            match row.status {
                Status::Regressed => out.push(format!(
                    "`{}` regressed: {} -> {} ({:+.1}%, noise threshold {:.0}%)",
                    row.id,
                    fmt_value(row.baseline.unwrap_or(f64::NAN)),
                    fmt_value(row.current.unwrap_or(f64::NAN)),
                    row.delta_frac.unwrap_or(f64::NAN) * 100.0,
                    row.threshold * 100.0
                )),
                Status::OverLimit => {
                    let cur = row.current.unwrap_or(f64::NAN);
                    out.push(if cur < row.threshold {
                        format!(
                            "`{}` under its floor: {} < min {}",
                            row.id,
                            fmt_value(cur),
                            fmt_value(row.threshold)
                        )
                    } else {
                        format!(
                            "`{}` over its ceiling: {} > max {}",
                            row.id,
                            fmt_value(cur),
                            fmt_value(row.threshold)
                        )
                    });
                }
                _ => {}
            }
        }
        out
    }

    /// Fixed-width text diff table (the CI artifact).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "baseline machine: {}\ncurrent machine:  {}{}\n\n",
            self.baseline_machine,
            self.current_machine,
            if self.fingerprint_match {
                ""
            } else {
                "  (MISMATCH — regressions downgraded to warnings)"
            }
        ));
        out.push_str(&format!(
            "{:<42} {:>14} {:>14} {:>9} {:>6}  {}\n",
            "metric", "baseline", "current", "delta", "thr", "status"
        ));
        for row in &self.rows {
            let delta = row
                .delta_frac
                .map_or("-".to_string(), |d| format!("{:+.1}%", d * 100.0));
            out.push_str(&format!(
                "{:<42} {:>14} {:>14} {:>9} {:>5.0}%  {}\n",
                row.id,
                row.baseline.map_or("-".to_string(), fmt_value),
                row.current.map_or("-".to_string(), fmt_value),
                delta,
                row.threshold * 100.0,
                match row.status {
                    Status::Improved => "improved",
                    Status::WithinNoise => "ok",
                    Status::Regressed =>
                        if self.fingerprint_match {
                            "REGRESSED"
                        } else {
                            "regressed? (fingerprint mismatch)"
                        },
                    Status::OverLimit => "OVER LIMIT",
                    Status::Added => "added",
                    Status::Removed => "removed",
                },
            ));
        }
        out
    }
}

fn fmt_value(v: f64) -> String {
    if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.3}")
    }
}

/// Compares `current` against `baseline` under `gates`.
///
/// Per-metric rule, with `noise = gates.noise_for(id)`:
/// a metric regresses when it moves in its bad direction by more than
/// `noise` relative to the baseline; it improves when it moves in the
/// good direction by more than `noise`; otherwise it is within noise.
/// A `[max]` ceiling violation overrides all of that. Metrics present
/// on one side only are reported as added/removed, never as failures.
pub fn diff_reports(
    baseline: &BenchReport,
    current: &BenchReport,
    gates: &GateConfig,
) -> DiffReport {
    let mut ids: Vec<&str> = baseline
        .metrics
        .iter()
        .chain(current.metrics.iter())
        .map(|m| m.id.as_str())
        .collect();
    ids.sort_unstable();
    ids.dedup();

    let rows = ids
        .into_iter()
        .map(|id| diff_one(id, baseline.metric(id), current.metric(id), gates))
        .collect();
    let fingerprint_match = baseline.fingerprint == current.fingerprint
        && baseline.build_profile == current.build_profile;
    DiffReport {
        rows,
        fingerprint_match,
        baseline_machine: format!(
            "{} ({}, {})",
            baseline.fingerprint.describe(),
            baseline.build_profile,
            baseline.date
        ),
        current_machine: format!(
            "{} ({}, {})",
            current.fingerprint.describe(),
            current.build_profile,
            current.date
        ),
    }
}

fn diff_one(
    id: &str,
    baseline: Option<&MetricRecord>,
    current: Option<&MetricRecord>,
    gates: &GateConfig,
) -> DiffRow {
    let noise = gates.noise_for(id);
    // An absolute limit violation dominates every relative verdict.
    if let Some(cur) = current {
        let over_ceiling = gates.max_for(id).filter(|&limit| cur.value > limit);
        let under_floor = gates.min_for(id).filter(|&limit| cur.value < limit);
        if let Some(limit) = over_ceiling.or(under_floor) {
            return DiffRow {
                id: id.to_string(),
                baseline: baseline.map(|b| b.value),
                current: Some(cur.value),
                delta_frac: relative_delta(baseline, cur),
                threshold: limit,
                status: Status::OverLimit,
            };
        }
    }
    let (status, delta) = match (baseline, current) {
        (None, Some(_)) => (Status::Added, None),
        (Some(_), None) => (Status::Removed, None),
        (Some(base), Some(cur)) => {
            let delta = relative_delta(Some(base), cur);
            let bad_move = if cur.lower_is_better {
                cur.value > base.value * (1.0 + noise)
            } else {
                cur.value < base.value * (1.0 - noise)
            };
            let good_move = if cur.lower_is_better {
                cur.value < base.value * (1.0 - noise)
            } else {
                cur.value > base.value * (1.0 + noise)
            };
            // A zero baseline cannot scale a relative band: any
            // nonzero bad-direction move counts as a regression.
            let status = if base.value == 0.0 {
                match cur.value.partial_cmp(&0.0) {
                    Some(std::cmp::Ordering::Greater) if cur.lower_is_better => Status::Regressed,
                    Some(std::cmp::Ordering::Less) if !cur.lower_is_better => Status::Regressed,
                    _ => Status::WithinNoise,
                }
            } else if bad_move {
                Status::Regressed
            } else if good_move {
                Status::Improved
            } else {
                Status::WithinNoise
            };
            (status, delta)
        }
        (None, None) => unreachable!("id came from one of the reports"),
    };
    DiffRow {
        id: id.to_string(),
        baseline: baseline.map(|b| b.value),
        current: current.map(|c| c.value),
        delta_frac: delta,
        threshold: noise,
        status,
    }
}

fn relative_delta(baseline: Option<&MetricRecord>, current: &MetricRecord) -> Option<f64> {
    baseline
        .filter(|b| b.value != 0.0)
        .map(|b| (current.value - b.value) / b.value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_supported_subset() {
        let config = GateConfig::from_toml(
            r#"
# comment
[gates]
default_noise = 0.25   # trailing comment

[noise]
"schedule/rle/1000" = 0.4
bare_key = 0.1

[max]
"engine.rle.warm_ratio" = 0.75
"#,
        )
        .unwrap();
        assert_eq!(config.default_noise, 0.25);
        assert_eq!(config.noise_for("schedule/rle/1000"), 0.4);
        assert_eq!(config.noise_for("bare_key"), 0.1);
        assert_eq!(config.noise_for("anything-else"), 0.25);
        assert_eq!(config.max_for("engine.rle.warm_ratio"), Some(0.75));
        assert_eq!(config.max_for("nope"), None);
    }

    #[test]
    fn parse_errors_name_line_and_cause() {
        let err = GateConfig::from_toml("[nope]\n").unwrap_err();
        assert!(err.contains("unknown section [nope]"), "{err}");
        let err = GateConfig::from_toml("[noise]\nkey 0.5\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        assert!(err.contains("key = value"), "{err}");
        let err = GateConfig::from_toml("[noise]\nkey = abc\n").unwrap_err();
        assert!(err.contains("cannot parse value"), "{err}");
        let err = GateConfig::from_toml("[gates]\ntypo_noise = 0.5\n").unwrap_err();
        assert!(err.contains("unknown key"), "{err}");
        let err = GateConfig::from_toml("orphan = 1\n").unwrap_err();
        assert!(err.contains("outside any section"), "{err}");
    }

    #[test]
    fn non_finite_or_negative_thresholds_are_rejected() {
        for (toml, want) in [
            ("[gates]\ndefault_noise = NaN\n", "nonnegative fraction"),
            ("[noise]\nbench = NaN\n", "finite nonnegative fraction"),
            ("[noise]\nbench = -0.1\n", "finite nonnegative fraction"),
            ("[noise]\nbench = inf\n", "finite nonnegative fraction"),
            ("[max]\nbench = NaN\n", "finite ceiling"),
            ("[max]\nbench = inf\n", "finite ceiling"),
        ] {
            let err = GateConfig::from_toml(toml).unwrap_err();
            assert!(err.contains(want), "{toml:?}: {err}");
        }
        // A zero band stays legal: it means any bad move fails.
        let config = GateConfig::from_toml("[noise]\nbench = 0.0\n").unwrap();
        assert_eq!(config.noise_for("bench"), 0.0);
    }

    #[test]
    fn strings_with_hash_survive_comment_stripping() {
        let config = GateConfig::from_toml("[noise]\n\"a#b\" = 0.5 # real comment\n").unwrap();
        assert_eq!(config.noise_for("a#b"), 0.5);
    }

    // ---- regression detector over synthetic two-point histories ----

    fn record(id: &str, value: f64) -> MetricRecord {
        MetricRecord {
            id: id.to_string(),
            kind: crate::schema::MetricKind::NsPerOp,
            value,
            ci95: 0.0,
            samples: 5,
            lower_is_better: true,
        }
    }

    fn report(metrics: Vec<MetricRecord>) -> BenchReport {
        BenchReport::new("2026-08-08".into(), metrics).unwrap()
    }

    fn status_of(diff: &DiffReport, id: &str) -> Status {
        diff.rows
            .iter()
            .find(|r| r.id == id)
            .unwrap_or_else(|| panic!("no row for {id}"))
            .status
    }

    /// The five canonical two-point histories: improvement,
    /// within-noise drift, regression, bench added, bench removed.
    #[test]
    fn detector_classifies_the_five_history_shapes() {
        let gates = GateConfig::default(); // 30% band
        let baseline = report(vec![
            record("improved", 1000.0),
            record("drift", 1000.0),
            record("regressed", 1000.0),
            record("removed", 1000.0),
        ]);
        let current = report(vec![
            record("improved", 500.0),   // -50%: beyond the band, good
            record("drift", 1200.0),     // +20%: inside the band
            record("regressed", 2000.0), // +100%: beyond the band, bad
            record("added", 42.0),
        ]);
        let diff = diff_reports(&baseline, &current, &gates);
        assert_eq!(status_of(&diff, "improved"), Status::Improved);
        assert_eq!(status_of(&diff, "drift"), Status::WithinNoise);
        assert_eq!(status_of(&diff, "regressed"), Status::Regressed);
        assert_eq!(status_of(&diff, "added"), Status::Added);
        assert_eq!(status_of(&diff, "removed"), Status::Removed);
        // Added/removed benches are reported, never failed on.
        assert_eq!(diff.verdict(), Verdict::Regression);
        let failures = diff.failures();
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("`regressed`"), "{}", failures[0]);
        assert!(failures[0].contains("threshold 30%"), "{}", failures[0]);
    }

    #[test]
    fn higher_is_better_metrics_regress_downward() {
        let gates = GateConfig::default();
        let up = |v: f64| MetricRecord {
            lower_is_better: false,
            ..record("throughput", v)
        };
        let diff = diff_reports(&report(vec![up(100.0)]), &report(vec![up(50.0)]), &gates);
        assert_eq!(status_of(&diff, "throughput"), Status::Regressed);
        let diff = diff_reports(&report(vec![up(100.0)]), &report(vec![up(200.0)]), &gates);
        assert_eq!(status_of(&diff, "throughput"), Status::Improved);
    }

    #[test]
    fn zero_baseline_regresses_on_any_bad_move() {
        let gates = GateConfig::default();
        let diff = diff_reports(
            &report(vec![record("allocs", 0.0)]),
            &report(vec![record("allocs", 1.0)]),
            &gates,
        );
        assert_eq!(status_of(&diff, "allocs"), Status::Regressed);
        let diff = diff_reports(
            &report(vec![record("allocs", 0.0)]),
            &report(vec![record("allocs", 0.0)]),
            &gates,
        );
        assert_eq!(status_of(&diff, "allocs"), Status::WithinNoise);
    }

    #[test]
    fn floors_gate_higher_is_better_metrics() {
        let gates = GateConfig::from_toml("[min]\n\"churn.slots_per_sec\" = 25\n").unwrap();
        assert_eq!(gates.min_for("churn.slots_per_sec"), Some(25.0));
        let rate = |v: f64| MetricRecord {
            kind: crate::schema::MetricKind::Rate,
            lower_is_better: false,
            ..record("churn.slots_per_sec", v)
        };
        // Under the floor: hard failure, even as a freshly added metric.
        let diff = diff_reports(&report(vec![]), &report(vec![rate(10.0)]), &gates);
        assert_eq!(status_of(&diff, "churn.slots_per_sec"), Status::OverLimit);
        assert_eq!(diff.verdict(), Verdict::Regression);
        assert!(
            diff.failures()[0].contains("under its floor"),
            "{:?}",
            diff.failures()
        );
        // Above the floor: a new metric is just "added".
        let diff = diff_reports(&report(vec![]), &report(vec![rate(100.0)]), &gates);
        assert_eq!(status_of(&diff, "churn.slots_per_sec"), Status::Added);
        assert_eq!(diff.verdict(), Verdict::Clean);
        let err = GateConfig::from_toml("[min]\nbench = NaN\n").unwrap_err();
        assert!(err.contains("finite floor"), "{err}");
    }

    #[test]
    fn ceilings_dominate_and_survive_fingerprint_mismatch() {
        let gates = GateConfig::from_toml("[max]\nratio = 0.75\n").unwrap();
        let baseline_report = report(vec![record("ratio", 0.9)]);
        let mut current_report = report(vec![record("ratio", 0.9)]); // within noise, over ceiling
        current_report.fingerprint.cpu_model = "a different machine".into();
        let diff = diff_reports(&baseline_report, &current_report, &gates);
        assert!(!diff.fingerprint_match);
        assert_eq!(status_of(&diff, "ratio"), Status::OverLimit);
        assert_eq!(diff.verdict(), Verdict::Regression);
        assert!(
            diff.failures()[0].contains("ceiling"),
            "{:?}",
            diff.failures()
        );
    }

    #[test]
    fn relative_regressions_downgrade_on_fingerprint_mismatch() {
        let gates = GateConfig::default();
        let baseline_report = report(vec![record("bench", 1000.0)]);
        let mut current_report = report(vec![record("bench", 5000.0)]);
        current_report.fingerprint.cores += 1;
        let diff = diff_reports(&baseline_report, &current_report, &gates);
        assert_eq!(status_of(&diff, "bench"), Status::Regressed);
        assert_eq!(diff.verdict(), Verdict::FingerprintWarning);
        // Same numbers on the same fingerprint fail outright.
        let same = diff_reports(
            &baseline_report,
            &report(vec![record("bench", 5000.0)]),
            &gates,
        );
        assert_eq!(same.verdict(), Verdict::Regression);
    }

    #[test]
    fn build_profile_mismatch_breaks_the_fingerprint() {
        let gates = GateConfig::default();
        let baseline_report = report(vec![record("bench", 1000.0)]);
        let mut current_report = report(vec![record("bench", 1000.0)]);
        // Flip to the opposite profile, whatever this test was built as.
        current_report.build_profile = if baseline_report.build_profile == "debug" {
            "release".into()
        } else {
            "debug".into()
        };
        let diff = diff_reports(&baseline_report, &current_report, &gates);
        assert!(!diff.fingerprint_match);
    }
}
