//! Criterion benches: substrate hot paths (slot simulation, Monte-Carlo
//! batches, spatial hashing, feasibility checking).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fading_core::algo::Rle;
use fading_core::{feasibility::FeasibilityReport, Problem, Scheduler};
use fading_net::{TopologyGenerator, UniformGenerator};
use fading_sim::{simulate_many, simulate_slot};
use std::hint::black_box;

fn slot_simulation(c: &mut Criterion) {
    let links = UniformGenerator::paper(300).generate(1);
    let problem = Problem::paper(links, 3.0);
    let schedule = Rle::new().schedule(&problem);
    c.bench_function("simulate_slot_rle300", |b| {
        let mut rng = fading_math::seeded_rng(3);
        b.iter(|| black_box(simulate_slot(&problem, &schedule, &mut rng)))
    });
}

fn monte_carlo_batch(c: &mut Criterion) {
    let links = UniformGenerator::paper(300).generate(2);
    let problem = Problem::paper(links, 3.0);
    let schedule = Rle::new().schedule(&problem);
    let mut group = c.benchmark_group("monte_carlo");
    group.sample_size(10);
    for &trials in &[100u64, 1000] {
        group.bench_with_input(BenchmarkId::from_parameter(trials), &trials, |b, &t| {
            b.iter(|| black_box(simulate_many(&problem, &schedule, t, 5)))
        });
    }
    group.finish();
}

fn feasibility_check(c: &mut Criterion) {
    let links = UniformGenerator::paper(500).generate(4);
    let problem = Problem::paper(links, 3.0);
    let schedule = fading_core::Schedule::from_ids(problem.links().ids());
    c.bench_function("feasibility_report_all500", |b| {
        b.iter(|| black_box(FeasibilityReport::evaluate(&problem, &schedule)))
    });
}

fn spatial_hash(c: &mut Criterion) {
    let links = UniformGenerator::paper(500).generate(5);
    let senders = links.sender_positions();
    c.bench_function("spatial_hash_build_query_500", |b| {
        b.iter(|| {
            let h = fading_geom::SpatialHash::build(&senders, 50.0);
            let mut hits = 0usize;
            for p in senders.iter().step_by(10) {
                hits += h.query_radius(p, 60.0).len();
            }
            black_box(hits)
        })
    });
}

fn protocol_run(c: &mut Criterion) {
    let links = UniformGenerator::paper(300).generate(6);
    let problem = Problem::paper(links, 3.0);
    c.bench_function("dls_protocol_300", |b| {
        b.iter(|| black_box(fading_proto::DlsProtocol::new().run(&problem)))
    });
}

fn capacity_quadrature(c: &mut Criterion) {
    let params = fading_channel::ChannelParams::paper_defaults();
    let interferers: Vec<f64> = (1..20).map(|i| 20.0 + 7.0 * i as f64).collect();
    c.bench_function("ergodic_capacity_19_interferers", |b| {
        b.iter(|| black_box(fading_channel::ergodic_capacity(&params, 6.0, &interferers)))
    });
}

fn queueing_slots(c: &mut Criterion) {
    let links = UniformGenerator::paper(100).generate(8);
    let problem = Problem::paper(links, 3.0);
    let mut group = c.benchmark_group("queueing");
    group.sample_size(10);
    group.bench_function("greedy_200_slots", |b| {
        b.iter(|| {
            black_box(fading_sim::simulate_queueing(
                &problem,
                &fading_core::algo::GreedyRate,
                &fading_sim::QueueConfig {
                    arrival_prob: 0.05,
                    slots: 200,
                    seed: 1,
                },
            ))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    slot_simulation,
    monte_carlo_batch,
    feasibility_check,
    spatial_hash,
    protocol_run,
    capacity_quadrature,
    queueing_slots
);
criterion_main!(benches);
