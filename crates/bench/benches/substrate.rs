//! Criterion benches: substrate hot paths (slot simulation, Monte-Carlo
//! batches, spatial hashing, feasibility checking).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fading_core::algo::Rle;
use fading_core::{feasibility::FeasibilityReport, BackendChoice, Problem, Scheduler};
use fading_net::{RateModel, TopologyGenerator, UniformGenerator};
use fading_sim::{simulate_many, simulate_slot};
use std::hint::black_box;

/// Paper-density instance scaled to `n` links: the 500×500 field holds
/// 300 links, so the side grows as `√(n/300)` and the local interference
/// structure stays comparable across sizes.
fn scaled_generator(n: usize) -> UniformGenerator {
    UniformGenerator {
        side: 500.0 * (n as f64 / 300.0).sqrt(),
        n,
        len_lo: 5.0,
        len_hi: 20.0,
        rates: RateModel::Fixed(1.0),
    }
}

/// Sizes for the backend comparison; the dense arm stops at 4096
/// (an `N×N` `f64` matrix at 32k links is 8 GB).
const SUBSTRATE_SIZES: &[usize] = &[256, 4096, 32_768];
const DENSE_LIMIT: usize = 4096;

fn interference_build(c: &mut Criterion) {
    let params = fading_channel::ChannelParams::paper_defaults();
    let mut group = c.benchmark_group("interference_build");
    group.sample_size(10);
    for &n in SUBSTRATE_SIZES {
        let links = scaled_generator(n).generate(7);
        if n <= DENSE_LIMIT {
            group.bench_with_input(BenchmarkId::new("dense", n), &links, |b, ls| {
                b.iter(|| {
                    black_box(
                        Problem::builder(ls.clone(), params)
                            .backend(BackendChoice::Dense)
                            .build(),
                    )
                })
            });
        }
        group.bench_with_input(BenchmarkId::new("sparse", n), &links, |b, ls| {
            b.iter(|| {
                black_box(
                    Problem::builder(ls.clone(), params)
                        .backend(BackendChoice::parse("sparse").unwrap())
                        .build(),
                )
            })
        });
    }
    group.finish();
}

fn interference_row_sums(c: &mut Criterion) {
    let params = fading_channel::ChannelParams::paper_defaults();
    let mut group = c.benchmark_group("interference_row_sum");
    group.sample_size(10);
    // Sums every sender's stored out-factors — the bulk-iteration shape
    // the greedy accumulators drive.
    let sum_all = |p: &Problem| {
        let mut total = 0.0f64;
        for i in p.links().ids() {
            if let Some(row) = p.factors().dense_row(i) {
                total += row.iter().sum::<f64>();
            } else {
                p.factors().for_each_out(i, &mut |_, f| total += f);
            }
        }
        total
    };
    for &n in SUBSTRATE_SIZES {
        let links = scaled_generator(n).generate(9);
        if n <= DENSE_LIMIT {
            let dense = Problem::builder(links.clone(), params)
                .backend(BackendChoice::Dense)
                .build();
            group.bench_with_input(BenchmarkId::new("dense", n), &dense, |b, p| {
                b.iter(|| black_box(sum_all(p)))
            });
        }
        let sparse = Problem::builder(links, params)
            .backend(BackendChoice::parse("sparse").unwrap())
            .build();
        group.bench_with_input(BenchmarkId::new("sparse", n), &sparse, |b, p| {
            b.iter(|| black_box(sum_all(p)))
        });
    }
    group.finish();
}

fn slot_simulation(c: &mut Criterion) {
    let links = UniformGenerator::paper(300).generate(1);
    let problem = Problem::paper(links, 3.0);
    let schedule = Rle::new().schedule(&problem);
    c.bench_function("simulate_slot_rle300", |b| {
        let mut rng = fading_math::seeded_rng(3);
        b.iter(|| black_box(simulate_slot(&problem, &schedule, &mut rng)))
    });
}

fn monte_carlo_batch(c: &mut Criterion) {
    let links = UniformGenerator::paper(300).generate(2);
    let problem = Problem::paper(links, 3.0);
    let schedule = Rle::new().schedule(&problem);
    let mut group = c.benchmark_group("monte_carlo");
    group.sample_size(10);
    for &trials in &[100u64, 1000] {
        group.bench_with_input(BenchmarkId::from_parameter(trials), &trials, |b, &t| {
            b.iter(|| black_box(simulate_many(&problem, &schedule, t, 5)))
        });
    }
    group.finish();
}

fn feasibility_check(c: &mut Criterion) {
    let links = UniformGenerator::paper(500).generate(4);
    let problem = Problem::paper(links, 3.0);
    let schedule = fading_core::Schedule::from_ids(problem.links().ids());
    c.bench_function("feasibility_report_all500", |b| {
        b.iter(|| black_box(FeasibilityReport::evaluate(&problem, &schedule)))
    });
}

fn spatial_hash(c: &mut Criterion) {
    let links = UniformGenerator::paper(500).generate(5);
    let senders = links.sender_positions();
    c.bench_function("spatial_hash_build_query_500", |b| {
        b.iter(|| {
            let h = fading_geom::SpatialHash::build(&senders, 50.0);
            let mut hits = 0usize;
            for p in senders.iter().step_by(10) {
                // Visit, don't collect: `query_radius` allocates a Vec
                // per query, which would swamp the traversal cost.
                h.for_each_in_radius(p, 60.0, |_| hits += 1);
            }
            black_box(hits)
        })
    });
}

fn protocol_run(c: &mut Criterion) {
    let links = UniformGenerator::paper(300).generate(6);
    let problem = Problem::paper(links, 3.0);
    c.bench_function("dls_protocol_300", |b| {
        b.iter(|| black_box(fading_proto::DlsProtocol::new().run(&problem)))
    });
}

fn capacity_quadrature(c: &mut Criterion) {
    let params = fading_channel::ChannelParams::paper_defaults();
    let interferers: Vec<f64> = (1..20).map(|i| 20.0 + 7.0 * i as f64).collect();
    c.bench_function("ergodic_capacity_19_interferers", |b| {
        b.iter(|| black_box(fading_channel::ergodic_capacity(&params, 6.0, &interferers)))
    });
}

fn residual_construction(c: &mut Criterion) {
    // Per-slot residual sub-problem construction at the acceptance
    // scale (n = 2000, dense): `restrict` slices the parent's matrix
    // (pure `f64` copies) where `rebuild` re-evaluates every factor's
    // transcendental from geometry. Keeping half the links is the
    // typical mid-run shape of the multi-slot / queueing loops.
    let params = fading_channel::ChannelParams::paper_defaults();
    let n = 2000usize;
    let links = scaled_generator(n).generate(11);
    let keep: Vec<fading_net::LinkId> = links.ids().step_by(2).collect();
    let mut group = c.benchmark_group("residual_construction");
    group.sample_size(10);
    let dense = Problem::builder(links.clone(), params)
        .backend(BackendChoice::Dense)
        .build();
    group.bench_function(BenchmarkId::new("dense_rebuild", n), |b| {
        b.iter(|| {
            let (sub_links, _) = dense.links().restrict(&keep);
            black_box(
                Problem::builder(sub_links, params)
                    .backend(BackendChoice::Dense)
                    .build(),
            )
        })
    });
    group.bench_function(BenchmarkId::new("dense_restrict", n), |b| {
        b.iter(|| black_box(dense.restrict(&keep)))
    });
    let sparse = Problem::builder(links, params)
        .backend(BackendChoice::parse("sparse").unwrap())
        .build();
    group.bench_function(BenchmarkId::new("sparse_rebuild", n), |b| {
        b.iter(|| {
            let (sub_links, _) = sparse.links().restrict(&keep);
            black_box(
                Problem::builder(sub_links, params)
                    .backend(sparse.backend_choice())
                    .build(),
            )
        })
    });
    group.bench_function(BenchmarkId::new("sparse_restrict", n), |b| {
        b.iter(|| black_box(sparse.restrict(&keep)))
    });
    group.finish();
}

fn queueing_slots(c: &mut Criterion) {
    let links = UniformGenerator::paper(100).generate(8);
    let problem = Problem::paper(links, 3.0);
    let mut group = c.benchmark_group("queueing");
    group.sample_size(10);
    group.bench_function("greedy_200_slots", |b| {
        b.iter(|| {
            black_box(fading_sim::simulate_queueing(
                &problem,
                &fading_core::algo::GreedyRate,
                &fading_sim::QueueConfig {
                    arrival_prob: 0.05,
                    slots: 200,
                    seed: 1,
                },
            ))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    interference_build,
    interference_row_sums,
    slot_simulation,
    monte_carlo_batch,
    feasibility_check,
    spatial_hash,
    protocol_run,
    capacity_quadrature,
    residual_construction,
    queueing_slots
);
criterion_main!(benches);
