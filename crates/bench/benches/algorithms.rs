//! Criterion benches: scheduling-algorithm runtime scaling.
//!
//! Not a paper figure (the paper reports no runtimes), but standard for
//! a release: one bench per algorithm at N ∈ {100, 300, 500} on the
//! paper workload, plus the exact solver on a small instance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fading_core::algo::{ApproxDiversity, ApproxLogN, Dls, GreedyRate, Ldp, Rle};
use fading_core::{
    algo::exact::{branch_and_bound, branch_and_bound_parallel},
    Problem, SchedCtx, Scheduler,
};
use fading_net::{RateModel, TopologyGenerator, UniformGenerator};
use std::hint::black_box;

fn algorithm_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule");
    for &n in &[100usize, 300, 500] {
        let links = UniformGenerator::paper(n).generate(42);
        let problem = Problem::paper(links, 3.0);
        let algos: Vec<Box<dyn Scheduler>> = vec![
            Box::new(Ldp::new()),
            Box::new(Rle::new()),
            Box::new(ApproxLogN),
            Box::new(ApproxDiversity::new()),
            Box::new(GreedyRate),
            Box::new(Dls::new()),
        ];
        for algo in &algos {
            group.bench_with_input(BenchmarkId::new(algo.name(), n), &problem, |b, p| {
                b.iter(|| black_box(algo.schedule(p)))
            });
        }
    }
    group.finish();
}

/// Dedicated LDP group: the regression gate for the tracing hooks and
/// the fresh-call path of the workspace engine. Tracing is disabled
/// here (the default), so these numbers must stay within noise of the
/// pre-trace baseline. The `warm/…` variants reuse one [`SchedCtx`]
/// across iterations — the steady-state shape the sweep runner drives
/// (the ≥25% warm-vs-fresh contract is asserted by
/// `tests/engine_gate.rs`; these numbers are for inspection).
fn ldp_schedule(c: &mut Criterion) {
    let mut group = c.benchmark_group("ldp_schedule");
    for &n in &[300usize, 1000] {
        let links = UniformGenerator::paper(n).generate(42);
        let problem = Problem::paper(links, 3.0);
        let ldp = Ldp::new();
        group.bench_with_input(BenchmarkId::from_parameter(n), &problem, |b, p| {
            b.iter(|| black_box(ldp.schedule(p)))
        });
        let mut ctx = SchedCtx::with_capacity(n);
        group.bench_with_input(BenchmarkId::new("warm", n), &problem, |b, p| {
            b.iter(|| {
                let s = black_box(ldp.schedule_in(p, &mut ctx));
                ctx.recycle(s);
            })
        });
    }
    group.finish();
}

/// Dedicated RLE group: exercises the budget-debit inner loop, the
/// hottest path the tracing hooks touch. `warm/…` reuses a workspace,
/// as in `ldp_schedule`.
fn rle_schedule(c: &mut Criterion) {
    let mut group = c.benchmark_group("rle_schedule");
    for &n in &[300usize, 1000] {
        let links = UniformGenerator::paper(n).generate(42);
        let problem = Problem::paper(links, 3.0);
        let rle = Rle::new();
        group.bench_with_input(BenchmarkId::from_parameter(n), &problem, |b, p| {
            b.iter(|| black_box(rle.schedule(p)))
        });
        let mut ctx = SchedCtx::with_capacity(n);
        group.bench_with_input(BenchmarkId::new("warm", n), &problem, |b, p| {
            b.iter(|| {
                let s = black_box(rle.schedule_in(p, &mut ctx));
                ctx.recycle(s);
            })
        });
    }
    group.finish();
}

fn interference_matrix(c: &mut Criterion) {
    let mut group = c.benchmark_group("interference_matrix");
    for &n in &[100usize, 500] {
        let links = UniformGenerator::paper(n).generate(7);
        let channel =
            fading_channel::RayleighChannel::new(fading_channel::ChannelParams::paper_defaults());
        group.bench_with_input(BenchmarkId::from_parameter(n), &links, |b, ls| {
            b.iter(|| black_box(fading_core::InterferenceMatrix::build(ls, &channel)))
        });
    }
    group.finish();
}

fn exact_solver(c: &mut Criterion) {
    let gen = UniformGenerator {
        side: 120.0,
        n: 14,
        len_lo: 5.0,
        len_hi: 20.0,
        rates: RateModel::Fixed(1.0),
    };
    let problem = Problem::paper(gen.generate(3), 3.0);
    c.bench_function("exact_bnb_n14", |b| {
        b.iter(|| black_box(branch_and_bound(&problem)))
    });
    // Larger instance where the parallel fork pays.
    let gen22 = UniformGenerator { n: 22, ..gen };
    let problem22 = Problem::paper(gen22.generate(3), 3.0);
    let mut group = c.benchmark_group("exact_bnb_n22");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| black_box(branch_and_bound(&problem22)))
    });
    group.bench_function("parallel", |b| {
        b.iter(|| black_box(branch_and_bound_parallel(&problem22)))
    });
    group.finish();
}

criterion_group!(
    benches,
    algorithm_scaling,
    ldp_schedule,
    rle_schedule,
    interference_matrix,
    exact_solver
);
criterion_main!(benches);
