//! Schema-stability contract for `BENCH_*.json` ledger entries:
//!
//! * serialization is deterministic — `to_json(from_json(x)) == x`
//!   byte-for-byte for anything `bench-report` wrote, including the
//!   committed repo-root ledger entries;
//! * the reader is forward compatible — a version-1 report with extra
//!   unknown fields (written by a future, additive schema revision)
//!   still deserializes.

use fading_bench::schema::{
    latest_report_path, BenchReport, MachineFingerprint, MetricKind, MetricRecord,
    BENCH_SCHEMA_VERSION,
};
use std::path::Path;

fn sample_report() -> BenchReport {
    BenchReport::new(
        "2026-08-08".to_string(),
        vec![
            MetricRecord {
                id: "schedule/rle/1000".to_string(),
                kind: MetricKind::NsPerOp,
                // Awkward floats on purpose: `float_roundtrip` must
                // reproduce them exactly.
                value: 123_456.789_012_345,
                ci95: 0.1 + 0.2,
                samples: 21,
                lower_is_better: true,
            },
            MetricRecord {
                id: "engine.rle.warm_ratio".to_string(),
                kind: MetricKind::Ratio,
                value: 0.615,
                ci95: 0.0,
                samples: 0,
                lower_is_better: true,
            },
        ],
    )
    .unwrap()
}

#[test]
fn round_trip_is_byte_identical() {
    let report = sample_report();
    let json = report.to_json();
    let parsed = BenchReport::from_json(&json).unwrap();
    assert_eq!(parsed, report);
    assert_eq!(parsed.to_json(), json, "re-serialization must be stable");
}

/// The committed repo-root ledger entries must round-trip through the
/// current reader byte-for-byte — the golden-file form of the same
/// contract, over every real `BENCH_*.json` in the repo.
#[test]
fn committed_ledger_entries_round_trip() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let Some(newest) = latest_report_path(&root, None) else {
        // Seed commit not made yet; the synthetic round-trip above
        // still covers the contract.
        return;
    };
    let text = std::fs::read_to_string(&newest).unwrap();
    let parsed = BenchReport::load(&newest).unwrap();
    assert_eq!(parsed.schema_version, BENCH_SCHEMA_VERSION);
    assert!(!parsed.metrics.is_empty());
    assert_eq!(
        parsed.to_json(),
        text,
        "{} does not round-trip byte-identically",
        newest.display()
    );
}

/// A later schema revision that only *adds* fields must stay readable
/// by this version: unknown keys are ignored at every nesting level.
#[test]
fn unknown_fields_are_ignored_for_forward_compat() {
    let json = sample_report().to_json();
    // Inject unknown fields at the top level, inside the fingerprint,
    // and inside a metric record.
    let doctored = json
        .replacen(
            "\"schema_version\"",
            "\"future_top_level_field\": {\"nested\": [1, 2]},\n  \"schema_version\"",
            1,
        )
        .replacen(
            "\"cpu_model\"",
            "\"future_fingerprint_field\": true,\n    \"cpu_model\"",
            1,
        )
        .replacen(
            "\"ci95\"",
            "\"future_metric_field\": \"x\",\n      \"ci95\"",
            1,
        );
    assert_ne!(doctored, json, "the injections must have applied");
    let parsed = BenchReport::from_json(&doctored).unwrap();
    assert_eq!(parsed, sample_report());
}

/// A report missing a required field fails loudly, naming the problem.
#[test]
fn missing_required_fields_fail_loudly() {
    let json = sample_report().to_json();
    let broken = json.replacen("\"date\"", "\"dropped_date\"", 1);
    let err = BenchReport::from_json(&broken).unwrap_err();
    assert!(err.contains("invalid bench report"), "{err}");
}

#[test]
fn fingerprint_is_stable_within_a_process() {
    assert_eq!(MachineFingerprint::current(), MachineFingerprint::current());
    let desc = MachineFingerprint::current().describe();
    assert!(desc.contains("cores"), "{desc}");
}
