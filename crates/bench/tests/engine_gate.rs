//! The engine's performance contract, asserted as a release-mode gate
//! (the vendored criterion is a stub without statistics, so the gate
//! times directly):
//!
//! * steady-state `schedule_in` with a warm [`SchedCtx`] beats fresh
//!   `schedule()` by ≥ 25% for RLE and LDP at n = 1000;
//! * the fresh-call path pays ≤ 5% for the workspace indirection —
//!   measured as ctx construction + drop overhead, the only cost the
//!   default method adds on top of the old monolithic `schedule()`.
//!
//! Run under `--release --ignored` (debug timings are meaningless):
//!
//! ```text
//! cargo test --release -p fading-bench --test engine_gate -- --ignored
//! ```

use fading_core::algo::{Ldp, Rle};
use fading_core::{Problem, SchedCtx, Scheduler};
use fading_net::{TopologyGenerator, UniformGenerator};
use std::hint::black_box;
use std::time::Instant;

const N: usize = 1000;
/// Warm must be at most this fraction of fresh (≥ 25% faster).
const WARM_RATIO_LIMIT: f64 = 0.75;
/// Ctx construction+drop may cost at most this fraction of a fresh call.
const FRESH_OVERHEAD_LIMIT: f64 = 0.05;

/// Median-of-repeats wall time of `f`, in seconds.
fn time_median<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_unstable_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn gate_scheduler(scheduler: &dyn Scheduler, problem: &Problem) {
    const CALLS: usize = 20;
    let mut ctx = SchedCtx::with_capacity(N);
    // Warm both code paths and the ctx before timing.
    for _ in 0..3 {
        let s = scheduler.schedule_in(problem, &mut ctx);
        ctx.recycle(s);
        black_box(scheduler.schedule(problem));
    }

    let fresh = time_median(7, || {
        for _ in 0..CALLS {
            black_box(scheduler.schedule(problem));
        }
    });
    let warm = time_median(7, || {
        for _ in 0..CALLS {
            let s = black_box(scheduler.schedule_in(problem, &mut ctx));
            ctx.recycle(s);
        }
    });
    let ratio = warm / fresh;
    eprintln!(
        "{}: fresh {:.3} ms/call, warm {:.3} ms/call, ratio {:.2}",
        scheduler.name(),
        fresh * 1e3 / CALLS as f64,
        warm * 1e3 / CALLS as f64,
        ratio
    );
    assert!(
        ratio <= WARM_RATIO_LIMIT,
        "{}: warm ctx is only {:.0}% faster than fresh (need ≥ {:.0}%)",
        scheduler.name(),
        (1.0 - ratio) * 100.0,
        (1.0 - WARM_RATIO_LIMIT) * 100.0
    );

    // Fresh-path regression bound: `schedule()` is now "construct a
    // ctx, schedule through it, drop it", so its only new cost over
    // the old monolith is ctx construction + drop. Bound that against
    // the fresh call itself.
    let ctx_churn = time_median(7, || {
        for _ in 0..CALLS {
            black_box(SchedCtx::new());
        }
    });
    eprintln!(
        "{}: ctx construct+drop {:.1} ns/call ({:.2}% of a fresh call)",
        scheduler.name(),
        ctx_churn * 1e9 / CALLS as f64,
        ctx_churn / fresh * 100.0
    );
    assert!(
        ctx_churn <= FRESH_OVERHEAD_LIMIT * fresh,
        "{}: workspace churn is {:.1}% of a fresh call (limit {:.0}%)",
        scheduler.name(),
        ctx_churn / fresh * 100.0,
        FRESH_OVERHEAD_LIMIT * 100.0
    );
}

#[test]
#[ignore = "release-mode perf gate; run with --release --ignored (CI does)"]
fn warm_ctx_beats_fresh_by_a_quarter_at_n1000() {
    let problem = Problem::paper(UniformGenerator::paper(N).generate(42), 3.0);
    gate_scheduler(&Rle::new(), &problem);
    gate_scheduler(&Ldp::new(), &problem);
}
