//! The engine's performance contract, asserted as a release-mode gate
//! (the vendored criterion is a stub without statistics, so the gate
//! times directly):
//!
//! * steady-state `schedule_in` with a warm [`SchedCtx`] beats fresh
//!   `schedule()` for RLE and LDP at n = 1000;
//! * the fresh-call path pays little for the workspace indirection —
//!   measured as ctx construction + drop overhead, the only cost the
//!   default method adds on top of the old monolithic `schedule()`.
//!
//! The actual limits live in the repo-root `bench-gates.toml` `[max]`
//! section (`engine.*.warm_ratio`, `engine.*.ctx_churn_frac`) — the
//! same ceilings `fading bench-report --check` enforces — so there is
//! exactly one place a perf threshold can be declared.
//!
//! Run under `--release --ignored` (debug timings are meaningless):
//!
//! ```text
//! cargo test --release -p fading-bench --test engine_gate -- --ignored
//! ```

use fading_bench::gates::GateConfig;
use fading_core::algo::{Ldp, Rle};
use fading_core::{Problem, SchedCtx, Scheduler};
use fading_net::{TopologyGenerator, UniformGenerator};
use std::hint::black_box;
use std::path::Path;
use std::time::Instant;

const N: usize = 1000;

/// Engine ceilings loaded from the repo-root gate file. Missing rows
/// are an error: the gate must never silently pass because a rename in
/// `bench-gates.toml` orphaned its threshold.
struct EngineLimits {
    /// Warm must be at most this fraction of fresh.
    warm_ratio: f64,
    /// Ctx construction+drop may cost at most this fraction of a
    /// fresh call.
    ctx_churn_frac: f64,
}

fn engine_limits(config: &GateConfig, algo: &str) -> EngineLimits {
    let ceiling = |id: String| {
        config
            .max_for(&id)
            .unwrap_or_else(|| panic!("bench-gates.toml [max] is missing {id:?}"))
    };
    EngineLimits {
        warm_ratio: ceiling(format!("engine.{algo}.warm_ratio")),
        ctx_churn_frac: ceiling(format!("engine.{algo}.ctx_churn_frac")),
    }
}

fn load_gate_config() -> GateConfig {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../bench-gates.toml");
    GateConfig::load(&path).expect("repo-root bench-gates.toml must parse")
}

/// Median-of-repeats wall time of `f`, in seconds.
fn time_median<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_unstable_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn gate_scheduler(scheduler: &dyn Scheduler, problem: &Problem, limits: &EngineLimits) {
    const CALLS: usize = 20;
    let mut ctx = SchedCtx::with_capacity(N);
    // Warm both code paths and the ctx before timing.
    for _ in 0..3 {
        let s = scheduler.schedule_in(problem, &mut ctx);
        ctx.recycle(s);
        black_box(scheduler.schedule(problem));
    }

    let fresh = time_median(7, || {
        for _ in 0..CALLS {
            black_box(scheduler.schedule(problem));
        }
    });
    let warm = time_median(7, || {
        for _ in 0..CALLS {
            let s = black_box(scheduler.schedule_in(problem, &mut ctx));
            ctx.recycle(s);
        }
    });
    let ratio = warm / fresh;
    eprintln!(
        "{}: fresh {:.3} ms/call, warm {:.3} ms/call, ratio {:.2}",
        scheduler.name(),
        fresh * 1e3 / CALLS as f64,
        warm * 1e3 / CALLS as f64,
        ratio
    );
    assert!(
        ratio <= limits.warm_ratio,
        "{}: warm ctx is only {:.0}% faster than fresh (need ≥ {:.0}%)",
        scheduler.name(),
        (1.0 - ratio) * 100.0,
        (1.0 - limits.warm_ratio) * 100.0
    );

    // Fresh-path regression bound: `schedule()` is now "construct a
    // ctx, schedule through it, drop it", so its only new cost over
    // the old monolith is ctx construction + drop. Bound that against
    // the fresh call itself.
    let ctx_churn = time_median(7, || {
        for _ in 0..CALLS {
            black_box(SchedCtx::new());
        }
    });
    eprintln!(
        "{}: ctx construct+drop {:.1} ns/call ({:.2}% of a fresh call)",
        scheduler.name(),
        ctx_churn * 1e9 / CALLS as f64,
        ctx_churn / fresh * 100.0
    );
    assert!(
        ctx_churn <= limits.ctx_churn_frac * fresh,
        "{}: workspace churn is {:.1}% of a fresh call (limit {:.0}%)",
        scheduler.name(),
        ctx_churn / fresh * 100.0,
        limits.ctx_churn_frac * 100.0
    );
}

/// The gate file must declare every engine ceiling this gate asserts —
/// checked in debug too, so a bad edit to bench-gates.toml fails fast
/// instead of only under `--release --ignored`.
#[test]
fn gate_config_declares_the_engine_ceilings() {
    let config = load_gate_config();
    for algo in ["rle", "ldp"] {
        let limits = engine_limits(&config, algo);
        assert!(
            limits.warm_ratio > 0.0 && limits.warm_ratio < 1.0,
            "{algo}: warm_ratio ceiling {} out of (0, 1)",
            limits.warm_ratio
        );
        assert!(
            limits.ctx_churn_frac > 0.0 && limits.ctx_churn_frac < 1.0,
            "{algo}: ctx_churn_frac ceiling {} out of (0, 1)",
            limits.ctx_churn_frac
        );
    }
}

#[test]
#[ignore = "release-mode perf gate; run with --release --ignored (CI does)"]
fn warm_ctx_beats_fresh_by_a_quarter_at_n1000() {
    let config = load_gate_config();
    let problem = Problem::paper(UniformGenerator::paper(N).generate(42), 3.0);
    gate_scheduler(&Rle::new(), &problem, &engine_limits(&config, "rle"));
    gate_scheduler(&Ldp::new(), &problem, &engine_limits(&config, "ldp"));
}
