//! Captures the compiler version for the bench-report machine
//! fingerprint (`BENCH_*.json` embeds `rustc -V` so numbers built by
//! different toolchains are never silently compared).

fn main() {
    let rustc = std::env::var("RUSTC").unwrap_or_else(|_| "rustc".to_string());
    let version = std::process::Command::new(rustc)
        .arg("-V")
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string());
    println!("cargo:rustc-env=FADING_BENCH_RUSTC={version}");
}
