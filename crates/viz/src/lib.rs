//! SVG rendering of instances and schedules.
//!
//! A picture settles most scheduling arguments: which links were
//! chosen, how much space the exclusion geometry really takes, where
//! LDP's colored squares fall. [`SvgScene`] builds standalone SVG
//! documents from an instance, an optional schedule, and optional
//! overlays; the CLI's `render` subcommand writes them to disk.

mod svg;

pub use svg::{render_instance, RenderOptions, SvgScene};
