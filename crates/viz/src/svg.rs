//! Minimal SVG document builder (no external dependencies) plus the
//! instance/schedule renderer.

use fading_core::Schedule;
use fading_geom::GridPartition;
use fading_net::LinkSet;
use std::fmt::Write as _;

/// Rendering options for [`render_instance`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RenderOptions {
    /// Output width in pixels (height scales with the region's aspect).
    pub width_px: f64,
    /// Draw the LDP grid of this cell size, 4-colored, behind the links.
    pub grid_cell: Option<f64>,
    /// Draw each scheduled link's RLE deletion disk (radius factor ×
    /// link length) around its receiver.
    pub deletion_radius_factor: Option<f64>,
}

impl Default for RenderOptions {
    fn default() -> Self {
        Self {
            width_px: 800.0,
            grid_cell: None,
            deletion_radius_factor: None,
        }
    }
}

/// An SVG document under construction (world coordinates mapped to
/// pixel space at construction time).
#[derive(Debug, Clone)]
pub struct SvgScene {
    width: f64,
    height: f64,
    scale: f64,
    off_x: f64,
    off_y: f64,
    body: String,
}

impl SvgScene {
    /// Creates a scene mapping the world rect `[x0,x1]×[y0,y1]` onto a
    /// `width_px`-wide canvas (y flipped so world-up is screen-up).
    pub fn new(x0: f64, y0: f64, x1: f64, y1: f64, width_px: f64) -> Self {
        assert!(x1 > x0 && y1 > y0, "degenerate world rect");
        assert!(width_px > 0.0, "canvas width must be positive");
        let scale = width_px / (x1 - x0);
        Self {
            width: width_px,
            height: (y1 - y0) * scale,
            scale,
            off_x: x0,
            off_y: y0,
            body: String::new(),
        }
    }

    fn px(&self, x: f64, y: f64) -> (f64, f64) {
        (
            (x - self.off_x) * self.scale,
            self.height - (y - self.off_y) * self.scale,
        )
    }

    /// Adds a line segment (world coordinates).
    pub fn line(&mut self, x1: f64, y1: f64, x2: f64, y2: f64, stroke: &str, width: f64) {
        let (a, b) = self.px(x1, y1);
        let (c, d) = self.px(x2, y2);
        let _ = writeln!(
            self.body,
            r#"<line x1="{a:.2}" y1="{b:.2}" x2="{c:.2}" y2="{d:.2}" stroke="{stroke}" stroke-width="{width}"/>"#
        );
    }

    /// Adds a circle (world center/radius).
    pub fn circle(&mut self, x: f64, y: f64, r: f64, fill: &str, opacity: f64) {
        let (cx, cy) = self.px(x, y);
        let _ = writeln!(
            self.body,
            r#"<circle cx="{cx:.2}" cy="{cy:.2}" r="{:.2}" fill="{fill}" fill-opacity="{opacity}"/>"#,
            r * self.scale
        );
    }

    /// Adds an axis-aligned rectangle (world lower-left + size).
    pub fn rect(&mut self, x: f64, y: f64, w: f64, h: f64, fill: &str, opacity: f64) {
        let (px, py) = self.px(x, y + h); // SVG rects anchor top-left
        let _ = writeln!(
            self.body,
            r#"<rect x="{px:.2}" y="{py:.2}" width="{:.2}" height="{:.2}" fill="{fill}" fill-opacity="{opacity}"/>"#,
            w * self.scale,
            h * self.scale
        );
    }

    /// Finalizes the document.
    pub fn finish(self) -> String {
        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{:.0}\" height=\"{:.0}\" viewBox=\"0 0 {:.0} {:.0}\">\n<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n{}</svg>\n",
            self.width, self.height, self.width, self.height, self.body
        )
    }
}

/// Grid-square fill colors for the four LDP colors.
const GRID_COLORS: [&str; 4] = ["#d5e8f7", "#fde2cf", "#ddf2d8", "#f3ddf2"];

/// Renders an instance (and optionally a schedule) to an SVG string.
///
/// Scheduled links are bold green with sender/receiver dots; others
/// light gray. Optional overlays: the LDP 4-colored grid and RLE
/// deletion disks.
pub fn render_instance(
    links: &LinkSet,
    schedule: Option<&Schedule>,
    options: &RenderOptions,
) -> String {
    let region = links.region();
    let mut scene = SvgScene::new(
        region.min().x,
        region.min().y,
        region.max().x,
        region.max().y,
        options.width_px,
    );
    // Grid overlay first (background).
    if let Some(cell) = options.grid_cell {
        let grid = GridPartition::new(region, cell);
        let cols = (region.width() / cell).ceil() as i64;
        let rows = (region.height() / cell).ceil() as i64;
        for a in 0..cols {
            for b in 0..rows {
                let idx = fading_geom::CellIndex { a, b };
                let color = GRID_COLORS[grid.color_of(idx).0 as usize];
                let o = grid.cell_origin(idx);
                scene.rect(o.x, o.y, cell, cell, color, 0.6);
            }
        }
    }
    // Deletion disks behind links.
    if let (Some(factor), Some(s)) = (options.deletion_radius_factor, schedule) {
        for id in s.iter() {
            let l = links.link(id);
            scene.circle(
                l.receiver.x,
                l.receiver.y,
                factor * l.length(),
                "#c23b3b",
                0.07,
            );
        }
    }
    // Links.
    for l in links.links() {
        let scheduled = schedule.is_some_and(|s| s.contains(l.id));
        let (stroke, width) = if scheduled {
            ("#1a7a2e", 2.5)
        } else {
            ("#b8b8b8", 1.0)
        };
        scene.line(
            l.sender.x,
            l.sender.y,
            l.receiver.x,
            l.receiver.y,
            stroke,
            width,
        );
        if scheduled {
            scene.circle(
                l.sender.x,
                l.sender.y,
                2.0 / 800.0 * region.width(),
                "#1a7a2e",
                1.0,
            );
            scene.circle(
                l.receiver.x,
                l.receiver.y,
                2.0 / 800.0 * region.width(),
                "#114d1d",
                1.0,
            );
        }
    }
    scene.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fading_net::{LinkId, TopologyGenerator, UniformGenerator};

    fn instance() -> LinkSet {
        UniformGenerator::paper(40).generate(1)
    }

    #[test]
    fn produces_wellformed_svg() {
        let svg = render_instance(&instance(), None, &RenderOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<svg").count(), 1);
        // One line per link plus no schedule dots.
        assert_eq!(svg.matches("<line").count(), 40);
    }

    #[test]
    fn scheduled_links_are_highlighted() {
        let links = instance();
        let schedule = Schedule::from_ids([LinkId(0), LinkId(5)]);
        let svg = render_instance(&links, Some(&schedule), &RenderOptions::default());
        assert_eq!(svg.matches("#1a7a2e").count(), 2 + 2); // 2 strokes + 2 sender dots
        assert_eq!(svg.matches("<circle").count(), 4); // 2 links × 2 dots
    }

    #[test]
    fn grid_overlay_tiles_the_region() {
        let links = instance(); // 500×500 region
        let svg = render_instance(
            &links,
            None,
            &RenderOptions {
                grid_cell: Some(125.0),
                ..RenderOptions::default()
            },
        );
        // 4×4 cells + the background rect.
        assert_eq!(svg.matches("<rect").count(), 17);
        for c in GRID_COLORS {
            assert!(svg.contains(c), "missing grid color {c}");
        }
    }

    #[test]
    fn deletion_disks_render_per_scheduled_link() {
        let links = instance();
        let schedule = Schedule::from_ids([LinkId(1), LinkId(2), LinkId(3)]);
        let svg = render_instance(
            &links,
            Some(&schedule),
            &RenderOptions {
                deletion_radius_factor: Some(10.0),
                ..RenderOptions::default()
            },
        );
        // 3 disks + 6 endpoint dots.
        assert_eq!(svg.matches("<circle").count(), 9);
    }

    #[test]
    fn y_axis_is_flipped() {
        let mut scene = SvgScene::new(0.0, 0.0, 100.0, 100.0, 100.0);
        scene.line(0.0, 0.0, 0.0, 100.0, "black", 1.0);
        let svg = scene.finish();
        // World (0,0) maps to pixel y=100 (bottom), world (0,100) to 0.
        assert!(svg.contains(r#"y1="100.00""#), "{svg}");
        assert!(svg.contains(r#"y2="0.00""#));
    }

    #[test]
    #[should_panic(expected = "degenerate world rect")]
    fn rejects_degenerate_world() {
        SvgScene::new(0.0, 0.0, 0.0, 1.0, 100.0);
    }
}
