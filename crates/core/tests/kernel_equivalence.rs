//! The vectorized substrate kernels pinned against their scalar
//! references.
//!
//! Three layers of the same contract:
//! 1. `kernel::debit_dense` must return bit-identical accumulators,
//!    alive bitmaps, and elimination counts vs a plain scalar walk —
//!    proptested over random factor rows, thresholds, and alive
//!    patterns.
//! 2. `kernel::row_sum` must agree with the sequential sum to within
//!    lane-reassociation rounding, and be deterministic.
//! 3. The two-phase hybrid in `eliminate_schedule` (branch-free
//!    full-row debits while most links are alive, compacted walk
//!    after) must produce the exact pick sequence of an always-scalar
//!    reference replication of Algorithm 2.

use fading_core::algo::elim_core::{eliminate_schedule, ElimMetric};
use fading_core::kernel;
use fading_core::Problem;
use fading_net::{LinkId, TopologyGenerator, UniformGenerator};
use proptest::prelude::*;

/// The scalar debit walk `debit_dense` replaces: ascending ids,
/// skipping dead receivers.
fn debit_scalar(row: &[f64], acc: &mut [f64], alive: &mut [bool], threshold: f64) -> u64 {
    let mut newly = 0u64;
    for j in 0..row.len() {
        if alive[j] {
            acc[j] += row[j];
            if acc[j] > threshold {
                alive[j] = false;
                newly += 1;
            }
        }
    }
    newly
}

proptest! {
    /// For every receiver that is alive going in, the branch-free
    /// kernel leaves bit-identical accumulator state and the same
    /// verdict as the scalar walk; the newly-eliminated counts match.
    /// (Dead receivers' accumulators are garbage by contract and are
    /// excluded from the comparison.)
    #[test]
    fn debit_dense_matches_scalar_walk(
        row in proptest::collection::vec(0.0f64..1.0, 1..200),
        acc0 in proptest::collection::vec(0.0f64..2.0, 200..201),
        alive_bits in proptest::collection::vec(0u8..2, 200..201),
        threshold in 0.1f64..3.0,
    ) {
        let n = row.len();
        let alive0: Vec<bool> = alive_bits[..n].iter().map(|&b| b == 1).collect();
        let mut acc_s = acc0[..n].to_vec();
        let mut alive_s = alive0.clone();
        let mut acc_v = acc_s.clone();
        let mut alive_v = alive_s.clone();

        let newly_s = debit_scalar(&row, &mut acc_s, &mut alive_s, threshold);
        let newly_v = kernel::debit_dense(&row, &mut acc_v, &mut alive_v, threshold);

        prop_assert_eq!(newly_s, newly_v);
        prop_assert_eq!(&alive_s, &alive_v);
        for j in 0..n {
            if alive0[j] {
                prop_assert_eq!(
                    acc_s[j].to_bits(),
                    acc_v[j].to_bits(),
                    "accumulator {} diverged", j
                );
            }
        }
    }

    /// The lane-blocked sum stays within reassociation rounding of the
    /// sequential sum and is a pure function of its input.
    #[test]
    fn row_sum_close_to_scalar_and_deterministic(
        xs in proptest::collection::vec(0.0f64..10.0, 1..500),
    ) {
        let s = kernel::row_sum_scalar(&xs);
        let v = kernel::row_sum(&xs);
        let tol = 1e-12 * s.abs().max(1.0);
        prop_assert!((s - v).abs() <= tol, "scalar {s} vs lanes {v}");
        prop_assert_eq!(v.to_bits(), kernel::row_sum(&xs).to_bits());
    }
}

/// Always-scalar replication of `run_untraced` for the FadingFactor
/// metric: same pick order, same radius deletions (same `dist² ≤ r²`
/// predicate as the spatial hash), same ascending full-row debit walk.
fn reference_rle_picks(p: &Problem, c1: f64, c2: f64) -> Vec<u32> {
    let links = p.links();
    let n = links.len();
    let mut order: Vec<LinkId> = links.ids().collect();
    order.sort_by(|&a, &b| links.length(a).total_cmp(&links.length(b)).then(a.cmp(&b)));
    let threshold = c2 * p.gamma_eps();
    let mut alive = vec![true; n];
    let mut acc = vec![0.0f64; n];
    let mut picked = Vec::new();
    for &i in &order {
        if !alive[i.index()] {
            continue;
        }
        alive[i.index()] = false;
        picked.push(i.0);
        let receiver = links.link(i).receiver;
        let radius = c1 * links.length(i);
        for j in links.ids() {
            if alive[j.index()] && links.link(j).sender.distance_sq(&receiver) <= radius * radius {
                alive[j.index()] = false;
            }
        }
        let row = p
            .factors()
            .dense_row(i)
            .expect("reference requires the dense backend");
        for j in 0..n {
            if alive[j] {
                acc[j] += row[j];
                if acc[j] > threshold {
                    alive[j] = false;
                }
            }
        }
    }
    picked
}

/// The production hybrid (which starts branch-free and switches to the
/// compacted walk once survivors drop below 25%) must make the exact
/// pick sequence of the always-scalar reference, at sizes that
/// exercise the crossover and both sides of `PARALLEL_THRESHOLD`.
#[test]
fn hybrid_rle_matches_scalar_reference() {
    for &(n, seed) in &[(60usize, 20170714u64), (300, 42), (900, 7)] {
        let p = Problem::paper(UniformGenerator::paper(n).generate(seed), 3.0);
        for &c1 in &[1.5, 4.0, 12.0] {
            // `Schedule` stores its members id-sorted; the reference
            // records pick order. Compare as sets of scheduled links.
            let mut expect = reference_rle_picks(&p, c1, 0.5);
            expect.sort_unstable();
            let got: Vec<u32> = eliminate_schedule(&p, c1, 0.5, ElimMetric::FadingFactor)
                .iter()
                .map(|id| id.0)
                .collect();
            assert_eq!(got, expect, "n={n} seed={seed} c1={c1}");
        }
    }
}
