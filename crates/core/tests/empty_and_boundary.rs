//! Degenerate-instance hardening: zero-link problems, restriction to
//! the empty set, and mutation down to (and back up from) empty must
//! be well-defined on both interference backends, for every registered
//! scheduler. Regression tests for the empty-row panic family in the
//! sparse CSR builder (`row_start.last().unwrap()` on n = 0 rows and
//! the restrict/add_links paths).

use fading_channel::ChannelParams;
use fading_core::mutate::LinkSpec;
use fading_core::{AlgoId, BackendChoice, Problem, SparseConfig};
use fading_geom::{Point2, Rect};
use fading_net::{LinkId, LinkSet, TopologyGenerator, UniformGenerator};

fn empty_problem(backend: BackendChoice) -> Problem {
    let links = LinkSet::new(Rect::square(10.0), vec![]);
    Problem::builder(links, ChannelParams::paper_defaults())
        .backend(backend)
        .build()
}

fn backends() -> [BackendChoice; 2] {
    [
        BackendChoice::Dense,
        BackendChoice::Sparse(SparseConfig::default()),
    ]
}

#[test]
fn zero_link_problem_is_schedulable_by_every_algorithm() {
    for backend in backends() {
        let p = empty_problem(backend);
        assert_eq!(p.len(), 0);
        for algo in AlgoId::ALL {
            let s = algo.build(1).schedule(&p);
            assert!(s.is_empty(), "{algo} on empty ({backend:?})");
        }
    }
}

#[test]
fn restrict_to_nothing_yields_a_working_empty_problem() {
    for backend in backends() {
        let links = UniformGenerator::paper(40).generate(11);
        let parent = Problem::builder(links, ChannelParams::paper_defaults())
            .backend(backend)
            .build();
        let (sub, mapping) = parent.restrict(&[]);
        assert_eq!(sub.len(), 0);
        assert!(mapping.is_empty());
        for algo in AlgoId::ALL {
            assert!(algo.build(1).schedule(&sub).is_empty());
        }
        // The restricted-empty instance accepts arrivals again.
        let mut sub = sub;
        let ids = sub
            .add_links(&[LinkSpec::new(Point2::new(1.0, 1.0), Point2::new(2.0, 1.0))])
            .unwrap();
        assert_eq!(ids, vec![LinkId(0)]);
        assert_eq!(sub.len(), 1);
    }
}

#[test]
fn growing_from_empty_matches_a_batch_build() {
    for backend in backends() {
        let mut grown = empty_problem(backend);
        let seeds = UniformGenerator::paper(12).generate(29);
        let specs: Vec<LinkSpec> = seeds
            .links()
            .iter()
            .map(|l| LinkSpec::new(l.sender, l.receiver))
            .collect();
        grown.add_links(&specs).unwrap();
        let batch = Problem::builder(seeds, ChannelParams::paper_defaults())
            .backend(backend)
            .build();
        assert_eq!(grown.len(), 12);
        for i in grown.links().ids() {
            for j in grown.links().ids() {
                assert_eq!(
                    grown.factor(i, j).to_bits(),
                    batch.factor(i, j).to_bits(),
                    "f({i},{j}) after growth from empty ({backend:?})"
                );
            }
        }
    }
}

#[test]
fn removing_every_link_leaves_a_usable_instance() {
    for backend in backends() {
        let links = UniformGenerator::paper(15).generate(31);
        let mut p = Problem::builder(links, ChannelParams::paper_defaults())
            .backend(backend)
            .build();
        let all: Vec<LinkId> = p.links().ids().collect();
        p.remove_links(&all);
        assert_eq!(p.len(), 0);
        for algo in AlgoId::ALL {
            assert!(algo.build(1).schedule(&p).is_empty());
        }
        // And it accepts arrivals after hitting empty.
        p.add_links(&[LinkSpec::new(Point2::new(3.0, 3.0), Point2::new(4.5, 3.0))])
            .unwrap();
        assert_eq!(p.len(), 1);
        let s = AlgoId::Rle.build(1).schedule(&p);
        assert_eq!(s.len(), 1);
    }
}

#[test]
fn removing_no_links_is_a_no_op_mutation() {
    for backend in backends() {
        let links = UniformGenerator::paper(10).generate(37);
        let mut p = Problem::builder(links, ChannelParams::paper_defaults())
            .backend(backend)
            .build();
        let before: Vec<u64> = p
            .links()
            .ids()
            .flat_map(|i| p.links().ids().map(move |j| (i, j)))
            .map(|(i, j)| p.factor(i, j).to_bits())
            .collect();
        assert!(p.remove_links(&[]).is_empty());
        let after: Vec<u64> = p
            .links()
            .ids()
            .flat_map(|i| p.links().ids().map(move |j| (i, j)))
            .map(|(i, j)| p.factor(i, j).to_bits())
            .collect();
        assert_eq!(before, after);
    }
}
