//! The engine's headline guarantee, asserted literally: steady-state
//! `schedule_in` calls with a warm [`SchedCtx`] perform **zero heap
//! allocations** for RLE and LDP.
//!
//! A counting `#[global_allocator]` wraps the system allocator; this
//! file is its own test binary with a single `#[test]` so no other
//! test's allocations pollute the counters.

use fading_core::algo::{Ldp, Rle};
use fading_core::{BackendChoice, Problem, SchedCtx, Scheduler, SparseConfig};
use fading_net::{TopologyGenerator, UniformGenerator};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A realloc that moves (or grows in place) still touches the
        // heap; count it like an allocation.
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn warm_schedule_in_is_allocation_free_for_rle_and_ldp() {
    let n = 256;
    // A few instances so reuse is exercised across *different*
    // problems, not just repeated calls on one — and on *both*
    // interference backends: the sparse CSR walk (including its
    // envelope state) must be as allocation-free as the dense rows.
    let mut problems: Vec<Problem> = (0..3)
        .map(|seed| Problem::paper(UniformGenerator::paper(n).generate(seed), 3.0))
        .collect();
    problems.extend((3..6).map(|seed| {
        Problem::builder(
            UniformGenerator::paper(n).generate(seed),
            fading_channel::ChannelParams::with_alpha(3.0),
        )
        .backend(BackendChoice::Sparse(SparseConfig::default()))
        .build()
    }));
    let schedulers: [&dyn Scheduler; 2] = [&Rle::new(), &Ldp::new()];

    for scheduler in schedulers {
        let mut ctx = SchedCtx::new();
        // Warm-up pass: sizes every buffer and stabilizes the hash
        // tables' key sets for these instances.
        for p in &problems {
            let s = scheduler.schedule_in(p, &mut ctx);
            ctx.recycle(s);
        }

        let before = allocations();
        for _round in 0..5 {
            for p in &problems {
                let s = scheduler.schedule_in(p, &mut ctx);
                ctx.recycle(s);
            }
        }
        let during = allocations() - before;
        assert_eq!(
            during,
            0,
            "{}: {during} heap allocations in 30 warm schedule_in calls",
            scheduler.name()
        );
    }

    // Sanity: the counter itself works (cold scheduling allocates).
    let before = allocations();
    let _ = Rle::new().schedule(&problems[0]);
    assert!(allocations() > before, "counting allocator is wired up");
}
