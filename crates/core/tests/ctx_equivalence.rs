//! Workspace-reuse equivalence (the ctx contract).
//!
//! A [`SchedCtx`] carries capacity only, never semantic state:
//! `schedule_in` through a *dirty* reused workspace — one that just
//! scheduled a different instance, of a different size, under a
//! different backend — must be bit-identical to a fresh `schedule()`.
//! Pinned across random topologies, path-loss exponents, both
//! interference backends, and non-uniform power scales.

use fading_channel::ChannelParams;
use fading_core::algo::{ApproxDiversity, ApproxLogN, Dls, GreedyRate, Ldp, Rle};
use fading_core::{BackendChoice, Problem, SchedCtx, Scheduler, SparseConfig};
use fading_net::{TopologyGenerator, UniformGenerator};
use proptest::prelude::*;

const ALPHAS: [f64; 3] = [2.5, 3.0, 4.0];

fn build(n: usize, seed: u64, alpha: f64, sparse: bool, powered: bool) -> Problem {
    let links = UniformGenerator::paper(n).generate(seed);
    let backend = if sparse {
        BackendChoice::Sparse(SparseConfig::default())
    } else {
        BackendChoice::Dense
    };
    let builder = Problem::builder(links, ChannelParams::with_alpha(alpha)).backend(backend);
    if powered {
        let scales: Vec<f64> = (0..n).map(|i| 0.5 + (i % 5) as f64 * 0.375).collect();
        builder.power_scales(scales).build()
    } else {
        builder.build()
    }
}

/// Every built-in scheduler that threads real scratch state through
/// the ctx (the stochastic ones are covered via their deterministic
/// seeds elsewhere; `LocalSearch` delegates to these bases).
fn schedulers() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(Rle::new()),
        Box::new(Ldp::new()),
        Box::new(Ldp::two_sided()),
        Box::new(Dls::new()),
        Box::new(GreedyRate),
        Box::new(ApproxLogN),
        Box::new(ApproxDiversity::new()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Dirty-ctx `schedule_in` ≡ fresh `schedule()` for every
    /// scheduler, α, backend, and power model.
    #[test]
    fn dirty_ctx_schedules_bit_identically(
        seed in 0u64..1000,
        n in 20usize..120,
        alpha_i in 0usize..ALPHAS.len(),
        sparse_i in 0usize..2,
        powered_i in 0usize..2,
    ) {
        let (sparse, powered) = (sparse_i == 1, powered_i == 1);
        let alpha = ALPHAS[alpha_i];
        let p = build(n, seed, alpha, sparse, powered);
        // Dirty the workspace on a *different* instance: larger,
        // other backend, other α, so every buffer holds stale state.
        let decoy = build(n + 40, seed ^ 0x9e37, ALPHAS[(alpha_i + 1) % 3], !sparse, !powered);
        for s in schedulers() {
            let mut ctx = SchedCtx::new();
            let stale = s.schedule_in(&decoy, &mut ctx);
            ctx.recycle(stale);
            let warm = s.schedule_in(&p, &mut ctx);
            let fresh = s.schedule(&p);
            prop_assert_eq!(&warm, &fresh, "{} diverged under reuse", s.name());
            // And again: the second reuse must also match.
            let warm2 = s.schedule_in(&p, &mut ctx);
            prop_assert_eq!(&warm2, &fresh, "{} diverged on second reuse", s.name());
        }
    }
}
