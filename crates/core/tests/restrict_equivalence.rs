//! Restriction substrate equivalence (the tentpole contract).
//!
//! `Problem::restrict` derives a sub-problem's interference state from
//! its parent — a row/column slice of the dense matrix, a remapped CSR
//! sub-view of the sparse store — instead of rebuilding from geometry.
//! These properties pin that the derived state is indistinguishable
//! from a rebuild: same schedules, same feasibility verdicts, same
//! (bit-identical) scalar factors, across backends, path-loss
//! exponents, power scales, and random keep-subsets.

use fading_channel::ChannelParams;
use fading_core::algo::{GreedyRate, Ldp, Rle};
use fading_core::feasibility::is_feasible;
use fading_core::{BackendChoice, Problem, Schedule, Scheduler, SparseConfig};
use fading_net::{LinkId, TopologyGenerator, UniformGenerator};
use proptest::prelude::*;

const ALPHAS: [f64; 3] = [2.5, 3.0, 4.0];
/// Exhaustive-at-paper-scale and genuinely-truncating cuts.
const TAIL_RTOLS: [f64; 2] = [1e-3, 5e-1];

/// A parent problem under the requested backend and power model.
fn parent(n: usize, seed: u64, alpha: f64, backend: BackendChoice, powered: bool) -> Problem {
    let links = UniformGenerator::paper(n).generate(seed);
    let params = ChannelParams::with_alpha(alpha);
    if powered {
        let scales: Vec<f64> = (0..n).map(|i| 0.5 + (i % 5) as f64 * 0.375).collect();
        Problem::builder(links, params)
            .power_scales(scales)
            .backend(backend)
            .build()
    } else {
        Problem::builder(links, params).backend(backend).build()
    }
}

/// The keep-subset encoded by `mask` (always non-empty: id 0 is forced
/// in when the mask selects nothing).
fn keep_subset(n: usize, mask: u64) -> Vec<LinkId> {
    let keep: Vec<LinkId> = (0..n)
        .filter(|&i| mask & (1 << (i % 64)) != 0)
        .map(|i| LinkId(i as u32))
        .collect();
    if keep.is_empty() {
        vec![LinkId(0)]
    } else {
        keep
    }
}

/// A from-scratch rebuild of the sub-instance with the parent's full
/// configuration — the path `restrict` replaces.
fn rebuild(parent: &Problem, keep: &[LinkId]) -> Problem {
    let (links, mapping) = parent.links().restrict(keep);
    let builder = Problem::builder(links, *parent.params())
        .epsilon(parent.epsilon())
        .backend(parent.backend_choice());
    match parent.power_scales() {
        Some(p) => builder
            .power_scales(mapping.iter().map(|id| p[id.index()]).collect())
            .build(),
        None => builder.build(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Restrict-then-schedule ≡ rebuild-then-schedule: identical
    /// schedules and identical feasibility verdicts on both backends.
    #[test]
    fn restrict_then_schedule_equals_rebuild_then_schedule(
        n in 4usize..40,
        seed in 0u64..5_000,
        alpha_idx in 0usize..3,
        rtol_idx in 0usize..2,
        sparse_bit in 0usize..2,
        powered_bit in 0usize..2,
        mask in 1u64..u64::MAX,
    ) {
        let backend = if sparse_bit == 1 {
            BackendChoice::Sparse(SparseConfig { tail_rtol: TAIL_RTOLS[rtol_idx] })
        } else {
            BackendChoice::Dense
        };
        let parent = parent(n, seed, ALPHAS[alpha_idx], backend, powered_bit == 1);
        let keep = keep_subset(n, mask);
        let (sub, mapping) = parent.restrict(&keep);
        let rebuilt = rebuild(&parent, &keep);
        prop_assert_eq!(&mapping, &keep);
        prop_assert_eq!(sub.links(), rebuilt.links());
        prop_assert_eq!(sub.factors().name(), rebuilt.factors().name());

        let schedulers: [&dyn Scheduler; 3] = [&Rle::new(), &Ldp::new(), &GreedyRate];
        for s in schedulers {
            let from_restrict = s.schedule(&sub);
            let from_rebuild = s.schedule(&rebuilt);
            prop_assert_eq!(&from_restrict, &from_rebuild, "{} diverged", s.name());
            prop_assert_eq!(
                is_feasible(&sub, &from_restrict),
                is_feasible(&rebuilt, &from_restrict)
            );
        }
    }

    /// Scalar factors of the derived sub-problem are bit-identical to
    /// the rebuild's, and both equal the parent's mapped factors — the
    /// foundation verdict agreement rests on.
    #[test]
    fn restricted_factors_match_parent_and_rebuild(
        n in 2usize..30,
        seed in 0u64..5_000,
        alpha_idx in 0usize..3,
        sparse_bit in 0usize..2,
        powered_bit in 0usize..2,
        mask in 1u64..u64::MAX,
    ) {
        let backend = if sparse_bit == 1 {
            BackendChoice::Sparse(SparseConfig { tail_rtol: 5e-1 })
        } else {
            BackendChoice::Dense
        };
        let parent = parent(n, seed, ALPHAS[alpha_idx], backend, powered_bit == 1);
        let keep = keep_subset(n, mask);
        let (sub, mapping) = parent.restrict(&keep);
        let rebuilt = rebuild(&parent, &keep);
        for a in sub.links().ids() {
            for b in sub.links().ids() {
                let from_parent = parent.factor(mapping[a.index()], mapping[b.index()]);
                prop_assert_eq!(sub.factor(a, b).to_bits(), from_parent.to_bits());
                prop_assert_eq!(sub.factor(a, b).to_bits(), rebuilt.factor(a, b).to_bits());
            }
        }
        // Subset feasibility verdicts coincide too.
        let every_other = Schedule::from_ids(sub.links().ids().filter(|id| id.index() % 2 == 0));
        prop_assert_eq!(
            is_feasible(&sub, &every_other),
            is_feasible(&rebuilt, &every_other)
        );
    }
}

/// Restriction preserves the whole configuration: `ε`, channel
/// parameters, per-link power scales (sliced), and the backend — the
/// sparse backend no longer silently reverts to dense.
#[test]
fn restrict_preserves_configuration() {
    let n = 30;
    let scales: Vec<f64> = (0..n).map(|i| 0.5 + (i % 7) as f64 * 0.25).collect();
    let p = Problem::builder(
        UniformGenerator::paper(n).generate(3),
        ChannelParams::with_alpha(3.5),
    )
    .epsilon(0.02)
    .power_scales(scales.clone())
    .backend(BackendChoice::Sparse(SparseConfig { tail_rtol: 1e-2 }))
    .build();
    let keep: Vec<LinkId> = [0u32, 7, 11, 19, 28].iter().map(|&i| LinkId(i)).collect();
    let (sub, mapping) = p.restrict(&keep);
    assert_eq!(sub.len(), keep.len());
    assert_eq!(sub.epsilon(), p.epsilon());
    assert_eq!(sub.params(), p.params());
    assert_eq!(sub.factors().name(), "sparse", "backend must survive");
    assert_eq!(
        sub.backend_choice(),
        p.backend_choice(),
        "truncation policy must survive"
    );
    let sub_scales = sub.power_scales().expect("power scales must survive");
    for (a, &orig) in mapping.iter().enumerate() {
        assert_eq!(sub_scales[a], scales[orig.index()]);
    }
}

/// An empty keep-set restricts to an empty problem on both backends.
#[test]
fn restrict_to_nothing_is_empty() {
    for backend in [
        BackendChoice::Dense,
        BackendChoice::Sparse(SparseConfig::default()),
    ] {
        let p = Problem::builder(
            UniformGenerator::paper(10).generate(4),
            ChannelParams::paper_defaults(),
        )
        .backend(backend)
        .build();
        let (sub, mapping) = p.restrict(&[]);
        assert!(sub.is_empty());
        assert!(mapping.is_empty());
    }
}
