//! Dense/sparse backend equivalence (the tentpole contract).
//!
//! The sparse backend truncates *storage*, never *semantics*: scalar
//! factor lookups recompute Eq. (17) exactly, and every verdict-producing
//! check resolves a straddling certified envelope by exact recomputation.
//! These properties pin that contract across random topologies, path-loss
//! exponents, power scales, and truncation strengths — including
//! `tail_rtol` values large enough to force real truncation at paper
//! densities.

use fading_channel::ChannelParams;
use fading_core::algo::{Dls, GreedyRate, Ldp, Rle};
use fading_core::feasibility::{is_feasible, InterferenceAccumulator};
use fading_core::{
    BackendChoice, InterferenceModel, Problem, Schedule, Scheduler, SparseConfig,
    SparseInterference,
};
use fading_net::{LinkId, TopologyGenerator, UniformGenerator};
use proptest::prelude::*;

const ALPHAS: [f64; 3] = [2.5, 3.0, 4.0];
/// From barely-truncating to aggressive (R ≈ 6·d_jj at α = 3).
const TAIL_RTOLS: [f64; 3] = [1e-3, 1e-1, 5e-1];

/// A dense and a sparse build of the same instance.
fn build_pair(
    n: usize,
    seed: u64,
    alpha: f64,
    tail_rtol: f64,
    powered: bool,
) -> (Problem, Problem) {
    let links = UniformGenerator::paper(n).generate(seed);
    let params = ChannelParams::with_alpha(alpha);
    let sparse = BackendChoice::Sparse(SparseConfig { tail_rtol });
    if powered {
        let scales: Vec<f64> = (0..n).map(|i| 0.5 + (i % 5) as f64 * 0.375).collect();
        (
            Problem::builder(links.clone(), params)
                .power_scales(scales.clone())
                .build(),
            Problem::builder(links, params)
                .power_scales(scales)
                .backend(sparse)
                .build(),
        )
    } else {
        (
            Problem::new(links.clone(), params, 0.01),
            Problem::builder(links, params).backend(sparse).build(),
        )
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Scalar factor lookups are bit-identical between backends — the
    /// foundation every other equivalence rests on.
    #[test]
    fn factors_are_bit_identical(
        n in 2usize..40,
        seed in 0u64..5_000,
        alpha_idx in 0usize..3,
        rtol_idx in 0usize..3,
        powered_bit in 0usize..2,
    ) {
        let (dense, sparse) =
            build_pair(n, seed, ALPHAS[alpha_idx], TAIL_RTOLS[rtol_idx], powered_bit == 1);
        for i in dense.links().ids() {
            for j in dense.links().ids() {
                prop_assert_eq!(
                    dense.factor(i, j).to_bits(),
                    sparse.factor(i, j).to_bits(),
                    "f({}, {})", i, j
                );
            }
        }
    }

    /// Every deterministic scheduler produces the same schedule on both
    /// backends — feasibility verdicts never flip under truncation.
    #[test]
    fn schedulers_agree_on_every_backend(
        n in 2usize..50,
        seed in 0u64..5_000,
        alpha_idx in 0usize..3,
        rtol_idx in 0usize..3,
        powered_bit in 0usize..2,
    ) {
        let (dense, sparse) =
            build_pair(n, seed, ALPHAS[alpha_idx], TAIL_RTOLS[rtol_idx], powered_bit == 1);
        let schedulers: [&dyn Scheduler; 4] =
            [&Rle::new(), &Ldp::new(), &GreedyRate, &Dls::new()];
        for s in schedulers {
            let d = s.schedule(&dense);
            let p = s.schedule(&sparse);
            prop_assert_eq!(&d, &p, "{} diverged", s.name());
            prop_assert!(is_feasible(&dense, &d));
        }
    }

    /// Accumulated sums: the sparse stored sum is a lower bound within
    /// the certified envelope `|S|·tail_cut(j)` of the dense sum, the
    /// exact fallback reproduces the dense accumulation bit-for-bit, and
    /// per-step greedy admission verdicts coincide.
    #[test]
    fn accumulator_sums_stay_inside_the_certified_envelope(
        n in 2usize..40,
        seed in 0u64..5_000,
        alpha_idx in 0usize..3,
        rtol_idx in 0usize..3,
        powered_bit in 0usize..2,
    ) {
        let (dense, sparse) =
            build_pair(n, seed, ALPHAS[alpha_idx], TAIL_RTOLS[rtol_idx], powered_bit == 1);
        let budget = dense.gamma_eps();
        let mut acc_d = InterferenceAccumulator::new(&dense);
        let mut acc_s = InterferenceAccumulator::new(&sparse);
        for id in dense.links().ids() {
            let admit_d = acc_d.addition_is_feasible(id, budget);
            let admit_s = acc_s.addition_is_feasible(id, budget);
            prop_assert_eq!(admit_d, admit_s, "admission verdict flipped at {}", id);
            if admit_d {
                acc_d.select(id);
                acc_s.select(id);
            }
        }
        for j in dense.links().ids() {
            let exact = acc_d.sum_on(j);
            let lo = acc_s.sum_on(j);
            let tail = acc_s.tail_on(j);
            // A hair of slack: both sums round independently per term.
            let slack = 1e-9 * (1.0 + exact.abs());
            prop_assert!(
                lo <= exact + slack && exact <= lo + tail + slack,
                "envelope violated on {j}: stored {lo}, exact {exact}, tail {tail}"
            );
            prop_assert_eq!(
                acc_s.exact_sum_on(j).to_bits(),
                exact.to_bits(),
                "exact fallback diverged on {}", j
            );
        }
    }

    /// Subset feasibility verdicts (the report path) coincide, and the
    /// sparse backend's discarded mass per receiver respects the
    /// per-factor cut: every omitted factor is individually `< τ`.
    #[test]
    fn subset_verdicts_and_omitted_factors_respect_the_cut(
        n in 2usize..40,
        seed in 0u64..5_000,
        alpha_idx in 0usize..3,
        rtol_idx in 0usize..3,
        stride in 1usize..4,
    ) {
        let (dense, sparse) =
            build_pair(n, seed, ALPHAS[alpha_idx], TAIL_RTOLS[rtol_idx], false);
        let subset = Schedule::from_ids(
            dense.links().ids().filter(|id| id.index() % stride == 0),
        );
        prop_assert_eq!(
            is_feasible(&dense, &subset),
            is_feasible(&sparse, &subset)
        );
        let model = sparse.factors().as_sparse().expect("sparse backend");
        for j in dense.links().ids() {
            let cut = model.tail_cut(j);
            let mut stored = vec![false; n];
            let mut mismatched = None;
            model.for_each_in(j, &mut |i: LinkId, f: f64| {
                stored[i.index()] = true;
                if f.to_bits() != dense.factor(i, j).to_bits() {
                    mismatched = Some(i);
                }
            });
            prop_assert_eq!(mismatched, None, "in-factor diverged on receiver {}", j);
            for i in dense.links().ids() {
                if i != j && !stored[i.index()] {
                    prop_assert!(
                        dense.factor(i, j) < cut,
                        "omitted f({i},{j}) = {} ≥ cut {cut}",
                        dense.factor(i, j)
                    );
                }
            }
        }
    }
}

/// The certified configuration stores the paper workload exhaustively:
/// truncation is invisible even to raw sum comparisons, so the Fig. 5
/// pipeline can run sparse with zero tail by construction.
#[test]
fn certified_config_is_exhaustive_on_the_paper_workload() {
    let links = UniformGenerator::paper(120).generate(20170714);
    let sparse = SparseInterference::build(
        &links,
        &fading_channel::RayleighChannel::new(ChannelParams::with_alpha(3.0)),
        fading_math::gamma_eps(0.01),
        SparseConfig::certified(),
    );
    assert_eq!(sparse.max_tail_cut(), 0.0);
    assert!(sparse.is_exact());
}
