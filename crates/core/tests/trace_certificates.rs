//! Trace-as-certificate acceptance tests.
//!
//! Three properties pin the provenance subsystem:
//! 1. **Determinism** — the same seed yields a byte-identical JSONL
//!    trace, pinned by a golden file (regenerate with
//!    `TRACE_REGEN_GOLDEN=1 cargo test -p fading-core --test
//!    trace_certificates golden`).
//! 2. **Soundness** — the replay verifier accepts every trace the real
//!    schedulers emit (64 random instances across α, backends, and
//!    power profiles) and reconstructs the exact emitted schedule.
//! 3. **Tamper-evidence** — mutated traces (flipped elimination cause,
//!    inflated budget debit, dropped pick) are rejected.
//!
//! The trace ring is process-global, so every test that records a
//! trace serializes on [`LOCK`].

use fading_core::algo::{Ldp, Rle};
use fading_core::{verify_schedule, BackendChoice, Problem, Scheduler};
use fading_net::{RateModel, TopologyGenerator, UniformGenerator};
use fading_obs::{ElimCause, Trace, TraceEvent};
use proptest::prelude::*;
use std::sync::Mutex;

static LOCK: Mutex<()> = Mutex::new(());

fn traced_run(problem: &Problem, scheduler: &dyn Scheduler) -> (fading_core::Schedule, Trace) {
    fading_obs::set_tracing(true);
    let _ = fading_obs::take_trace();
    let schedule = scheduler.schedule(problem);
    fading_obs::set_tracing(false);
    (schedule, fading_obs::take_trace())
}

/// Instance `i` of the acceptance grid: cycles α through the paper's
/// {2.5, 3, 4}, alternates dense/sparse backends, and gives every
/// other instance a non-uniform power profile.
fn grid_problem(i: u64) -> Problem {
    let alpha = [2.5, 3.0, 4.0][(i % 3) as usize];
    let backend = if i.is_multiple_of(2) {
        BackendChoice::Dense
    } else {
        BackendChoice::Sparse(Default::default())
    };
    let n = 60 + (i as usize % 4) * 30;
    let links = UniformGenerator::paper(n).generate(1000 + i);
    let params = fading_channel::ChannelParams::with_alpha(alpha);
    if i % 4 < 2 {
        Problem::builder(links, params).backend(backend).build()
    } else {
        let scales: Vec<f64> = (0..n).map(|j| 0.5 + (j % 5) as f64 * 0.375).collect();
        Problem::builder(links, params)
            .power_scales(scales)
            .backend(backend)
            .build()
    }
}

#[test]
fn replay_accepts_64_instances_across_alpha_backends_and_powers() {
    let _guard = LOCK.lock().unwrap();
    for i in 0..64u64 {
        let problem = grid_problem(i);
        for scheduler in [&Rle::new() as &dyn Scheduler, &Ldp::new()] {
            let (schedule, trace) = traced_run(&problem, scheduler);
            let cert = verify_schedule(&problem, &trace, &schedule).unwrap_or_else(|e| {
                panic!("instance {i}, {}: replay failed: {e}", scheduler.name())
            });
            assert_eq!(
                cert.schedule.ids(),
                schedule.ids(),
                "instance {i}, {}: replay reconstructed a different schedule",
                scheduler.name()
            );
            assert!(
                cert.ledger_checked,
                "instance {i}, {}: γ_ε ledger not audited",
                scheduler.name()
            );
        }
    }
}

#[test]
fn same_seed_produces_byte_identical_traces() {
    let _guard = LOCK.lock().unwrap();
    let run = || {
        let links = UniformGenerator::paper(120).generate(77);
        let problem = Problem::paper(links, 3.0);
        let (_, trace) = traced_run(&problem, &Rle::new());
        trace.to_jsonl()
    };
    assert_eq!(run(), run(), "RLE trace must be byte-deterministic");

    // LDP with uniform (fixed) rates is also byte-deterministic: cell
    // utilities are sums of equal rates, so the float summation order
    // behind the per-color HashMap cannot change the totals.
    let run_ldp = || {
        let gen = UniformGenerator {
            rates: RateModel::Fixed(1.0),
            ..UniformGenerator::paper(120)
        };
        let problem = Problem::paper(gen.generate(77), 3.0);
        let (_, trace) = traced_run(&problem, &Ldp::new());
        trace.to_jsonl()
    };
    assert_eq!(run_ldp(), run_ldp(), "LDP trace must be byte-deterministic");
}

#[test]
fn golden_rle_trace_is_stable() {
    let _guard = LOCK.lock().unwrap();
    // The golden file pins the JSONL schema and the scheduler's
    // decision sequence; a diff means either the record format or RLE
    // itself changed. Regenerate deliberately with
    // `TRACE_REGEN_GOLDEN=1 cargo test -p fading-core --test
    // trace_certificates golden`.
    let gen = UniformGenerator {
        rates: RateModel::Fixed(1.0),
        ..UniformGenerator::paper(40)
    };
    let problem = Problem::paper(gen.generate(9), 3.0);
    let (_, trace) = traced_run(&problem, &Rle::new());
    let jsonl = trace.to_jsonl();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden_rle_trace.jsonl");
    if std::env::var_os("TRACE_REGEN_GOLDEN").is_some() {
        std::fs::write(path, &jsonl).unwrap();
    }
    let golden = include_str!("golden_rle_trace.jsonl");
    assert_eq!(jsonl.trim(), golden.trim(), "golden RLE trace drifted");
    // The pinned trace is itself a valid certificate.
    let reloaded = Trace::from_jsonl(golden).unwrap();
    assert!(fading_core::replay_trace(&problem, &reloaded).is_ok());
}

/// Applies `mutate` to a cloned event list and asserts replay rejects
/// the result. Returns false (skip) when the trace has no event the
/// mutation applies to.
fn mutation_is_rejected(
    problem: &Problem,
    trace: &Trace,
    mutate: impl Fn(&mut Vec<TraceEvent>) -> bool,
) -> bool {
    let mut events = trace.events.clone();
    if !mutate(&mut events) {
        return false;
    }
    let tampered = Trace { events, dropped: 0 };
    fading_core::replay_trace(problem, &tampered).is_err()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every trace the real schedulers emit is accepted, and simple
    /// tampering (the forgeries a buggy reimplementation would
    /// produce) is caught.
    #[test]
    fn replay_accepts_genuine_and_rejects_tampered(seed in 0u64..10_000, n in 40usize..140) {
        let _guard = LOCK.lock().unwrap();
        let links = UniformGenerator::paper(n).generate(seed);
        let problem = Problem::paper(links, 3.0);

        for scheduler in [&Rle::new() as &dyn Scheduler, &Ldp::new()] {
            let (schedule, trace) = traced_run(&problem, scheduler);
            prop_assert!(
                verify_schedule(&problem, &trace, &schedule).is_ok(),
                "{} genuine trace rejected", scheduler.name()
            );

            // Flip the first elimination's cause.
            let flipped = mutation_is_rejected(&problem, &trace, |events| {
                for e in events.iter_mut() {
                    if let TraceEvent::Eliminate { cause, .. } = e {
                        *cause = match *cause {
                            ElimCause::Radius => ElimCause::BudgetExceeded,
                            _ => ElimCause::Radius,
                        };
                        return true;
                    }
                }
                false
            });

            // Inflate the first budget debit.
            let inflated = mutation_is_rejected(&problem, &trace, |events| {
                for e in events.iter_mut() {
                    if let TraceEvent::BudgetDebit { factor, .. } = e {
                        *factor *= 2.0;
                        return true;
                    }
                }
                false
            });

            // Claim an extra link in the final schedule.
            let padded = mutation_is_rejected(&problem, &trace, |events| {
                for e in events.iter_mut() {
                    if let TraceEvent::End { scheduled } = e {
                        scheduled.push(u32::MAX);
                        return true;
                    }
                }
                false
            });
            prop_assert!(padded, "{}: padded End accepted", scheduler.name());

            // Any mutation that applied must have been rejected; the
            // helper returns false only when no such event exists.
            for (applied, name) in [(flipped, "flipped cause"), (inflated, "inflated debit")] {
                let has_target = trace.events.iter().any(|e| matches!(
                    (name, e),
                    ("flipped cause", TraceEvent::Eliminate { .. })
                        | ("inflated debit", TraceEvent::BudgetDebit { .. })
                ));
                prop_assert!(
                    applied || !has_target,
                    "{}: {name} mutation accepted", scheduler.name()
                );
            }
        }
    }
}
