//! Metric-coverage parity: every scheduler in the workspace must emit
//! its `core.<name>.schedule` span and a `core.<name>.picks` counter,
//! so manifests always account for which algorithm ran and how often.
//!
//! Spans and counters are process-wide accumulators, so this file is a
//! single sequential test: cause-partition checks diff two snapshots
//! and would race against a parallel sibling running the same
//! scheduler.

use fading_core::algo::{
    Anneal, ApproxDiversity, ApproxLogN, Dls, ExactBnb, GraphModel, GreedyRate, Ldp, LocalSearch,
    RandomFeasible, Rle,
};
use fading_core::{Problem, Scheduler};
use fading_net::{TopologyGenerator, UniformGenerator};

/// Every registered scheduler paired with the dotted stat prefix its
/// instrumentation uses. Keep in sync with `fading ... --metrics-out`
/// output and `docs/observability.md`.
fn registry() -> Vec<(Box<dyn Scheduler>, &'static str)> {
    vec![
        (Box::new(Ldp::new()), "core.ldp"),
        (Box::new(Ldp::two_sided()), "core.ldp"),
        (Box::new(Rle::new()), "core.rle"),
        (Box::new(ApproxLogN), "core.approx_logn"),
        (Box::new(ApproxDiversity::new()), "core.approx_diversity"),
        (Box::new(GreedyRate), "core.greedy"),
        (Box::new(RandomFeasible::new(7)), "core.random"),
        (Box::new(Dls::new()), "core.dls"),
        (Box::new(ExactBnb::new()), "core.exact"),
        (Box::new(Anneal::new(7)), "core.anneal"),
        (Box::new(LocalSearch::new(GreedyRate)), "core.local_search"),
        (Box::new(GraphModel::pairwise_budget()), "core.graph_model"),
    ]
}

fn counter_value(snapshot: &fading_obs::MetricsSnapshot, name: &str) -> u64 {
    snapshot.counters.get(name).copied().unwrap_or(0)
}

#[test]
fn every_scheduler_emits_its_schedule_span_and_picks_counter() {
    // Small instance: ExactBnb is in the registry and exponential in n.
    let links = UniformGenerator::paper(12).generate(5);
    let problem = Problem::paper(links, 3.0);
    for (scheduler, prefix) in registry() {
        let _ = scheduler.schedule(&problem);
        let spans = fading_obs::span_snapshot();
        let path = format!("{prefix}.schedule");
        assert!(
            fading_obs::span::find(&spans, &path).is_some(),
            "{} ({}) did not record span {path}",
            scheduler.name(),
            prefix
        );
        let metrics = fading_obs::snapshot();
        let picks = format!("{prefix}.picks");
        assert!(
            metrics.counters.contains_key(&picks),
            "{} ({}) did not record counter {picks}",
            scheduler.name(),
            prefix
        );
    }

    // Elimination counters partition by cause: diff two snapshots
    // around a single RLE run (nothing else runs in this binary).
    let links = UniformGenerator::paper(80).generate(11);
    let problem = Problem::paper(links, 3.0);
    let before = fading_obs::snapshot();
    let _ = Rle::new().schedule(&problem);
    let after = fading_obs::snapshot();
    let delta = |name: &str| counter_value(&after, name) - counter_value(&before, name);
    let picks = delta("core.rle.picks");
    let total = delta("core.rle.eliminations");
    let by_cause = delta("core.rle.elim_radius") + delta("core.rle.elim_budget");
    assert!(picks > 0, "RLE scheduled nothing at n=80");
    assert_eq!(total, by_cause, "elimination causes must partition total");
    assert_eq!(
        picks + total,
        80,
        "picks + eliminations must cover the instance"
    );
    assert_eq!(delta("core.rle.rounds"), picks, "one round per pick");
}
