//! Mutation substrate equivalence (the online-engine contract, see
//! `docs/online.md`).
//!
//! `Problem::add_links` / `Problem::remove_links` patch a live
//! instance's interference state in place — dense matrix relayout,
//! sparse CSR row edits plus an envelope reconcile. These properties
//! pin that a mutated instance is *indistinguishable* from a
//! from-scratch build over the final link set: `PartialEq` (which
//! compares every stored factor bit-for-bit), schedules from a warm
//! reused `SchedCtx`, and feasibility verdicts, across backends,
//! path-loss exponents, truncation policies, and non-uniform powers —
//! including the uniform→powered profile transition mid-sequence.

use fading_channel::ChannelParams;
use fading_core::algo::{GreedyRate, Ldp, Rle};
use fading_core::feasibility::is_feasible;
use fading_core::{BackendChoice, LinkSpec, Problem, SchedCtx, Scheduler, SparseConfig};
use fading_geom::Point2;
use fading_net::{LinkId, LinkSet, TopologyGenerator, UniformGenerator};
use proptest::prelude::*;

const ALPHAS: [f64; 3] = [2.5, 3.0, 4.0];
/// Exhaustive-at-paper-scale and genuinely-truncating cuts.
const TAIL_RTOLS: [f64; 2] = [1e-3, 5e-1];

/// A starting instance under the requested backend and power model.
fn initial(n: usize, seed: u64, alpha: f64, backend: BackendChoice, powered: bool) -> Problem {
    let links = UniformGenerator::paper(n).generate(seed);
    let params = ChannelParams::with_alpha(alpha);
    if powered {
        let scales: Vec<f64> = (0..n).map(|i| 0.5 + (i % 5) as f64 * 0.375).collect();
        Problem::builder(links, params)
            .power_scales(scales)
            .backend(backend)
            .build()
    } else {
        Problem::builder(links, params).backend(backend).build()
    }
}

/// A from-scratch build over the mutated problem's current link set
/// and power scales — the path the in-place mutation replaces.
fn rebuild(p: &Problem) -> Problem {
    let links = LinkSet::new(*p.links().region(), p.links().links().to_vec());
    let builder = Problem::builder(links, *p.params())
        .epsilon(p.epsilon())
        .backend(p.backend_choice());
    match p.power_scales() {
        Some(scales) => builder.power_scales(scales.to_vec()).build(),
        None => builder.build(),
    }
}

/// One mutation op decoded from proptest payload: `(kind, x, y, w)`.
/// kind 0/1 → add a link (sender from `(x, y)`, receiver nudged by a
/// `w`-derived offset), kind 2 → remove a `w`-derived victim. Kind 1
/// adds with a non-uniform power scale, exercising the
/// uniform→materialized profile transition when the instance started
/// without power control.
type Op = (u8, f64, f64, f64);

fn apply(problem: &mut Problem, op: Op, tag: usize) {
    let (kind, x, y, w) = op;
    match kind {
        2 if problem.len() > 1 => {
            let victim = LinkId((w.to_bits() % problem.len() as u64) as u32);
            problem.remove_links(&[victim]);
        }
        2 => {} // never empty the instance
        _ => {
            let sender = Point2::new(x, y);
            // Short link, receiver strictly inside the paper region.
            let receiver = Point2::new(
                (x + 1.0 + (w % 7.0)).min(999.75),
                (y + 0.5 + tag as f64 * 0.125).min(999.25),
            );
            let spec = LinkSpec::new(sender, receiver).with_rate(1.0 + (w % 3.0));
            let spec = if kind == 1 {
                spec.with_power_scale(0.5 + (w % 4.0) * 0.375)
            } else {
                spec
            };
            // Coincident positions are rejected with the instance
            // unchanged — a legal no-op for this property.
            let _ = problem.add_links(&[spec]);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// After every op in a random add/remove interleaving, the mutated
    /// instance compares bit-identical (`PartialEq` covers all stored
    /// factors, radii, and cuts) to a from-scratch build, a warm
    /// reused ctx schedules it identically to a fresh one (mutation
    /// epochs invalidate the memos), and feasibility verdicts agree.
    #[test]
    fn mutate_equals_rebuild_at_every_step(
        n in 4usize..24,
        seed in 0u64..5_000,
        alpha_idx in 0usize..3,
        rtol_idx in 0usize..2,
        sparse_bit in 0usize..2,
        powered_bit in 0usize..2,
        ops in proptest::collection::vec(
            (0u8..3, 0.0f64..998.0, 0.0f64..998.0, 0.0f64..100.0),
            1..12,
        ),
    ) {
        let backend = if sparse_bit == 1 {
            BackendChoice::Sparse(SparseConfig { tail_rtol: TAIL_RTOLS[rtol_idx] })
        } else {
            BackendChoice::Dense
        };
        let mut problem = initial(n, seed, ALPHAS[alpha_idx], backend, powered_bit == 1);
        let mut ctx = SchedCtx::new();
        let schedulers: [&dyn Scheduler; 3] = [&Rle::new(), &Ldp::new(), &GreedyRate];
        // Warm the ctx memos on the pre-mutation instance so stale
        // cached state is live when the first mutation lands.
        schedulers[0].schedule_in(&problem, &mut ctx);

        for (tag, &op) in ops.iter().enumerate() {
            apply(&mut problem, op, tag);
            let rebuilt = rebuild(&problem);
            prop_assert_eq!(&problem, &rebuilt, "state diverged after op {}", tag);
            // Rotate one scheduler per op (all three at the end).
            let s = schedulers[tag % schedulers.len()];
            let warm = s.schedule_in(&problem, &mut ctx);
            let fresh = s.schedule(&rebuilt);
            prop_assert_eq!(&warm, &fresh, "{} diverged after op {}", s.name(), tag);
            prop_assert_eq!(
                is_feasible(&problem, &warm),
                is_feasible(&rebuilt, &warm),
                "verdict flipped after op {}", tag
            );
        }
        for s in schedulers {
            let rebuilt = rebuild(&problem);
            let warm = s.schedule_in(&problem, &mut ctx);
            prop_assert_eq!(&warm, &s.schedule(&rebuilt), "{} diverged at end", s.name());
        }
    }

    /// Cross-backend verdict agreement after mutation: the sparse
    /// store's certified verdicts (truncation cuts and all) match the
    /// exact dense verdicts on the same mutated link set — truncated
    /// bounds stay true bounds through every patch, so verdicts never
    /// flip.
    #[test]
    fn sparse_verdicts_match_dense_after_mutation(
        n in 4usize..20,
        seed in 0u64..5_000,
        alpha_idx in 0usize..3,
        rtol_idx in 0usize..2,
        ops in proptest::collection::vec(
            (0u8..3, 0.0f64..998.0, 0.0f64..998.0, 0.0f64..100.0),
            1..10,
        ),
    ) {
        let params = ChannelParams::with_alpha(ALPHAS[alpha_idx]);
        let links = UniformGenerator::paper(n).generate(seed);
        let mut dense = Problem::builder(links.clone(), params).build();
        let mut sparse = Problem::builder(links, params)
            .backend(BackendChoice::Sparse(SparseConfig { tail_rtol: TAIL_RTOLS[rtol_idx] }))
            .build();
        for (tag, &op) in ops.iter().enumerate() {
            apply(&mut dense, op, tag);
            apply(&mut sparse, op, tag);
            prop_assert_eq!(dense.links(), sparse.links());
            // Every pairwise factor is exact under both backends.
            for a in dense.links().ids() {
                for b in dense.links().ids() {
                    prop_assert_eq!(
                        dense.factor(a, b).to_bits(),
                        sparse.factor(a, b).to_bits(),
                        "f({},{}) diverged after op {}", a.index(), b.index(), tag
                    );
                }
            }
            let every_other = fading_core::Schedule::from_ids(
                dense.links().ids().filter(|id| id.index() % 2 == 0),
            );
            prop_assert_eq!(
                is_feasible(&dense, &every_other),
                is_feasible(&sparse, &every_other),
                "verdict flipped after op {}", tag
            );
        }
    }
}

/// Batch semantics and error atomicity: ids come back in spec order,
/// a mid-batch validation error leaves the instance untouched, and
/// `remove_links` reports the descending order it applied.
#[test]
fn batch_api_contract() {
    let mut p = Problem::paper(UniformGenerator::paper(6).generate(9), 3.0);
    let before = p.clone();
    let stamp_before = p.stamp();

    let specs = [
        LinkSpec::new(Point2::new(10.0, 10.0), Point2::new(12.0, 10.0)),
        LinkSpec::new(Point2::new(20.0, 10.0), Point2::new(22.0, 10.0)).with_rate(2.0),
    ];
    let ids = p.add_links(&specs).unwrap();
    assert_eq!(ids, vec![LinkId(6), LinkId(7)]);
    assert_eq!(p.len(), 8);
    assert_ne!(p.stamp(), stamp_before, "mutation must move the stamp");
    assert_eq!(p.rate(LinkId(7)), 2.0);

    // Second spec duplicates the first's sender: nothing is applied.
    let bad = [
        LinkSpec::new(Point2::new(30.0, 10.0), Point2::new(32.0, 10.0)),
        LinkSpec::new(Point2::new(30.0, 10.0), Point2::new(34.0, 10.0)),
    ];
    let snapshot = p.clone();
    assert!(p.add_links(&bad).is_err());
    assert_eq!(p, snapshot, "failed batch must be a no-op");

    // Duplicate ids are applied once, in descending order.
    let order = p.remove_links(&[LinkId(7), LinkId(6), LinkId(7)]);
    assert_eq!(order, vec![LinkId(7), LinkId(6)]);
    assert_eq!(p, before, "add then remove must round-trip");
}

/// The uniform→powered transition materializes an all-ones profile
/// bit-identically: factors over the pre-existing links are unchanged.
#[test]
fn power_profile_materialization_is_exact() {
    for backend in [
        BackendChoice::Dense,
        BackendChoice::Sparse(SparseConfig::default()),
    ] {
        let links = UniformGenerator::paper(12).generate(11);
        let mut p = Problem::builder(links, ChannelParams::with_alpha(3.0))
            .backend(backend)
            .build();
        let uniform = p.clone();
        assert!(p.power_scales().is_none());
        let ids = p
            .add_links(&[
                LinkSpec::new(Point2::new(500.0, 500.0), Point2::new(503.0, 500.0))
                    .with_power_scale(2.5),
            ])
            .unwrap();
        let scales = p.power_scales().expect("profile must materialize");
        assert_eq!(scales.len(), 13);
        assert!(scales[..12].iter().all(|&s| s == 1.0));
        assert_eq!(scales[12], 2.5);
        for a in uniform.links().ids() {
            for b in uniform.links().ids() {
                assert_eq!(
                    p.factor(a, b).to_bits(),
                    uniform.factor(a, b).to_bits(),
                    "pre-existing factors must not move"
                );
            }
        }
        // And the whole state still equals a from-scratch powered build.
        assert_eq!(p, rebuild(&p));
        p.remove_links(&ids);
        assert_eq!(
            p.power_scales(),
            Some(vec![1.0; 12].as_slice()),
            "profile stays materialized after the powered link leaves"
        );
    }
}
