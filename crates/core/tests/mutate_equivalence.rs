//! Mutation substrate equivalence (the online-engine contract, see
//! `docs/online.md`).
//!
//! `Problem::add_links` / `Problem::remove_links` patch a live
//! instance's interference state in place — dense matrix relayout,
//! sparse CSR row edits plus an envelope reconcile. These properties
//! pin that a mutated instance is *indistinguishable* from a
//! from-scratch build over the final link set: `PartialEq` (which
//! compares every stored factor bit-for-bit), schedules from a warm
//! reused `SchedCtx`, and feasibility verdicts, across backends,
//! path-loss exponents, truncation policies, and non-uniform powers —
//! including the uniform→powered profile transition mid-sequence.

use fading_channel::ChannelParams;
use fading_core::algo::{GreedyRate, Ldp, Rle};
use fading_core::feasibility::is_feasible;
use fading_core::{
    BackendChoice, BatchReceipt, LinkIdMap, LinkSpec, MutationBatch, MutationError, Problem,
    SchedCtx, Scheduler, SparseConfig,
};
use fading_geom::Point2;
use fading_net::{LinkId, LinkSet, TopologyGenerator, UniformGenerator, ValidationError};
use proptest::prelude::*;

const ALPHAS: [f64; 3] = [2.5, 3.0, 4.0];
/// Exhaustive-at-paper-scale and genuinely-truncating cuts.
const TAIL_RTOLS: [f64; 2] = [1e-3, 5e-1];

/// A starting instance under the requested backend and power model.
fn initial(n: usize, seed: u64, alpha: f64, backend: BackendChoice, powered: bool) -> Problem {
    let links = UniformGenerator::paper(n).generate(seed);
    let params = ChannelParams::with_alpha(alpha);
    if powered {
        let scales: Vec<f64> = (0..n).map(|i| 0.5 + (i % 5) as f64 * 0.375).collect();
        Problem::builder(links, params)
            .power_scales(scales)
            .backend(backend)
            .build()
    } else {
        Problem::builder(links, params).backend(backend).build()
    }
}

/// A from-scratch build over the mutated problem's current link set
/// and power scales — the path the in-place mutation replaces.
fn rebuild(p: &Problem) -> Problem {
    let links = LinkSet::new(*p.links().region(), p.links().links().to_vec());
    let builder = Problem::builder(links, *p.params())
        .epsilon(p.epsilon())
        .backend(p.backend_choice());
    match p.power_scales() {
        Some(scales) => builder.power_scales(scales.to_vec()).build(),
        None => builder.build(),
    }
}

/// One mutation op decoded from proptest payload: `(kind, x, y, w)`.
/// kind 0/1 → add a link (sender from `(x, y)`, receiver nudged by a
/// `w`-derived offset), kind 2 → remove a `w`-derived victim. Kind 1
/// adds with a non-uniform power scale, exercising the
/// uniform→materialized profile transition when the instance started
/// without power control.
type Op = (u8, f64, f64, f64);

fn apply(problem: &mut Problem, op: Op, tag: usize) {
    let (kind, x, y, w) = op;
    match kind {
        2 if problem.len() > 1 => {
            let victim = LinkId((w.to_bits() % problem.len() as u64) as u32);
            problem.remove_links(&[victim]);
        }
        2 => {} // never empty the instance
        _ => {
            let sender = Point2::new(x, y);
            // Short link, receiver strictly inside the paper region.
            let receiver = Point2::new(
                (x + 1.0 + (w % 7.0)).min(999.75),
                (y + 0.5 + tag as f64 * 0.125).min(999.25),
            );
            let spec = LinkSpec::new(sender, receiver).with_rate(1.0 + (w % 3.0));
            let spec = if kind == 1 {
                spec.with_power_scale(0.5 + (w % 4.0) * 0.375)
            } else {
                spec
            };
            // Coincident positions are rejected with the instance
            // unchanged — a legal no-op for this property.
            let _ = problem.add_links(&[spec]);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// After every op in a random add/remove interleaving, the mutated
    /// instance compares bit-identical (`PartialEq` covers all stored
    /// factors, radii, and cuts) to a from-scratch build, a warm
    /// reused ctx schedules it identically to a fresh one (mutation
    /// epochs invalidate the memos), and feasibility verdicts agree.
    #[test]
    fn mutate_equals_rebuild_at_every_step(
        n in 4usize..24,
        seed in 0u64..5_000,
        alpha_idx in 0usize..3,
        rtol_idx in 0usize..2,
        sparse_bit in 0usize..2,
        powered_bit in 0usize..2,
        ops in proptest::collection::vec(
            (0u8..3, 0.0f64..998.0, 0.0f64..998.0, 0.0f64..100.0),
            1..12,
        ),
    ) {
        let backend = if sparse_bit == 1 {
            BackendChoice::Sparse(SparseConfig { tail_rtol: TAIL_RTOLS[rtol_idx] })
        } else {
            BackendChoice::Dense
        };
        let mut problem = initial(n, seed, ALPHAS[alpha_idx], backend, powered_bit == 1);
        let mut ctx = SchedCtx::new();
        let schedulers: [&dyn Scheduler; 3] = [&Rle::new(), &Ldp::new(), &GreedyRate];
        // Warm the ctx memos on the pre-mutation instance so stale
        // cached state is live when the first mutation lands.
        schedulers[0].schedule_in(&problem, &mut ctx);

        for (tag, &op) in ops.iter().enumerate() {
            apply(&mut problem, op, tag);
            let rebuilt = rebuild(&problem);
            prop_assert_eq!(&problem, &rebuilt, "state diverged after op {}", tag);
            // Rotate one scheduler per op (all three at the end).
            let s = schedulers[tag % schedulers.len()];
            let warm = s.schedule_in(&problem, &mut ctx);
            let fresh = s.schedule(&rebuilt);
            prop_assert_eq!(&warm, &fresh, "{} diverged after op {}", s.name(), tag);
            prop_assert_eq!(
                is_feasible(&problem, &warm),
                is_feasible(&rebuilt, &warm),
                "verdict flipped after op {}", tag
            );
        }
        for s in schedulers {
            let rebuilt = rebuild(&problem);
            let warm = s.schedule_in(&problem, &mut ctx);
            prop_assert_eq!(&warm, &s.schedule(&rebuilt), "{} diverged at end", s.name());
        }
    }

    /// Cross-backend verdict agreement after mutation: the sparse
    /// store's certified verdicts (truncation cuts and all) match the
    /// exact dense verdicts on the same mutated link set — truncated
    /// bounds stay true bounds through every patch, so verdicts never
    /// flip.
    #[test]
    fn sparse_verdicts_match_dense_after_mutation(
        n in 4usize..20,
        seed in 0u64..5_000,
        alpha_idx in 0usize..3,
        rtol_idx in 0usize..2,
        ops in proptest::collection::vec(
            (0u8..3, 0.0f64..998.0, 0.0f64..998.0, 0.0f64..100.0),
            1..10,
        ),
    ) {
        let params = ChannelParams::with_alpha(ALPHAS[alpha_idx]);
        let links = UniformGenerator::paper(n).generate(seed);
        let mut dense = Problem::builder(links.clone(), params).build();
        let mut sparse = Problem::builder(links, params)
            .backend(BackendChoice::Sparse(SparseConfig { tail_rtol: TAIL_RTOLS[rtol_idx] }))
            .build();
        for (tag, &op) in ops.iter().enumerate() {
            apply(&mut dense, op, tag);
            apply(&mut sparse, op, tag);
            prop_assert_eq!(dense.links(), sparse.links());
            // Every pairwise factor is exact under both backends.
            for a in dense.links().ids() {
                for b in dense.links().ids() {
                    prop_assert_eq!(
                        dense.factor(a, b).to_bits(),
                        sparse.factor(a, b).to_bits(),
                        "f({},{}) diverged after op {}", a.index(), b.index(), tag
                    );
                }
            }
            let every_other = fading_core::Schedule::from_ids(
                dense.links().ids().filter(|id| id.index() % 2 == 0),
            );
            prop_assert_eq!(
                is_feasible(&dense, &every_other),
                is_feasible(&sparse, &every_other),
                "verdict flipped after op {}", tag
            );
        }
    }

    /// The transactional path: a whole `MutationBatch` committed by
    /// `Problem::apply` (one envelope reconciliation, one spatial-index
    /// patch pass) lands bit-identically on the same state as applying
    /// the same mutations one call at a time — and both equal a
    /// from-scratch build. Batches mix adds (uniform and powered),
    /// removals by external id, duplicate removals, and empty batches,
    /// across both backends and both truncation policies.
    #[test]
    fn batch_equals_sequential_equals_rebuild(
        n in 4usize..20,
        seed in 0u64..5_000,
        alpha_idx in 0usize..3,
        rtol_idx in 0usize..2,
        sparse_bit in 0usize..2,
        powered_bit in 0usize..2,
        batches in proptest::collection::vec(
            proptest::collection::vec((0u8..3, 0.0f64..998.0, 0.0f64..100.0), 0..8),
            1..5,
        ),
    ) {
        let backend = if sparse_bit == 1 {
            BackendChoice::Sparse(SparseConfig { tail_rtol: TAIL_RTOLS[rtol_idx] })
        } else {
            BackendChoice::Dense
        };
        let mut batched = initial(n, seed, ALPHAS[alpha_idx], backend, powered_bit == 1);
        let mut bat_map = LinkIdMap::with_len(n);
        let mut seq = batched.clone();
        let mut seq_map = bat_map.clone();
        let mut tag = 0usize;
        for ops in &batches {
            let mut batch = MutationBatch::new();
            let mut doomed: Vec<u64> = Vec::new();
            let mut planned_adds = 0usize;
            for &(kind, x, w) in ops {
                if kind == 2 {
                    // Remove a random live link not already doomed,
                    // keeping at least one link alive.
                    let live: Vec<u64> = bat_map
                        .externals()
                        .iter()
                        .copied()
                        .filter(|e| !doomed.contains(e))
                        .collect();
                    if live.len() > 1 {
                        let ext = live[(w.to_bits() % live.len() as u64) as usize];
                        doomed.push(ext);
                        batch.remove(ext);
                        if w > 50.0 {
                            batch.remove(ext); // duplicates collapse
                        }
                    }
                } else {
                    // Coordinates disjoint from the generator's region
                    // and from every other generated link.
                    let sender = Point2::new(5_000.0 + tag as f64 * 8.0, x);
                    let receiver =
                        Point2::new(5_000.0 + tag as f64 * 8.0 + 1.5 + (w % 5.0), x + 0.5);
                    let spec = LinkSpec::new(sender, receiver).with_rate(1.0 + (w % 3.0));
                    let spec = if kind == 1 {
                        spec.with_power_scale(0.5 + (w % 4.0) * 0.375)
                    } else {
                        spec
                    };
                    batch.add(spec);
                    planned_adds += 1;
                }
                tag += 1;
            }
            let stamp_before = batched.stamp();
            let receipt = batched.apply(&batch, &mut bat_map).unwrap();
            prop_assert_eq!(receipt.added.len(), planned_adds);
            prop_assert_eq!(receipt.removed.len(), doomed.len());
            if batch.is_empty() {
                prop_assert_eq!(batched.stamp(), stamp_before, "empty batch moved the stamp");
            } else {
                prop_assert_ne!(batched.stamp(), stamp_before, "commit must move the stamp");
            }
            // Sequential mirror: the same removals in the order the
            // batch applied them, one call each, then adds one by one.
            for &ext in &receipt.removed {
                let dense = seq_map.dense(ext).expect("live on the sequential side");
                for id in seq.remove_links(&[dense]) {
                    seq_map.on_swap_remove(id);
                }
            }
            for spec in batch.adds() {
                seq.add_links(std::slice::from_ref(spec)).unwrap();
                seq_map.on_add();
            }
            prop_assert_eq!(&batched, &seq, "batch != sequential");
            prop_assert_eq!(&bat_map, &seq_map, "maps diverged");
            let rebuilt = rebuild(&batched);
            prop_assert_eq!(&batched, &rebuilt, "batch != rebuild");
        }
    }
}

/// Transactional edge cases: empty batches leave the stamp alone,
/// unknown externals and duplicate positions reject atomically, a
/// position freed by a removal is reusable by an add in the *same*
/// batch, and bad power scales surface as typed errors.
#[test]
fn transactional_batch_contract() {
    let mut p = Problem::paper(UniformGenerator::paper(6).generate(9), 3.0);
    let mut map = LinkIdMap::with_len(6);
    let before = p.clone();
    let stamp = p.stamp();

    // Empty batch: receipt empty, stamp untouched.
    let r = p.apply(&MutationBatch::new(), &mut map).unwrap();
    assert_eq!(r, BatchReceipt::default());
    assert_eq!(p.stamp(), stamp, "empty batch must not move the stamp");

    // Unknown external id: typed error, nothing changes.
    let mut batch = MutationBatch::new();
    batch.remove(99);
    assert_eq!(
        p.apply(&batch, &mut map),
        Err(MutationError::UnknownExternal(99))
    );
    assert_eq!(p, before);
    assert_eq!(map.len(), 6);

    // A removal frees its positions for an add in the same batch.
    let (pos_s, pos_r) = {
        let l = p.links().link(LinkId(2));
        (l.sender, l.receiver)
    };
    let mut batch = MutationBatch::new();
    batch
        .remove(2)
        .add(LinkSpec::new(pos_s, pos_r).with_rate(3.0));
    let receipt = p.apply(&batch, &mut map).unwrap();
    assert_eq!(receipt.removed, vec![2]);
    assert_eq!(receipt.added.len(), 1);
    assert_eq!(p.len(), 6);
    assert_eq!(p, rebuild(&p));

    // An add colliding with a live (non-removed) position rejects the
    // whole batch atomically.
    let live = p.links().link(LinkId(0)).sender;
    let mut batch = MutationBatch::new();
    batch.add(LinkSpec::new(live, Point2::new(7_777.0, 7.0)));
    let snapshot = p.clone();
    assert!(matches!(
        p.apply(&batch, &mut map),
        Err(MutationError::InvalidAdd {
            slot: 0,
            source: ValidationError::DuplicateSender(..),
        })
    ));
    assert_eq!(p, snapshot, "rejected batch must be a no-op");

    // The former power-profile panic is now a typed error.
    assert!(matches!(
        p.add_links(&[
            LinkSpec::new(Point2::new(9_000.0, 1.0), Point2::new(9_002.0, 1.0))
                .with_power_scale(-1.0),
        ]),
        Err(ValidationError::BadPowerScale { .. })
    ));
    assert_eq!(p, snapshot);
}

/// Batch semantics and error atomicity: ids come back in spec order,
/// a mid-batch validation error leaves the instance untouched, and
/// `remove_links` reports the descending order it applied.
#[test]
fn batch_api_contract() {
    let mut p = Problem::paper(UniformGenerator::paper(6).generate(9), 3.0);
    let before = p.clone();
    let stamp_before = p.stamp();

    let specs = [
        LinkSpec::new(Point2::new(10.0, 10.0), Point2::new(12.0, 10.0)),
        LinkSpec::new(Point2::new(20.0, 10.0), Point2::new(22.0, 10.0)).with_rate(2.0),
    ];
    let ids = p.add_links(&specs).unwrap();
    assert_eq!(ids, vec![LinkId(6), LinkId(7)]);
    assert_eq!(p.len(), 8);
    assert_ne!(p.stamp(), stamp_before, "mutation must move the stamp");
    assert_eq!(p.rate(LinkId(7)), 2.0);

    // Second spec duplicates the first's sender: nothing is applied.
    let bad = [
        LinkSpec::new(Point2::new(30.0, 10.0), Point2::new(32.0, 10.0)),
        LinkSpec::new(Point2::new(30.0, 10.0), Point2::new(34.0, 10.0)),
    ];
    let snapshot = p.clone();
    assert!(p.add_links(&bad).is_err());
    assert_eq!(p, snapshot, "failed batch must be a no-op");

    // Duplicate ids are applied once, in descending order.
    let order = p.remove_links(&[LinkId(7), LinkId(6), LinkId(7)]);
    assert_eq!(order, vec![LinkId(7), LinkId(6)]);
    assert_eq!(p, before, "add then remove must round-trip");
}

/// The uniform→powered transition materializes an all-ones profile
/// bit-identically: factors over the pre-existing links are unchanged.
#[test]
fn power_profile_materialization_is_exact() {
    for backend in [
        BackendChoice::Dense,
        BackendChoice::Sparse(SparseConfig::default()),
    ] {
        let links = UniformGenerator::paper(12).generate(11);
        let mut p = Problem::builder(links, ChannelParams::with_alpha(3.0))
            .backend(backend)
            .build();
        let uniform = p.clone();
        assert!(p.power_scales().is_none());
        let ids = p
            .add_links(&[
                LinkSpec::new(Point2::new(500.0, 500.0), Point2::new(503.0, 500.0))
                    .with_power_scale(2.5),
            ])
            .unwrap();
        let scales = p.power_scales().expect("profile must materialize");
        assert_eq!(scales.len(), 13);
        assert!(scales[..12].iter().all(|&s| s == 1.0));
        assert_eq!(scales[12], 2.5);
        for a in uniform.links().ids() {
            for b in uniform.links().ids() {
                assert_eq!(
                    p.factor(a, b).to_bits(),
                    uniform.factor(a, b).to_bits(),
                    "pre-existing factors must not move"
                );
            }
        }
        // And the whole state still equals a from-scratch powered build.
        assert_eq!(p, rebuild(&p));
        p.remove_links(&ids);
        assert_eq!(
            p.power_scales(),
            Some(vec![1.0; 12].as_slice()),
            "profile stays materialized after the powered link leaves"
        );
    }
}
