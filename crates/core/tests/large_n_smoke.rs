//! Release-mode scale smoke: the sparse substrate at `N = 100 000`.
//!
//! Ignored by default — the dense matrix at this size would be 80 GB,
//! and even the sparse pipeline wants a release build. CI runs it
//! explicitly:
//!
//! ```text
//! cargo test --release -p fading-core --test large_n_smoke -- --ignored
//! ```
//!
//! The instance keeps the paper's density (300 links per 500×500 field,
//! lengths U[5,20]) on a field scaled by `√(N/300)`, at `α = 4` — a
//! Fig. 5(b) sweep value whose default truncation radius keeps the
//! near-field store comfortably inside the 1 GB budget.

use fading_channel::ChannelParams;
use fading_core::algo::Rle;
use fading_core::feasibility::within_budget;
use fading_core::{BackendChoice, Problem, Scheduler, SparseConfig};
use fading_net::{RateModel, TopologyGenerator, UniformGenerator};
use std::time::{Duration, Instant};

#[test]
#[ignore = "release-mode scale smoke (CI runs it explicitly with --ignored)"]
fn sparse_backend_runs_rle_at_one_hundred_thousand_links() {
    let n = 100_000usize;
    let started = Instant::now();
    let gen = UniformGenerator {
        side: 500.0 * (n as f64 / 300.0).sqrt(),
        n,
        len_lo: 5.0,
        len_hi: 20.0,
        rates: RateModel::Fixed(1.0),
    };
    let links = gen.generate(20170714);
    let problem = Problem::builder(links, ChannelParams::with_alpha(4.0))
        .backend(BackendChoice::Sparse(SparseConfig::default()))
        .build();
    let model = problem
        .factors()
        .as_sparse()
        .expect("smoke must run on the sparse backend");

    // The memory contract from the issue: interference storage < 1 GB.
    let storage = model.storage_bytes();
    assert!(
        storage < 1_000_000_000,
        "interference storage is {storage} B, over the 1 GB budget"
    );
    // The instance must actually exercise truncation — otherwise this
    // is a slow exhaustive test, not a certified-envelope one.
    assert!(
        model.max_tail_cut() > 0.0,
        "instance was stored exhaustively"
    );

    let schedule = Rle::new().schedule(&problem);
    assert!(
        schedule.len() > 1_000,
        "RLE picked only {} links at N = 100k",
        schedule.len()
    );

    // Exact feasibility on a sample of receivers (the full O(|S|²)
    // report at |S| in the tens of thousands is a benchmark, not a
    // smoke). Factors recompute exactly regardless of truncation.
    let members: Vec<_> = schedule.iter().collect();
    let budget = problem.gamma_eps();
    let step = (members.len() / 256).max(1);
    for &j in members.iter().step_by(step) {
        let sum: f64 = members
            .iter()
            .filter(|&&i| i != j)
            .map(|&i| problem.factor(i, j))
            .sum();
        assert!(
            within_budget(sum, budget),
            "receiver {j} exceeds γ_ε: {sum} > {budget}"
        );
    }

    // Wall-time guard: generous for slow CI hosts, tight enough to
    // catch an accidental O(N²) regression (which would take hours).
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(600),
        "scale smoke took {elapsed:?}, over the 10-minute guard"
    );
}
