//! Thread-count invariance: every parallel construction path — the
//! tile-sharded spatial hash, the parallel grid key stage, the chunked
//! dense matrix build, the sparse CSR build — must produce the same
//! bits whether rayon runs one worker or many. Tiles are contiguous
//! index stripes whose count derives from `n` alone and whose merge
//! order is fixed, so `RAYON_NUM_THREADS` can change wall-clock only.
//!
//! One `#[test]` on purpose: the env var is process-global, and the
//! default harness runs sibling tests on concurrent threads.

use fading_channel::ChannelParams;
use fading_core::algo::{Ldp, Rle};
use fading_core::{BackendChoice, Problem, Scheduler, SparseConfig};
use fading_geom::{Point2, SpatialGrid, SpatialHash};
use fading_net::{LinkSet, TopologyGenerator, UniformGenerator};

fn with_threads<T>(setting: Option<&str>, f: impl Fn() -> T) -> T {
    match setting {
        Some(v) => std::env::set_var("RAYON_NUM_THREADS", v),
        None => std::env::remove_var("RAYON_NUM_THREADS"),
    }
    let out = f();
    std::env::remove_var("RAYON_NUM_THREADS");
    out
}

/// Everything the parallel paths can influence, flattened to
/// comparable bits.
#[derive(PartialEq, Debug)]
struct Artifacts {
    dense_bits: Vec<u64>,
    sparse_store: fading_core::SparseInterference,
    hash: SpatialHash,
    grid_visits: Vec<u32>,
    rle_picks: Vec<u32>,
    ldp_picks: Vec<u32>,
}

fn build_artifacts(links: &LinkSet, big_points: &[Point2]) -> Artifacts {
    // Dense build crosses PARALLEL_THRESHOLD (= 64) at this size.
    let dense = Problem::paper(links.clone(), 3.0);
    let dense_bits = links
        .ids()
        .flat_map(|i| {
            dense
                .factors()
                .dense_row(i)
                .unwrap()
                .iter()
                .map(|f| f.to_bits())
                .collect::<Vec<u64>>()
        })
        .collect();
    let sparse = Problem::builder(links.clone(), ChannelParams::with_alpha(3.0))
        .backend(BackendChoice::Sparse(SparseConfig::default()))
        .build();
    // `big_points` exceeds both the hash tiling gate (2·TILE_SIZE) and
    // the grid's parallel key-stage gate (GRID_PARALLEL_MIN).
    let hash = SpatialHash::build(big_points, 25.0);
    let mut grid = SpatialGrid::new();
    grid.rebuild(big_points, 25.0);
    let mut grid_visits = Vec::new();
    for c in 0..10u32 {
        let center = big_points[(c as usize * 6101) % big_points.len()];
        grid.for_each_in_radius(&center, 60.0, |i| grid_visits.push(i));
    }
    let rle_picks = Rle::new().schedule(&dense).iter().map(|id| id.0).collect();
    let ldp_picks = Ldp::new().schedule(&sparse).iter().map(|id| id.0).collect();
    let sparse_store = sparse
        .factors()
        .as_sparse()
        .expect("built with the sparse backend")
        .clone();
    Artifacts {
        dense_bits,
        sparse_store,
        hash,
        grid_visits,
        rle_picks,
        ldp_picks,
    }
}

#[test]
fn constructions_are_bit_identical_across_thread_counts() {
    let links = UniformGenerator::paper(700).generate(20170714);
    let big_points = UniformGenerator::paper(70_000)
        .generate(42)
        .sender_positions();

    let single = with_threads(Some("1"), || build_artifacts(&links, &big_points));
    let four = with_threads(Some("4"), || build_artifacts(&links, &big_points));
    let default = with_threads(None, || build_artifacts(&links, &big_points));

    assert!(single == four, "1 thread vs 4 threads diverged");
    assert!(single == default, "1 thread vs default pool diverged");

    // The explicit tile API agrees with the sequential one-pass build
    // for arbitrary tile counts, under a multi-thread pool.
    with_threads(Some("4"), || {
        let sequential = SpatialHash::build(&big_points[..5000], 25.0);
        for tiles in [1, 3, 8, 4999, 6000] {
            assert_eq!(
                SpatialHash::build_tiled(&big_points[..5000], 25.0, tiles),
                sequential,
                "tiles={tiles}"
            );
        }
    });
}
