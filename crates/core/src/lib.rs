//! Fading-Resistant Link Scheduling (Fading-R-LS).
//!
//! This crate is the paper's primary contribution: given a set of links
//! in the plane and a Rayleigh-fading channel, select the sender subset
//! maximizing total data rate such that every selected link succeeds
//! with probability at least `1 − ε` (Section III).
//!
//! The decision machinery rests on Corollary 3.1: link `j` meets its
//! reliability target under concurrent senders `P` iff
//! `Σ_{i∈P\{j}} f_{i,j} ≤ γ_ε`, with interference factors
//! `f_{i,j} = ln(1 + γ_th (d_jj/d_ij)^α)` served by an
//! [`interference::InterferenceBackend`]: either the dense precomputed
//! [`interference::InterferenceMatrix`] (the paper-scale default) or
//! the spatial-hash truncated [`sparse::SparseInterference`] with a
//! certified tail budget (the `10⁵`-link scale path; see
//! `docs/interference.md`).
//!
//! # Algorithms
//!
//! | Algorithm | Module | Guarantee | Notes |
//! |---|---|---|---|
//! | LDP | [`algo::ldp`] | `O(g(L))` | link-diversity grid partition (Alg. 1) |
//! | RLE | [`algo::rle`] | `O(1)` | uniform rates, shortest-first elimination (Alg. 2) |
//! | ApproxLogN | [`algo::approx_logn`] | — | deterministic-SINR baseline [Goussevskaia+ 07] |
//! | ApproxDiversity | [`algo::approx_diversity`] | — | deterministic-SINR baseline [Goussevskaia+ 09] |
//! | GreedyRate | [`algo::greedy`] | heuristic | feasibility-aware rate-greedy |
//! | Exact | [`algo::exact`] | optimal | branch-and-bound, small `N` |
//! | DLS | [`algo::dls`] | reconstruction | decentralized rounds (see DESIGN.md §5) |
//!
//! The ILP of Eq. (20)–(22) is in [`ilp`], the Knapsack reduction of
//! Theorem 3.2 in [`reduction`], and the multi-slot extension (the
//! paper's future work) in [`multislot`].

pub mod algo;
pub mod certify;
pub mod constants;
pub mod ctx;
pub mod feasibility;
pub mod ilp;
pub mod interference;
pub mod kernel;
pub mod multislot;
pub mod mutate;
pub mod problem;
pub mod reduction;
pub mod registry;
pub mod schedule;
pub mod sparse;

pub use certify::{replay_block, replay_trace, verify_schedule, Certificate};
pub use ctx::SchedCtx;
pub use feasibility::FeasibilityReport;
pub use interference::{InterferenceBackend, InterferenceMatrix, InterferenceModel};
pub use mutate::{BatchReceipt, LinkIdMap, LinkSpec, MutationBatch, MutationError};
pub use problem::{BackendChoice, Problem, ProblemBuilder};
pub use registry::AlgoId;
pub use schedule::Schedule;
pub use sparse::{SparseConfig, SparseInterference};

/// A one-shot link scheduling algorithm.
///
/// `Send + Sync` so sweeps can evaluate instances in parallel; all
/// built-in schedulers are plain data.
pub trait Scheduler: Send + Sync {
    /// Human-readable algorithm name (used by result tables).
    fn name(&self) -> &'static str;

    /// Computes a schedule for one time slot using the caller's
    /// reusable workspace. This is the engine entry point: the ctx
    /// carries only buffer capacity, never semantic state, so the
    /// result is bit-identical to [`schedule`](Self::schedule)
    /// regardless of what the ctx was previously used for (see
    /// `docs/engine.md`).
    ///
    /// Implementations must return schedules that are feasible *under
    /// the model the algorithm assumes* — for the fading-resistant
    /// algorithms that is Corollary 3.1; for the deterministic
    /// baselines it is the non-fading SINR test (which is the point of
    /// the comparison).
    fn schedule_in(&self, problem: &Problem, ctx: &mut SchedCtx) -> Schedule;

    /// Computes a schedule with a private one-shot workspace —
    /// convenience wrapper over [`schedule_in`](Self::schedule_in) for
    /// call sites that don't schedule in a loop.
    fn schedule(&self, problem: &Problem) -> Schedule {
        self.schedule_in(problem, &mut SchedCtx::new())
    }
}
