//! Shared machinery for grid-partition schedulers (LDP, ApproxLogN).
//!
//! Both algorithms follow the same skeleton (Algorithm 1 of the paper):
//! build link classes by length magnitude, tile the region with squares
//! sized to the class, 4-color the squares, pick the best receiver per
//! square, and return the best (class, color) combination. They differ
//! only in (i) how classes are formed and (ii) the square scale.

use crate::ctx::SchedCtx;
use crate::problem::Problem;
use crate::schedule::Schedule;
use fading_geom::GridPartition;
use fading_net::diversity::magnitude;
use fading_net::LinkId;
use fading_obs::{ElimCause, TraceEvent, TraceScope};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// How link classes are built from length magnitudes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClassMode {
    /// Class `k` contains every link with `d < 2^{h_k+1} δ` (upper bound
    /// only) — the paper's improvement over \[14\]: a shorter link is
    /// always safe wherever a longer one is (Eq. (36)).
    Nested,
    /// Class `k` contains links with `2^{h_k} δ ≤ d < 2^{h_k+1} δ`
    /// (both bounds) — the original \[14\] construction, kept for the
    /// ablation experiment.
    TwoSided,
}

/// Runs the grid-partition skeleton with the given class mode and
/// square scale (`β` for LDP, `μ` for ApproxLogN); the square for the
/// class of magnitude `h` has side `2^{h+1}·scale·δ`.
pub fn grid_schedule(problem: &Problem, mode: ClassMode, scale: f64) -> Schedule {
    grid_schedule_labeled(problem, mode, scale, "core.grid", true)
}

/// [`grid_schedule_labeled_in`] with a private one-shot workspace.
pub fn grid_schedule_labeled(
    problem: &Problem,
    mode: ClassMode,
    scale: f64,
    stat_prefix: &str,
    certified: bool,
) -> Schedule {
    grid_schedule_labeled_in(
        problem,
        mode,
        scale,
        stat_prefix,
        certified,
        &mut SchedCtx::new(),
    )
}

/// [`grid_schedule`] with an explicit metric prefix, so callers (LDP,
/// ApproxLogN) report class/color counts under their own name:
/// `<prefix>.classes`, `<prefix>.cells`, `<prefix>.colors`.
/// `certified` states whether the caller's scale guarantees γ_ε
/// feasibility (LDP's β does; ApproxLogN's μ bounds only the
/// deterministic part) — it is recorded in the decision trace and
/// decides whether the replay verifier audits the full ledger.
/// All scratch (class exponents, per-cell winner table, color buckets)
/// lives in `ctx`; a warm ctx makes the untraced call allocation-free.
pub fn grid_schedule_labeled_in(
    problem: &Problem,
    mode: ClassMode,
    scale: f64,
    stat_prefix: &str,
    certified: bool,
    ctx: &mut SchedCtx,
) -> Schedule {
    assert!(
        scale.is_finite() && scale > 0.0,
        "invalid grid scale {scale}"
    );
    let stats = GridStats::for_prefix(stat_prefix);
    let _span = match &stats {
        Some(s) => fading_obs::Span::enter(s.span),
        None => fading_obs::Span::enter(&format!("{stat_prefix}.schedule")),
    };
    let links = problem.links();
    let Some(delta) = links.min_length() else {
        return Schedule::empty();
    };
    // The whole selection phase below is a pure function of: the class
    // mode, the square scale, the grid anchor (the region's lower-left
    // corner — all `GridPartition::new` reads), and each link's
    // (length, receiver, rate) in id order. Verified memoization: when
    // that witness is bit-identical to the previous call's, the cached
    // selection in `best_ids`/`grid_best`/`grid_counts` is provably the
    // same and the classes × links scan is skipped. NaNs never compare
    // equal, so they conservatively force a recompute.
    let anchor = links.region().min();
    let mode_key = match mode {
        ClassMode::Nested => 0.0,
        ClassMode::TwoSided => 1.0,
    };
    let witness = links
        .links()
        .iter()
        .flat_map(|l| [l.length(), l.receiver.x, l.receiver.y, l.rate]);
    if !ctx.grid_is_cached(
        problem.stamp(),
        [mode_key, scale, anchor.x, anchor.y],
        witness,
    ) {
        // Distinct length magnitudes, ascending (`diversity_exponents`
        // inlined over the ctx buffer).
        ctx.exponents.clear();
        ctx.exponents
            .extend(links.links().iter().map(|l| magnitude(l.length(), delta)));
        ctx.exponents.sort_unstable();
        ctx.exponents.dedup();
        ctx.best_ids.clear();
        let mut best_utility = f64::NEG_INFINITY;
        let mut best_class = 0u32;
        let mut best_color = 0u32;
        let mut classes = 0u64;
        let mut cells = 0u64;
        let mut colors = 0u64;
        for &h in &ctx.exponents {
            classes += 1;
            let cell = 2f64.powi(h as i32 + 1) * scale * delta;
            let grid = GridPartition::new(links.region(), cell);
            // The best-rate receiver in each occupied square. Winners live
            // in a slot vector in first-encounter order (encounter order is
            // id order), with the map holding only Copy slot indices — so
            // clearing keeps capacity and downstream iteration is
            // deterministic rather than following HashMap bucket order.
            ctx.cell_slot.clear();
            ctx.winners.clear();
            for link in links.links() {
                let m = magnitude(link.length(), delta);
                let in_class = match mode {
                    ClassMode::Nested => m <= h,
                    ClassMode::TwoSided => m == h,
                };
                if !in_class {
                    continue;
                }
                let cell_idx = grid.cell_of(&link.receiver);
                let next = ctx.winners.len() as u32;
                let slot = *ctx.cell_slot.entry(cell_idx).or_insert(next);
                if slot == next {
                    ctx.winners.push((cell_idx, link.id));
                } else {
                    let cur = &mut ctx.winners[slot as usize].1;
                    let cur_link = links.link(*cur);
                    // Highest rate wins; ties broken by shorter length,
                    // then id, for determinism.
                    let better = (link.rate, -link.length(), std::cmp::Reverse(link.id))
                        > (
                            cur_link.rate,
                            -cur_link.length(),
                            std::cmp::Reverse(cur_link.id),
                        );
                    if better {
                        *cur = link.id;
                    }
                }
            }
            // Group the per-square winners by square color.
            cells += ctx.winners.len() as u64;
            for bucket in ctx.per_color.iter_mut() {
                bucket.clear();
            }
            for &(cell_idx, id) in &ctx.winners {
                ctx.per_color[grid.color_of(cell_idx).0 as usize].push(id);
            }
            for (color, ids) in ctx.per_color.iter().enumerate() {
                colors += 1;
                let utility: f64 = ids.iter().map(|&id| problem.rate(id)).sum();
                if utility > best_utility {
                    best_utility = utility;
                    best_class = h;
                    best_color = color as u32;
                    ctx.best_ids.clear();
                    ctx.best_ids.extend_from_slice(ids);
                }
            }
        }
        ctx.grid_store(
            (best_class, best_color, best_utility),
            (classes, cells, colors),
        );
    }
    let (best_class, best_color, best_utility) = ctx.grid_best;
    let (classes, cells, colors) = ctx.grid_counts;
    let mut members = ctx.take_members();
    members.extend_from_slice(&ctx.best_ids);
    let best = Schedule::from_vec(members);
    let mut tr = TraceScope::begin();
    if tr.active() {
        // Replay the winning class once to attribute each link's fate:
        // out-of-class, lost its square to a better rate, or sat in a
        // square of the losing color. Only runs when tracing is on, so
        // the untraced path keeps its single pass over the classes.
        tr.push(TraceEvent::GridStart {
            scheduler: grid_label(stat_prefix, mode).to_string(),
            n: links.len() as u32,
            scale,
            nested: mode == ClassMode::Nested,
            certified,
        });
        tr.push(TraceEvent::ClassColorChosen {
            class: best_class,
            color: best_color,
            utility: best_utility,
        });
        let cell = 2f64.powi(best_class as i32 + 1) * scale * delta;
        let grid = GridPartition::new(links.region(), cell);
        let mut per_cell: HashMap<fading_geom::CellIndex, LinkId> = HashMap::new();
        for link in links.links() {
            let m = magnitude(link.length(), delta);
            let in_class = match mode {
                ClassMode::Nested => m <= best_class,
                ClassMode::TwoSided => m == best_class,
            };
            if !in_class {
                continue;
            }
            let cell_idx = grid.cell_of(&link.receiver);
            per_cell
                .entry(cell_idx)
                .and_modify(|cur| {
                    let cur_link = links.link(*cur);
                    let better = (link.rate, -link.length(), std::cmp::Reverse(link.id))
                        > (
                            cur_link.rate,
                            -cur_link.length(),
                            std::cmp::Reverse(cur_link.id),
                        );
                    if better {
                        *cur = link.id;
                    }
                })
                .or_insert(link.id);
        }
        for link in links.links() {
            let m = magnitude(link.length(), delta);
            let in_class = match mode {
                ClassMode::Nested => m <= best_class,
                ClassMode::TwoSided => m == best_class,
            };
            if !in_class {
                tr.push(TraceEvent::Eliminate {
                    link: link.id.0,
                    cause: ElimCause::ClassFiltered,
                    by: None,
                });
                continue;
            }
            let cell_idx = grid.cell_of(&link.receiver);
            let winner = per_cell[&cell_idx];
            if winner != link.id {
                tr.push(TraceEvent::Eliminate {
                    link: link.id.0,
                    cause: ElimCause::ColorConflict,
                    by: Some(winner.0),
                });
            } else if grid.color_of(cell_idx).0 as u32 != best_color {
                // Won its square, but the square's color lost.
                tr.push(TraceEvent::Eliminate {
                    link: link.id.0,
                    cause: ElimCause::ColorConflict,
                    by: None,
                });
            } else {
                tr.push(TraceEvent::Pick { link: link.id.0 });
            }
        }
        tr.push(TraceEvent::End {
            scheduled: best.iter().map(|id| id.0).collect(),
        });
    }
    tr.finish();
    // One registry flush per schedule call; the per-link loops above
    // touch no shared state.
    let picks = best.len() as u64;
    let eliminations = (links.len() - best.len()) as u64;
    match &stats {
        Some(s) => {
            s.classes.add(classes);
            s.cells.add(cells);
            s.colors.add(colors);
            s.picks.add(picks);
            s.eliminations.add(eliminations);
        }
        None => {
            fading_obs::counter(&format!("{stat_prefix}.classes")).add(classes);
            fading_obs::counter(&format!("{stat_prefix}.cells")).add(cells);
            fading_obs::counter(&format!("{stat_prefix}.colors")).add(colors);
            fading_obs::counter(&format!("{stat_prefix}.picks")).add(picks);
            fading_obs::counter(&format!("{stat_prefix}.eliminations")).add(eliminations);
        }
    }
    best
}

/// Per-call-site cached observability handles for the known callers:
/// resolving names through the registry or formatting dotted paths per
/// schedule call would put allocations on the untraced fast path.
struct GridStats {
    span: &'static str,
    classes: &'static fading_obs::Counter,
    cells: &'static fading_obs::Counter,
    colors: &'static fading_obs::Counter,
    picks: &'static fading_obs::Counter,
    eliminations: &'static fading_obs::Counter,
}

impl GridStats {
    fn for_prefix(prefix: &str) -> Option<Self> {
        match prefix {
            "core.ldp" => Some(Self {
                span: "core.ldp.schedule",
                classes: fading_obs::counter!("core.ldp.classes"),
                cells: fading_obs::counter!("core.ldp.cells"),
                colors: fading_obs::counter!("core.ldp.colors"),
                picks: fading_obs::counter!("core.ldp.picks"),
                eliminations: fading_obs::counter!("core.ldp.eliminations"),
            }),
            "core.approx_logn" => Some(Self {
                span: "core.approx_logn.schedule",
                classes: fading_obs::counter!("core.approx_logn.classes"),
                cells: fading_obs::counter!("core.approx_logn.cells"),
                colors: fading_obs::counter!("core.approx_logn.colors"),
                picks: fading_obs::counter!("core.approx_logn.picks"),
                eliminations: fading_obs::counter!("core.approx_logn.eliminations"),
            }),
            "core.grid" => Some(Self {
                span: "core.grid.schedule",
                classes: fading_obs::counter!("core.grid.classes"),
                cells: fading_obs::counter!("core.grid.cells"),
                colors: fading_obs::counter!("core.grid.colors"),
                picks: fading_obs::counter!("core.grid.picks"),
                eliminations: fading_obs::counter!("core.grid.eliminations"),
            }),
            _ => None,
        }
    }
}

/// Human-readable scheduler name recorded in the trace header.
fn grid_label(stat_prefix: &str, mode: ClassMode) -> &'static str {
    match (stat_prefix, mode) {
        ("core.ldp", ClassMode::Nested) => "LDP",
        ("core.ldp", ClassMode::TwoSided) => "LDP(two-sided)",
        ("core.approx_logn", _) => "ApproxLogN",
        _ => "Grid",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constants::ldp_beta;
    use fading_net::{RateModel, TopologyGenerator, UniformGenerator};

    fn problem(n: usize, seed: u64) -> Problem {
        Problem::paper(UniformGenerator::paper(n).generate(seed), 3.0)
    }

    #[test]
    fn empty_instance_gives_empty_schedule() {
        let links = fading_net::LinkSet::new(fading_geom::Rect::square(1.0), vec![]);
        let p = Problem::paper(links, 3.0);
        assert!(grid_schedule(&p, ClassMode::Nested, 10.0).is_empty());
    }

    #[test]
    fn nonempty_instance_schedules_at_least_one_link() {
        let p = problem(50, 1);
        let beta = ldp_beta(p.params(), p.gamma_eps());
        let s = grid_schedule(&p, ClassMode::Nested, beta);
        assert!(!s.is_empty());
    }

    #[test]
    fn at_most_one_link_per_same_color_square() {
        let p = problem(300, 2);
        let beta = ldp_beta(p.params(), p.gamma_eps());
        let s = grid_schedule(&p, ClassMode::Nested, beta);
        // Recover the winning class scale is unknown here; instead check
        // the weaker invariant that all scheduled receivers are pairwise
        // farther than the smallest class's square side apart OR in
        // different-colored squares for every class grid. The robust
        // check: for every class grid, no two scheduled receivers share
        // a square.
        let links = p.links();
        let delta = links.min_length().unwrap();
        for &h in &fading_net::diversity_exponents(links) {
            let cell = 2f64.powi(h as i32 + 1) * beta * delta;
            let grid = GridPartition::new(links.region(), cell);
            let mut cells = std::collections::HashSet::new();
            let mut shared = false;
            for id in s.iter() {
                if !cells.insert(grid.cell_of(&links.link(id).receiver)) {
                    shared = true;
                }
            }
            // The winning (class, color) must come from *some* grid in
            // which receivers occupy distinct same-color squares; at
            // least one h must show no sharing.
            if !shared {
                return;
            }
        }
        panic!("scheduled receivers share a square in every class grid");
    }

    #[test]
    fn nested_mode_never_worse_than_two_sided() {
        // Nested classes are supersets of two-sided classes, so every
        // two-sided per-square winner is available to nested too.
        for seed in 0..5 {
            let p = problem(120, seed);
            let beta = ldp_beta(p.params(), p.gamma_eps());
            let nested = grid_schedule(&p, ClassMode::Nested, beta).utility(&p);
            let two_sided = grid_schedule(&p, ClassMode::TwoSided, beta).utility(&p);
            assert!(
                nested >= two_sided - 1e-12,
                "seed {seed}: nested {nested} < two-sided {two_sided}"
            );
        }
    }

    #[test]
    fn smaller_scale_schedules_at_least_as_many_links_in_some_class() {
        // Halving the square size cannot reduce the best achievable
        // count below the bigger-square result in expectation; check the
        // utility is weakly better on a fixed dense instance.
        let p = problem(400, 3);
        let small = grid_schedule(&p, ClassMode::Nested, 4.0).utility(&p);
        let large = grid_schedule(&p, ClassMode::Nested, 16.0).utility(&p);
        assert!(small >= large);
    }

    #[test]
    fn picks_highest_rate_receiver_per_square() {
        // Two links, receivers in the same unit square, different rates:
        // the scheduler must keep the higher-rate one.
        use fading_geom::{Point2, Rect};
        use fading_net::{Link, LinkSet};
        let links = vec![
            Link::new(
                LinkId(0),
                Point2::new(100.0, 0.0),
                Point2::new(100.0, 5.0),
                1.0,
            ),
            Link::new(
                LinkId(1),
                Point2::new(101.0, 0.0),
                Point2::new(101.0, 5.0),
                7.0,
            ),
        ];
        let ls = LinkSet::new(Rect::square(500.0), links);
        let p = Problem::new(ls, fading_channel::ChannelParams::paper_defaults(), 0.01);
        let s = grid_schedule(&p, ClassMode::Nested, 50.0);
        assert_eq!(s.ids(), &[LinkId(1)]);
    }

    #[test]
    fn rate_diversity_exercises_tie_breaking() {
        let gen = UniformGenerator {
            rates: RateModel::Uniform { lo: 1.0, hi: 5.0 },
            ..UniformGenerator::paper(150)
        };
        let p = Problem::paper(gen.generate(4), 3.0);
        let beta = ldp_beta(p.params(), p.gamma_eps());
        let s = grid_schedule(&p, ClassMode::Nested, beta);
        assert!(!s.is_empty());
        assert!(s.utility(&p) > 0.0);
    }
}
