//! DLS — a decentralized link scheduler (reconstruction).
//!
//! The paper's evaluation and conclusion refer to a decentralized
//! algorithm "DLS", but its description is missing from the paper body
//! (see DESIGN.md §5). This module reconstructs a plausible
//! decentralized variant of the RLE rule with the same feasibility
//! machinery:
//!
//! * Each link knows only (i) the links whose senders fall within its
//!   *contention radius* `c₁·max(d_ii, d_jj)` (neighbor discovery) and
//!   (ii) the aggregate interference factor its own receiver has
//!   accumulated from already-active senders — a physically measurable
//!   local quantity.
//! * In each synchronous round, every undecided link retires itself if
//!   its measured interference exceeds `c₂ γ_ε`; otherwise it activates
//!   iff it is the *locally dominant* link (shortest, ties by id) among
//!   the undecided links it contends with.
//! * An activated link's receiver broadcasts a short "clear" message:
//!   undecided links whose senders are within `c₁·d_ii` of the new
//!   active receiver retire (RLE line 4, executed locally).
//!
//! Because every round activates the globally shortest undecided link,
//! the protocol terminates in at most `N` rounds; in practice it takes
//! `O(log N)`-ish rounds since non-contending links activate in
//! parallel. The two RLE invariants (deletion-disk separation and the
//! accumulated-budget rule) carry over, but simultaneous activations of
//! heterogeneous-length links lack RLE's worst-case packing bound, so
//! the protocol ends with a verification handshake: receivers that
//! still exceed the budget NACK and drop out (never observed on the
//! paper workloads, but it makes feasibility unconditional).

use crate::constants::rle_c1;
use crate::problem::Problem;
use crate::schedule::Schedule;
use crate::Scheduler;
use fading_net::LinkId;

/// The decentralized scheduler (reconstruction — not verbatim from the
/// paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dls {
    /// Budget split, as in RLE.
    pub c2: f64,
}

/// Per-link protocol state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Undecided,
    Active,
    Retired,
}

impl Dls {
    /// DLS with the symmetric split `c₂ = 1/2`.
    pub fn new() -> Self {
        Self { c2: 0.5 }
    }

    /// Number of synchronous rounds the protocol took on `problem`
    /// (diagnostic; re-runs the protocol).
    pub fn rounds(&self, problem: &Problem) -> usize {
        self.run(problem).1
    }

    fn run(&self, problem: &Problem) -> (Schedule, usize) {
        let links = problem.links();
        let n = links.len();
        if n == 0 {
            return (Schedule::empty(), 0);
        }
        let c1 = rle_c1(problem.params(), problem.gamma_eps(), self.c2);
        let threshold = self.c2 * problem.gamma_eps();

        // Neighbor discovery: j contends with k when either sender is
        // inside the other's deletion disk scaled by the larger link.
        // Symmetric by construction.
        let contends = |a: LinkId, b: LinkId| -> bool {
            let scale = c1 * links.length(a).max(links.length(b));
            let d_ab = links.link(a).sender.distance(&links.link(b).receiver);
            let d_ba = links.link(b).sender.distance(&links.link(a).receiver);
            d_ab < scale || d_ba < scale
        };
        // Local dominance order: shorter link wins, ties by id.
        let dominates =
            |a: LinkId, b: LinkId| -> bool { (links.length(a), a) < (links.length(b), b) };

        let mut state = vec![State::Undecided; n];
        let mut acc = vec![0.0f64; n]; // measured interference factor
        let mut rounds = 0usize;
        loop {
            rounds += 1;
            // Phase 1: budget-based retirement (local measurement).
            for j in links.ids() {
                if state[j.index()] == State::Undecided && acc[j.index()] > threshold {
                    state[j.index()] = State::Retired;
                }
            }
            // Phase 2: locally dominant undecided links activate.
            let activating: Vec<LinkId> = links
                .ids()
                .filter(|&j| state[j.index()] == State::Undecided)
                .filter(|&j| {
                    links
                        .ids()
                        .filter(|&k| k != j && state[k.index()] == State::Undecided)
                        .all(|k| !contends(j, k) || dominates(j, k))
                })
                .collect();
            if activating.is_empty() {
                break;
            }
            for &i in &activating {
                state[i.index()] = State::Active;
            }
            // Phase 3: "clear" broadcasts — retire senders inside the
            // deletion disk of each newly active receiver, and update
            // every undecided receiver's measured interference.
            for &i in &activating {
                let r_i = links.link(i).receiver;
                let radius = c1 * links.length(i);
                for j in links.ids() {
                    if state[j.index()] != State::Undecided {
                        continue;
                    }
                    if links.link(j).sender.distance(&r_i) < radius {
                        state[j.index()] = State::Retired;
                    } else {
                        // A receiver *measures* the clear broadcast, so
                        // the scalar factor is the right model — exact
                        // under every interference backend.
                        acc[j.index()] += problem.factor(i, j);
                    }
                }
            }
            if rounds > n {
                unreachable!("DLS failed to terminate within N rounds");
            }
        }
        let mut members: Vec<LinkId> = links
            .ids()
            .filter(|&j| state[j.index()] == State::Active)
            .collect();
        // Safety valve: unlike RLE, simultaneous activations of links
        // with heterogeneous lengths lack a worst-case packing bound, so
        // the protocol ends with an explicit verification pass — any
        // violating link (none observed on the paper workloads) is
        // dropped, worst offender first. This models a final
        // handshake round in which over-interfered receivers NACK.
        loop {
            let schedule = Schedule::from_ids(members.iter().copied());
            let report = crate::feasibility::FeasibilityReport::evaluate(problem, &schedule);
            if report.is_feasible() {
                return (schedule, rounds);
            }
            let worst = report
                .entries()
                .iter()
                .max_by(|a, b| a.interference_sum.total_cmp(&b.interference_sum))
                .expect("infeasible report cannot be empty")
                .id;
            members.retain(|&j| j != worst);
        }
    }
}

impl Default for Dls {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for Dls {
    fn name(&self) -> &'static str {
        "DLS"
    }

    fn schedule_in(&self, problem: &Problem, ctx: &mut crate::ctx::SchedCtx) -> Schedule {
        let _span = fading_obs::Span::enter("core.dls.schedule");
        let s = self.run(problem).0;
        super::emit_algo_trace("DLS", problem.len(), true, &s, ctx);
        fading_obs::counter!("core.dls.picks").add(s.len() as u64);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feasibility::is_feasible;
    use fading_net::{TopologyGenerator, UniformGenerator};

    #[test]
    fn dls_schedules_are_feasible() {
        for &alpha in &[2.5, 3.0, 4.0] {
            for seed in 0..3 {
                let links = UniformGenerator::paper(200).generate(seed);
                let p = Problem::paper(links, alpha);
                let s = Dls::new().schedule(&p);
                assert!(!s.is_empty());
                assert!(is_feasible(&p, &s), "α={alpha} seed={seed}");
            }
        }
    }

    #[test]
    fn dls_contains_the_globally_shortest_link() {
        let links = UniformGenerator::paper(150).generate(4);
        let p = Problem::paper(links, 3.0);
        let shortest = p
            .links()
            .ids()
            .min_by(|&a, &b| p.links().length(a).total_cmp(&p.links().length(b)))
            .unwrap();
        assert!(Dls::new().schedule(&p).contains(shortest));
    }

    #[test]
    fn dls_converges_in_few_rounds() {
        let links = UniformGenerator::paper(300).generate(5);
        let p = Problem::paper(links, 3.0);
        let rounds = Dls::new().rounds(&p);
        assert!(
            rounds <= 30,
            "expected parallel activation to finish quickly, took {rounds} rounds"
        );
    }

    #[test]
    fn dls_utility_is_comparable_to_rle() {
        // The reconstruction mirrors RLE's rule, so total throughput
        // should land in the same ballpark.
        let mut dls_total = 0.0;
        let mut rle_total = 0.0;
        for seed in 0..5 {
            let links = UniformGenerator::paper(300).generate(seed);
            let p = Problem::paper(links, 3.0);
            dls_total += Dls::new().schedule(&p).utility(&p);
            rle_total += crate::algo::Rle::new().schedule(&p).utility(&p);
        }
        assert!(
            dls_total >= rle_total * 0.5,
            "DLS {dls_total} vs RLE {rle_total}"
        );
    }

    #[test]
    fn empty_instance() {
        let links = fading_net::LinkSet::new(fading_geom::Rect::square(1.0), vec![]);
        let p = Problem::paper(links, 3.0);
        assert!(Dls::new().schedule(&p).is_empty());
        assert_eq!(Dls::new().rounds(&p), 0);
    }
}
