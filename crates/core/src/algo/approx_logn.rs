//! ApproxLogN — the deterministic-SINR grid baseline
//! (Goussevskaia, Oswald, Wattenhofer, "Complexity in geometric SINR",
//! MobiHoc 2007 — reference \[14\] of the paper).
//!
//! Structurally identical to LDP, but (i) link classes keep both length
//! bounds (`2^{h}δ ≤ d < 2^{h+1}δ`), and (ii) the square scale `μ` is
//! derived from the *deterministic* SINR constraint (budget 1) rather
//! than the fading budget `γ_ε` — so its squares are far smaller, it
//! schedules far more links, and (the paper's point) those links have
//! no fading headroom and fail in a Rayleigh environment (Fig. 5).

use crate::algo::grid_core::{grid_schedule_labeled_in, ClassMode};
use crate::constants::approx_logn_mu;
use crate::ctx::SchedCtx;
use crate::problem::Problem;
use crate::schedule::Schedule;
use crate::Scheduler;

/// The ApproxLogN baseline scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ApproxLogN;

impl ApproxLogN {
    /// Creates the baseline.
    pub fn new() -> Self {
        Self
    }
}

impl Scheduler for ApproxLogN {
    fn name(&self) -> &'static str {
        "ApproxLogN"
    }

    fn schedule_in(&self, problem: &Problem, ctx: &mut SchedCtx) -> Schedule {
        let mu = approx_logn_mu(problem.params());
        grid_schedule_labeled_in(
            problem,
            ClassMode::TwoSided,
            mu,
            "core.approx_logn",
            false,
            ctx,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feasibility::FeasibilityReport;
    use fading_math::KahanSum;
    use fading_net::{TopologyGenerator, UniformGenerator};

    /// Number of scheduled links whose deterministic relative
    /// interference sum `Σ γ_th (d_jj/d_ij)^α` exceeds 1.
    fn det_violations(p: &Problem, s: &Schedule) -> usize {
        let det = p.deterministic_channel();
        s.iter()
            .filter(|&j| {
                let d_jj = p.links().length(j);
                let sum = KahanSum::sum_iter(s.iter().filter(|&i| i != j).map(|i| {
                    det.relative_interference(p.links().sender_receiver_distance(i, j), d_jj)
                }));
                sum > 1.0 + 1e-12
            })
            .count()
    }

    #[test]
    fn schedules_are_deterministically_feasible_in_practice() {
        // The [14] constant comes from a loose worst-case argument;
        // on random placements its schedules meet the deterministic
        // SINR threshold essentially always (the original paper's
        // working assumption). Allow a tiny tail for worst-case spots.
        let mut total = 0usize;
        let mut viol = 0usize;
        for &alpha in &[2.5, 3.0, 4.0, 4.5] {
            for seed in 0..3 {
                let links = UniformGenerator::paper(250).generate(seed);
                let p = Problem::paper(links, alpha);
                let s = ApproxLogN.schedule(&p);
                assert!(!s.is_empty());
                total += s.len();
                viol += det_violations(&p, &s);
            }
        }
        assert!(
            (viol as f64) <= 0.05 * total as f64,
            "{viol}/{total} deterministic violations — constant too loose"
        );
    }

    #[test]
    fn schedules_more_links_than_ldp() {
        // The fading-susceptibility trade-off: smaller squares ⇒ more
        // concurrent links.
        let mut logn_total = 0usize;
        let mut ldp_total = 0usize;
        for seed in 0..5 {
            let links = UniformGenerator::paper(400).generate(seed);
            let p = Problem::paper(links, 3.0);
            logn_total += ApproxLogN.schedule(&p).len();
            ldp_total += crate::algo::Ldp::new().schedule(&p).len();
        }
        assert!(
            logn_total > ldp_total,
            "ApproxLogN ({logn_total}) should out-schedule LDP ({ldp_total})"
        );
    }

    #[test]
    fn schedules_usually_violate_the_fading_budget() {
        // The crux of Fig. 5: deterministically-feasible schedules are
        // not 1−ε reliable under Rayleigh fading.
        let mut fading_violations = 0usize;
        for seed in 0..5 {
            let links = UniformGenerator::paper(400).generate(seed);
            let p = Problem::paper(links, 3.0);
            let s = ApproxLogN.schedule(&p);
            let report = FeasibilityReport::evaluate(&p, &s);
            fading_violations += report.violations().len();
        }
        assert!(
            fading_violations > 0,
            "expected some links to miss the 1−ε fading target"
        );
    }

    #[test]
    fn empty_instance() {
        let links = fading_net::LinkSet::new(fading_geom::Rect::square(1.0), vec![]);
        let p = Problem::paper(links, 3.0);
        assert!(ApproxLogN.schedule(&p).is_empty());
    }
}
