//! RLE — the Recursive Link Elimination algorithm (Section IV-B,
//! Algorithm 2).
//!
//! For the uniform-rate special case of Fading-R-LS. Repeatedly picks
//! the shortest remaining link, removes every link whose sender lies
//! within `c₁·d_ii` of the picked receiver
//! (`c₁ = √2 (12 ζ(α−1) γ_th/(γ_ε(1−c₂)))^{1/α} + 1`, Eq. (59)), and
//! removes every link whose accumulated interference factor from the
//! picked senders exceeds `c₂ γ_ε`. Feasible by Theorem 4.3 and a
//! constant-factor approximation by Theorem 4.4.

use crate::algo::elim_core::{eliminate_schedule_in, ElimMetric};
use crate::constants::rle_c1;
use crate::ctx::SchedCtx;
use crate::problem::Problem;
use crate::schedule::Schedule;
use crate::Scheduler;

/// The RLE scheduler.
///
/// ```
/// use fading_core::{algo::Rle, feasibility::is_feasible, Problem, Scheduler};
/// use fading_net::{TopologyGenerator, UniformGenerator};
///
/// let problem = Problem::paper(UniformGenerator::paper(100).generate(7), 3.0);
/// let schedule = Rle::new().schedule(&problem);
/// assert!(!schedule.is_empty());
/// assert!(is_feasible(&problem, &schedule)); // Theorem 4.3
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rle {
    /// Budget split `c₂ ∈ (0,1)` between already-picked and
    /// later-picked senders. The paper leaves the value open; 1/2 is
    /// the natural symmetric choice and the ablation (`--bin
    /// ablation_c2`) sweeps it.
    pub c2: f64,
}

impl Rle {
    /// RLE with the default symmetric split `c₂ = 1/2`.
    pub fn new() -> Self {
        Self { c2: 0.5 }
    }

    /// RLE with a custom budget split.
    pub fn with_c2(c2: f64) -> Self {
        assert!(c2 > 0.0 && c2 < 1.0, "c₂ must be in (0,1), got {c2}");
        Self { c2 }
    }

    /// The deletion radius factor `c₁` this instance uses on `problem`.
    pub fn c1(&self, problem: &Problem) -> f64 {
        rle_c1(problem.params(), problem.gamma_eps(), self.c2)
    }
}

impl Default for Rle {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for Rle {
    fn name(&self) -> &'static str {
        "RLE"
    }

    fn schedule_in(&self, problem: &Problem, ctx: &mut SchedCtx) -> Schedule {
        eliminate_schedule_in(
            problem,
            self.c1(problem),
            self.c2,
            ElimMetric::FadingFactor,
            ctx,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feasibility::{is_feasible, FeasibilityReport};
    use fading_net::{TopologyGenerator, UniformGenerator};

    #[test]
    fn rle_schedules_are_feasible_across_alpha() {
        // Theorem 4.3.
        for &alpha in &[2.5, 3.0, 3.5, 4.0, 4.5] {
            for seed in 0..3 {
                let links = UniformGenerator::paper(200).generate(seed);
                let p = Problem::paper(links, alpha);
                let s = Rle::new().schedule(&p);
                assert!(!s.is_empty());
                assert!(
                    is_feasible(&p, &s),
                    "α={alpha} seed={seed}: infeasible RLE schedule (worst {} vs γ_ε {})",
                    FeasibilityReport::evaluate(&p, &s).worst_interference(),
                    p.gamma_eps()
                );
            }
        }
    }

    #[test]
    fn rle_feasible_for_various_c2() {
        for &c2 in &[0.1, 0.3, 0.5, 0.7, 0.9] {
            let links = UniformGenerator::paper(250).generate(42);
            let p = Problem::paper(links, 3.0);
            let s = Rle::with_c2(c2).schedule(&p);
            assert!(is_feasible(&p, &s), "c₂={c2}");
        }
    }

    #[test]
    fn c1_matches_equation_59() {
        let links = UniformGenerator::paper(10).generate(0);
        let p = Problem::paper(links, 3.0);
        let rle = Rle::new();
        let expect = crate::constants::rle_c1(p.params(), p.gamma_eps(), 0.5);
        assert_eq!(rle.c1(&p), expect);
    }

    #[test]
    fn utility_grows_with_alpha() {
        // Fig. 6(b) mechanism: higher α shrinks c₁, so fewer links are
        // eliminated per pick.
        let links = UniformGenerator::paper(300).generate(9);
        let lo = Problem::paper(links.clone(), 2.5);
        let hi = Problem::paper(links, 4.5);
        let u_lo = Rle::new().schedule(&lo).utility(&lo);
        let u_hi = Rle::new().schedule(&hi).utility(&hi);
        assert!(
            u_hi > u_lo,
            "α=4.5 utility {u_hi} should exceed α=2.5 utility {u_lo}"
        );
    }

    #[test]
    fn rle_beats_ldp_on_the_paper_workload() {
        // Fig. 6's headline: RLE > LDP in throughput.
        let mut rle_total = 0.0;
        let mut ldp_total = 0.0;
        for seed in 0..5 {
            let links = UniformGenerator::paper(300).generate(seed);
            let p = Problem::paper(links, 3.0);
            rle_total += Rle::new().schedule(&p).utility(&p);
            ldp_total += crate::algo::Ldp::new().schedule(&p).utility(&p);
        }
        assert!(
            rle_total > ldp_total,
            "RLE total {rle_total} vs LDP total {ldp_total}"
        );
    }

    #[test]
    #[should_panic(expected = "c₂ must be in (0,1)")]
    fn rejects_out_of_range_c2() {
        Rle::with_c2(1.5);
    }
}
