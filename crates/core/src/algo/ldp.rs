//! LDP — the Link Diversity Partition algorithm (Section IV-A,
//! Algorithm 1).
//!
//! LDP builds one *nested* link class per length magnitude
//! (`L_k = {(s,r) : d_{s,r} < 2^{h_k+1} δ}`, Eq. (36)), tiles the region
//! with squares of side `β_k = 2^{h_k+1} β δ` where `β` comes from
//! Eq. (37) (plus the geometric safety margin discussed in
//! [`crate::constants`]), 4-colors the squares, picks the max-rate
//! receiver in each square, and returns the best of the `4·g(L)`
//! feasible schedules. Approximation ratio `O(g(L))` (Theorem 4.2).

use crate::algo::grid_core::{grid_schedule_labeled_in, ClassMode};
use crate::constants::ldp_beta;
use crate::ctx::SchedCtx;
use crate::problem::Problem;
use crate::schedule::Schedule;
use crate::Scheduler;

/// The LDP scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ldp {
    /// Class construction mode. [`ClassMode::Nested`] is the paper's
    /// algorithm; [`ClassMode::TwoSided`] reverts to the original \[14\]
    /// classes for the ablation experiment.
    pub mode: ClassMode,
}

impl Ldp {
    /// The paper's LDP (nested classes).
    pub fn new() -> Self {
        Self {
            mode: ClassMode::Nested,
        }
    }

    /// LDP with the pre-improvement two-sided classes (ablation A1).
    pub fn two_sided() -> Self {
        Self {
            mode: ClassMode::TwoSided,
        }
    }
}

impl Default for Ldp {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for Ldp {
    fn name(&self) -> &'static str {
        match self.mode {
            ClassMode::Nested => "LDP",
            ClassMode::TwoSided => "LDP(two-sided)",
        }
    }

    fn schedule_in(&self, problem: &Problem, ctx: &mut SchedCtx) -> Schedule {
        let beta = ldp_beta(problem.params(), problem.gamma_eps());
        grid_schedule_labeled_in(problem, self.mode, beta, "core.ldp", true, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feasibility::is_feasible;
    use fading_net::{TopologyGenerator, UniformGenerator};

    #[test]
    fn ldp_schedules_are_feasible_across_alpha() {
        // Theorem 4.1: every LDP schedule satisfies Corollary 3.1.
        for &alpha in &[2.5, 3.0, 3.5, 4.0, 4.5] {
            for seed in 0..3 {
                let links = UniformGenerator::paper(200).generate(seed);
                let p = Problem::paper(links, alpha);
                let s = Ldp::new().schedule(&p);
                assert!(
                    is_feasible(&p, &s),
                    "α={alpha} seed={seed}: infeasible LDP schedule"
                );
                assert!(!s.is_empty());
            }
        }
    }

    #[test]
    fn two_sided_variant_is_also_feasible() {
        for seed in 0..3 {
            let links = UniformGenerator::paper(150).generate(seed);
            let p = Problem::paper(links, 3.0);
            let s = Ldp::two_sided().schedule(&p);
            assert!(is_feasible(&p, &s), "seed={seed}");
        }
    }

    #[test]
    fn nested_beats_or_ties_two_sided() {
        // The paper's stated improvement (Section IV-A).
        for seed in 0..5 {
            let links = UniformGenerator::paper(250).generate(seed);
            let p = Problem::paper(links, 3.0);
            let nested = Ldp::new().schedule(&p).utility(&p);
            let two_sided = Ldp::two_sided().schedule(&p).utility(&p);
            assert!(nested >= two_sided - 1e-12, "seed={seed}");
        }
    }

    #[test]
    fn utility_grows_with_instance_size() {
        // Fig. 6(a) mechanism: more links → more occupied squares.
        let p_small = Problem::paper(UniformGenerator::paper(50).generate(11), 3.0);
        let p_large = Problem::paper(UniformGenerator::paper(500).generate(11), 3.0);
        let u_small = Ldp::new().schedule(&p_small).utility(&p_small);
        let u_large = Ldp::new().schedule(&p_large).utility(&p_large);
        assert!(
            u_large >= u_small,
            "LDP utility should not shrink with density: {u_small} vs {u_large}"
        );
    }

    #[test]
    fn names_distinguish_modes() {
        assert_eq!(Ldp::new().name(), "LDP");
        assert_eq!(Ldp::two_sided().name(), "LDP(two-sided)");
    }
}
