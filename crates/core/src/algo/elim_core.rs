//! Shared machinery for shortest-first elimination schedulers
//! (RLE, ApproxDiversity).
//!
//! Both follow Algorithm 2's skeleton: repeatedly pick the shortest
//! remaining link, delete every link whose sender falls inside a disk
//! of radius `c₁·d_ii` around the picked receiver, and delete every
//! link whose accumulated interference from the picked senders exceeds
//! `c₂ · budget`. They differ in the interference metric (fading
//! factors vs deterministic relative interference) and the budget
//! (`γ_ε` vs 1).

use crate::problem::Problem;
use crate::schedule::Schedule;
use fading_geom::SpatialHash;
use fading_net::LinkId;

/// Which accumulated-interference metric drives deletions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElimMetric {
    /// The paper's interference factor `f_{i,j}` with budget `γ_ε`.
    FadingFactor,
    /// Deterministic relative interference `γ_th (d_jj/d_ij)^α`
    /// (`= e^{f_{i,j}} − 1`) with budget 1.
    DeterministicRelative,
}

/// Runs the elimination skeleton. `c1` is the deletion-radius factor,
/// `c2 ∈ (0,1)` the budget fraction reserved for already-picked senders.
pub fn eliminate_schedule(problem: &Problem, c1: f64, c2: f64, metric: ElimMetric) -> Schedule {
    assert!(c1 >= 1.0, "deletion radius factor must be ≥ 1, got {c1}");
    assert!(c2 > 0.0 && c2 < 1.0, "c₂ must be in (0,1), got {c2}");
    let links = problem.links();
    let n = links.len();
    if n == 0 {
        return Schedule::empty();
    }
    let budget = match metric {
        ElimMetric::FadingFactor => problem.gamma_eps(),
        ElimMetric::DeterministicRelative => 1.0,
    };
    let threshold = c2 * budget;

    // Links in non-decreasing length order (ties by id for determinism).
    let mut order: Vec<LinkId> = links.ids().collect();
    order.sort_by(|&a, &b| links.length(a).total_cmp(&links.length(b)).then(a.cmp(&b)));

    // Spatial hash over sender positions for the disk deletions; cell
    // size near the typical deletion radius keeps queries local.
    let senders = links.sender_positions();
    let typical_radius = c1 * links.min_length().unwrap_or(1.0);
    let hash = SpatialHash::build(&senders, typical_radius.max(1e-9));

    let mut alive = vec![true; n];
    let mut acc = vec![0.0f64; n];
    let mut picked = Vec::new();
    let mut eliminations = 0u64;

    for &i in &order {
        if !alive[i.index()] {
            continue;
        }
        // Line 3: pick the shortest remaining link.
        alive[i.index()] = false;
        picked.push(i);
        let receiver = links.link(i).receiver;
        let radius = c1 * links.length(i);
        // Line 4: delete links whose senders are within c₁·d_ii of r_i.
        hash.for_each_in_radius(&receiver, radius, |j| {
            if alive[j as usize] {
                alive[j as usize] = false;
                eliminations += 1;
            }
        });
        // Line 5: delete links whose accumulated interference from the
        // picked senders exceeds c₂·budget. Dense: one contiguous row
        // walk. Sparse: only the pick's stored out-neighborhood — links
        // outside it receive strictly less than the certified cut, a
        // slack absorbed by the c₂ margin Theorem 4.3 reserves.
        // e^f − 1 recovers the deterministic relative interference from
        // the fading factor.
        let contribution = |f: f64| match metric {
            ElimMetric::FadingFactor => f,
            ElimMetric::DeterministicRelative => f.exp_m1(),
        };
        if let Some(row) = problem.factors().dense_row(i) {
            for j in 0..n {
                if !alive[j] {
                    continue;
                }
                acc[j] += contribution(row[j]);
                if acc[j] > threshold {
                    alive[j] = false;
                    eliminations += 1;
                }
            }
        } else {
            problem.factors().for_each_out(i, &mut |j, f| {
                let j = j.index();
                if alive[j] {
                    acc[j] += contribution(f);
                    if acc[j] > threshold {
                        alive[j] = false;
                        eliminations += 1;
                    }
                }
            });
        }
    }
    // Flushed once per schedule call: the elimination loop itself
    // stays free of shared-state writes.
    let (rounds_name, elim_name) = match metric {
        ElimMetric::FadingFactor => ("core.rle.rounds", "core.rle.eliminations"),
        ElimMetric::DeterministicRelative => (
            "core.approx_diversity.rounds",
            "core.approx_diversity.eliminations",
        ),
    };
    fading_obs::counter(rounds_name).add(picked.len() as u64);
    fading_obs::counter(elim_name).add(eliminations);
    Schedule::from_ids(picked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fading_net::{TopologyGenerator, UniformGenerator};

    fn problem(n: usize, seed: u64) -> Problem {
        Problem::paper(UniformGenerator::paper(n).generate(seed), 3.0)
    }

    #[test]
    fn empty_instance() {
        let links = fading_net::LinkSet::new(fading_geom::Rect::square(1.0), vec![]);
        let p = Problem::paper(links, 3.0);
        assert!(eliminate_schedule(&p, 10.0, 0.5, ElimMetric::FadingFactor).is_empty());
    }

    #[test]
    fn always_schedules_the_globally_shortest_link() {
        let p = problem(100, 1);
        let shortest = p
            .links()
            .ids()
            .min_by(|&a, &b| p.links().length(a).total_cmp(&p.links().length(b)))
            .unwrap();
        let s = eliminate_schedule(&p, 20.0, 0.5, ElimMetric::FadingFactor);
        assert!(s.contains(shortest));
    }

    #[test]
    fn scheduled_senders_respect_the_deletion_radius() {
        let p = problem(200, 2);
        let c1 = 15.0;
        let s = eliminate_schedule(&p, c1, 0.5, ElimMetric::FadingFactor);
        // No scheduled sender may lie strictly inside the deletion disk
        // of another scheduled link that was picked earlier (shorter).
        let links = p.links();
        for j in s.iter() {
            for i in s.iter() {
                if i == j || links.length(i) > links.length(j) {
                    continue;
                }
                // i was picked no later than j.
                let d = links.link(j).sender.distance(&links.link(i).receiver);
                assert!(
                    d > c1 * links.length(i) - 1e-9,
                    "sender {j} inside deletion disk of {i}"
                );
            }
        }
    }

    #[test]
    fn accumulated_interference_respects_threshold() {
        let p = problem(200, 3);
        let c2 = 0.5;
        let s = eliminate_schedule(&p, 23.0, c2, ElimMetric::FadingFactor);
        // For each scheduled link, the factors from *shorter* scheduled
        // links (those picked before it) must be within c₂·γ_ε.
        let links = p.links();
        for j in s.iter() {
            let sum: f64 = s
                .iter()
                .filter(|&i| i != j && links.length(i) <= links.length(j))
                .map(|i| p.factor(i, j))
                .sum();
            assert!(
                sum <= c2 * p.gamma_eps() + 1e-12,
                "{j}: earlier-pick interference {sum}"
            );
        }
    }

    #[test]
    fn larger_c1_schedules_fewer_links() {
        let p = problem(300, 4);
        let small = eliminate_schedule(&p, 5.0, 0.5, ElimMetric::FadingFactor).len();
        let large = eliminate_schedule(&p, 40.0, 0.5, ElimMetric::FadingFactor).len();
        assert!(
            small >= large,
            "c₁=5 gave {small}, c₁=40 gave {large} — deletion radius should prune"
        );
    }

    #[test]
    fn deterministic_metric_schedules_more_than_fading_metric() {
        // Budget 1 ≫ γ_ε ≈ 0.01: the deterministic variant is far more
        // permissive at equal c₁/c₂.
        let p = problem(300, 5);
        let fading = eliminate_schedule(&p, 6.0, 0.5, ElimMetric::FadingFactor).len();
        let det = eliminate_schedule(&p, 6.0, 0.5, ElimMetric::DeterministicRelative).len();
        assert!(det >= fading);
    }

    #[test]
    #[should_panic(expected = "c₂ must be in (0,1)")]
    fn rejects_bad_c2() {
        let p = problem(5, 6);
        eliminate_schedule(&p, 5.0, 0.0, ElimMetric::FadingFactor);
    }
}
