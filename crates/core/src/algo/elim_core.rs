//! Shared machinery for shortest-first elimination schedulers
//! (RLE, ApproxDiversity).
//!
//! Both follow Algorithm 2's skeleton: repeatedly pick the shortest
//! remaining link, delete every link whose sender falls inside a disk
//! of radius `c₁·d_ii` around the picked receiver, and delete every
//! link whose accumulated interference from the picked senders exceeds
//! `c₂ · budget`. They differ in the interference metric (fading
//! factors vs deterministic relative interference) and the budget
//! (`γ_ε` vs 1).

use crate::ctx::{OrderKind, SchedCtx};
use crate::problem::Problem;
use crate::schedule::Schedule;
use fading_obs::{ElimCause, TraceEvent, TraceScope};

/// Which accumulated-interference metric drives deletions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElimMetric {
    /// The paper's interference factor `f_{i,j}` with budget `γ_ε`.
    FadingFactor,
    /// Deterministic relative interference `γ_th (d_jj/d_ij)^α`
    /// (`= e^{f_{i,j}} − 1`) with budget 1.
    DeterministicRelative,
}

impl ElimMetric {
    /// The metric name recorded in [`TraceEvent::ElimStart`].
    pub fn trace_name(self) -> &'static str {
        match self {
            Self::FadingFactor => "fading",
            Self::DeterministicRelative => "deterministic",
        }
    }
}

/// [`eliminate_schedule_in`] with a private one-shot workspace.
pub fn eliminate_schedule(problem: &Problem, c1: f64, c2: f64, metric: ElimMetric) -> Schedule {
    eliminate_schedule_in(problem, c1, c2, metric, &mut SchedCtx::new())
}

/// Runs the elimination skeleton. `c1` is the deletion-radius factor,
/// `c2 ∈ (0,1)` the budget fraction reserved for already-picked senders.
/// All scratch (candidate order, alive bitmap, ledgers, spatial index)
/// lives in `ctx`; a warm ctx makes the whole call allocation-free.
pub fn eliminate_schedule_in(
    problem: &Problem,
    c1: f64,
    c2: f64,
    metric: ElimMetric,
    ctx: &mut SchedCtx,
) -> Schedule {
    assert!(c1 >= 1.0, "deletion radius factor must be ≥ 1, got {c1}");
    assert!(c2 > 0.0 && c2 < 1.0, "c₂ must be in (0,1), got {c2}");
    // Static names + per-call-site cached counters: the observability
    // constants here must stay off the per-schedule cost profile.
    struct Stats {
        span: &'static str,
        label: &'static str,
        rounds: &'static fading_obs::Counter,
        picks: &'static fading_obs::Counter,
        eliminations: &'static fading_obs::Counter,
        elim_radius: &'static fading_obs::Counter,
        elim_budget: &'static fading_obs::Counter,
    }
    let stats = match metric {
        ElimMetric::FadingFactor => Stats {
            span: "core.rle.schedule",
            label: "RLE",
            rounds: fading_obs::counter!("core.rle.rounds"),
            picks: fading_obs::counter!("core.rle.picks"),
            eliminations: fading_obs::counter!("core.rle.eliminations"),
            elim_radius: fading_obs::counter!("core.rle.elim_radius"),
            elim_budget: fading_obs::counter!("core.rle.elim_budget"),
        },
        ElimMetric::DeterministicRelative => Stats {
            span: "core.approx_diversity.schedule",
            label: "ApproxDiversity",
            rounds: fading_obs::counter!("core.approx_diversity.rounds"),
            picks: fading_obs::counter!("core.approx_diversity.picks"),
            eliminations: fading_obs::counter!("core.approx_diversity.eliminations"),
            elim_radius: fading_obs::counter!("core.approx_diversity.elim_radius"),
            elim_budget: fading_obs::counter!("core.approx_diversity.elim_budget"),
        },
    };
    let label = stats.label;
    let _span = fading_obs::Span::enter(stats.span);
    let links = problem.links();
    let n = links.len();
    if n == 0 {
        return Schedule::empty();
    }
    let budget = match metric {
        ElimMetric::FadingFactor => problem.gamma_eps(),
        ElimMetric::DeterministicRelative => 1.0,
    };
    let threshold = c2 * budget;

    // Links in non-decreasing length order (ties by id for determinism;
    // the tie-break makes the comparator a total order, so the unstable
    // sort's result is unique — which also makes the order safe to
    // memoize across calls on bit-identical length vectors).
    if !ctx.order_is_cached(
        OrderKind::ElimLength,
        problem.stamp(),
        links.ids().map(|i| links.length(i)),
    ) {
        ctx.order.clear();
        ctx.order.extend(links.ids());
        ctx.order
            .sort_unstable_by(|&a, &b| links.length(a).total_cmp(&links.length(b)).then(a.cmp(&b)));
    }

    // Spatial index over sender positions for the disk deletions; cell
    // size near the typical deletion radius keeps queries local.
    ctx.senders.clear();
    ctx.senders.extend(links.links().iter().map(|l| l.sender));
    let typical_radius = c1 * links.min_length().unwrap_or(1.0);
    ctx.spatial.rebuild(&ctx.senders, typical_radius.max(1e-9));

    // The elimination loop exists twice: an untraced copy containing no
    // trace hooks at all, and a fully traced `#[cold]` twin. Merging
    // them (one loop with per-event `if traced` guards) measurably
    // pessimizes the untraced dense walk — LLVM stops optimizing the
    // hot row loop once the trace-event code is reachable from it —
    // which regressed the disabled-tracing benchmark ~10% at N = 1000.
    // Both copies make identical picks/eliminations in identical
    // (FP-accumulation) order; `trace_certificates.rs` replays traced
    // runs against `schedule()` output to pin that equivalence.
    let (schedule, elim_radius, elim_budget) = if fading_obs::tracing_enabled() {
        run_traced(problem, ctx, c1, c2, budget, threshold, metric, label)
    } else {
        run_untraced(problem, ctx, c1, threshold, metric)
    };
    // Flushed once per schedule call: the elimination loop itself
    // stays free of shared-state writes.
    stats.rounds.add(schedule.len() as u64);
    stats.picks.add(schedule.len() as u64);
    stats.eliminations.add(elim_radius + elim_budget);
    stats.elim_radius.add(elim_radius);
    stats.elim_budget.add(elim_budget);
    schedule
}

/// The hot path: Algorithm 2 with no tracing support compiled into it.
/// All scratch comes from `ctx`; warm calls touch no heap.
#[inline(never)]
fn run_untraced(
    problem: &Problem,
    ctx: &mut SchedCtx,
    c1: f64,
    threshold: f64,
    metric: ElimMetric,
) -> (Schedule, u64, u64) {
    let links = problem.links();
    let n = links.len();
    let mut picked = ctx.take_members();
    let SchedCtx {
        order,
        alive,
        acc,
        live,
        spatial,
        ..
    } = ctx;
    alive.clear();
    alive.resize(n, true);
    acc.clear();
    acc.resize(n, 0.0);
    live.clear();
    live.extend(0..n as u32);
    let mut elim_radius = 0u64;
    let mut elim_budget = 0u64;
    // Two-phase dense debit (FadingFactor only): while most links are
    // still alive, the branch-free full-row kernel beats the compacted
    // walk — the row is streamed once, no `live` maintenance, and the
    // loop autovectorizes. Once survivors drop below ~25% the compacted
    // walk wins (it skips the dead majority), so we rebuild `live` from
    // the bitmap and switch permanently. Both forms are verdict- and
    // bit-identical for every surviving receiver (see
    // `crate::kernel::debit_dense`), so the schedule cannot depend on
    // where the crossover lands. DeterministicRelative keeps the
    // compacted walk throughout: its `exp_m1` per element makes full
    // rows expensive on dead entries.
    let mut alive_count = n;
    let mut compacted = metric != ElimMetric::FadingFactor;

    for &i in order.iter() {
        if !alive[i.index()] {
            continue;
        }
        // Line 3: pick the shortest remaining link.
        alive[i.index()] = false;
        alive_count -= 1;
        picked.push(i);
        let receiver = links.link(i).receiver;
        let radius = c1 * links.length(i);
        // Line 4: delete links whose senders are within c₁·d_ii of r_i.
        spatial.for_each_in_radius(&receiver, radius, |j| {
            if alive[j as usize] {
                alive[j as usize] = false;
                alive_count -= 1;
                elim_radius += 1;
            }
        });
        // Line 5: delete links whose accumulated interference from the
        // picked senders exceeds c₂·budget. Dense: walk only the links
        // still alive — `live` is compacted against the bitmap first,
        // which keeps the walk ascending in id, so each survivor takes
        // the same debits in the same order as the full row walk (a
        // link's verdict depends only on its own accumulator). Sparse:
        // only the pick's stored out-neighborhood — links outside it
        // receive strictly less than the certified cut, a slack
        // absorbed by the c₂ margin Theorem 4.3 reserves. e^f − 1
        // recovers the deterministic relative interference from the
        // fading factor.
        let contribution = |f: f64| match metric {
            ElimMetric::FadingFactor => f,
            ElimMetric::DeterministicRelative => f.exp_m1(),
        };
        if let Some(row) = problem.factors().dense_row(i) {
            if !compacted && alive_count * 4 < n {
                // Crossover: rebuild `live` from the bitmap (ascending,
                // exactly what successive `retain`s would have left) and
                // stay compacted for the rest of the run.
                live.clear();
                live.extend((0..n as u32).filter(|&j| alive[j as usize]));
                compacted = true;
            }
            if compacted {
                live.retain(|&j| alive[j as usize]);
                for &j in live.iter() {
                    let j = j as usize;
                    acc[j] += contribution(row[j]);
                    if acc[j] > threshold {
                        alive[j] = false;
                        elim_budget += 1;
                    }
                }
            } else {
                let newly = crate::kernel::debit_dense(row, acc, alive, threshold);
                elim_budget += newly;
                alive_count -= newly as usize;
            }
        } else {
            // Sparse: walk the pick's CSR row as two parallel slices
            // (receivers, factors) instead of the dyn-dispatch
            // `for_each_out` visitor — same entries in the same stored
            // order, so every accumulator sees bit-identical debits,
            // but the bounds-checked closure call per entry is gone.
            let sparse = problem
                .factors()
                .as_sparse()
                .expect("backend is neither dense nor sparse");
            let (recv, fact) = sparse.row_slices(i);
            for (&j, &f) in recv.iter().zip(fact.iter()) {
                let j = j as usize;
                if alive[j] {
                    acc[j] += contribution(f);
                    if acc[j] > threshold {
                        alive[j] = false;
                        elim_budget += 1;
                    }
                }
            }
        }
    }
    (Schedule::from_vec(picked), elim_radius, elim_budget)
}

/// The traced twin of [`run_untraced`]: identical decision sequence,
/// with every pick, elimination, and ledger debit recorded.
#[cold]
#[inline(never)]
#[allow(clippy::too_many_arguments)]
fn run_traced(
    problem: &Problem,
    ctx: &mut SchedCtx,
    c1: f64,
    c2: f64,
    budget: f64,
    threshold: f64,
    metric: ElimMetric,
    label: &str,
) -> (Schedule, u64, u64) {
    let links = problem.links();
    let n = links.len();
    let order = &ctx.order;
    let hash = &ctx.spatial;
    let mut tr = TraceScope::begin();
    tr.push(TraceEvent::ElimStart {
        scheduler: label.to_string(),
        n: n as u32,
        metric: metric.trace_name().to_string(),
        budget,
        threshold,
        c1,
        c2,
    });
    let mut alive = vec![true; n];
    let mut acc = vec![0.0f64; n];
    let mut picked = Vec::new();
    let mut elim_radius = 0u64;
    let mut elim_budget = 0u64;

    for &i in order {
        if !alive[i.index()] {
            continue;
        }
        alive[i.index()] = false;
        picked.push(i);
        tr.push(TraceEvent::Pick { link: i.0 });
        let receiver = links.link(i).receiver;
        let radius = c1 * links.length(i);
        hash.for_each_in_radius(&receiver, radius, |j| {
            if alive[j as usize] {
                alive[j as usize] = false;
                elim_radius += 1;
                tr.push(TraceEvent::Eliminate {
                    link: j,
                    cause: ElimCause::Radius,
                    by: Some(i.0),
                });
            }
        });
        let contribution = |f: f64| match metric {
            ElimMetric::FadingFactor => f,
            ElimMetric::DeterministicRelative => f.exp_m1(),
        };
        // Every nonzero debit is recorded with the ledger state it
        // left behind.
        let mut debit =
            |j: usize, f: f64, alive: &mut [bool], acc: &mut [f64], tr: &mut TraceScope| {
                let f = contribution(f);
                acc[j] += f;
                if f != 0.0 {
                    tr.push(TraceEvent::BudgetDebit {
                        receiver: j as u32,
                        from: i.0,
                        factor: f,
                        remaining: threshold - acc[j],
                    });
                }
                if acc[j] > threshold {
                    alive[j] = false;
                    elim_budget += 1;
                    tr.push(TraceEvent::Eliminate {
                        link: j as u32,
                        cause: ElimCause::BudgetExceeded,
                        by: Some(i.0),
                    });
                }
            };
        if let Some(row) = problem.factors().dense_row(i) {
            for j in 0..n {
                if !alive[j] {
                    continue;
                }
                debit(j, row[j], &mut alive, &mut acc, &mut tr);
            }
        } else {
            problem.factors().for_each_out(i, &mut |j, f| {
                let j = j.index();
                if alive[j] {
                    debit(j, f, &mut alive, &mut acc, &mut tr);
                }
            });
        }
    }
    let schedule = Schedule::from_ids(picked);
    tr.push(TraceEvent::End {
        scheduled: schedule.iter().map(|id| id.0).collect(),
    });
    tr.finish();
    (schedule, elim_radius, elim_budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fading_net::{TopologyGenerator, UniformGenerator};

    fn problem(n: usize, seed: u64) -> Problem {
        Problem::paper(UniformGenerator::paper(n).generate(seed), 3.0)
    }

    #[test]
    fn empty_instance() {
        let links = fading_net::LinkSet::new(fading_geom::Rect::square(1.0), vec![]);
        let p = Problem::paper(links, 3.0);
        assert!(eliminate_schedule(&p, 10.0, 0.5, ElimMetric::FadingFactor).is_empty());
    }

    #[test]
    fn always_schedules_the_globally_shortest_link() {
        let p = problem(100, 1);
        let shortest = p
            .links()
            .ids()
            .min_by(|&a, &b| p.links().length(a).total_cmp(&p.links().length(b)))
            .unwrap();
        let s = eliminate_schedule(&p, 20.0, 0.5, ElimMetric::FadingFactor);
        assert!(s.contains(shortest));
    }

    #[test]
    fn scheduled_senders_respect_the_deletion_radius() {
        let p = problem(200, 2);
        let c1 = 15.0;
        let s = eliminate_schedule(&p, c1, 0.5, ElimMetric::FadingFactor);
        // No scheduled sender may lie strictly inside the deletion disk
        // of another scheduled link that was picked earlier (shorter).
        let links = p.links();
        for j in s.iter() {
            for i in s.iter() {
                if i == j || links.length(i) > links.length(j) {
                    continue;
                }
                // i was picked no later than j.
                let d = links.link(j).sender.distance(&links.link(i).receiver);
                assert!(
                    d > c1 * links.length(i) - 1e-9,
                    "sender {j} inside deletion disk of {i}"
                );
            }
        }
    }

    #[test]
    fn accumulated_interference_respects_threshold() {
        let p = problem(200, 3);
        let c2 = 0.5;
        let s = eliminate_schedule(&p, 23.0, c2, ElimMetric::FadingFactor);
        // For each scheduled link, the factors from *shorter* scheduled
        // links (those picked before it) must be within c₂·γ_ε.
        let links = p.links();
        for j in s.iter() {
            let sum: f64 = s
                .iter()
                .filter(|&i| i != j && links.length(i) <= links.length(j))
                .map(|i| p.factor(i, j))
                .sum();
            assert!(
                sum <= c2 * p.gamma_eps() + 1e-12,
                "{j}: earlier-pick interference {sum}"
            );
        }
    }

    #[test]
    fn larger_c1_schedules_fewer_links() {
        let p = problem(300, 4);
        let small = eliminate_schedule(&p, 5.0, 0.5, ElimMetric::FadingFactor).len();
        let large = eliminate_schedule(&p, 40.0, 0.5, ElimMetric::FadingFactor).len();
        assert!(
            small >= large,
            "c₁=5 gave {small}, c₁=40 gave {large} — deletion radius should prune"
        );
    }

    #[test]
    fn deterministic_metric_schedules_more_than_fading_metric() {
        // Budget 1 ≫ γ_ε ≈ 0.01: the deterministic variant is far more
        // permissive at equal c₁/c₂.
        let p = problem(300, 5);
        let fading = eliminate_schedule(&p, 6.0, 0.5, ElimMetric::FadingFactor).len();
        let det = eliminate_schedule(&p, 6.0, 0.5, ElimMetric::DeterministicRelative).len();
        assert!(det >= fading);
    }

    #[test]
    #[should_panic(expected = "c₂ must be in (0,1)")]
    fn rejects_bad_c2() {
        let p = problem(5, 6);
        eliminate_schedule(&p, 5.0, 0.0, ElimMetric::FadingFactor);
    }
}
