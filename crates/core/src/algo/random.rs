//! Random-order feasible insertion — the weakest sane baseline.
//!
//! Inserts links in a seeded random order, keeping each link iff the
//! insertion preserves Corollary 3.1 feasibility. Used by tests (any
//! guaranteed algorithm should beat it on average) and by the ablation
//! benches as a floor.

use crate::feasibility::InterferenceAccumulator;
use crate::problem::Problem;
use crate::schedule::Schedule;
use crate::Scheduler;
use fading_math::seeded_rng;
use fading_obs::{ElimCause, TraceEvent, TraceScope};
use rand::seq::SliceRandom;

/// Random-order feasible insertion with a fixed seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomFeasible {
    /// Seed for the insertion order.
    pub seed: u64,
}

impl RandomFeasible {
    /// Creates the scheduler with the given seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }
}

impl Scheduler for RandomFeasible {
    fn name(&self) -> &'static str {
        "RandomFeasible"
    }

    fn schedule_in(&self, problem: &Problem, ctx: &mut crate::ctx::SchedCtx) -> Schedule {
        let _span = fading_obs::Span::enter("core.random.schedule");
        let n = problem.links().len();
        // Shuffled, not sorted: claim the buffer as scratch so the
        // order memo is invalidated for the next memoizing caller.
        let order = ctx.order_scratch();
        order.clear();
        order.extend(problem.links().ids());
        order.shuffle(&mut seeded_rng(self.seed));
        let budget = problem.gamma_eps();
        let mut tr = TraceScope::begin();
        if tr.active() {
            tr.push(TraceEvent::AlgoStart {
                scheduler: "RandomFeasible".to_string(),
                n: n as u32,
                certified: true,
            });
        }
        let mut acc = InterferenceAccumulator::new(problem);
        for &id in &ctx.order {
            if acc.addition_is_feasible(id, budget) {
                acc.select(id);
                tr.push(TraceEvent::Pick { link: id.0 });
            } else if tr.active() {
                tr.push(TraceEvent::Eliminate {
                    link: id.0,
                    cause: ElimCause::BudgetExceeded,
                    by: None,
                });
            }
        }
        let schedule = Schedule::from_ids(acc.selected().iter().copied());
        if tr.active() {
            tr.push(TraceEvent::End {
                scheduled: schedule.iter().map(|id| id.0).collect(),
            });
        }
        tr.finish();
        fading_obs::counter!("core.random.picks").add(schedule.len() as u64);
        fading_obs::counter!("core.random.eliminations").add((n - schedule.len()) as u64);
        schedule
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feasibility::is_feasible;
    use fading_net::{LinkId, TopologyGenerator, UniformGenerator};

    #[test]
    fn schedules_are_feasible_and_nonempty() {
        for seed in 0..5 {
            let links = UniformGenerator::paper(150).generate(seed);
            let p = Problem::paper(links, 3.0);
            let s = RandomFeasible::new(seed).schedule(&p);
            assert!(!s.is_empty());
            assert!(is_feasible(&p, &s));
        }
    }

    #[test]
    fn same_seed_same_schedule() {
        let links = UniformGenerator::paper(100).generate(1);
        let p = Problem::paper(links, 3.0);
        assert_eq!(
            RandomFeasible::new(9).schedule(&p),
            RandomFeasible::new(9).schedule(&p)
        );
    }

    #[test]
    fn schedule_is_maximal() {
        // No unscheduled link could be added without breaking the budget.
        let links = UniformGenerator::paper(120).generate(2);
        let p = Problem::paper(links, 3.0);
        let s = RandomFeasible::new(5).schedule(&p);
        for id in p.links().ids() {
            if s.contains(id) {
                continue;
            }
            let mut ids: Vec<LinkId> = s.iter().collect();
            ids.push(id);
            let extended = Schedule::from_ids(ids);
            assert!(
                !is_feasible(&p, &extended),
                "{id} could have been added — schedule not maximal"
            );
        }
    }
}
