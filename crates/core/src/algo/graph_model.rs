//! Graph-based (protocol-model) scheduling — the straw man the paper's
//! introduction knocks down, implemented honestly.
//!
//! Graph interference models (references \[1\]–\[9\] of the paper)
//! declare two links in conflict iff a *pairwise* test fails, then
//! schedule a maximal independent set of the conflict graph. The paper's
//! Section I critique: "although the interference from a single
//! far-away sender can be relatively small, the accumulated
//! interference from several such senders can be sufficiently high to
//! corrupt a transmission." This module provides two classic pairwise
//! rules so the critique can be measured (experiment `ext_graph_model`):
//!
//! * [`ConflictRule::PairwiseBudget`] — links conflict when *either*
//!   direction alone would exhaust the fading budget
//!   (`f_{i,j} > γ_ε` or `f_{j,i} > γ_ε`): the most charitable pairwise
//!   reading of Corollary 3.1;
//! * [`ConflictRule::DistanceRange`] — links conflict when either
//!   sender is within `range_factor × link length` of the other
//!   receiver: the classical protocol/disk model.
//!
//! Both produce maximal independent sets (greedy, shortest link first).
//! Neither bounds the *accumulated* factor, so their schedules violate
//! the reliability target — which is exactly the point.

use crate::problem::Problem;
use crate::schedule::Schedule;
use crate::Scheduler;
use fading_net::LinkId;

/// Pairwise conflict definition for the graph model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConflictRule {
    /// `f_{i,j} > γ_ε` or `f_{j,i} > γ_ε` — pairwise fading budget.
    PairwiseBudget,
    /// Disk/protocol model: sender within `factor · d` of the other
    /// receiver.
    DistanceRange {
        /// Interference-range multiple of the link length.
        factor: f64,
    },
}

/// Greedy maximal-independent-set scheduler on the pairwise conflict
/// graph (shortest links first, the standard heuristic).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphModel {
    /// The pairwise rule defining edges.
    pub rule: ConflictRule,
}

impl GraphModel {
    /// Graph model with the pairwise fading-budget rule.
    pub fn pairwise_budget() -> Self {
        Self {
            rule: ConflictRule::PairwiseBudget,
        }
    }

    /// Graph model with the protocol/disk rule.
    ///
    /// # Panics
    /// Panics unless `factor ≥ 1`.
    pub fn protocol(factor: f64) -> Self {
        assert!(factor >= 1.0, "interference range factor must be ≥ 1");
        Self {
            rule: ConflictRule::DistanceRange { factor },
        }
    }

    fn conflicts(&self, problem: &Problem, a: LinkId, b: LinkId) -> bool {
        match self.rule {
            ConflictRule::PairwiseBudget => {
                let g = problem.gamma_eps();
                problem.factor(a, b) > g || problem.factor(b, a) > g
            }
            ConflictRule::DistanceRange { factor } => {
                let links = problem.links();
                let d_ab = links.link(a).sender.distance(&links.link(b).receiver);
                let d_ba = links.link(b).sender.distance(&links.link(a).receiver);
                d_ab < factor * links.length(b) || d_ba < factor * links.length(a)
            }
        }
    }
}

impl Scheduler for GraphModel {
    fn name(&self) -> &'static str {
        match self.rule {
            ConflictRule::PairwiseBudget => "Graph(pairwise-budget)",
            ConflictRule::DistanceRange { .. } => "Graph(protocol)",
        }
    }

    fn schedule_in(&self, problem: &Problem, ctx: &mut crate::ctx::SchedCtx) -> Schedule {
        let _span = fading_obs::Span::enter("core.graph_model.schedule");
        let links = problem.links();
        // Same (length asc, id asc) total order as the elimination
        // schedulers, so the two share one memo slot.
        let cached = ctx.order_is_cached(
            crate::ctx::OrderKind::ElimLength,
            problem.stamp(),
            links.ids().map(|i| links.length(i)),
        );
        if !cached {
            ctx.order.clear();
            ctx.order.extend(links.ids());
            ctx.order.sort_unstable_by(|&a, &b| {
                links.length(a).total_cmp(&links.length(b)).then(a.cmp(&b))
            });
        }
        let mut chosen: Vec<LinkId> = Vec::new();
        for &cand in &ctx.order {
            if chosen.iter().all(|&c| !self.conflicts(problem, c, cand)) {
                chosen.push(cand);
            }
        }
        let s = Schedule::from_ids(chosen);
        // Graph models ignore accumulated interference entirely — their
        // schedules carry no γ_ε guarantee, so the trace is uncertified.
        super::emit_algo_trace(self.name(), links.len(), false, &s, ctx);
        fading_obs::counter!("core.graph_model.picks").add(s.len() as u64);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feasibility::FeasibilityReport;
    use fading_net::{TopologyGenerator, UniformGenerator};

    fn problem(n: usize, seed: u64) -> Problem {
        Problem::paper(UniformGenerator::paper(n).generate(seed), 3.0)
    }

    #[test]
    fn schedules_are_pairwise_compatible() {
        let p = problem(200, 1);
        for model in [GraphModel::pairwise_budget(), GraphModel::protocol(2.0)] {
            let s = model.schedule(&p);
            assert!(!s.is_empty());
            for a in s.iter() {
                for b in s.iter() {
                    if a != b {
                        assert!(!model.conflicts(&p, a, b), "{a} and {b} conflict");
                    }
                }
            }
        }
    }

    #[test]
    fn schedule_is_maximal() {
        let p = problem(150, 2);
        let model = GraphModel::pairwise_budget();
        let s = model.schedule(&p);
        for cand in p.links().ids() {
            if s.contains(cand) {
                continue;
            }
            assert!(
                s.iter().any(|c| model.conflicts(&p, c, cand)),
                "{cand} could be added"
            );
        }
    }

    #[test]
    fn accumulated_interference_breaks_the_pairwise_schedule() {
        // The paper's Section I claim, as an assertion: pairwise
        // feasibility does not imply Corollary 3.1 feasibility. With
        // γ_ε ≈ 0.01 each pairwise factor is tiny, but dozens of them
        // accumulate.
        let mut violated = 0usize;
        for seed in 0..5 {
            let p = problem(300, seed);
            let s = GraphModel::pairwise_budget().schedule(&p);
            violated += FeasibilityReport::evaluate(&p, &s).violations().len();
        }
        assert!(
            violated > 0,
            "expected accumulation to break some pairwise-feasible links"
        );
    }

    #[test]
    fn larger_protocol_range_schedules_fewer_links() {
        let p = problem(300, 3);
        let tight = GraphModel::protocol(1.5).schedule(&p).len();
        let loose = GraphModel::protocol(6.0).schedule(&p).len();
        assert!(
            loose <= tight,
            "range 6 gave {loose}, range 1.5 gave {tight}"
        );
    }

    #[test]
    fn graph_model_out_schedules_the_fading_aware_algorithms() {
        // The allure of graph models: they look great on paper.
        let p = problem(300, 4);
        let graph = GraphModel::pairwise_budget().schedule(&p).len();
        let rle = crate::algo::Rle::new().schedule(&p).len();
        assert!(graph > rle, "graph {graph} vs RLE {rle}");
    }

    #[test]
    #[should_panic(expected = "range factor must be ≥ 1")]
    fn rejects_small_factor() {
        GraphModel::protocol(0.5);
    }
}
