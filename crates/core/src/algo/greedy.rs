//! Rate-greedy fading-aware heuristic.
//!
//! Not from the paper: a natural upper-baseline that inserts links in
//! non-increasing rate order whenever the insertion keeps the whole
//! selection within the `γ_ε` budget (Corollary 3.1). It has no
//! approximation guarantee but is feasible by construction and useful
//! for calibrating how much utility the guaranteed algorithms leave on
//! the table.

use crate::ctx::SchedCtx;
use crate::feasibility::InterferenceAccumulator;
use crate::problem::Problem;
use crate::schedule::Schedule;
use crate::Scheduler;
use fading_obs::{ElimCause, TraceEvent, TraceScope};

/// Greedy-by-rate insertion with exact feasibility checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GreedyRate;

impl GreedyRate {
    /// Creates the scheduler.
    pub fn new() -> Self {
        Self
    }
}

impl Scheduler for GreedyRate {
    fn name(&self) -> &'static str {
        "GreedyRate"
    }

    fn schedule_in(&self, problem: &Problem, ctx: &mut SchedCtx) -> Schedule {
        let _span = fading_obs::Span::enter("core.greedy.schedule");
        let links = problem.links();
        // Highest rate first; ties by shorter length (easier to keep
        // feasible), then id — a total order, so the unstable sort's
        // result is unique and memoizable on the (rate, length) keys.
        let keys = links.ids().flat_map(|i| [problem.rate(i), links.length(i)]);
        if !ctx.order_is_cached(crate::ctx::OrderKind::GreedyRate, problem.stamp(), keys) {
            ctx.order.clear();
            ctx.order.extend(links.ids());
            ctx.order.sort_unstable_by(|&a, &b| {
                problem
                    .rate(b)
                    .total_cmp(&problem.rate(a))
                    .then(links.length(a).total_cmp(&links.length(b)))
                    .then(a.cmp(&b))
            });
        }
        let budget = problem.gamma_eps();
        let mut tr = TraceScope::begin();
        if tr.active() {
            tr.push(TraceEvent::AlgoStart {
                scheduler: "GreedyRate".to_string(),
                n: links.len() as u32,
                certified: true,
            });
        }
        let mut acc = InterferenceAccumulator::new(problem);
        for &id in &ctx.order {
            if acc.addition_is_feasible(id, budget) {
                acc.select(id);
                tr.push(TraceEvent::Pick { link: id.0 });
            } else if tr.active() {
                tr.push(TraceEvent::Eliminate {
                    link: id.0,
                    cause: ElimCause::BudgetExceeded,
                    by: None,
                });
            }
        }
        let schedule = Schedule::from_ids(acc.selected().iter().copied());
        if tr.active() {
            tr.push(TraceEvent::End {
                scheduled: schedule.iter().map(|id| id.0).collect(),
            });
        }
        tr.finish();
        fading_obs::counter!("core.greedy.picks").add(schedule.len() as u64);
        fading_obs::counter!("core.greedy.eliminations").add((links.len() - schedule.len()) as u64);
        schedule
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feasibility::is_feasible;
    use fading_net::{RateModel, TopologyGenerator, UniformGenerator};

    #[test]
    fn schedules_are_feasible() {
        for seed in 0..5 {
            let links = UniformGenerator::paper(200).generate(seed);
            let p = Problem::paper(links, 3.0);
            let s = GreedyRate.schedule(&p);
            assert!(!s.is_empty());
            assert!(is_feasible(&p, &s), "seed={seed}");
        }
    }

    #[test]
    fn prefers_high_rate_links() {
        let gen = UniformGenerator {
            rates: RateModel::Uniform { lo: 1.0, hi: 10.0 },
            ..UniformGenerator::paper(100)
        };
        let p = Problem::paper(gen.generate(3), 3.0);
        let s = GreedyRate.schedule(&p);
        // The single highest-rate link is always schedulable first.
        let best = p
            .links()
            .ids()
            .max_by(|&a, &b| p.rate(a).total_cmp(&p.rate(b)))
            .unwrap();
        assert!(s.contains(best));
    }

    #[test]
    fn at_least_matches_rle_on_uniform_rates() {
        // Greedy has no guarantee, but with exact feasibility checks it
        // should not be systematically worse than the conservative RLE
        // radii on the paper workload.
        let mut greedy_total = 0.0;
        let mut rle_total = 0.0;
        for seed in 0..5 {
            let links = UniformGenerator::paper(300).generate(seed);
            let p = Problem::paper(links, 3.0);
            greedy_total += GreedyRate.schedule(&p).utility(&p);
            rle_total += crate::algo::Rle::new().schedule(&p).utility(&p);
        }
        assert!(
            greedy_total >= rle_total * 0.8,
            "{greedy_total} vs {rle_total}"
        );
    }

    #[test]
    fn empty_instance() {
        let links = fading_net::LinkSet::new(fading_geom::Rect::square(1.0), vec![]);
        let p = Problem::paper(links, 3.0);
        assert!(GreedyRate.schedule(&p).is_empty());
    }
}
