//! Exact solvers for small instances.
//!
//! Fading-R-LS is NP-hard (Theorem 3.2), so these are exponential-time
//! reference solvers used to (i) verify the approximation algorithms'
//! empirical ratios against the proven bounds, (ii) validate the ILP
//! formulation, and (iii) check both directions of the Knapsack
//! reduction.
//!
//! [`branch_and_bound`] does depth-first search in non-increasing rate
//! order with a remaining-utility bound and incremental feasibility;
//! [`exhaustive`] enumerates all `2^N` subsets and exists purely as an
//! oracle for cross-checking the pruned search on tiny instances.

use crate::feasibility::InterferenceAccumulator;
use crate::problem::Problem;
use crate::schedule::Schedule;
use crate::Scheduler;
use fading_net::LinkId;

/// Practical instance-size ceiling for [`branch_and_bound`]; beyond
/// this the search may take unbounded time and the caller almost
/// certainly wants an approximation algorithm instead.
pub const BNB_MAX_LINKS: usize = 40;

/// Exact optimum by branch-and-bound.
///
/// # Panics
/// Panics if the instance has more than [`BNB_MAX_LINKS`] links.
pub fn branch_and_bound(problem: &Problem) -> Schedule {
    assert!(
        problem.len() <= BNB_MAX_LINKS,
        "branch-and-bound limited to {BNB_MAX_LINKS} links, instance has {}",
        problem.len()
    );
    let links = problem.links();
    let mut order: Vec<LinkId> = links.ids().collect();
    // High rates first so good solutions are found early and the
    // utility bound prunes aggressively.
    order.sort_by(|&a, &b| problem.rate(b).total_cmp(&problem.rate(a)).then(a.cmp(&b)));
    // suffix[k] = total rate of order[k..]: the best any completion can add.
    let mut suffix = vec![0.0; order.len() + 1];
    for k in (0..order.len()).rev() {
        suffix[k] = suffix[k + 1] + problem.rate(order[k]);
    }

    struct Search<'p> {
        problem: &'p Problem,
        order: Vec<LinkId>,
        suffix: Vec<f64>,
        budget: f64,
        best_utility: f64,
        best: Vec<LinkId>,
        // Accumulated locally and flushed to the metric registry once
        // per solve, keeping the exponential search free of atomics.
        nodes: u64,
        pruned: u64,
    }

    impl Search<'_> {
        fn dfs(&mut self, k: usize, acc: &mut InterferenceAccumulator<'_>, utility: f64) {
            self.nodes += 1;
            if utility > self.best_utility {
                self.best_utility = utility;
                self.best = acc.selected().to_vec();
            }
            if k == self.order.len() {
                return;
            }
            if utility + self.suffix[k] <= self.best_utility {
                self.pruned += 1;
                return;
            }
            let id = self.order[k];
            // Include branch first: the rate ordering makes inclusion
            // the promising direction.
            if acc.addition_is_feasible(id, self.budget) {
                let mut with = acc.clone();
                with.select(id);
                self.dfs(k + 1, &mut with, utility + self.problem.rate(id));
            }
            self.dfs(k + 1, acc, utility);
        }
    }

    let mut search = Search {
        problem,
        order,
        suffix,
        budget: problem.gamma_eps(),
        best_utility: f64::NEG_INFINITY,
        best: Vec::new(),
        nodes: 0,
        pruned: 0,
    };
    let mut acc = InterferenceAccumulator::new(problem);
    search.dfs(0, &mut acc, 0.0);
    fading_obs::counter!("core.exact.nodes").add(search.nodes);
    fading_obs::counter!("core.exact.pruned").add(search.pruned);
    Schedule::from_ids(search.best)
}

/// Practical ceiling for [`exhaustive`] (cost `O(2^N · N²)`).
pub const EXHAUSTIVE_MAX_LINKS: usize = 18;

/// Exact optimum by full subset enumeration (oracle for tests).
///
/// # Panics
/// Panics if the instance has more than [`EXHAUSTIVE_MAX_LINKS`] links.
pub fn exhaustive(problem: &Problem) -> Schedule {
    let n = problem.len();
    assert!(
        n <= EXHAUSTIVE_MAX_LINKS,
        "exhaustive search limited to {EXHAUSTIVE_MAX_LINKS} links, instance has {n}"
    );
    let budget = problem.gamma_eps();
    let mut best_mask = 0u32;
    let mut best_utility = f64::NEG_INFINITY;
    for mask in 0u32..(1u32 << n) {
        let mut utility = 0.0;
        let mut feasible = true;
        for j in 0..n {
            if mask & (1 << j) == 0 {
                continue;
            }
            let jd = LinkId(j as u32);
            utility += problem.rate(jd);
            let mut sum = 0.0;
            for i in 0..n {
                if i != j && mask & (1 << i) != 0 {
                    sum += problem.factor(LinkId(i as u32), jd);
                }
            }
            if !crate::feasibility::within_budget(sum, budget) {
                feasible = false;
                break;
            }
        }
        if feasible && utility > best_utility {
            best_utility = utility;
            best_mask = mask;
        }
    }
    fading_obs::counter!("core.exact.exhaustive_masks").add(1u64 << n);
    Schedule::from_ids(
        (0..n)
            .filter(|j| best_mask & (1 << j) != 0)
            .map(|j| LinkId(j as u32)),
    )
}

/// Parallel branch-and-bound: identical search to
/// [`branch_and_bound`], but the top `spawn_depth` levels of the
/// include/exclude tree fork into rayon tasks sharing the incumbent
/// through an atomic bound. Deterministic result value (the optimum is
/// unique in utility; when several optima tie, the returned *set* may
/// differ from the sequential one).
pub fn branch_and_bound_parallel(problem: &Problem) -> Schedule {
    use std::sync::atomic::AtomicU64;
    use std::sync::Mutex;

    assert!(
        problem.len() <= BNB_MAX_LINKS,
        "branch-and-bound limited to {BNB_MAX_LINKS} links, instance has {}",
        problem.len()
    );
    let links = problem.links();
    let mut order: Vec<LinkId> = links.ids().collect();
    order.sort_by(|&a, &b| problem.rate(b).total_cmp(&problem.rate(a)).then(a.cmp(&b)));
    let mut suffix = vec![0.0; order.len() + 1];
    for k in (0..order.len()).rev() {
        suffix[k] = suffix[k + 1] + problem.rate(order[k]);
    }
    // The incumbent (utility, set) is updated under one mutex so the
    // two can never disagree; the atomic copy of the utility is a
    // lock-free *pruning bound* only (monotone, may lag the mutex by an
    // instant, which is sound — a stale lower bound just prunes less).
    let best_utility = AtomicU64::new(0f64.to_bits());
    let incumbent: Mutex<(f64, Vec<LinkId>)> = Mutex::new((0.0, Vec::new()));

    struct Ctx<'p> {
        problem: &'p Problem,
        order: Vec<LinkId>,
        suffix: Vec<f64>,
        budget: f64,
        best_utility: AtomicU64,
        incumbent: Mutex<(f64, Vec<LinkId>)>,
        spawn_depth: usize,
    }

    fn dfs(ctx: &Ctx<'_>, k: usize, acc: &InterferenceAccumulator<'_>, utility: f64) {
        use std::sync::atomic::Ordering;
        if utility > f64::from_bits(ctx.best_utility.load(Ordering::Relaxed)) {
            let mut best = ctx.incumbent.lock().expect("incumbent lock");
            if utility > best.0 {
                *best = (utility, acc.selected().to_vec());
                ctx.best_utility.store(utility.to_bits(), Ordering::SeqCst);
            }
        }
        let incumbent = f64::from_bits(ctx.best_utility.load(Ordering::Relaxed));
        if k == ctx.order.len() || utility + ctx.suffix[k] <= incumbent {
            return;
        }
        let id = ctx.order[k];
        let include = || {
            if acc.addition_is_feasible(id, ctx.budget) {
                let mut with = acc.clone();
                with.select(id);
                dfs(ctx, k + 1, &with, utility + ctx.problem.rate(id));
            }
        };
        let exclude = || dfs(ctx, k + 1, acc, utility);
        if k < ctx.spawn_depth {
            rayon::join(include, exclude);
        } else {
            include();
            exclude();
        }
    }

    let ctx = Ctx {
        problem,
        order,
        suffix,
        budget: problem.gamma_eps(),
        best_utility,
        incumbent,
        // 2^6 = up to 64 concurrent subtrees — enough to saturate a
        // workstation without flooding the scheduler.
        spawn_depth: 6,
    };
    let acc = InterferenceAccumulator::new(problem);
    dfs(&ctx, 0, &acc, 0.0);
    let (_, set) = ctx.incumbent.into_inner().expect("incumbent lock");
    Schedule::from_ids(set)
}

/// [`branch_and_bound`] behind the [`Scheduler`] interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExactBnb;

impl ExactBnb {
    /// Creates the scheduler.
    pub fn new() -> Self {
        Self
    }
}

impl Scheduler for ExactBnb {
    fn name(&self) -> &'static str {
        "Exact(B&B)"
    }

    fn schedule_in(&self, problem: &Problem, ctx: &mut crate::ctx::SchedCtx) -> Schedule {
        let _span = fading_obs::Span::enter("core.exact.schedule");
        let s = branch_and_bound(problem);
        super::emit_algo_trace("Exact(B&B)", problem.len(), true, &s, ctx);
        fading_obs::counter!("core.exact.picks").add(s.len() as u64);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feasibility::is_feasible;
    use fading_net::{RateModel, TopologyGenerator, UniformGenerator};

    fn small_problem(n: usize, seed: u64) -> Problem {
        // A small dense field so feasibility actually binds.
        let gen = UniformGenerator {
            side: 120.0,
            n,
            len_lo: 5.0,
            len_hi: 20.0,
            rates: RateModel::Fixed(1.0),
        };
        Problem::paper(gen.generate(seed), 3.0)
    }

    #[test]
    fn bnb_matches_exhaustive_on_small_instances() {
        for seed in 0..8 {
            let p = small_problem(10, seed);
            let bnb = branch_and_bound(&p);
            let oracle = exhaustive(&p);
            assert!(
                (bnb.utility(&p) - oracle.utility(&p)).abs() < 1e-9,
                "seed {seed}: B&B {} vs exhaustive {}",
                bnb.utility(&p),
                oracle.utility(&p)
            );
        }
    }

    #[test]
    fn bnb_matches_exhaustive_with_varied_rates() {
        for seed in 0..5 {
            let gen = UniformGenerator {
                side: 120.0,
                n: 11,
                len_lo: 5.0,
                len_hi: 20.0,
                rates: RateModel::Uniform { lo: 0.5, hi: 3.0 },
            };
            let p = Problem::paper(gen.generate(seed), 3.0);
            let bnb = branch_and_bound(&p);
            let oracle = exhaustive(&p);
            assert!(
                (bnb.utility(&p) - oracle.utility(&p)).abs() < 1e-9,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn optimum_is_feasible() {
        for seed in 0..5 {
            let p = small_problem(12, seed);
            let s = branch_and_bound(&p);
            assert!(is_feasible(&p, &s), "seed {seed}");
        }
    }

    #[test]
    fn optimum_dominates_every_heuristic() {
        for seed in 0..5 {
            let p = small_problem(12, seed);
            let opt = branch_and_bound(&p).utility(&p);
            for sched in [
                crate::algo::Ldp::new().schedule(&p).utility(&p),
                crate::algo::Rle::new().schedule(&p).utility(&p),
                crate::algo::GreedyRate.schedule(&p).utility(&p),
                crate::algo::RandomFeasible::new(1).schedule(&p).utility(&p),
            ] {
                assert!(
                    opt >= sched - 1e-9,
                    "seed {seed}: opt {opt} < heuristic {sched}"
                );
            }
        }
    }

    #[test]
    fn empty_instance_optimum_is_empty() {
        let links = fading_net::LinkSet::new(fading_geom::Rect::square(1.0), vec![]);
        let p = Problem::paper(links, 3.0);
        assert!(branch_and_bound(&p).is_empty());
        assert!(exhaustive(&p).is_empty());
    }

    #[test]
    fn isolated_links_are_all_scheduled() {
        // Links thousands of units apart don't interfere: optimum = all.
        use fading_geom::{Point2, Rect};
        use fading_net::{Link, LinkSet};
        let links: Vec<Link> = (0..6)
            .map(|i| {
                let base = Point2::new(i as f64 * 5000.0, 0.0);
                Link::new(LinkId(i), base, base + Point2::new(5.0, 0.0), 1.0)
            })
            .collect();
        let p = Problem::paper(LinkSet::new(Rect::square(30_000.0), links), 3.0);
        let s = branch_and_bound(&p);
        assert_eq!(s.len(), 6);
    }

    #[test]
    fn parallel_bnb_matches_sequential_optimum() {
        for seed in 0..6 {
            let p = small_problem(12, seed);
            let seq = branch_and_bound(&p).utility(&p);
            let par = branch_and_bound_parallel(&p).utility(&p);
            assert!(
                (seq - par).abs() < 1e-9,
                "seed {seed}: sequential {seq} vs parallel {par}"
            );
            assert!(is_feasible(&p, &branch_and_bound_parallel(&p)));
        }
    }

    #[test]
    fn parallel_bnb_handles_varied_rates() {
        let gen = UniformGenerator {
            side: 120.0,
            n: 13,
            len_lo: 5.0,
            len_hi: 20.0,
            rates: RateModel::Uniform { lo: 0.5, hi: 3.0 },
        };
        for seed in 0..3 {
            let p = Problem::paper(gen.generate(seed), 3.0);
            assert!(
                (branch_and_bound(&p).utility(&p) - branch_and_bound_parallel(&p).utility(&p))
                    .abs()
                    < 1e-9,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn parallel_bnb_empty_instance() {
        let links = fading_net::LinkSet::new(fading_geom::Rect::square(1.0), vec![]);
        let p = Problem::paper(links, 3.0);
        assert!(branch_and_bound_parallel(&p).is_empty());
    }

    #[test]
    #[should_panic(expected = "branch-and-bound limited")]
    fn bnb_rejects_oversized_instances() {
        let p = Problem::paper(UniformGenerator::paper(60).generate(0), 3.0);
        branch_and_bound(&p);
    }
}
