//! Local-search post-optimizer for feasible schedules.
//!
//! Not from the paper: a polish pass that takes any feasible schedule
//! and greedily applies two kinds of moves while they help:
//!
//! * **Add** — insert an unscheduled link if the whole selection stays
//!   within the `γ_ε` budget (strict utility gain);
//! * **Swap(1→1)** — replace one member with one non-member of higher
//!   rate if the result is feasible.
//!
//! Every accepted move strictly increases utility, and utility is
//! bounded by `Σλ`, so termination is immediate; feasibility is an
//! invariant. The ablation bench uses it to measure how much utility
//! the guaranteed algorithms' conservative radii leave on the table.

use crate::feasibility::{within_budget, InterferenceAccumulator};
use crate::problem::Problem;
use crate::schedule::Schedule;
use crate::Scheduler;
use fading_net::LinkId;

/// Wraps a base scheduler with a local-search improvement pass.
#[derive(Debug, Clone, Copy)]
pub struct LocalSearch<S> {
    /// The scheduler whose output is polished.
    pub base: S,
    /// Upper bound on improvement rounds (each round scans all moves;
    /// a round with no accepted move terminates early).
    pub max_rounds: usize,
}

impl<S: Scheduler> LocalSearch<S> {
    /// Polishes `base`'s schedules with up to 50 improvement rounds.
    pub fn new(base: S) -> Self {
        Self {
            base,
            max_rounds: 50,
        }
    }
}

/// Improves `schedule` in place semantics (returns the improved copy).
pub fn improve(problem: &Problem, schedule: &Schedule, max_rounds: usize) -> Schedule {
    let budget = problem.gamma_eps();
    let mut members: Vec<LinkId> = schedule.iter().collect();

    // Rebuilds the accumulator for the current member set.
    let rebuild = |members: &[LinkId]| {
        let mut acc = InterferenceAccumulator::new(problem);
        for &i in members {
            acc.select(i);
        }
        acc
    };

    for _ in 0..max_rounds {
        let mut improved = false;
        // Add moves.
        let mut acc = rebuild(&members);
        for id in problem.links().ids() {
            if members.contains(&id) {
                continue;
            }
            if acc.addition_is_feasible(id, budget) {
                acc.select(id);
                members.push(id);
                improved = true;
            }
        }
        // Swap moves: try to replace a member with a higher-rate
        // outsider (only useful with non-uniform rates).
        let outsiders: Vec<LinkId> = problem
            .links()
            .ids()
            .filter(|id| !members.contains(id))
            .collect();
        'swap: for k in 0..members.len() {
            let out = members[k];
            for &cand in &outsiders {
                if problem.rate(cand) <= problem.rate(out) {
                    continue;
                }
                let mut trial: Vec<LinkId> = members.clone();
                trial[k] = cand;
                if selection_feasible(problem, &trial, budget) {
                    members = trial;
                    improved = true;
                    break 'swap; // restart scanning with fresh state
                }
            }
        }
        if !improved {
            break;
        }
    }
    Schedule::from_ids(members)
}

fn selection_feasible(problem: &Problem, members: &[LinkId], budget: f64) -> bool {
    members.iter().all(|&j| {
        let sum: f64 = members
            .iter()
            .filter(|&&i| i != j)
            .map(|&i| problem.factor(i, j))
            .sum();
        within_budget(sum, budget)
    })
}

impl<S: Scheduler> Scheduler for LocalSearch<S> {
    fn name(&self) -> &'static str {
        "LocalSearch"
    }

    fn schedule_in(&self, problem: &Problem, ctx: &mut crate::ctx::SchedCtx) -> Schedule {
        let _span = fading_obs::Span::enter("core.local_search.schedule");
        let base = self.base.schedule_in(problem, ctx);
        let s = improve(problem, &base, self.max_rounds);
        super::emit_algo_trace("LocalSearch", problem.len(), true, &s, ctx);
        fading_obs::counter!("core.local_search.picks").add(s.len() as u64);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{Ldp, Rle};
    use crate::feasibility::is_feasible;
    use fading_net::{RateModel, TopologyGenerator, UniformGenerator};

    fn problem(n: usize, seed: u64) -> Problem {
        Problem::paper(UniformGenerator::paper(n).generate(seed), 3.0)
    }

    #[test]
    fn never_decreases_utility_and_stays_feasible() {
        for seed in 0..5 {
            let p = problem(150, seed);
            for base in [&Ldp::new() as &dyn Scheduler, &Rle::new()] {
                let before = base.schedule(&p);
                let after = improve(&p, &before, 50);
                assert!(
                    after.utility(&p) >= before.utility(&p) - 1e-12,
                    "{} got worse on seed {seed}",
                    base.name()
                );
                assert!(is_feasible(&p, &after));
            }
        }
    }

    #[test]
    fn result_is_maximal() {
        let p = problem(120, 7);
        let after = improve(&p, &Rle::new().schedule(&p), 50);
        for id in p.links().ids() {
            if after.contains(id) {
                continue;
            }
            let mut trial: Vec<LinkId> = after.iter().collect();
            trial.push(id);
            assert!(
                !selection_feasible(&p, &trial, p.gamma_eps()),
                "{id} could still be added"
            );
        }
    }

    #[test]
    fn improves_ldp_substantially_on_dense_instances() {
        // LDP's colored grid leaves most of the region idle; the add
        // pass should recover a good chunk.
        let p = problem(400, 9);
        let before = Ldp::new().schedule(&p).utility(&p);
        let after = improve(&p, &Ldp::new().schedule(&p), 50).utility(&p);
        assert!(
            after >= before * 1.5,
            "expected a big gain: before {before}, after {after}"
        );
    }

    #[test]
    fn swap_moves_fire_with_heterogeneous_rates() {
        let gen = UniformGenerator {
            rates: RateModel::Uniform { lo: 1.0, hi: 10.0 },
            ..UniformGenerator::paper(120)
        };
        let p = Problem::paper(gen.generate(3), 3.0);
        let before = Rle::new().schedule(&p);
        let after = improve(&p, &before, 50);
        assert!(after.utility(&p) >= before.utility(&p));
        assert!(is_feasible(&p, &after));
    }

    #[test]
    fn empty_input_schedule_is_grown() {
        let p = problem(80, 11);
        let after = improve(&p, &Schedule::empty(), 50);
        assert!(!after.is_empty());
        assert!(is_feasible(&p, &after));
    }

    #[test]
    fn scheduler_wrapper_composes() {
        let p = problem(100, 13);
        let wrapped = LocalSearch::new(Rle::new());
        let s = wrapped.schedule(&p);
        assert!(is_feasible(&p, &s));
        assert!(s.utility(&p) >= Rle::new().schedule(&p).utility(&p) - 1e-12);
        assert_eq!(wrapped.name(), "LocalSearch");
    }
}
