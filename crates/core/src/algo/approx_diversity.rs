//! ApproxDiversity — the deterministic-SINR elimination baseline
//! (Goussevskaia, Wattenhofer, Halldórsson, Welzl, "Capacity of
//! arbitrary wireless networks", INFOCOM 2009 — reference \[15\] of the
//! paper).
//!
//! The same shortest-first elimination skeleton as RLE, but the
//! deletion test budgets deterministic *relative interference*
//! (`Σ γ_th (d_jj/d_ij)^α ≤ 1`) instead of the fading budget `γ_ε`,
//! and the deletion radius uses the deterministic constant. Its
//! schedules meet the classical SINR threshold with zero margin for
//! fading — which is exactly why it fails in Fig. 5.

use crate::algo::elim_core::{eliminate_schedule_in, ElimMetric};
use crate::constants::approx_diversity_c1;
use crate::ctx::SchedCtx;
use crate::problem::Problem;
use crate::schedule::Schedule;
use crate::Scheduler;

/// The ApproxDiversity baseline scheduler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApproxDiversity {
    /// Budget split between already-picked and later-picked senders.
    pub c2: f64,
}

impl ApproxDiversity {
    /// The baseline with the symmetric split `c₂ = 1/2`.
    pub fn new() -> Self {
        Self { c2: 0.5 }
    }
}

impl Default for ApproxDiversity {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for ApproxDiversity {
    fn name(&self) -> &'static str {
        "ApproxDiversity"
    }

    fn schedule_in(&self, problem: &Problem, ctx: &mut SchedCtx) -> Schedule {
        let c1 = approx_diversity_c1(problem.params(), self.c2);
        eliminate_schedule_in(problem, c1, self.c2, ElimMetric::DeterministicRelative, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feasibility::FeasibilityReport;
    use fading_math::KahanSum;
    use fading_net::{TopologyGenerator, UniformGenerator};

    fn deterministically_feasible(p: &Problem, s: &Schedule) -> bool {
        let det = p.deterministic_channel();
        s.iter().all(|j| {
            let d_jj = p.links().length(j);
            let sum = KahanSum::sum_iter(s.iter().filter(|&i| i != j).map(|i| {
                det.relative_interference(p.links().sender_receiver_distance(i, j), d_jj)
            }));
            sum <= 1.0 + 1e-9
        })
    }

    #[test]
    fn schedules_are_deterministically_feasible() {
        for &alpha in &[2.5, 3.0, 4.0] {
            for seed in 0..3 {
                let links = UniformGenerator::paper(250).generate(seed);
                let p = Problem::paper(links, alpha);
                let s = ApproxDiversity::new().schedule(&p);
                assert!(!s.is_empty());
                assert!(deterministically_feasible(&p, &s), "α={alpha} seed={seed}");
            }
        }
    }

    #[test]
    fn schedules_more_links_than_rle() {
        let mut div_total = 0usize;
        let mut rle_total = 0usize;
        for seed in 0..5 {
            let links = UniformGenerator::paper(300).generate(seed);
            let p = Problem::paper(links, 3.0);
            div_total += ApproxDiversity::new().schedule(&p).len();
            rle_total += crate::algo::Rle::new().schedule(&p).len();
        }
        assert!(
            div_total > rle_total,
            "ApproxDiversity ({div_total}) should out-schedule RLE ({rle_total})"
        );
    }

    #[test]
    fn schedules_usually_violate_the_fading_budget() {
        let mut violations = 0usize;
        for seed in 0..5 {
            let links = UniformGenerator::paper(300).generate(seed);
            let p = Problem::paper(links, 3.0);
            let s = ApproxDiversity::new().schedule(&p);
            violations += FeasibilityReport::evaluate(&p, &s).violations().len();
        }
        assert!(violations > 0, "baseline should miss the 1−ε fading target");
    }
}
