//! Scheduling algorithms.
//!
//! The fading-resistant algorithms (LDP, RLE, and their shared
//! machinery) guarantee Corollary 3.1 feasibility; the baselines
//! (ApproxLogN, ApproxDiversity) guarantee only deterministic-SINR
//! feasibility and exist to reproduce the paper's fading-susceptibility
//! comparison (Fig. 5). The exact solvers bound everything from above
//! on small instances.

pub mod anneal;
pub mod approx_diversity;
pub mod approx_logn;
pub mod dls;
pub mod elim_core;
pub mod exact;
pub mod graph_model;
pub mod greedy;
pub mod grid_core;
pub mod ldp;
pub mod local_search;
pub mod power;
pub mod random;
pub mod rle;

pub use anneal::Anneal;
pub use approx_diversity::ApproxDiversity;
pub use approx_logn::ApproxLogN;
pub use dls::Dls;
pub use exact::ExactBnb;
pub use graph_model::{ConflictRule, GraphModel};
pub use greedy::GreedyRate;
pub use grid_core::ClassMode;
pub use ldp::Ldp;
pub use local_search::LocalSearch;
pub use power::PowerAssignment;
pub use random::RandomFeasible;
pub use rle::Rle;
