//! Scheduling algorithms.
//!
//! The fading-resistant algorithms (LDP, RLE, and their shared
//! machinery) guarantee Corollary 3.1 feasibility; the baselines
//! (ApproxLogN, ApproxDiversity) guarantee only deterministic-SINR
//! feasibility and exist to reproduce the paper's fading-susceptibility
//! comparison (Fig. 5). The exact solvers bound everything from above
//! on small instances.

pub mod anneal;
pub mod approx_diversity;
pub mod approx_logn;
pub mod dls;
pub mod elim_core;
pub mod exact;
pub mod graph_model;
pub mod greedy;
pub mod grid_core;
pub mod ldp;
pub mod local_search;
pub mod power;
pub mod random;
pub mod rle;

pub use anneal::Anneal;
pub use approx_diversity::ApproxDiversity;
pub use approx_logn::ApproxLogN;
pub use dls::Dls;
pub use exact::ExactBnb;
pub use graph_model::{ConflictRule, GraphModel};
pub use greedy::GreedyRate;
pub use grid_core::ClassMode;
pub use ldp::Ldp;
pub use local_search::LocalSearch;
pub use power::PowerAssignment;
pub use random::RandomFeasible;
pub use rle::Rle;

/// Emits the generic decision-trace block for schedulers whose search
/// is too entangled for per-decision attribution (B&B, annealing,
/// conflict graphs, …): an `AlgoStart` header, one `Pick` per
/// scheduled link, and the final membership. The replay verifier
/// checks membership — and the full γ_ε ledger when `certified`.
///
/// The fast path is allocation-free: nothing is built when tracing is
/// disabled, or when the ring is already saturated and would drop the
/// block on publish anyway. When a block is emitted it is staged in the
/// ctx's reusable scratch buffer and drained into the ring in place.
pub(crate) fn emit_algo_trace(
    scheduler: &str,
    n: usize,
    certified: bool,
    schedule: &crate::schedule::Schedule,
    ctx: &mut crate::ctx::SchedCtx,
) {
    use fading_obs::{trace, TraceEvent};
    if !fading_obs::tracing_enabled() || trace::ring_saturated() {
        return;
    }
    let buf = &mut ctx.trace_buf;
    buf.clear();
    buf.push(TraceEvent::AlgoStart {
        scheduler: scheduler.to_string(),
        n: n as u32,
        certified,
    });
    for id in schedule.iter() {
        buf.push(TraceEvent::Pick { link: id.0 });
    }
    buf.push(TraceEvent::End {
        scheduled: schedule.iter().map(|id| id.0).collect(),
    });
    trace::publish_from(buf);
}
