//! Oblivious power assignments — the power-control extension.
//!
//! The paper fixes uniform transmit power; the joint
//! scheduling-and-power-control literature it cites (Section VI-B)
//! studies *oblivious* assignments where a link's power depends only on
//! its own length. The classic family is `P_i ∝ d_ii^{τα}`:
//!
//! * `τ = 0` — uniform (the paper's model);
//! * `τ = 1` — linear: every link receives the same mean signal power,
//!   the "channel inversion" assignment;
//! * `τ = 1/2` — square-root (mean-power): the assignment known to be
//!   strictly stronger than both extremes for capacity maximization
//!   [Fanghänel–Kesselheim–Vöcking].
//!
//! Because Theorem 3.1 generalizes to per-link powers, the feasibility
//! machinery applies verbatim: we build the power-scaled factor matrix
//! and let the fading-aware schedulers run unchanged. Scales are
//! normalized to mean 1 so total radiated power is comparable across
//! assignments.

use fading_net::LinkSet;
use serde::{Deserialize, Serialize};

/// An oblivious power-assignment rule `P_i ∝ d_ii^{τ·α}`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PowerAssignment {
    /// Uniform power (the paper's model), `τ = 0`.
    Uniform,
    /// Square-root assignment, `τ = 1/2`.
    SquareRoot,
    /// Linear (channel-inversion) assignment, `τ = 1`.
    Linear,
}

impl PowerAssignment {
    /// The exponent `τ` of the rule.
    pub fn tau(&self) -> f64 {
        match self {
            PowerAssignment::Uniform => 0.0,
            PowerAssignment::SquareRoot => 0.5,
            PowerAssignment::Linear => 1.0,
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            PowerAssignment::Uniform => "uniform",
            PowerAssignment::SquareRoot => "square-root",
            PowerAssignment::Linear => "linear",
        }
    }

    /// Computes normalized per-link power scales for `links` under
    /// path-loss exponent `alpha`: `scale_i ∝ d_ii^{τα}`, rescaled to
    /// mean 1.
    ///
    /// # Panics
    /// Panics on an empty instance.
    pub fn scales(&self, links: &LinkSet, alpha: f64) -> Vec<f64> {
        assert!(!links.is_empty(), "power assignment on empty instance");
        let tau = self.tau();
        let raw: Vec<f64> = links
            .links()
            .iter()
            .map(|l| l.length().powf(tau * alpha))
            .collect();
        let mean = raw.iter().sum::<f64>() / raw.len() as f64;
        raw.into_iter().map(|p| p / mean).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::GreedyRate;
    use crate::feasibility::is_feasible;
    use crate::{Problem, Scheduler};
    use fading_channel::ChannelParams;
    use fading_net::{TopologyGenerator, UniformGenerator};

    #[test]
    fn uniform_scales_are_all_one() {
        let links = UniformGenerator::paper(30).generate(1);
        let scales = PowerAssignment::Uniform.scales(&links, 3.0);
        assert!(scales.iter().all(|&s| (s - 1.0).abs() < 1e-12));
    }

    #[test]
    fn scales_are_normalized_to_mean_one() {
        let links = UniformGenerator::paper(50).generate(2);
        for a in [PowerAssignment::SquareRoot, PowerAssignment::Linear] {
            let scales = a.scales(&links, 3.0);
            let mean = scales.iter().sum::<f64>() / scales.len() as f64;
            assert!((mean - 1.0).abs() < 1e-12, "{}", a.name());
            assert!(scales.iter().all(|&s| s > 0.0));
        }
    }

    #[test]
    fn longer_links_get_more_power() {
        let links = UniformGenerator::paper(50).generate(3);
        let scales = PowerAssignment::Linear.scales(&links, 3.0);
        let (mut longest, mut shortest) = (0usize, 0usize);
        for (i, l) in links.links().iter().enumerate() {
            if l.length() > links.links()[longest].length() {
                longest = i;
            }
            if l.length() < links.links()[shortest].length() {
                shortest = i;
            }
        }
        assert!(scales[longest] > scales[shortest]);
    }

    #[test]
    fn linear_assignment_equalizes_mean_received_power() {
        // P_i · d_ii^{−α} constant across links under τ = 1.
        let links = UniformGenerator::paper(20).generate(4);
        let alpha = 3.0;
        let scales = PowerAssignment::Linear.scales(&links, alpha);
        let received: Vec<f64> = links
            .links()
            .iter()
            .zip(&scales)
            .map(|(l, &s)| s * l.length().powf(-alpha))
            .collect();
        let first = received[0];
        for r in &received {
            assert!((r - first).abs() < 1e-9 * first, "{r} vs {first}");
        }
    }

    #[test]
    fn power_aware_problems_schedule_feasibly() {
        let links = UniformGenerator::paper(150).generate(5);
        for a in [
            PowerAssignment::Uniform,
            PowerAssignment::SquareRoot,
            PowerAssignment::Linear,
        ] {
            let scales = a.scales(&links, 3.0);
            let p = Problem::builder(links.clone(), ChannelParams::paper_defaults())
                .power_scales(scales)
                .build();
            let s = GreedyRate.schedule(&p);
            assert!(!s.is_empty(), "{}", a.name());
            assert!(is_feasible(&p, &s), "{}", a.name());
        }
    }

    #[test]
    fn uniform_power_scales_match_the_plain_problem() {
        // power_scales(1,…,1) must produce the identical factor
        // matrix as the paper's model.
        let links = UniformGenerator::paper(25).generate(6);
        let plain = Problem::paper(links.clone(), 3.0);
        let scaled = Problem::builder(links, ChannelParams::paper_defaults())
            .power_scales(vec![1.0; 25])
            .build();
        for i in plain.links().ids() {
            for j in plain.links().ids() {
                assert_eq!(plain.factor(i, j), scaled.factor(i, j));
            }
        }
    }
}
