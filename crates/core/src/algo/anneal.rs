//! Simulated annealing for the general (weighted) Fading-R-LS.
//!
//! [`LocalSearch`] only adds links and swaps one-for-one, so it can
//! park in states where only a *group* move (drop one blocker, insert
//! two lighter links) improves utility. Annealing explores such moves:
//! toggle a random link (drop if selected; insert-with-repair if not),
//! accept worse states with probability `e^{Δ/T}` under a geometric
//! cooling schedule, and track the best feasible state ever visited.
//!
//! Feasibility is maintained as an invariant: insertions that would
//! break Corollary 3.1 greedily evict the lowest-rate conflicting
//! members first, and the move is evaluated on the repaired state.
//!
//! [`LocalSearch`]: crate::algo::LocalSearch

use crate::feasibility::within_budget;
use crate::problem::Problem;
use crate::schedule::Schedule;
use crate::Scheduler;
use fading_math::seeded_rng;
use fading_net::LinkId;
use rand::Rng;

/// Simulated-annealing scheduler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Anneal {
    /// Move evaluations (the computational budget).
    pub iterations: u32,
    /// Initial temperature, in units of the mean link rate.
    pub t0: f64,
    /// Geometric cooling factor per iteration.
    pub cooling: f64,
    /// RNG seed (annealing is randomized; fixed seed = reproducible).
    pub seed: u64,
}

impl Anneal {
    /// A sensible default budget (10k moves, T₀ = 2 mean rates).
    pub fn new(seed: u64) -> Self {
        Self {
            iterations: 10_000,
            t0: 2.0,
            cooling: 0.9995,
            seed,
        }
    }
}

/// Internal mutable state: selection bitmap + per-receiver factor sums.
struct State<'p> {
    problem: &'p Problem,
    selected: Vec<bool>,
    sums: Vec<f64>,
    utility: f64,
}

impl<'p> State<'p> {
    fn new(problem: &'p Problem) -> Self {
        Self {
            problem,
            selected: vec![false; problem.len()],
            sums: vec![0.0; problem.len()],
            utility: 0.0,
        }
    }

    fn insert(&mut self, id: LinkId) {
        debug_assert!(!self.selected[id.index()]);
        self.selected[id.index()] = true;
        self.utility += self.problem.rate(id);
        if let Some(row) = self.problem.factors().dense_row(id) {
            for (sum, f) in self.sums.iter_mut().zip(row) {
                *sum += f;
            }
        } else {
            let sums = &mut self.sums;
            self.problem
                .factors()
                .for_each_out(id, &mut |j, f| sums[j.index()] += f);
        }
    }

    fn remove(&mut self, id: LinkId) {
        debug_assert!(self.selected[id.index()]);
        self.selected[id.index()] = false;
        self.utility -= self.problem.rate(id);
        if let Some(row) = self.problem.factors().dense_row(id) {
            for (sum, f) in self.sums.iter_mut().zip(row) {
                *sum -= f;
            }
        } else {
            let sums = &mut self.sums;
            self.problem
                .factors()
                .for_each_out(id, &mut |j, f| sums[j.index()] -= f);
        }
    }

    /// Whether the current selection satisfies Corollary 3.1. Under a
    /// truncating backend the stored sums are lower bounds, so the test
    /// is taken against the *upper* envelope — conservative, keeping
    /// the tracked best state truly feasible (dense: exact, unchanged).
    fn feasible_with(&self, extra: Option<LinkId>) -> bool {
        let budget = self.problem.gamma_eps();
        let factors = self.problem.factors();
        let members = self.selected.iter().filter(|&&s| s).count() + usize::from(extra.is_some());
        (0..self.selected.len())
            .filter(|&j| self.selected[j] || extra.is_some_and(|e| e.index() == j))
            .all(|j| {
                let jid = LinkId(j as u32);
                let mut s = self.sums[j];
                if let Some(e) = extra {
                    if e.index() != j {
                        s += self.problem.factor(e, jid);
                    }
                }
                within_budget(s + members as f64 * factors.tail_cut(jid), budget)
            })
    }

    fn members(&self) -> Vec<LinkId> {
        (0..self.selected.len() as u32)
            .map(LinkId)
            .filter(|id| self.selected[id.index()])
            .collect()
    }
}

impl Scheduler for Anneal {
    fn name(&self) -> &'static str {
        "Anneal"
    }

    fn schedule_in(&self, problem: &Problem, ctx: &mut crate::ctx::SchedCtx) -> Schedule {
        let _span = fading_obs::Span::enter("core.anneal.schedule");
        let n = problem.len();
        if n == 0 {
            return Schedule::empty();
        }
        let mean_rate = problem.links().total_rate() / n as f64;
        let mut rng = seeded_rng(self.seed);
        // Start from the greedy solution: annealing then only has to
        // improve on a strong incumbent.
        let start = crate::algo::GreedyRate.schedule_in(problem, ctx);
        let mut state = State::new(problem);
        for id in start.iter() {
            state.insert(id);
        }
        let mut best = state.members();
        let mut best_utility = state.utility;
        let mut temp = self.t0 * mean_rate;

        for _ in 0..self.iterations {
            let id = LinkId(rng.gen_range(0..n as u32));
            if state.selected[id.index()] {
                // Drop move.
                let delta = -problem.rate(id);
                if delta >= 0.0 || rng.gen::<f64>() < (delta / temp).exp() {
                    state.remove(id);
                }
            } else {
                // Insert move with greedy repair: evict lowest-rate
                // conflicting members until the insertion is feasible.
                let mut evicted: Vec<LinkId> = Vec::new();
                while !state.feasible_with(Some(id)) {
                    let victim = state.members().into_iter().min_by(|&a, &b| {
                        problem.rate(a).total_cmp(&problem.rate(b)).then(a.cmp(&b))
                    });
                    match victim {
                        Some(v) => {
                            state.remove(v);
                            evicted.push(v);
                        }
                        None => break,
                    }
                }
                let delta =
                    problem.rate(id) - evicted.iter().map(|&v| problem.rate(v)).sum::<f64>();
                if delta >= 0.0 || rng.gen::<f64>() < (delta / temp).exp() {
                    state.insert(id); // accept repaired insertion
                } else {
                    // Reject: undo the evictions.
                    for v in evicted {
                        state.insert(v);
                    }
                }
            }
            if state.utility > best_utility && state.feasible_with(None) {
                best_utility = state.utility;
                best = state.members();
            }
            temp = (temp * self.cooling).max(1e-6);
        }
        let s = Schedule::from_ids(best);
        super::emit_algo_trace("Anneal", n, true, &s, ctx);
        fading_obs::counter!("core.anneal.picks").add(s.len() as u64);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{exact::branch_and_bound, GreedyRate};
    use crate::feasibility::is_feasible;
    use fading_net::{RateModel, TopologyGenerator, UniformGenerator};

    #[test]
    fn schedules_are_feasible() {
        for seed in 0..3 {
            let links = UniformGenerator::paper(120).generate(seed);
            let p = Problem::paper(links, 3.0);
            let s = Anneal::new(seed).schedule(&p);
            assert!(!s.is_empty());
            assert!(is_feasible(&p, &s), "seed {seed}");
        }
    }

    #[test]
    fn never_worse_than_the_greedy_start() {
        for seed in 0..3 {
            let gen = UniformGenerator {
                rates: RateModel::Uniform { lo: 0.5, hi: 5.0 },
                ..UniformGenerator::paper(150)
            };
            let p = Problem::paper(gen.generate(seed), 3.0);
            let greedy = GreedyRate.schedule(&p).utility(&p);
            let annealed = Anneal::new(seed).schedule(&p).utility(&p);
            assert!(
                annealed >= greedy - 1e-9,
                "seed {seed}: annealed {annealed} < greedy {greedy}"
            );
        }
    }

    #[test]
    fn matches_optimum_on_small_instances() {
        for seed in 0..4 {
            let gen = UniformGenerator {
                side: 120.0,
                n: 12,
                len_lo: 5.0,
                len_hi: 20.0,
                rates: RateModel::Uniform { lo: 0.5, hi: 3.0 },
            };
            let p = Problem::paper(gen.generate(seed), 3.0);
            let opt = branch_and_bound(&p).utility(&p);
            let annealed = Anneal::new(seed).schedule(&p).utility(&p);
            assert!(
                annealed >= 0.95 * opt,
                "seed {seed}: annealed {annealed} vs OPT {opt}"
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let links = UniformGenerator::paper(80).generate(9);
        let p = Problem::paper(links, 3.0);
        assert_eq!(Anneal::new(7).schedule(&p), Anneal::new(7).schedule(&p));
    }

    #[test]
    fn empty_instance() {
        let links = fading_net::LinkSet::new(fading_geom::Rect::square(1.0), vec![]);
        let p = Problem::paper(links, 3.0);
        assert!(Anneal::new(0).schedule(&p).is_empty());
    }
}
