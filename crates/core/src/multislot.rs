//! Multi-slot scheduling — the paper's stated future work
//! ("schedule all the links with the minimum number of time slots").
//!
//! The standard reduction from one-shot capacity maximization: run a
//! one-shot scheduler, commit its schedule to a slot, remove the
//! scheduled links, and repeat until every link has transmitted. If the
//! one-shot scheduler ever returns an empty schedule on a non-empty
//! residue (which the built-in schedulers never do, but the interface
//! can't promise), the shortest remaining link is scheduled alone —
//! a singleton is always feasible, so the loop terminates.

use crate::problem::Problem;
use crate::schedule::Schedule;
use crate::Scheduler;
use fading_net::LinkId;
use std::collections::HashMap;

/// A complete multi-slot schedule: every link appears in exactly one
/// slot, and every slot is feasible in isolation.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiSlotSchedule {
    slots: Vec<Schedule>,
    /// Link → slot index, precomputed so [`slot_of`](Self::slot_of) is
    /// `O(1)` instead of an `O(slots·n)` scan.
    slot_index: HashMap<LinkId, usize>,
}

impl MultiSlotSchedule {
    /// Builds the schedule from per-slot link sets, indexing each link's
    /// slot. A link appearing in several slots keeps its first.
    pub fn from_slots(slots: Vec<Schedule>) -> Self {
        let mut slot_index = HashMap::new();
        for (t, slot) in slots.iter().enumerate() {
            for id in slot.iter() {
                slot_index.entry(id).or_insert(t);
            }
        }
        Self { slots, slot_index }
    }

    /// The per-slot schedules, in transmission order.
    pub fn slots(&self) -> &[Schedule] {
        &self.slots
    }

    /// Number of time slots used.
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// Total number of scheduled link transmissions.
    pub fn total_links(&self) -> usize {
        self.slots.iter().map(Schedule::len).sum()
    }

    /// Slot index of a link, if scheduled (`O(1)`).
    pub fn slot_of(&self, id: LinkId) -> Option<usize> {
        self.slot_index.get(&id).copied()
    }
}

/// [`schedule_all_in`] with a private one-shot workspace.
pub fn schedule_all<S: Scheduler + ?Sized>(problem: &Problem, scheduler: &S) -> MultiSlotSchedule {
    schedule_all_in(problem, scheduler, &mut crate::ctx::SchedCtx::new())
}

/// Schedules *all* links of `problem` using `scheduler` for each slot,
/// driving every residual round through the caller's workspace.
///
/// Each residual instance goes through [`Problem::restrict`], so the
/// sub-problems keep the parent's power scales and interference backend
/// and reuse its interference state instead of recomputing geometry.
/// The ctx warm-starts across rounds for free: residual instances only
/// shrink, so the buffers sized by the first round serve every later
/// round without reallocating.
pub fn schedule_all_in<S: Scheduler + ?Sized>(
    problem: &Problem,
    scheduler: &S,
    ctx: &mut crate::ctx::SchedCtx,
) -> MultiSlotSchedule {
    let n = problem.len();
    let progress = fading_obs::Progress::new("multislot", "links", n as u64);
    let tracing = fading_obs::tracing_enabled();
    let mut remaining: Vec<LinkId> = problem.links().ids().collect();
    let mut slots = Vec::new();
    while !remaining.is_empty() {
        let slot_no = slots.len() as u64;
        if tracing {
            // The slot marker brackets the scheduler's own trace block;
            // that inner block uses the residual instance's renumbered
            // ids, while SlotEnd reports the parent ids it commits.
            fading_obs::trace::publish(vec![fading_obs::TraceEvent::SlotStart {
                slot: slot_no,
                backlog: remaining.len() as u32,
            }]);
        }
        // Derive the residual instance (renumbered) and map ids back.
        let (sub, mapping) = problem.restrict(&remaining);
        let sub_schedule = scheduler.schedule_in(&sub, ctx);
        let slot: Vec<LinkId> = if sub_schedule.is_empty() {
            // Fallback: a singleton is always feasible (no interferers).
            let shortest = *remaining
                .iter()
                .min_by(|&&a, &&b| {
                    problem
                        .links()
                        .length(a)
                        .total_cmp(&problem.links().length(b))
                })
                .expect("remaining is non-empty");
            vec![shortest]
        } else {
            sub_schedule
                .iter()
                .map(|sub_id| mapping[sub_id.index()])
                .collect()
        };
        // The sub-schedule's buffer feeds the next round's output.
        ctx.recycle(sub_schedule);
        remaining.retain(|id| !slot.contains(id));
        if tracing {
            fading_obs::trace::publish(vec![fading_obs::TraceEvent::SlotEnd {
                slot: slot_no,
                links: slot.iter().map(|id| id.0).collect(),
            }]);
        }
        slots.push(Schedule::from_ids(slot));
        let done = (n - remaining.len()) as u64;
        progress.report(
            done,
            &format!("slot {} · {} left", slots.len(), remaining.len()),
            done,
        );
    }
    MultiSlotSchedule::from_slots(slots)
}

/// A lower bound on the number of slots any multi-slot schedule needs:
/// the size of a clique in the *pairwise-conflict graph* (links `i, j`
/// conflict when even the two of them alone violate Corollary 3.1 —
/// `f_{i,j} > γ_ε` or `f_{j,i} > γ_ε`). Every member of such a clique
/// must occupy a distinct slot.
///
/// Finding the maximum clique is itself NP-hard; this returns a greedy
/// clique (highest-conflict-degree first), which is still a *valid*
/// lower bound, just not necessarily the best one.
pub fn conflict_clique_lower_bound(problem: &Problem) -> usize {
    let n = problem.len();
    if n == 0 {
        return 0;
    }
    let budget = problem.gamma_eps();
    let conflicts = |a: LinkId, b: LinkId| -> bool {
        problem.factor(a, b) > budget || problem.factor(b, a) > budget
    };
    // Conflict degree per link.
    let ids: Vec<LinkId> = problem.links().ids().collect();
    let mut order: Vec<LinkId> = ids.clone();
    let degree: Vec<usize> = ids
        .iter()
        .map(|&a| ids.iter().filter(|&&b| b != a && conflicts(a, b)).count())
        .collect();
    order.sort_by_key(|id| std::cmp::Reverse(degree[id.index()]));
    let mut clique: Vec<LinkId> = Vec::new();
    for cand in order {
        if clique.iter().all(|&m| conflicts(m, cand)) {
            clique.push(cand);
        }
    }
    clique.len().max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{GreedyRate, Ldp, Rle};
    use crate::feasibility::is_feasible;
    use fading_net::{TopologyGenerator, UniformGenerator};
    use std::collections::HashSet;

    fn problem(n: usize, seed: u64) -> Problem {
        Problem::paper(UniformGenerator::paper(n).generate(seed), 3.0)
    }

    fn assert_valid_cover(p: &Problem, ms: &MultiSlotSchedule) {
        let mut seen = HashSet::new();
        for slot in ms.slots() {
            assert!(!slot.is_empty(), "empty slot");
            assert!(is_feasible(p, slot), "infeasible slot");
            for id in slot.iter() {
                assert!(seen.insert(id), "link {id} scheduled twice");
            }
        }
        assert_eq!(seen.len(), p.len(), "not all links were scheduled");
    }

    #[test]
    fn rle_covers_all_links_with_feasible_slots() {
        let p = problem(120, 1);
        let ms = schedule_all(&p, &Rle::new());
        assert_valid_cover(&p, &ms);
        assert!(ms.num_slots() >= 1);
    }

    #[test]
    fn ldp_covers_all_links_with_feasible_slots() {
        let p = problem(80, 2);
        let ms = schedule_all(&p, &Ldp::new());
        assert_valid_cover(&p, &ms);
    }

    #[test]
    fn greedy_needs_no_more_slots_than_links() {
        let p = problem(60, 3);
        let ms = schedule_all(&p, &GreedyRate);
        assert_valid_cover(&p, &ms);
        assert!(ms.num_slots() <= p.len());
    }

    #[test]
    fn slot_of_finds_every_link() {
        let p = problem(50, 4);
        let ms = schedule_all(&p, &Rle::new());
        for id in p.links().ids() {
            assert!(ms.slot_of(id).is_some());
        }
        assert_eq!(ms.total_links(), p.len());
    }

    #[test]
    fn slot_index_matches_a_linear_scan() {
        let slots = vec![
            Schedule::from_ids([LinkId(3), LinkId(1)]),
            Schedule::from_ids([LinkId(0)]),
            Schedule::from_ids([LinkId(4), LinkId(2)]),
        ];
        let ms = MultiSlotSchedule::from_slots(slots.clone());
        for id in (0..6).map(LinkId) {
            let scanned = slots.iter().position(|s| s.contains(id));
            assert_eq!(ms.slot_of(id), scanned, "link {id}");
        }
        assert_eq!(ms.slot_of(LinkId(5)), None);
    }

    #[test]
    fn empty_problem_needs_zero_slots() {
        let links = fading_net::LinkSet::new(fading_geom::Rect::square(1.0), vec![]);
        let p = Problem::paper(links, 3.0);
        let ms = schedule_all(&p, &Rle::new());
        assert_eq!(ms.num_slots(), 0);
    }

    #[test]
    fn greedy_uses_fewer_or_equal_slots_than_singletons() {
        let p = problem(40, 5);
        let ms = schedule_all(&p, &GreedyRate);
        assert!(ms.num_slots() < p.len(), "parallelism should help");
    }

    #[test]
    fn lower_bound_is_respected_by_every_plan() {
        for seed in 0..4 {
            let p = problem(80, seed);
            let bound = conflict_clique_lower_bound(&p);
            assert!(bound >= 1);
            for s in [
                &Rle::new() as &dyn crate::Scheduler,
                &Ldp::new(),
                &GreedyRate,
            ] {
                let plan = schedule_all(&p, s);
                assert!(
                    plan.num_slots() >= bound,
                    "{}: {} slots below clique bound {bound} (seed {seed})",
                    s.name(),
                    plan.num_slots()
                );
            }
        }
    }

    #[test]
    fn lower_bound_detects_mutual_conflicts() {
        // A tight cluster of links all pairwise-conflicting: bound = n.
        use fading_geom::{Point2, Rect};
        use fading_net::{Link, LinkSet};
        let links: Vec<Link> = (0..5)
            .map(|i| {
                let y = i as f64 * 2.0;
                Link::new(
                    fading_net::LinkId(i),
                    Point2::new(0.0, y),
                    Point2::new(10.0, y),
                    1.0,
                )
            })
            .collect();
        let p = Problem::paper(LinkSet::new(Rect::square(100.0), links), 3.0);
        assert_eq!(conflict_clique_lower_bound(&p), 5);
    }

    #[test]
    fn lower_bound_is_one_for_isolated_links() {
        use fading_geom::{Point2, Rect};
        use fading_net::{Link, LinkSet};
        let links: Vec<Link> = (0..4)
            .map(|i| {
                let base = Point2::new(i as f64 * 10_000.0, 0.0);
                Link::new(
                    fading_net::LinkId(i),
                    base,
                    base + Point2::new(5.0, 0.0),
                    1.0,
                )
            })
            .collect();
        let p = Problem::paper(LinkSet::new(Rect::square(50_000.0), links), 3.0);
        assert_eq!(conflict_clique_lower_bound(&p), 1);
    }

    #[test]
    fn empty_problem_bound_is_zero() {
        let links = fading_net::LinkSet::new(fading_geom::Rect::square(1.0), vec![]);
        let p = Problem::paper(links, 3.0);
        assert_eq!(conflict_clique_lower_bound(&p), 0);
    }
}
