//! The Knapsack → Fading-R-LS reduction of Theorem 3.2.
//!
//! Given a Knapsack instance (values `p_i`, weights `w_i`, capacity
//! `W`), the construction places one sender per item on the x-axis at
//! `x_i = ((e^{γ_ε w_i/W} − 1)/γ_th)^{−1/α}` (Eq. (23)) so that its
//! interference factor on a gate receiver at the origin is *exactly*
//! `γ_ε w_i / W`; a gate link `(s_{n+1}, r_{n+1}) = ((0,1), (0,0))` with
//! rate `2 Σ p` forces any high-value schedule to respect
//! `Σ w_i ≤ W`. Item receivers sit `δ` (Eq. (25)) from their senders,
//! close enough to be informed regardless of which other senders are
//! active. Consequently
//!
//! `OPT_FadingRLS = 2 Σ p + OPT_Knapsack`,
//!
//! which the integration tests verify with the exact solvers on both
//! sides.

use crate::problem::Problem;
use fading_channel::ChannelParams;
use fading_geom::{Point2, Rect};
use fading_math::gamma_eps;
use fading_net::{Link, LinkId, LinkSet};

/// A 0/1 Knapsack instance.
///
/// ```
/// use fading_core::reduction::{knapsack_to_fading_rls, KnapsackInstance};
/// use fading_core::algo::exact::branch_and_bound;
/// use fading_channel::ChannelParams;
///
/// let kp = KnapsackInstance::new(vec![6.0, 10.0], vec![1.0, 2.0], 2.5);
/// let reduced = knapsack_to_fading_rls(&kp, ChannelParams::paper_defaults(), 0.01);
/// let opt = branch_and_bound(&reduced.problem).utility(&reduced.problem);
/// // OPT = 2Σp + knapsack optimum (Theorem 3.2)
/// assert!((opt - (2.0 * 16.0 + 10.0)).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct KnapsackInstance {
    /// Item values `p_i` (positive).
    pub values: Vec<f64>,
    /// Item weights `w_i` (positive, pairwise distinct — equal weights
    /// would map two senders to the same point, violating the wireless
    /// model's distinct-sender assumption; perturb ties upstream).
    pub weights: Vec<f64>,
    /// Capacity `W` (positive).
    pub capacity: f64,
}

impl KnapsackInstance {
    /// Validates and wraps an instance.
    ///
    /// # Panics
    /// Panics on dimension mismatch, non-positive data, or duplicate
    /// weights.
    pub fn new(values: Vec<f64>, weights: Vec<f64>, capacity: f64) -> Self {
        assert_eq!(
            values.len(),
            weights.len(),
            "values/weights length mismatch"
        );
        assert!(capacity > 0.0, "capacity must be positive");
        assert!(
            values.iter().all(|&v| v.is_finite() && v > 0.0),
            "values must be positive"
        );
        assert!(
            weights.iter().all(|&w| w.is_finite() && w > 0.0),
            "weights must be positive"
        );
        for i in 0..weights.len() {
            for j in (i + 1)..weights.len() {
                assert!(
                    weights[i] != weights[j],
                    "weights must be pairwise distinct (items {i} and {j})"
                );
            }
        }
        Self {
            values,
            weights,
            capacity,
        }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the instance has no items.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total value `Σ p_i`.
    pub fn total_value(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Exact optimum by enumeration — `O(2^n)`, for validating the
    /// reduction on small instances.
    ///
    /// # Panics
    /// Panics for more than 20 items.
    pub fn brute_force_optimum(&self) -> f64 {
        let n = self.len();
        assert!(n <= 20, "brute force limited to 20 items");
        let mut best = 0.0f64;
        for mask in 0u32..(1u32 << n) {
            let mut value = 0.0;
            let mut weight = 0.0;
            for i in 0..n {
                if mask & (1 << i) != 0 {
                    value += self.values[i];
                    weight += self.weights[i];
                }
            }
            if weight <= self.capacity {
                best = best.max(value);
            }
        }
        best
    }
}

/// Output of the reduction: the Fading-R-LS instance plus bookkeeping
/// for interpreting its schedules.
#[derive(Debug, Clone)]
pub struct ReducedInstance {
    /// The constructed scheduling problem (items `0..n`, gate link `n`).
    pub problem: Problem,
    /// Id of the gate link `(s_{n+1}, r_{n+1})`.
    pub gate: LinkId,
    /// The gate's rate, `2 Σ p`.
    pub gate_rate: f64,
}

/// Performs the Theorem 3.2 construction.
///
/// `params` supplies `α`, `γ_th` and power; `eps` the reliability
/// target. Works for any valid parameters, not only the paper defaults.
pub fn knapsack_to_fading_rls(
    kp: &KnapsackInstance,
    params: ChannelParams,
    eps: f64,
) -> ReducedInstance {
    let n = kp.len();
    let ge = gamma_eps(eps);
    let alpha = params.alpha;
    let gamma_th = params.gamma_th;

    // Eq. (23): sender positions on the x-axis.
    let xs: Vec<f64> = kp
        .weights
        .iter()
        .map(|&w| ((ge * w / kp.capacity).exp_m1() / gamma_th).powf(-1.0 / alpha))
        .collect();
    let mut senders: Vec<Point2> = xs.iter().map(|&x| Point2::new(x, 0.0)).collect();
    senders.push(Point2::new(0.0, 1.0)); // s_{n+1}

    // d_min over all sender pairs (Eq. (25) needs it, including the gate).
    let mut d_min = f64::INFINITY;
    for i in 0..senders.len() {
        for j in (i + 1)..senders.len() {
            d_min = d_min.min(senders[i].distance(&senders[j]));
        }
    }
    assert!(
        d_min > 0.0,
        "degenerate construction: two senders coincide (duplicate weights?)"
    );

    // Eq. (25): the item-receiver offset.
    let delta = d_min / (((ge / (n as f64 + 1.0)).exp_m1() / gamma_th).powf(-1.0 / alpha) + 1.0);

    let total_value = kp.total_value();
    let gate_rate = 2.0 * total_value;
    let mut links: Vec<Link> = (0..n)
        .map(|i| {
            Link::new(
                LinkId(i as u32),
                senders[i],
                senders[i] + Point2::new(delta, 0.0),
                kp.values[i],
            )
        })
        .collect();
    links.push(Link::new(
        LinkId(n as u32),
        senders[n],
        Point2::new(0.0, 0.0), // r_{n+1} at the origin
        gate_rate,
    ));

    let max_x = xs.iter().copied().fold(1.0f64, f64::max) + delta + 1.0;
    let region = Rect::new(Point2::new(-1.0, -1.0), Point2::new(max_x, 2.0));
    let problem = Problem::new(LinkSet::new(region, links), params, eps);
    ReducedInstance {
        problem,
        gate: LinkId(n as u32),
        gate_rate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::exact::branch_and_bound;
    use crate::schedule::Schedule;

    fn params() -> ChannelParams {
        ChannelParams::paper_defaults()
    }

    fn reduce(values: &[f64], weights: &[f64], cap: f64) -> ReducedInstance {
        let kp = KnapsackInstance::new(values.to_vec(), weights.to_vec(), cap);
        knapsack_to_fading_rls(&kp, params(), 0.01)
    }

    #[test]
    fn gate_interference_factors_encode_weights() {
        // f_{i, gate} must equal γ_ε w_i / W exactly (Eq. (30)).
        let weights = [1.0, 2.5, 4.0];
        let r = reduce(&[1.0, 1.0, 1.0], &weights, 5.0);
        let ge = r.problem.gamma_eps();
        for (i, &w) in weights.iter().enumerate() {
            let f = r.problem.factor(LinkId(i as u32), r.gate);
            let expect = ge * w / 5.0;
            assert!(
                (f - expect).abs() < 1e-12 * expect,
                "item {i}: f={f} vs γ_ε w/W={expect}"
            );
        }
    }

    #[test]
    fn item_receivers_are_informed_under_any_coalition() {
        // The δ construction must keep every item link feasible even
        // when all senders (including the gate) transmit.
        let r = reduce(&[3.0, 1.0, 2.0, 5.0], &[2.0, 1.0, 3.0, 4.0], 6.0);
        let all = Schedule::from_ids(r.problem.links().ids());
        let report = crate::feasibility::FeasibilityReport::evaluate(&r.problem, &all);
        for e in report.entries() {
            if e.id != r.gate {
                assert!(e.feasible, "item link {} must always be informed", e.id);
            }
        }
    }

    #[test]
    fn optimum_equals_two_sigma_p_plus_knapsack_optimum() {
        let cases: [(Vec<f64>, Vec<f64>, f64); 4] = [
            (vec![2.0, 3.0, 4.0], vec![1.0, 2.0, 3.0], 3.5),
            (vec![1.0, 1.0, 1.0, 1.0], vec![1.0, 2.0, 3.0, 4.0], 5.0),
            (vec![5.0, 4.0, 3.0], vec![4.0, 3.0, 2.0], 5.0),
            (vec![10.0], vec![3.0], 1.0), // item never fits
        ];
        for (values, weights, cap) in cases {
            let kp = KnapsackInstance::new(values.clone(), weights.clone(), cap);
            let expect = 2.0 * kp.total_value() + kp.brute_force_optimum();
            let red = knapsack_to_fading_rls(&kp, params(), 0.01);
            let opt = branch_and_bound(&red.problem);
            assert!(
                (opt.utility(&red.problem) - expect).abs() < 1e-9,
                "values={values:?} weights={weights:?} W={cap}: fading OPT {} vs 2Σp+knap {}",
                opt.utility(&red.problem),
                expect
            );
            assert!(opt.contains(red.gate), "optimum must include the gate link");
        }
    }

    #[test]
    fn reduction_works_for_other_alpha_and_eps() {
        let kp = KnapsackInstance::new(vec![2.0, 2.0, 3.0], vec![1.5, 2.5, 3.5], 4.0);
        for (alpha, eps) in [(2.5, 0.05), (4.0, 0.001)] {
            let red = knapsack_to_fading_rls(&kp, ChannelParams::with_alpha(alpha), eps);
            let expect = 2.0 * kp.total_value() + kp.brute_force_optimum();
            let opt = branch_and_bound(&red.problem);
            assert!(
                (opt.utility(&red.problem) - expect).abs() < 1e-9,
                "α={alpha} ε={eps}"
            );
        }
    }

    #[test]
    fn brute_force_knapsack_examples() {
        let kp = KnapsackInstance::new(vec![6.0, 10.0, 12.0], vec![1.0, 2.0, 3.0], 5.0);
        assert_eq!(kp.brute_force_optimum(), 22.0);
        let tight = KnapsackInstance::new(vec![1.0], vec![2.0], 1.0);
        assert_eq!(tight.brute_force_optimum(), 0.0);
    }

    #[test]
    #[should_panic(expected = "pairwise distinct")]
    fn rejects_duplicate_weights() {
        KnapsackInstance::new(vec![1.0, 2.0], vec![3.0, 3.0], 5.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_nonpositive_values() {
        KnapsackInstance::new(vec![0.0], vec![1.0], 5.0);
    }
}
