//! Incremental topology mutation support types (see `docs/online.md`).
//!
//! [`crate::Problem::add_links`] / [`crate::Problem::remove_links`]
//! patch a live instance in place, but they renumber: dense `LinkId`s
//! must stay contiguous (`0..n`), so removal uses `swap_remove`
//! semantics and the tail link takes the vacated id. A long-running
//! engine (the churn simulator, an external controller) needs handles
//! that *survive* that renumbering — [`LinkIdMap`] provides them by
//! mirroring every mutation the problem performs.

use fading_geom::Point2;
use fading_net::LinkId;
use std::collections::HashMap;

/// A link to be added to a live [`crate::Problem`] — the mutation
/// counterpart of constructing a [`fading_net::Link`] through a
/// generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// Sender position.
    pub sender: Point2,
    /// Receiver position.
    pub receiver: Point2,
    /// Traffic rate / scheduling weight `λ_i` (must be positive finite).
    pub rate: f64,
    /// Transmit power scale (`scale × P`; 1 = the uniform paper model).
    pub power_scale: f64,
}

impl LinkSpec {
    /// A uniform-power, unit-rate link — the paper's model.
    pub fn new(sender: Point2, receiver: Point2) -> Self {
        Self {
            sender,
            receiver,
            rate: 1.0,
            power_scale: 1.0,
        }
    }

    /// Sets the traffic rate.
    pub fn with_rate(mut self, rate: f64) -> Self {
        self.rate = rate;
        self
    }

    /// Sets the transmit power scale.
    pub fn with_power_scale(mut self, power_scale: f64) -> Self {
        self.power_scale = power_scale;
        self
    }
}

/// Stable external handles over the dense, renumbering [`LinkId`]
/// space.
///
/// External ids are `u64`s handed out once per added link and never
/// reused; dense ids are the contiguous `0..n` indices the problem's
/// matrices are addressed by. The map stays consistent by *mirroring*
/// the problem's mutations: call [`on_add`](Self::on_add) once per
/// appended link and [`on_swap_remove`](Self::on_swap_remove) once per
/// removed dense id, in the exact order the problem applied them
/// ([`crate::Problem::remove_links`] returns that order).
///
/// ```
/// use fading_core::LinkIdMap;
/// use fading_net::LinkId;
///
/// let mut map = LinkIdMap::with_len(3); // dense 0,1,2 ↔ external 0,1,2
/// let ext = map.on_add(); // dense 3
/// assert_eq!(map.dense(ext), Some(LinkId(3)));
/// map.on_swap_remove(LinkId(1)); // tail (dense 3) takes id 1
/// assert_eq!(map.dense(ext), Some(LinkId(1)));
/// assert_eq!(map.dense(1), None); // external 1 is gone
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinkIdMap {
    /// External id of each dense slot.
    dense_to_ext: Vec<u64>,
    /// Inverse: external id → dense index.
    ext_to_dense: HashMap<u64, u32>,
    /// Next external id to hand out (monotone, never reused).
    next_ext: u64,
}

impl LinkIdMap {
    /// An empty map (for an engine that starts with no links).
    pub fn new() -> Self {
        Self::default()
    }

    /// A map over an existing instance of `n` links: dense id `i` gets
    /// external id `i`.
    pub fn with_len(n: usize) -> Self {
        let dense_to_ext: Vec<u64> = (0..n as u64).collect();
        let ext_to_dense = dense_to_ext.iter().map(|&e| (e, e as u32)).collect();
        Self {
            dense_to_ext,
            ext_to_dense,
            next_ext: n as u64,
        }
    }

    /// Registers one appended link (dense id = previous `len`) and
    /// returns its external handle. Mirror of one
    /// [`crate::Problem::add_links`] element, applied in spec order.
    pub fn on_add(&mut self) -> u64 {
        let ext = self.next_ext;
        self.next_ext += 1;
        self.ext_to_dense
            .insert(ext, self.dense_to_ext.len() as u32);
        self.dense_to_ext.push(ext);
        ext
    }

    /// Registers the removal of dense id `dense` with swap-remove
    /// semantics (the tail link takes its id), returning the removed
    /// link's external handle. Mirror of one
    /// [`crate::Problem::remove_links`] step.
    ///
    /// # Panics
    /// Panics if `dense` is out of range.
    pub fn on_swap_remove(&mut self, dense: LinkId) -> u64 {
        let k = dense.index();
        let removed = self.dense_to_ext.swap_remove(k);
        self.ext_to_dense.remove(&removed);
        if k < self.dense_to_ext.len() {
            // The tail's external id now lives at dense slot `k`.
            self.ext_to_dense.insert(self.dense_to_ext[k], k as u32);
        }
        removed
    }

    /// Current dense id of an external handle (`None` once removed).
    pub fn dense(&self, ext: u64) -> Option<LinkId> {
        self.ext_to_dense.get(&ext).map(|&k| LinkId(k))
    }

    /// External handle of a dense id.
    ///
    /// # Panics
    /// Panics if `dense` is out of range.
    pub fn external(&self, dense: LinkId) -> u64 {
        self.dense_to_ext[dense.index()]
    }

    /// Number of live links.
    pub fn len(&self) -> usize {
        self.dense_to_ext.len()
    }

    /// Whether no links are live.
    pub fn is_empty(&self) -> bool {
        self.dense_to_ext.is_empty()
    }

    /// External handles of all live links, in dense-id order.
    pub fn externals(&self) -> &[u64] {
        &self.dense_to_ext
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_remove_track_renumbering() {
        let mut map = LinkIdMap::with_len(4);
        assert_eq!(map.len(), 4);
        assert_eq!(map.external(LinkId(2)), 2);
        let e4 = map.on_add();
        assert_eq!(e4, 4);
        assert_eq!(map.dense(e4), Some(LinkId(4)));

        // Remove dense 1: tail (dense 4 = external 4) takes id 1.
        assert_eq!(map.on_swap_remove(LinkId(1)), 1);
        assert_eq!(map.dense(1), None);
        assert_eq!(map.dense(e4), Some(LinkId(1)));
        assert_eq!(map.external(LinkId(1)), e4);
        assert_eq!(map.len(), 4);

        // Removing the tail itself moves nothing.
        assert_eq!(map.on_swap_remove(LinkId(3)), 3);
        assert_eq!(map.dense(3), None);
        assert_eq!(map.len(), 3);
        assert_eq!(map.externals(), &[0, e4, 2]);
    }

    #[test]
    fn external_ids_are_never_reused() {
        let mut map = LinkIdMap::new();
        let a = map.on_add();
        map.on_swap_remove(LinkId(0));
        let b = map.on_add();
        assert_ne!(a, b);
        assert_eq!(map.dense(b), Some(LinkId(0)));
    }

    #[test]
    fn drain_to_empty() {
        let mut map = LinkIdMap::with_len(3);
        while !map.is_empty() {
            map.on_swap_remove(LinkId(0));
        }
        assert_eq!(map.dense(0), None);
        let e = map.on_add();
        assert_eq!(e, 3);
        assert_eq!(map.dense(e), Some(LinkId(0)));
    }
}
