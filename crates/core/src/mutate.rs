//! Incremental topology mutation support types (see `docs/online.md`).
//!
//! [`crate::Problem::add_links`] / [`crate::Problem::remove_links`]
//! patch a live instance in place, but they renumber: dense `LinkId`s
//! must stay contiguous (`0..n`), so removal uses `swap_remove`
//! semantics and the tail link takes the vacated id. A long-running
//! engine (the churn simulator, an external controller) needs handles
//! that *survive* that renumbering — [`LinkIdMap`] provides them by
//! mirroring every mutation the problem performs.
//!
//! [`MutationBatch`] is the transactional surface over both: typed
//! adds ([`LinkSpec`]) plus removes by *external* id, validated
//! atomically and committed by [`crate::Problem::apply`] with one
//! envelope reconciliation and one spatial-index patch pass for the
//! whole batch — the per-slot entry point of the churn engine.

use fading_geom::Point2;
use fading_net::{LinkId, ValidationError};
use std::collections::HashMap;

/// A link to be added to a live [`crate::Problem`] — the mutation
/// counterpart of constructing a [`fading_net::Link`] through a
/// generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// Sender position.
    pub sender: Point2,
    /// Receiver position.
    pub receiver: Point2,
    /// Traffic rate / scheduling weight `λ_i` (must be positive finite).
    pub rate: f64,
    /// Transmit power scale (`scale × P`; 1 = the uniform paper model).
    pub power_scale: f64,
}

impl LinkSpec {
    /// A uniform-power, unit-rate link — the paper's model.
    pub fn new(sender: Point2, receiver: Point2) -> Self {
        Self {
            sender,
            receiver,
            rate: 1.0,
            power_scale: 1.0,
        }
    }

    /// Sets the traffic rate.
    pub fn with_rate(mut self, rate: f64) -> Self {
        self.rate = rate;
        self
    }

    /// Sets the transmit power scale.
    pub fn with_power_scale(mut self, power_scale: f64) -> Self {
        self.power_scale = power_scale;
        self
    }
}

/// A transaction over a live [`crate::Problem`]: links to add (typed
/// [`LinkSpec`]s) and links to remove (by the *external* ids a
/// [`LinkIdMap`] handed out). [`crate::Problem::apply`] validates the
/// whole batch atomically — on any error nothing changes — and commits
/// it with one envelope reconciliation and one spatial-index patch
/// pass, so a batch of `k` mutations costs `O(N + k·degree)` instead
/// of `k` separate `O(N)` scans.
///
/// The batch is reusable: [`clear`](Self::clear) keeps the allocations
/// so a per-slot loop builds each slot's transaction without touching
/// the heap once warm.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MutationBatch {
    adds: Vec<LinkSpec>,
    removes: Vec<u64>,
}

impl MutationBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues a link to add; batch slot order is insertion order.
    pub fn add(&mut self, spec: LinkSpec) -> &mut Self {
        self.adds.push(spec);
        self
    }

    /// Queues a removal by external id. Duplicate ids are allowed and
    /// collapse to one removal.
    pub fn remove(&mut self, ext: u64) -> &mut Self {
        self.removes.push(ext);
        self
    }

    /// The queued adds, in slot order.
    pub fn adds(&self) -> &[LinkSpec] {
        &self.adds
    }

    /// Replaces the queued add at `slot` — the retry path after
    /// [`MutationError::InvalidAdd`] reported that slot (e.g. the churn
    /// engine resampling a measure-zero coordinate collision).
    ///
    /// # Panics
    /// Panics if `slot` is out of range.
    pub fn replace_add(&mut self, slot: usize, spec: LinkSpec) {
        self.adds[slot] = spec;
    }

    /// The queued removals (external ids, as queued).
    pub fn removes(&self) -> &[u64] {
        &self.removes
    }

    /// Whether the batch queues no mutations.
    pub fn is_empty(&self) -> bool {
        self.adds.is_empty() && self.removes.is_empty()
    }

    /// Number of queued mutations (adds plus removes).
    pub fn len(&self) -> usize {
        self.adds.len() + self.removes.len()
    }

    /// Empties the batch, keeping its allocations for reuse.
    pub fn clear(&mut self) {
        self.adds.clear();
        self.removes.clear();
    }
}

/// What [`crate::Problem::apply`] committed: the new links' external
/// handles (spec order) and the removed links' external handles (the
/// order the removals were applied in).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchReceipt {
    /// External id of each added link, in batch slot order.
    pub added: Vec<u64>,
    /// External id of each removed link, in application order
    /// (descending dense id, deduplicated).
    pub removed: Vec<u64>,
}

/// Why a [`MutationBatch`] was rejected. The batch is transactional:
/// any error leaves the problem (and the [`LinkIdMap`]) untouched.
#[derive(Debug, Clone, PartialEq)]
pub enum MutationError {
    /// A removal named an external id with no live link (never issued,
    /// or already removed).
    UnknownExternal(u64),
    /// An added spec failed validation. `slot` indexes the batch's
    /// [`adds`](MutationBatch::adds); the embedded error carries the
    /// id the link would have taken.
    InvalidAdd {
        /// Index into the batch's adds.
        slot: usize,
        /// The underlying validation failure.
        source: ValidationError,
    },
}

impl std::fmt::Display for MutationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MutationError::UnknownExternal(ext) => {
                write!(f, "removal names unknown external link id {ext}")
            }
            MutationError::InvalidAdd { slot, source } => {
                write!(f, "batch add slot {slot} is invalid: {source}")
            }
        }
    }
}

impl std::error::Error for MutationError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MutationError::UnknownExternal(_) => None,
            MutationError::InvalidAdd { source, .. } => Some(source),
        }
    }
}

/// Stable external handles over the dense, renumbering [`LinkId`]
/// space.
///
/// External ids are `u64`s handed out once per added link and never
/// reused; dense ids are the contiguous `0..n` indices the problem's
/// matrices are addressed by. The map stays consistent by *mirroring*
/// the problem's mutations: call [`on_add`](Self::on_add) once per
/// appended link and [`on_swap_remove`](Self::on_swap_remove) once per
/// removed dense id, in the exact order the problem applied them
/// ([`crate::Problem::remove_links`] returns that order).
///
/// ```
/// use fading_core::LinkIdMap;
/// use fading_net::LinkId;
///
/// let mut map = LinkIdMap::with_len(3); // dense 0,1,2 ↔ external 0,1,2
/// let ext = map.on_add(); // dense 3
/// assert_eq!(map.dense(ext), Some(LinkId(3)));
/// map.on_swap_remove(LinkId(1)); // tail (dense 3) takes id 1
/// assert_eq!(map.dense(ext), Some(LinkId(1)));
/// assert_eq!(map.dense(1), None); // external 1 is gone
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinkIdMap {
    /// External id of each dense slot.
    dense_to_ext: Vec<u64>,
    /// Inverse: external id → dense index.
    ext_to_dense: HashMap<u64, u32>,
    /// Next external id to hand out (monotone, never reused).
    next_ext: u64,
}

impl LinkIdMap {
    /// An empty map (for an engine that starts with no links).
    pub fn new() -> Self {
        Self::default()
    }

    /// A map over an existing instance of `n` links: dense id `i` gets
    /// external id `i`.
    pub fn with_len(n: usize) -> Self {
        let dense_to_ext: Vec<u64> = (0..n as u64).collect();
        let ext_to_dense = dense_to_ext.iter().map(|&e| (e, e as u32)).collect();
        Self {
            dense_to_ext,
            ext_to_dense,
            next_ext: n as u64,
        }
    }

    /// Registers one appended link (dense id = previous `len`) and
    /// returns its external handle. Mirror of one
    /// [`crate::Problem::add_links`] element, applied in spec order.
    pub fn on_add(&mut self) -> u64 {
        let ext = self.next_ext;
        self.next_ext += 1;
        self.ext_to_dense
            .insert(ext, self.dense_to_ext.len() as u32);
        self.dense_to_ext.push(ext);
        ext
    }

    /// Registers the removal of dense id `dense` with swap-remove
    /// semantics (the tail link takes its id), returning the removed
    /// link's external handle. Mirror of one
    /// [`crate::Problem::remove_links`] step.
    ///
    /// # Panics
    /// Panics if `dense` is out of range.
    pub fn on_swap_remove(&mut self, dense: LinkId) -> u64 {
        let k = dense.index();
        let removed = self.dense_to_ext.swap_remove(k);
        self.ext_to_dense.remove(&removed);
        if k < self.dense_to_ext.len() {
            // The tail's external id now lives at dense slot `k`.
            self.ext_to_dense.insert(self.dense_to_ext[k], k as u32);
        }
        removed
    }

    /// Current dense id of an external handle (`None` once removed).
    pub fn dense(&self, ext: u64) -> Option<LinkId> {
        self.ext_to_dense.get(&ext).map(|&k| LinkId(k))
    }

    /// External handle of a dense id.
    ///
    /// # Panics
    /// Panics if `dense` is out of range.
    pub fn external(&self, dense: LinkId) -> u64 {
        self.dense_to_ext[dense.index()]
    }

    /// Number of live links.
    pub fn len(&self) -> usize {
        self.dense_to_ext.len()
    }

    /// Whether no links are live.
    pub fn is_empty(&self) -> bool {
        self.dense_to_ext.is_empty()
    }

    /// External handles of all live links, in dense-id order.
    pub fn externals(&self) -> &[u64] {
        &self.dense_to_ext
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_remove_track_renumbering() {
        let mut map = LinkIdMap::with_len(4);
        assert_eq!(map.len(), 4);
        assert_eq!(map.external(LinkId(2)), 2);
        let e4 = map.on_add();
        assert_eq!(e4, 4);
        assert_eq!(map.dense(e4), Some(LinkId(4)));

        // Remove dense 1: tail (dense 4 = external 4) takes id 1.
        assert_eq!(map.on_swap_remove(LinkId(1)), 1);
        assert_eq!(map.dense(1), None);
        assert_eq!(map.dense(e4), Some(LinkId(1)));
        assert_eq!(map.external(LinkId(1)), e4);
        assert_eq!(map.len(), 4);

        // Removing the tail itself moves nothing.
        assert_eq!(map.on_swap_remove(LinkId(3)), 3);
        assert_eq!(map.dense(3), None);
        assert_eq!(map.len(), 3);
        assert_eq!(map.externals(), &[0, e4, 2]);
    }

    #[test]
    fn external_ids_are_never_reused() {
        let mut map = LinkIdMap::new();
        let a = map.on_add();
        map.on_swap_remove(LinkId(0));
        let b = map.on_add();
        assert_ne!(a, b);
        assert_eq!(map.dense(b), Some(LinkId(0)));
    }

    #[test]
    fn drain_to_empty() {
        let mut map = LinkIdMap::with_len(3);
        while !map.is_empty() {
            map.on_swap_remove(LinkId(0));
        }
        assert_eq!(map.dense(0), None);
        let e = map.on_add();
        assert_eq!(e, 3);
        assert_eq!(map.dense(e), Some(LinkId(0)));
    }
}
