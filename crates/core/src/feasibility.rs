//! Feasibility checking (Corollary 3.1) and per-link diagnostics.
//!
//! A schedule `P` is *feasible* when every member link `j` satisfies
//! `Σ_{i∈P\{j}} f_{i,j} ≤ γ_ε`, equivalently succeeds with probability
//! at least `1 − ε` (Theorem 3.1). The report also exposes each link's
//! analytic success probability `exp(−Σ f)` so the simulator's empirical
//! rates can be validated against the closed form.

use crate::problem::Problem;
use crate::schedule::Schedule;
use fading_math::KahanSum;
use fading_net::LinkId;

/// Relative tolerance for budget comparisons.
///
/// Exactly-critical instances (e.g. the Knapsack reduction with a
/// subset hitting the capacity exactly) land on the `Σ f = γ_ε`
/// boundary; the position → distance → factor roundtrip perturbs the
/// sum by a few ULPs, so the comparison allows a hair of slack. All
/// solvers (feasibility report, incremental accumulator, exhaustive,
/// ILP) share this constant so they agree on borderline schedules.
pub const BUDGET_RTOL: f64 = 1e-9;

/// Shared budget test: `sum ≤ budget` up to [`BUDGET_RTOL`].
#[inline]
pub fn within_budget(sum: f64, budget: f64) -> bool {
    sum <= budget * (1.0 + BUDGET_RTOL)
}

/// Budget test for a sum known only as a certified envelope
/// `[sum_lo, sum_lo + tail]` (the sparse backend's stored-factor sums;
/// see [`InterferenceModel::tail_cut`](crate::InterferenceModel::tail_cut)).
///
/// * `Some(true)` — the whole envelope passes: the true sum passes.
/// * `Some(false)` — the lower bound already fails: the true sum fails.
/// * `None` — the envelope straddles the threshold; the caller must
///   resolve exactly (factors are always recomputable in `O(1)`), so
///   feasibility verdicts never silently flip under truncation.
///
/// With `tail == 0` (dense/exhaustive backends) the result is always
/// `Some(within_budget(sum_lo, budget))`.
#[inline]
pub fn within_budget_certified(sum_lo: f64, tail: f64, budget: f64) -> Option<bool> {
    if !within_budget(sum_lo, budget) {
        Some(false)
    } else if within_budget(sum_lo + tail, budget) {
        Some(true)
    } else {
        None
    }
}

/// Per-link feasibility diagnostics for a schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct FeasibilityReport {
    entries: Vec<LinkEntry>,
    gamma_eps: f64,
}

/// Diagnostics for one scheduled link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkEntry {
    /// The link.
    pub id: LinkId,
    /// `Σ_{i∈P\{j}} f_{i,j}` — the accumulated interference factor.
    pub interference_sum: f64,
    /// Analytic success probability `exp(−Σ f)` (Theorem 3.1).
    pub success_probability: f64,
    /// Whether the link meets the `γ_ε` budget.
    pub feasible: bool,
}

impl FeasibilityReport {
    /// Evaluates `schedule` against Corollary 3.1.
    pub fn evaluate(problem: &Problem, schedule: &Schedule) -> Self {
        let gamma_eps = problem.gamma_eps();
        let entries = schedule
            .iter()
            .map(|j| {
                let mut acc = KahanSum::new();
                for i in schedule.iter() {
                    if i != j {
                        acc.add(problem.factor(i, j));
                    }
                }
                let sum = acc.value();
                LinkEntry {
                    id: j,
                    interference_sum: sum,
                    success_probability: (-sum).exp(),
                    feasible: within_budget(sum, gamma_eps),
                }
            })
            .collect();
        Self { entries, gamma_eps }
    }

    /// Whether every scheduled link meets its reliability target.
    pub fn is_feasible(&self) -> bool {
        self.entries.iter().all(|e| e.feasible)
    }

    /// The links violating the budget.
    pub fn violations(&self) -> Vec<LinkId> {
        self.entries
            .iter()
            .filter(|e| !e.feasible)
            .map(|e| e.id)
            .collect()
    }

    /// Per-link diagnostics in schedule order.
    pub fn entries(&self) -> &[LinkEntry] {
        &self.entries
    }

    /// The budget the entries were checked against.
    pub fn gamma_eps(&self) -> f64 {
        self.gamma_eps
    }

    /// The worst (largest) interference sum, or 0 for empty schedules.
    pub fn worst_interference(&self) -> f64 {
        self.entries
            .iter()
            .map(|e| e.interference_sum)
            .fold(0.0, f64::max)
    }
}

/// Convenience wrapper: whether `schedule` is feasible on `problem`.
pub fn is_feasible(problem: &Problem, schedule: &Schedule) -> bool {
    FeasibilityReport::evaluate(problem, schedule).is_feasible()
}

/// Incremental feasibility helper used by constructive algorithms:
/// tracks, for every link in the instance, the accumulated interference
/// factor from the currently selected senders.
///
/// Under the dense backend the sums are exact. Under the sparse backend
/// they accumulate *stored* factors only, so each is a lower bound with
/// a certified envelope of `|selected| · tail_cut(j)`; every
/// verdict-producing method resolves a straddling envelope by exact
/// recomputation (in selection order, so the resolved sum is
/// bit-identical to what the dense backend would have accumulated) —
/// feasibility decisions never differ between backends.
#[derive(Debug, Clone)]
pub struct InterferenceAccumulator<'p> {
    problem: &'p Problem,
    sums: Vec<f64>,
    selected: Vec<LinkId>,
}

impl<'p> InterferenceAccumulator<'p> {
    /// Starts with an empty selection.
    pub fn new(problem: &'p Problem) -> Self {
        Self {
            problem,
            sums: vec![0.0; problem.len()],
            selected: Vec::new(),
        }
    }

    /// Adds sender `i` to the selection, updating every receiver's sum.
    pub fn select(&mut self, i: LinkId) {
        if let Some(row) = self.problem.factors().dense_row(i) {
            for (sum, f) in self.sums.iter_mut().zip(row) {
                *sum += f;
            }
        } else {
            let sums = &mut self.sums;
            self.problem
                .factors()
                .for_each_out(i, &mut |j, f| sums[j.index()] += f);
        }
        self.selected.push(i);
    }

    /// Accumulated *stored* interference factor on receiver `j` from
    /// the selected senders (excluding `j` itself if selected —
    /// `f_{j,j}=0`). Exact under exhaustive backends; a certified lower
    /// bound (within [`tail_on`](Self::tail_on)) under truncation.
    #[inline]
    pub fn sum_on(&self, j: LinkId) -> f64 {
        self.sums[j.index()]
    }

    /// Certified width of the envelope on [`sum_on`](Self::sum_on):
    /// the true sum lies in `[sum_on(j), sum_on(j) + tail_on(j)]`.
    #[inline]
    pub fn tail_on(&self, j: LinkId) -> f64 {
        self.selected.len() as f64 * self.problem.factors().tail_cut(j)
    }

    /// The exact accumulated sum on `j`, recomputing omitted factors on
    /// demand when the backend truncates. Matches the dense
    /// accumulation bit-for-bit (same terms, same order, same formula).
    pub fn exact_sum_on(&self, j: LinkId) -> f64 {
        if self.problem.factors().tail_cut(j) == 0.0 {
            return self.sums[j.index()];
        }
        let mut sum = 0.0;
        for &i in &self.selected {
            sum += self.problem.factor(i, j);
        }
        sum
    }

    /// Whether adding `candidate` would keep the *entire* selection
    /// (existing members and the candidate) within `budget`. Identical
    /// verdicts under every backend.
    pub fn addition_is_feasible(&self, candidate: LinkId, budget: f64) -> bool {
        // Candidate's own constraint under current senders:
        if !self.certified_check(candidate, 0.0, budget) {
            return false;
        }
        // Existing members' constraints with the candidate added
        // (factor() is exact under every backend):
        self.selected
            .iter()
            .all(|&j| self.certified_check(j, self.problem.factor(candidate, j), budget))
    }

    /// Budget check of `sum_on(j) + extra` with envelope accounting and
    /// exact fallback.
    fn certified_check(&self, j: LinkId, extra: f64, budget: f64) -> bool {
        match within_budget_certified(self.sums[j.index()] + extra, self.tail_on(j), budget) {
            Some(v) => v,
            None => {
                fading_obs::counter!("core.accumulator.exact_fallbacks").incr();
                within_budget(self.exact_sum_on(j) + extra, budget)
            }
        }
    }

    /// The selected senders, in selection order.
    pub fn selected(&self) -> &[LinkId] {
        &self.selected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fading_geom::{Point2, Rect};
    use fading_net::{Link, LinkSet, TopologyGenerator, UniformGenerator};

    fn two_link_instance(gap: f64) -> Problem {
        // Two parallel horizontal links, senders `gap` apart vertically.
        let links = vec![
            Link::new(LinkId(0), Point2::new(0.0, 0.0), Point2::new(5.0, 0.0), 1.0),
            Link::new(LinkId(1), Point2::new(0.0, gap), Point2::new(5.0, gap), 1.0),
        ];
        Problem::paper(LinkSet::new(Rect::square(10_000.0), links), 3.0)
    }

    #[test]
    fn empty_schedule_is_feasible() {
        let p = two_link_instance(100.0);
        let r = FeasibilityReport::evaluate(&p, &Schedule::empty());
        assert!(r.is_feasible());
        assert_eq!(r.worst_interference(), 0.0);
    }

    #[test]
    fn singleton_is_always_feasible() {
        let p = two_link_instance(1.0);
        let s = Schedule::from_ids([LinkId(0)]);
        let r = FeasibilityReport::evaluate(&p, &s);
        assert!(r.is_feasible());
        assert_eq!(r.entries()[0].interference_sum, 0.0);
        assert_eq!(r.entries()[0].success_probability, 1.0);
    }

    #[test]
    fn far_apart_links_coexist_close_links_conflict() {
        let far = two_link_instance(5_000.0);
        let near = two_link_instance(1.0);
        let s = Schedule::from_ids([LinkId(0), LinkId(1)]);
        assert!(is_feasible(&far, &s));
        assert!(!is_feasible(&near, &s));
        let r = FeasibilityReport::evaluate(&near, &s);
        assert_eq!(r.violations(), vec![LinkId(0), LinkId(1)]);
    }

    #[test]
    fn success_probability_matches_closed_form() {
        let p = two_link_instance(300.0);
        let s = Schedule::from_ids([LinkId(0), LinkId(1)]);
        let r = FeasibilityReport::evaluate(&p, &s);
        for e in r.entries() {
            let expect = (-e.interference_sum).exp();
            assert!((e.success_probability - expect).abs() < 1e-15);
            // feasible ⟺ success prob ≥ 1−ε
            assert_eq!(
                e.feasible,
                e.success_probability >= 1.0 - p.epsilon() - 1e-12
            );
        }
    }

    #[test]
    fn accumulator_matches_report() {
        let links = UniformGenerator::paper(30).generate(7);
        let p = Problem::paper(links, 3.0);
        let chosen: Vec<LinkId> = [0u32, 5, 12, 20].iter().map(|&i| LinkId(i)).collect();
        let mut acc = InterferenceAccumulator::new(&p);
        for &i in &chosen {
            acc.select(i);
        }
        let s = Schedule::from_ids(chosen.iter().copied());
        let report = FeasibilityReport::evaluate(&p, &s);
        for e in report.entries() {
            // Accumulator includes f_{j,j} = 0, so the sums agree.
            assert!(
                (acc.sum_on(e.id) - e.interference_sum).abs() < 1e-12,
                "{}",
                e.id
            );
        }
    }

    #[test]
    fn addition_feasibility_agrees_with_full_check() {
        let links = UniformGenerator::paper(40).generate(8);
        let p = Problem::paper(links, 3.0);
        let budget = p.gamma_eps();
        let mut acc = InterferenceAccumulator::new(&p);
        let mut selected = Vec::new();
        for id in p.links().ids() {
            let fast = acc.addition_is_feasible(id, budget);
            let mut trial = selected.clone();
            trial.push(id);
            let slow = is_feasible(&p, &Schedule::from_ids(trial.iter().copied()));
            assert_eq!(fast, slow, "candidate {id} with {selected:?}");
            if fast {
                acc.select(id);
                selected.push(id);
            }
        }
        assert!(!selected.is_empty());
    }
}
