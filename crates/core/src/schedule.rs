//! Schedules — the output of every algorithm.

use crate::problem::Problem;
use fading_net::LinkId;
use serde::{Deserialize, Serialize};

/// A set of links selected to transmit concurrently in one time slot.
///
/// Stored as a sorted, deduplicated id list, so membership tests are
/// `O(log n)` and iteration order is deterministic.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Schedule {
    members: Vec<LinkId>,
}

impl Schedule {
    /// The empty schedule.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Builds a schedule from ids (sorted and deduplicated).
    pub fn from_ids<I: IntoIterator<Item = LinkId>>(ids: I) -> Self {
        Self::from_vec(ids.into_iter().collect())
    }

    /// Builds a schedule from an owned id vector, sorting and
    /// deduplicating in place — no fresh allocation, so recycled
    /// buffers (see [`crate::SchedCtx::recycle`]) round-trip for free.
    pub fn from_vec(mut members: Vec<LinkId>) -> Self {
        members.sort_unstable();
        members.dedup();
        Self { members }
    }

    /// Consumes the schedule and returns its backing vector (the
    /// recycling half of [`Self::from_vec`]).
    pub fn into_vec(self) -> Vec<LinkId> {
        self.members
    }

    /// Number of scheduled links.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether no link is scheduled.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Whether `id` is scheduled.
    pub fn contains(&self, id: LinkId) -> bool {
        self.members.binary_search(&id).is_ok()
    }

    /// The scheduled ids in ascending order.
    pub fn ids(&self) -> &[LinkId] {
        &self.members
    }

    /// Iterator over scheduled ids.
    pub fn iter(&self) -> impl Iterator<Item = LinkId> + '_ {
        self.members.iter().copied()
    }

    /// Total data rate `U(P) = Σ_{i∈P} λ_i` — the objective of Eq. (20).
    pub fn utility(&self, problem: &Problem) -> f64 {
        self.members.iter().map(|&id| problem.rate(id)).sum()
    }

    /// Membership bitmap of length `n` (dense algorithms index by id).
    pub fn bitmap(&self, n: usize) -> Vec<bool> {
        let mut bits = vec![false; n];
        for &id in &self.members {
            bits[id.index()] = true;
        }
        bits
    }
}

impl FromIterator<LinkId> for Schedule {
    fn from_iter<I: IntoIterator<Item = LinkId>>(iter: I) -> Self {
        Self::from_ids(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fading_net::{TopologyGenerator, UniformGenerator};

    #[test]
    fn from_ids_sorts_and_dedups() {
        let s = Schedule::from_ids([LinkId(3), LinkId(1), LinkId(3), LinkId(0)]);
        assert_eq!(s.ids(), &[LinkId(0), LinkId(1), LinkId(3)]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn contains_uses_membership() {
        let s = Schedule::from_ids([LinkId(2), LinkId(5)]);
        assert!(s.contains(LinkId(2)));
        assert!(s.contains(LinkId(5)));
        assert!(!s.contains(LinkId(3)));
    }

    #[test]
    fn empty_schedule() {
        let s = Schedule::empty();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(!s.contains(LinkId(0)));
    }

    #[test]
    fn utility_sums_rates() {
        let links = UniformGenerator::paper(10).generate(1);
        let p = crate::Problem::paper(links, 3.0);
        let s = Schedule::from_ids([LinkId(0), LinkId(4), LinkId(9)]);
        // paper generator uses unit rates
        assert_eq!(s.utility(&p), 3.0);
        assert_eq!(Schedule::empty().utility(&p), 0.0);
    }

    #[test]
    fn bitmap_matches_membership() {
        let s = Schedule::from_ids([LinkId(1), LinkId(3)]);
        assert_eq!(s.bitmap(5), vec![false, true, false, true, false]);
    }

    #[test]
    fn serde_roundtrip() {
        let s = Schedule::from_ids([LinkId(7), LinkId(2)]);
        let json = serde_json::to_string(&s).unwrap();
        let back: Schedule = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
