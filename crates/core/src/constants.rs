//! The geometric constants of the paper's algorithms.
//!
//! * LDP's grid scale `β = (8 ζ(α−1) γ_th / γ_ε)^{1/α}` (Eq. (37));
//! * RLE's deletion radius factor
//!   `c₁ = √2 (12 ζ(α−1) γ_th / (γ_ε (1−c₂)))^{1/α} + 1` (Eq. (59));
//! * their deterministic-model analogues used by the ApproxLogN and
//!   ApproxDiversity baselines, obtained by replacing the fading budget
//!   `γ_ε` with the deterministic relative-interference budget 1 (see
//!   DESIGN.md §4 for the derivation).

use fading_channel::ChannelParams;
use fading_math::zeta;

/// Safety margin added to the paper's Eq. (37) grid scale.
///
/// The proof of Theorem 4.1 takes the distance between same-color
/// squares in ring `q` to be `2qβ_k`, but with the standard period-2
/// four-coloring the *minimum point* distance between distinct
/// same-color squares in ring `q` is `(2q−1)β_k`, and the interfering
/// sender may sit another link length `β_k/β` from its receiver. With
/// the exact geometry the ring sum becomes
/// `Σ_q 8q γ_th ((2q−1)β − 1)^{−α}`, and since
/// `(2q−1)β − 1 ≥ q(β−2)` this is at most
/// `8 γ_th ζ(α−1)/(β−2)^α`, which meets the `γ_ε` budget exactly when
/// `β = (8 ζ(α−1) γ_th/γ_ε)^{1/α} + 2`. Without the margin the paper's
/// constant violates the budget for larger `α` (e.g. by ~2.7× at
/// `α = 4.5`). See DESIGN.md §4.
pub const GRID_SAFETY_MARGIN: f64 = 2.0;

/// LDP grid scale `β` (Eq. (37) plus [`GRID_SAFETY_MARGIN`]). The
/// square for link class `k` has side `β_k = 2^{h_k+1} β δ`.
pub fn ldp_beta(params: &ChannelParams, gamma_eps: f64) -> f64 {
    assert!(gamma_eps > 0.0, "γ_ε must be positive");
    (8.0 * zeta(params.alpha - 1.0) * params.gamma_th / gamma_eps).powf(1.0 / params.alpha)
        + GRID_SAFETY_MARGIN
}

/// ApproxLogN grid scale `μ`: the deterministic-SINR analogue of
/// [`ldp_beta`], derived from requiring `SINR ≥ γ_th` (budget 1)
/// instead of `Σ f ≤ γ_ε`.
///
/// Deliberately *without* [`GRID_SAFETY_MARGIN`]: the baseline
/// reproduces the original \[14\] algorithm, whose constant comes from
/// the same loose ring-distance argument as the paper's Eq. (37). In
/// practice (and in our simulations) its schedules still satisfy the
/// deterministic SINR threshold — average placements are far from the
/// worst case — but they have no headroom for Rayleigh fading, which is
/// exactly the fading-susceptibility the paper's Fig. 5 demonstrates.
pub fn approx_logn_mu(params: &ChannelParams) -> f64 {
    (8.0 * zeta(params.alpha - 1.0) * params.gamma_th).powf(1.0 / params.alpha)
}

/// RLE deletion radius factor `c₁` (Eq. (59)); `c₂ ∈ (0,1)` splits the
/// interference budget between already-selected and later-selected
/// senders.
pub fn rle_c1(params: &ChannelParams, gamma_eps: f64, c2: f64) -> f64 {
    assert!(gamma_eps > 0.0, "γ_ε must be positive");
    assert!(
        (0.0..1.0).contains(&c2) && c2 > 0.0,
        "c₂ must be in (0,1), got {c2}"
    );
    2f64.sqrt()
        * (12.0 * zeta(params.alpha - 1.0) * params.gamma_th / (gamma_eps * (1.0 - c2)))
            .powf(1.0 / params.alpha)
        + 1.0
}

/// ApproxDiversity deletion radius factor: the deterministic analogue
/// of [`rle_c1`] with the relative-interference budget 1 replacing `γ_ε`.
pub fn approx_diversity_c1(params: &ChannelParams, c2: f64) -> f64 {
    assert!(
        (0.0..1.0).contains(&c2) && c2 > 0.0,
        "c₂ must be in (0,1), got {c2}"
    );
    2f64.sqrt()
        * (12.0 * zeta(params.alpha - 1.0) * params.gamma_th / (1.0 - c2)).powf(1.0 / params.alpha)
        + 1.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use fading_math::gamma_eps;

    fn paper() -> (ChannelParams, f64) {
        (ChannelParams::paper_defaults(), gamma_eps(0.01))
    }

    #[test]
    fn ldp_beta_matches_hand_computation() {
        let (p, ge) = paper();
        // β = (8 ζ(2) · 1 / γ_ε)^{1/3} + margin, ζ(2) = π²/6.
        let expect =
            (8.0 * std::f64::consts::PI.powi(2) / 6.0 / ge).powf(1.0 / 3.0) + GRID_SAFETY_MARGIN;
        assert!((ldp_beta(&p, ge) - expect).abs() < 1e-9);
        // For the paper's defaults β ≈ 12.9 — the grid squares are an
        // order of magnitude larger than the shortest links.
        assert!(ldp_beta(&p, ge) > 12.0 && ldp_beta(&p, ge) < 14.0);
    }

    #[test]
    fn deterministic_scale_is_much_smaller() {
        // Dividing by γ_ε ≈ 0.01 makes the fading-aware squares ~γ_ε^{-1/α}
        // times larger: ApproxLogN packs links much more densely.
        let (p, ge) = paper();
        let ratio = (ldp_beta(&p, ge) - GRID_SAFETY_MARGIN) / approx_logn_mu(&p);
        let expect = (1.0 / ge).powf(1.0 / p.alpha);
        assert!((ratio - expect).abs() < 1e-9);
        assert!(ratio > 4.0);
    }

    #[test]
    fn ldp_beta_satisfies_the_exact_ring_inequality() {
        // With the exact four-coloring geometry the interference factor
        // on any LDP-scheduled receiver is at most
        // Σ_q 8q γ_th ((2q−1)β − 1)^{−α}; β must keep this within γ_ε.
        for alpha in [2.1, 2.5, 3.0, 4.0, 4.5, 5.0, 6.0] {
            let p = ChannelParams::with_alpha(alpha);
            let ge = gamma_eps(0.01);
            let beta = ldp_beta(&p, ge);
            let ring_sum: f64 = (1..10_000)
                .map(|q| {
                    let q = q as f64;
                    8.0 * q * p.gamma_th * ((2.0 * q - 1.0) * beta - 1.0).powf(-alpha)
                })
                .sum();
            assert!(
                ring_sum <= ge,
                "α={alpha}: ring sum {ring_sum} exceeds γ_ε {ge}"
            );
        }
    }

    #[test]
    fn approx_logn_mu_satisfies_the_paper_style_ring_inequality() {
        // The baseline's constant is tight for the *loose* ring
        // argument (distance 2qμ between same-color squares, as in the
        // paper's own Eq. (46)–(47)): Σ_q 8q γ_th (2qμ − 1)^{−α} ≤ 1.
        for alpha in [2.5, 3.0, 4.0, 4.5] {
            let p = ChannelParams::with_alpha(alpha);
            let mu = approx_logn_mu(&p);
            let ring_sum: f64 = (1..10_000)
                .map(|q| {
                    let q = q as f64;
                    8.0 * q * p.gamma_th * (2.0 * q * mu - 1.0).powf(-alpha)
                })
                .sum();
            assert!(ring_sum <= 1.0, "α={alpha}: ring sum {ring_sum} exceeds 1");
        }
    }

    #[test]
    fn rle_c1_satisfies_equation_61() {
        // Eq. (60)–(61): with χ = (c₁−1)d/√2,
        // 12 ζ(α−1) γ_th χ^{−α} / d^{−α} = (1−c₂) γ_ε at the chosen c₁.
        for c2 in [0.25, 0.5, 0.75] {
            let (p, ge) = paper();
            let c1 = rle_c1(&p, ge, c2);
            let chi_over_d = (c1 - 1.0) / 2f64.sqrt();
            let lhs = 12.0 * zeta(p.alpha - 1.0) * p.gamma_th * chi_over_d.powf(-p.alpha);
            assert!(
                (lhs - (1.0 - c2) * ge).abs() < 1e-9 * ge,
                "c2={c2}: {lhs} vs {}",
                (1.0 - c2) * ge
            );
        }
    }

    #[test]
    fn radii_shrink_with_alpha() {
        // Stronger attenuation ⇒ smaller exclusion radii ⇒ denser
        // schedules (the mechanism behind Fig. 6(b)).
        let ge = gamma_eps(0.01);
        let mut prev = f64::INFINITY;
        for a in [2.5, 3.0, 3.5, 4.0, 4.5] {
            let p = ChannelParams::with_alpha(a);
            let c1 = rle_c1(&p, ge, 0.5);
            assert!(c1 < prev, "c₁ must shrink as α grows");
            prev = c1;
        }
    }

    #[test]
    fn rle_c1_exceeds_diversity_c1() {
        let (p, ge) = paper();
        assert!(rle_c1(&p, ge, 0.5) > approx_diversity_c1(&p, 0.5));
    }

    #[test]
    #[should_panic(expected = "c₂ must be in (0,1)")]
    fn rejects_bad_c2() {
        let (p, ge) = paper();
        rle_c1(&p, ge, 1.0);
    }
}
