//! The typed scheduler registry.
//!
//! [`AlgoId`] is the single source of truth for algorithm names: the
//! CLI (`fading run --algo …`), the bench harness (`--algos …`), and
//! any config file parse through [`AlgoId::from_str`] and construct
//! through [`AlgoId::build`], so a new scheduler is registered in
//! exactly one place and every frontend agrees on the spelling.

use crate::algo::{
    Anneal, ApproxDiversity, ApproxLogN, Dls, ExactBnb, GreedyRate, Ldp, RandomFeasible, Rle,
};
use crate::Scheduler;
use std::fmt;
use std::str::FromStr;

/// Identifier of a registered scheduling algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlgoId {
    /// Link Diversity Partition (Algorithm 1, nested classes).
    Ldp,
    /// LDP with the pre-improvement two-sided classes (ablation A1).
    LdpTwoSided,
    /// Recursive Link Elimination (Algorithm 2).
    Rle,
    /// Decentralized link scheduling (DESIGN.md §5).
    Dls,
    /// Feasibility-aware rate-greedy heuristic.
    Greedy,
    /// Random-order feasible insertion (seeded).
    Random,
    /// Exact branch-and-bound (small `n` only).
    Exact,
    /// Simulated annealing over greedy's incumbent (seeded).
    Anneal,
    /// Deterministic-SINR grid baseline \[14\].
    ApproxLogN,
    /// Deterministic-SINR elimination baseline \[15\].
    ApproxDiversity,
}

impl AlgoId {
    /// Every registered algorithm, in display order.
    pub const ALL: [AlgoId; 10] = [
        AlgoId::Ldp,
        AlgoId::LdpTwoSided,
        AlgoId::Rle,
        AlgoId::Dls,
        AlgoId::Greedy,
        AlgoId::Random,
        AlgoId::Exact,
        AlgoId::Anneal,
        AlgoId::ApproxLogN,
        AlgoId::ApproxDiversity,
    ];

    /// The canonical command-line name (what [`FromStr`] accepts and
    /// [`fmt::Display`] prints).
    pub fn as_str(self) -> &'static str {
        match self {
            AlgoId::Ldp => "ldp",
            AlgoId::LdpTwoSided => "ldp-two-sided",
            AlgoId::Rle => "rle",
            AlgoId::Dls => "dls",
            AlgoId::Greedy => "greedy",
            AlgoId::Random => "random",
            AlgoId::Exact => "exact",
            AlgoId::Anneal => "anneal",
            AlgoId::ApproxLogN => "approx-logn",
            AlgoId::ApproxDiversity => "approx-diversity",
        }
    }

    /// Instantiates the scheduler. `seed` feeds the stochastic
    /// algorithms (random insertion order, annealing moves); the
    /// deterministic ones ignore it.
    pub fn build(self, seed: u64) -> Box<dyn Scheduler> {
        match self {
            AlgoId::Ldp => Box::new(Ldp::new()),
            AlgoId::LdpTwoSided => Box::new(Ldp::two_sided()),
            AlgoId::Rle => Box::new(Rle::new()),
            AlgoId::Dls => Box::new(Dls::new()),
            AlgoId::Greedy => Box::new(GreedyRate),
            AlgoId::Random => Box::new(RandomFeasible::new(seed)),
            AlgoId::Exact => Box::new(ExactBnb),
            AlgoId::Anneal => Box::new(Anneal::new(seed)),
            AlgoId::ApproxLogN => Box::new(ApproxLogN),
            AlgoId::ApproxDiversity => Box::new(ApproxDiversity::new()),
        }
    }
}

impl fmt::Display for AlgoId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for AlgoId {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        AlgoId::ALL
            .into_iter()
            .find(|id| id.as_str() == s)
            .ok_or_else(|| {
                let valid: Vec<&str> = AlgoId::ALL.iter().map(|id| id.as_str()).collect();
                format!("unknown algorithm {s:?}; valid ids: {}", valid.join(", "))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for id in AlgoId::ALL {
            let parsed: AlgoId = id.as_str().parse().unwrap();
            assert_eq!(parsed, id);
            assert_eq!(id.to_string(), id.as_str());
        }
    }

    #[test]
    fn unknown_name_lists_valid_ids() {
        let err = "nope".parse::<AlgoId>().unwrap_err();
        assert!(err.contains("unknown algorithm"), "{err}");
        for id in AlgoId::ALL {
            assert!(err.contains(id.as_str()), "error must list {id}: {err}");
        }
    }

    #[test]
    fn build_produces_the_named_scheduler() {
        // Human-readable names differ from CLI ids; pin the mapping.
        let expectations = [
            (AlgoId::Ldp, "LDP"),
            (AlgoId::LdpTwoSided, "LDP(two-sided)"),
            (AlgoId::Rle, "RLE"),
            (AlgoId::Dls, "DLS"),
            (AlgoId::Greedy, "GreedyRate"),
            (AlgoId::Random, "RandomFeasible"),
            (AlgoId::Exact, "Exact(B&B)"),
            (AlgoId::Anneal, "Anneal"),
            (AlgoId::ApproxLogN, "ApproxLogN"),
            (AlgoId::ApproxDiversity, "ApproxDiversity"),
        ];
        for (id, name) in expectations {
            assert_eq!(id.build(0).name(), name);
        }
    }

    #[test]
    fn seed_reaches_stochastic_schedulers() {
        use crate::Problem;
        use fading_net::{TopologyGenerator, UniformGenerator};
        let p = Problem::paper(UniformGenerator::paper(60).generate(3), 3.0);
        let a = AlgoId::Random.build(1).schedule(&p);
        let b = AlgoId::Random.build(1).schedule(&p);
        assert_eq!(a, b, "same seed must reproduce");
    }
}
