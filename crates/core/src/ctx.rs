//! Reusable per-algorithm scratch workspaces — the zero-allocation
//! scheduling engine's arena (see `docs/engine.md`).
//!
//! Every `schedule()` call needs scratch state: a length-sorted
//! candidate order, alive bitmaps, per-receiver debit ledgers, a
//! spatial index over senders, grid cells and color buckets. Building
//! those from scratch per call is pure overhead when the Monte-Carlo
//! runner, queueing simulator, and multislot loop invoke the scheduler
//! thousands of times on near-identical instances. A [`SchedCtx`] owns
//! all of it with buffer reuse: after one warm-up call at a given size,
//! steady-state [`crate::Scheduler::schedule_in`] calls for RLE and LDP
//! touch the heap zero times (asserted by `tests/zero_alloc.rs`).
//!
//! # Contract
//!
//! * A ctx carries **no semantic state** between calls — only capacity.
//!   `schedule_in` with a dirty reused ctx is bit-identical to a fresh
//!   `schedule()` (pinned by `tests/ctx_equivalence.rs`).
//! * **Warm start**: a ctx sized for a problem of `n` links serves any
//!   problem with at most `n` links — in particular every
//!   [`crate::Problem::restrict`] descendant — without reallocating.
//!   [`SchedCtx::prepare`] pre-sizes explicitly.
//! * A ctx is `Send` but deliberately not shared: one ctx per thread
//!   (`fading-sim`'s `BatchRunner` keeps a pool with one ctx per rayon
//!   worker). Sharing one behind a lock would serialize the scheduler.

use fading_geom::{CellIndex, Point2, SpatialGrid};
use fading_net::LinkId;
use fading_obs::TraceEvent;
use std::collections::HashMap;

/// Which sort produced the cached [`SchedCtx`] candidate order (the
/// memo tag; see `SchedCtx::order_is_cached`).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub(crate) enum OrderKind {
    /// Nothing cached, or `order` was clobbered by a non-memoizing
    /// user (`SchedCtx::order_scratch`).
    #[default]
    None,
    /// The elimination/graph schedulers' (length asc, id asc) order.
    ElimLength,
    /// GreedyRate's (rate desc, length asc, id asc) order.
    GreedyRate,
}

/// Reusable scratch arena threaded through
/// [`crate::Scheduler::schedule_in`].
///
/// Fields are `pub(crate)`: the layout is an implementation detail of
/// the algorithms; external users only create, [`prepare`](Self::prepare),
/// and hand the ctx to `schedule_in`.
#[derive(Debug, Default)]
pub struct SchedCtx {
    // --- elimination schedulers (RLE, ApproxDiversity) ---
    /// Candidate ids in the algorithm's processing order.
    pub(crate) order: Vec<LinkId>,
    /// Alive bitmap indexed by link id.
    pub(crate) alive: Vec<bool>,
    /// Per-receiver accumulated-interference ledger.
    pub(crate) acc: Vec<f64>,
    /// Sender positions in id order (spatial-index input).
    pub(crate) senders: Vec<Point2>,
    /// Compacted list of still-alive candidate ids, ascending.
    pub(crate) live: Vec<u32>,
    /// Reusable spatial index over `senders`.
    pub(crate) spatial: SpatialGrid,
    // --- grid schedulers (LDP, ApproxLogN) ---
    /// Occupied cell -> slot in `winners`.
    pub(crate) cell_slot: HashMap<CellIndex, u32>,
    /// Per-cell winning link, in first-encounter (id) order.
    pub(crate) winners: Vec<(CellIndex, LinkId)>,
    /// Per-square-color winner buckets.
    pub(crate) per_color: [Vec<LinkId>; 4],
    /// Distinct length magnitudes (the class exponents `G(L)`).
    pub(crate) exponents: Vec<u32>,
    /// Best (class, color) member set seen so far.
    pub(crate) best_ids: Vec<LinkId>,
    // --- verified order memoization ---
    /// Which sort (if any) produced the current `order`.
    order_kind: OrderKind,
    /// [`crate::Problem::stamp`] of the instance that produced `order`
    /// (`0` = none). Equal stamps imply bit-identical problems, hence
    /// bit-identical sort keys — the fine-grained fast path that lets
    /// warm state survive a churn loop without the `O(n)` key
    /// extraction + compare per call. Mutations move the stamp once
    /// per *transaction*, not once per link — a whole
    /// [`crate::MutationBatch`] committed by [`crate::Problem::apply`]
    /// is a single bump — so a slot's worth of churn costs every
    /// stamp-keyed memo (this one, `grid_stamp`, the engine's backlog
    /// sub-problem cache) exactly one invalidation.
    order_stamp: u64,
    /// Sort keys that produced `order` — the memo witness (the
    /// fallback when the stamp misses, e.g. across clones or rebuilt
    /// instances with identical content).
    order_keys: Vec<f64>,
    /// Scratch for the candidate keys of the current call.
    key_scratch: Vec<f64>,
    // --- verified grid-selection memoization (grid_core) ---
    /// Whether `best_ids` and the `grid_*` fields cache a valid
    /// selection for the witness in `grid_keys`.
    grid_valid: bool,
    /// Problem stamp of the cached grid selection (`0` = none); same
    /// fast-path contract as `order_stamp`. The scheduler-config header
    /// (mode, scale, anchor) is still compared on a stamp hit — it is
    /// not a function of the problem.
    grid_stamp: u64,
    /// Grid-selection inputs that produced `best_ids` (memo witness).
    grid_keys: Vec<f64>,
    /// Scratch for the candidate grid witness of the current call.
    grid_scratch: Vec<f64>,
    /// Cached winning (class, color, utility).
    pub(crate) grid_best: (u32, u32, f64),
    /// Cached (classes, cells, colors) scan counts for observability.
    pub(crate) grid_counts: (u64, u64, u64),
    // --- tracing ---
    /// Scratch block for [`crate::algo`]'s generic trace emission.
    pub(crate) trace_buf: Vec<TraceEvent>,
    /// Recycled `Schedule` member vectors (see [`Self::recycle`]).
    pool: Vec<Vec<LinkId>>,
}

impl SchedCtx {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// A workspace pre-sized for problems of up to `n` links.
    pub fn with_capacity(n: usize) -> Self {
        let mut ctx = Self::new();
        ctx.prepare(n);
        ctx
    }

    /// Reserves every buffer for problems of up to `n` links, so
    /// subsequent `schedule_in` calls at that size (or smaller — e.g.
    /// `Problem::restrict` descendants) allocate nothing.
    ///
    /// Idempotent; growing an already-warm ctx only extends the
    /// shortfall.
    pub fn prepare(&mut self, n: usize) {
        self.order.reserve(n);
        self.alive.reserve(n);
        self.acc.reserve(n);
        self.senders.reserve(n);
        self.live.reserve(n);
        self.winners.reserve(n);
        self.best_ids.reserve(n);
        self.exponents.reserve(n);
        self.cell_slot.reserve(n);
        self.order_keys.reserve(n);
        self.key_scratch.reserve(n);
        self.grid_keys.reserve(4 * n + 4);
        self.grid_scratch.reserve(4 * n + 4);
        for bucket in &mut self.per_color {
            bucket.reserve(n);
        }
    }

    /// Verified memoization for the candidate `order`.
    ///
    /// Returns `true` when `order` was produced by the same `kind` of
    /// sort over bit-identical `keys` — the comparator is a pure
    /// function of its keys and link ids, so identical inputs provably
    /// yield the identical total order and the caller may skip the
    /// O(n log n) re-sort. Otherwise stores `keys` as the new memo
    /// witness and returns `false`; the caller must rebuild `order`.
    ///
    /// Two-tier check: if `stamp` (the caller's
    /// [`crate::Problem::stamp`]) matches the cached one, the keys are
    /// provably bit-identical — equal stamps mean the *same content
    /// snapshot*, and the keys are a pure function of the problem — so
    /// the `O(n)` key extraction and compare are skipped entirely (the
    /// mutation-epoch fast path). On a stamp miss the bit-compare
    /// fallback still catches content-identical instances with
    /// different stamps (clones mutated and reverted, independently
    /// built equals) and adopts the new stamp on a hit.
    ///
    /// This never changes *what* is computed, only whether a sort whose
    /// result is already in the buffer runs again: equivalence with a
    /// fresh workspace (`tests/ctx_equivalence.rs`) is unaffected. NaN
    /// keys never compare equal, so they conservatively force a rebuild.
    pub(crate) fn order_is_cached(
        &mut self,
        kind: OrderKind,
        stamp: u64,
        keys: impl Iterator<Item = f64>,
    ) -> bool {
        if self.order_kind == kind && stamp != 0 && self.order_stamp == stamp {
            fading_obs::counter!("core.ctx.order_stamp_hits").incr();
            return true;
        }
        self.key_scratch.clear();
        self.key_scratch.extend(keys);
        if self.order_kind == kind && self.order_keys == self.key_scratch {
            self.order_stamp = stamp;
            return true;
        }
        std::mem::swap(&mut self.order_keys, &mut self.key_scratch);
        self.order_kind = kind;
        self.order_stamp = stamp;
        false
    }

    /// `order` for a caller whose ordering is not memoized (shuffles,
    /// one-off passes). Invalidates the memo so a later memoizing
    /// caller cannot mistake the clobbered buffer for its own cache.
    pub(crate) fn order_scratch(&mut self) -> &mut Vec<LinkId> {
        self.order_kind = OrderKind::None;
        self.order_stamp = 0;
        &mut self.order
    }

    /// Verified memoization for the grid-partition selection phase
    /// (see `algo::grid_core`), same contract as [`Self::order_is_cached`]:
    /// `true` means `best_ids`/`grid_best`/`grid_counts` were produced
    /// from a bit-identical `header ++ keys` witness and may be reused
    /// verbatim. On `false` the memo is marked invalid; the caller must
    /// recompute and revalidate via [`Self::grid_store`].
    ///
    /// Stamp fast path as in [`Self::order_is_cached`]: the per-link
    /// `keys` are a pure function of the problem, so a stamp hit skips
    /// extracting them — but the `header` (class mode, square scale,
    /// grid anchor) is scheduler configuration, not problem content,
    /// and is always compared.
    pub(crate) fn grid_is_cached(
        &mut self,
        stamp: u64,
        header: [f64; 4],
        keys: impl Iterator<Item = f64>,
    ) -> bool {
        if self.grid_valid
            && stamp != 0
            && self.grid_stamp == stamp
            && self.grid_keys.get(..4) == Some(header.as_slice())
        {
            fading_obs::counter!("core.ctx.grid_stamp_hits").incr();
            return true;
        }
        self.grid_scratch.clear();
        self.grid_scratch.extend_from_slice(&header);
        self.grid_scratch.extend(keys);
        if self.grid_valid && self.grid_keys == self.grid_scratch {
            self.grid_stamp = stamp;
            return true;
        }
        std::mem::swap(&mut self.grid_keys, &mut self.grid_scratch);
        self.grid_valid = false;
        self.grid_stamp = stamp;
        false
    }

    /// Validates the grid memo after a fresh selection pass stored its
    /// winners in `best_ids`.
    pub(crate) fn grid_store(&mut self, best: (u32, u32, f64), counts: (u64, u64, u64)) {
        self.grid_best = best;
        self.grid_counts = counts;
        self.grid_valid = true;
    }

    /// Takes a cleared member vector from the recycle pool (or a new
    /// one) for building a `Schedule` without a fresh allocation.
    pub(crate) fn take_members(&mut self) -> Vec<LinkId> {
        self.pool.pop().unwrap_or_default()
    }

    /// Returns a finished schedule's backing vector to the pool, so the
    /// next `schedule_in` can reuse it. Steady-state loops that want
    /// true zero allocation must recycle the schedules they consume;
    /// loops that keep them simply pay one member-vec allocation per
    /// retained schedule.
    pub fn recycle(&mut self, schedule: crate::schedule::Schedule) {
        let mut members = schedule.into_vec();
        members.clear();
        self.pool.push(members);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Schedule;

    #[test]
    fn recycled_vectors_are_reused() {
        let mut ctx = SchedCtx::new();
        let mut members = ctx.take_members();
        members.extend([LinkId(2), LinkId(0)]);
        let cap = members.capacity();
        let s = Schedule::from_vec(members);
        assert_eq!(s.len(), 2);
        ctx.recycle(s);
        let back = ctx.take_members();
        assert!(back.is_empty());
        assert_eq!(back.capacity(), cap, "pool must preserve capacity");
    }

    #[test]
    fn prepare_reserves_without_touching_len() {
        let mut ctx = SchedCtx::with_capacity(128);
        assert!(ctx.order.capacity() >= 128);
        assert!(ctx.acc.capacity() >= 128);
        assert!(ctx.order.is_empty());
        ctx.prepare(64); // shrinking request is a no-op
        assert!(ctx.order.capacity() >= 128);
    }
}
