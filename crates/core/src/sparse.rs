//! Spatial-hash truncated interference store — the scale backend.
//!
//! The dense matrix costs `O(N²)` time and memory before any algorithm
//! runs; at `N = 10⁵` links that is 80 GB. This backend exploits the
//! geometry of Eq. (17): `f_{i,j} = ln(1 + γ_th (d_jj/d_ij)^α)` decays
//! like `d_ij^{−α}`, so almost all of a receiver's interference mass
//! comes from nearby senders. Per receiver `j` we store only the
//! factors of senders within a *truncation radius*
//!
//! ```text
//! R_j = d_jj · (γ_th · ρ_j / (e^τ − 1))^{1/α},   τ = tail_rtol · γ_ε,
//! ```
//!
//! (`ρ_j` is the worst-case power ratio onto `j`; 1 under uniform
//! power). By construction every *omitted* factor is individually below
//! the per-receiver cut `τ` — [`SparseInterference::tail_cut`] — so a
//! sum accumulated from stored factors over a selection `S` is a lower
//! bound within `|S| · τ` of the true sum. Feasibility checks account
//! for this envelope explicitly (see
//! [`within_budget_certified`](crate::feasibility::within_budget_certified))
//! and fall back to *exact* on-demand recomputation when the envelope
//! straddles the budget, so **verdicts never silently flip**: scalar
//! [`factor`](SparseInterference::factor) lookups recompute the Eq. (17)
//! formula through the same channel code path as the dense build and
//! are bit-identical to dense entries.
//!
//! When `R_j` reaches the instance diameter the receiver is stored
//! exhaustively and its cut is exactly `0` — at paper sizes and
//! densities the sparse backend therefore degenerates to a (CSR-shaped)
//! exact store. The `ζ(α−1)` packing bound on the *total* omitted mass
//! of a feasible selection is available as
//! [`far_field_packing_bound`](SparseInterference::far_field_packing_bound);
//! `docs/interference.md` derives both bounds.

use crate::feasibility::BUDGET_RTOL;
use crate::interference::{InterferenceModel, PARALLEL_THRESHOLD};
use fading_channel::RayleighChannel;
use fading_geom::{Point2, Rect, SpatialHash};
use fading_math::zeta;
use fading_net::{LinkId, LinkSet};
use rayon::prelude::*;

/// Truncation policy for [`SparseInterference`].
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SparseConfig {
    /// Per-factor cut as a fraction of `γ_ε`: any omitted factor is
    /// `< tail_rtol · γ_ε`. Smaller is more exact and stores more.
    pub tail_rtol: f64,
}

impl SparseConfig {
    /// Practical default: omitted factors below `10⁻³ · γ_ε`. Stored
    /// sums then carry a certified envelope of `|S| · 10⁻³ γ_ε`;
    /// verdict-producing checks resolve any straddle exactly.
    pub const DEFAULT_TAIL_RTOL: f64 = 1e-3;

    /// The strictest setting: cuts at `BUDGET_RTOL · γ_ε`, the same
    /// slack [`within_budget`](crate::feasibility::within_budget)
    /// already grants — truncation is then invisible even to raw sum
    /// comparisons. Needs far larger radii (it usually degenerates to
    /// the exhaustive store; see `docs/interference.md`).
    pub fn certified() -> Self {
        Self {
            tail_rtol: BUDGET_RTOL,
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    /// Panics unless `0 < tail_rtol ≤ 1`.
    fn validate(&self) {
        assert!(
            self.tail_rtol.is_finite() && self.tail_rtol > 0.0 && self.tail_rtol <= 1.0,
            "tail_rtol must be in (0, 1], got {}",
            self.tail_rtol
        );
    }
}

impl Default for SparseConfig {
    fn default() -> Self {
        Self {
            tail_rtol: Self::DEFAULT_TAIL_RTOL,
        }
    }
}

/// Near-field interference factors in CSR form over a spatial hash.
///
/// Stores, per *sender*, the (receiver, factor) pairs with the receiver
/// inside the sender's stored neighborhood; per *receiver*, the
/// truncation radius and cut. Keeps the geometry (positions, lengths,
/// power scales, channel), so any factor — stored or not — is
/// recomputable exactly in `O(1)`.
#[derive(Debug, Clone)]
pub struct SparseInterference {
    n: usize,
    channel: RayleighChannel,
    senders: Vec<Point2>,
    receivers: Vec<Point2>,
    lengths: Vec<f64>,
    powers: Option<Vec<f64>>,
    /// Hash over *sender* positions, for neighborhood queries.
    sender_hash: SpatialHash,
    /// CSR by sender: out-factors of sender `i` live at
    /// `out_receivers[out_offsets[i]..out_offsets[i+1]]`.
    out_offsets: Vec<usize>,
    out_receivers: Vec<u32>,
    out_factors: Vec<f64>,
    /// Per-receiver truncation radius (senders within it are stored).
    radius: Vec<f64>,
    /// Per-receiver certified bound on any omitted factor (0 ⇒
    /// exhaustive).
    cut: Vec<f64>,
    /// The absolute per-factor cut budget `τ = tail_rtol · γ_ε`.
    tau: f64,
    tail_rtol: f64,
    exact: bool,
}

impl PartialEq for SparseInterference {
    fn eq(&self, other: &Self) -> bool {
        // The hash is derived from `senders`; everything else is
        // compared structurally.
        self.n == other.n
            && self.channel == other.channel
            && self.senders == other.senders
            && self.receivers == other.receivers
            && self.lengths == other.lengths
            && self.powers == other.powers
            && self.out_offsets == other.out_offsets
            && self.out_receivers == other.out_receivers
            && self.out_factors == other.out_factors
            && self.radius == other.radius
            && self.cut == other.cut
            && self.tau == other.tau
            && self.tail_rtol == other.tail_rtol
    }
}

impl SparseInterference {
    /// Builds the truncated store for `links` under uniform power.
    ///
    /// `gamma_eps` is the feasibility budget the truncation budget is
    /// relative to (`τ = config.tail_rtol · γ_ε`).
    pub fn build(
        links: &LinkSet,
        channel: &RayleighChannel,
        gamma_eps: f64,
        config: SparseConfig,
    ) -> Self {
        Self::build_with_powers(links, channel, None, gamma_eps, config)
    }

    /// Builds the truncated store with optional per-link power scales
    /// (same contract as
    /// [`InterferenceMatrix::build_with_powers`](crate::interference::InterferenceMatrix::build_with_powers)).
    ///
    /// # Panics
    /// Panics on an invalid `config`, a power vector of the wrong
    /// length, or non-positive scales.
    pub fn build_with_powers(
        links: &LinkSet,
        channel: &RayleighChannel,
        powers: Option<&[f64]>,
        gamma_eps: f64,
        config: SparseConfig,
    ) -> Self {
        config.validate();
        assert!(
            gamma_eps.is_finite() && gamma_eps > 0.0,
            "gamma_eps must be positive"
        );
        let _span = fading_obs::span!("core.sparse.build");
        let started = std::time::Instant::now();
        let n = links.len();
        if let Some(p) = powers {
            assert_eq!(p.len(), n, "power vector length mismatch");
            assert!(
                p.iter().all(|&s| s.is_finite() && s > 0.0),
                "power scales must be positive"
            );
        }
        let senders = links.sender_positions();
        let receivers = links.receiver_positions();
        let lengths: Vec<f64> = links.ids().map(|i| links.length(i)).collect();
        let tau = config.tail_rtol * gamma_eps;
        let diameter = instance_diameter(&senders, &receivers);
        let max_scale = powers
            .map(|p| p.iter().copied().fold(f64::MIN, f64::max))
            .unwrap_or(1.0);

        // Per-receiver truncation radius: the distance at which the
        // worst-case factor onto j drops to τ. Capped at the instance
        // diameter, in which case the receiver is exhaustive (cut 0).
        let mut radius = vec![0.0f64; n];
        let mut cut = vec![0.0f64; n];
        let alpha = channel.params.alpha;
        let gamma_th = channel.params.gamma_th;
        for j in 0..n {
            let ratio = powers.map_or(1.0, |p| max_scale / p[j]);
            let r = lengths[j] * (gamma_th * ratio / tau.exp_m1()).powf(1.0 / alpha);
            if r >= diameter || !r.is_finite() {
                radius[j] = diameter;
                cut[j] = 0.0;
            } else {
                radius[j] = r;
                cut[j] = tau;
            }
        }

        // Hash cell ≈ the typical query radius (performance only;
        // correctness is radius-driven).
        let mean_radius = if n == 0 {
            1.0
        } else {
            radius.iter().sum::<f64>() / n as f64
        };
        let cell = if mean_radius.is_finite() && mean_radius > 0.0 {
            mean_radius
        } else {
            1.0
        };
        let sender_hash = SpatialHash::build(&senders, cell);

        // Gather each receiver's stored in-neighborhood, then scatter
        // into a CSR keyed by sender.
        let gather = |j: usize| -> Vec<(u32, f64)> {
            let mut found = Vec::new();
            sender_hash.for_each_in_radius(&receivers[j], radius[j], |i| {
                if i as usize != j {
                    let f = pair_factor(
                        channel, &senders, &receivers, &lengths, powers, i as usize, j,
                    );
                    found.push((i, f));
                }
            });
            found
        };
        let in_lists: Vec<Vec<(u32, f64)>> = if n >= PARALLEL_THRESHOLD {
            (0..n).into_par_iter().map(gather).collect()
        } else {
            (0..n).map(gather).collect()
        };

        let mut degree = vec![0usize; n];
        for list in &in_lists {
            for &(i, _) in list {
                degree[i as usize] += 1;
            }
        }
        let mut out_offsets = vec![0usize; n + 1];
        for i in 0..n {
            out_offsets[i + 1] = out_offsets[i] + degree[i];
        }
        let total = out_offsets[n];
        let mut next = out_offsets.clone();
        let mut out_receivers = vec![0u32; total];
        let mut out_factors = vec![0.0f64; total];
        // Iterating receivers in ascending order leaves every CSR row
        // sorted by receiver id.
        for (j, list) in in_lists.iter().enumerate() {
            for &(i, f) in list {
                let pos = next[i as usize];
                out_receivers[pos] = j as u32;
                out_factors[pos] = f;
                next[i as usize] = pos + 1;
            }
        }

        let exact = cut.iter().all(|&c| c == 0.0);
        let pairs = (n as u64).saturating_mul(n.saturating_sub(1) as u64);
        fading_obs::counter("core.sparse.builds").incr();
        fading_obs::counter("core.sparse.factors_stored").add(total as u64);
        fading_obs::counter("core.sparse.factors_pruned").add(pairs - total as u64);
        fading_obs::gauge("core.sparse.build_ms").set(started.elapsed().as_secs_f64() * 1e3);
        fading_obs::gauge("core.sparse.tail_cut_max").set(cut.iter().copied().fold(0.0, f64::max));
        let neighborhood = fading_obs::histogram(
            "core.sparse.in_degree",
            &[1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0],
        );
        for list in &in_lists {
            neighborhood.record(list.len() as f64);
        }

        Self {
            n,
            channel: *channel,
            senders,
            receivers,
            lengths,
            powers: powers.map(<[f64]>::to_vec),
            sender_hash,
            out_offsets,
            out_receivers,
            out_factors,
            radius,
            cut,
            tau,
            tail_rtol: config.tail_rtol,
            exact,
        }
    }

    /// The sub-store over `keep` (parent link ids, in the
    /// sub-instance's id order): geometry, powers, radii, and stored
    /// factors are sliced from the parent; CSR rows keep only entries
    /// whose receiver survives, with both endpoints remapped to the
    /// dense sub-ids. No factor is recomputed.
    ///
    /// The parent's certificates remain valid verbatim: receiver `j`'s
    /// truncation radius and cut describe *geometry* ("any sender
    /// beyond `R_j` contributes `< cut`"), so dropping senders can only
    /// remove omitted factors, never add one above the cut. Receivers
    /// whose parent cut was `0` stay exhaustive; truncated receivers
    /// keep their (possibly now conservative) cut `τ`, which the
    /// verdict machinery already resolves exactly on a straddle. The
    /// per-store `exact` flag is re-validated from the sliced cuts.
    pub fn restrict(&self, keep: &[LinkId]) -> Self {
        let k = keep.len();
        // Parent id → sub id, for filtering CSR entries.
        let mut new_id = vec![u32::MAX; self.n];
        for (a, &old) in keep.iter().enumerate() {
            new_id[old.index()] = a as u32;
        }
        let senders: Vec<Point2> = keep.iter().map(|&i| self.senders[i.index()]).collect();
        let receivers: Vec<Point2> = keep.iter().map(|&i| self.receivers[i.index()]).collect();
        let lengths: Vec<f64> = keep.iter().map(|&i| self.lengths[i.index()]).collect();
        let powers = self
            .powers
            .as_ref()
            .map(|p| keep.iter().map(|&i| p[i.index()]).collect::<Vec<f64>>());
        let radius: Vec<f64> = keep.iter().map(|&i| self.radius[i.index()]).collect();
        let cut: Vec<f64> = keep.iter().map(|&i| self.cut[i.index()]).collect();

        let mut out_offsets = Vec::with_capacity(k + 1);
        out_offsets.push(0usize);
        let mut out_receivers = Vec::new();
        let mut out_factors = Vec::new();
        for &old in keep {
            let i = old.index();
            for pos in self.out_offsets[i]..self.out_offsets[i + 1] {
                let j = new_id[self.out_receivers[pos] as usize];
                if j != u32::MAX {
                    out_receivers.push(j);
                    out_factors.push(self.out_factors[pos]);
                }
            }
            out_offsets.push(out_receivers.len());
        }

        // The hash cell tracks the sub-instance's typical query radius
        // (performance only; correctness is radius-driven).
        let mean_radius = if k == 0 {
            1.0
        } else {
            radius.iter().sum::<f64>() / k as f64
        };
        let cell = if mean_radius.is_finite() && mean_radius > 0.0 {
            mean_radius
        } else {
            1.0
        };
        let sender_hash = SpatialHash::build(&senders, cell);
        let exact = cut.iter().all(|&c| c == 0.0);

        Self {
            n: k,
            channel: self.channel,
            senders,
            receivers,
            lengths,
            powers,
            sender_hash,
            out_offsets,
            out_receivers,
            out_factors,
            radius,
            cut,
            tau: self.tau,
            tail_rtol: self.tail_rtol,
            exact,
        }
    }

    /// Number of links `N`.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the store covers no links.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Exact factor `f_{i,j}` — recomputed from geometry through the
    /// same channel code path as the dense build, so the value is
    /// bit-identical to the dense matrix entry whether or not the pair
    /// is stored.
    #[inline]
    pub fn factor(&self, sender: LinkId, receiver: LinkId) -> f64 {
        let (i, j) = (sender.index(), receiver.index());
        if i == j {
            return 0.0;
        }
        pair_factor(
            &self.channel,
            &self.senders,
            &self.receivers,
            &self.lengths,
            self.powers.as_deref(),
            i,
            j,
        )
    }

    /// Stored out-factors of `sender` (every omitted receiver `j` has
    /// `f_{sender,j} < tail_cut(j)`).
    #[inline]
    pub fn for_each_out(&self, sender: LinkId, f: &mut dyn FnMut(LinkId, f64)) {
        let i = sender.index();
        let lo = self.out_offsets[i];
        let hi = self.out_offsets[i + 1];
        for k in lo..hi {
            f(LinkId(self.out_receivers[k]), self.out_factors[k]);
        }
    }

    /// Stored in-factors onto `receiver`, recomputed on demand from the
    /// sender hash (nothing is stored per-receiver).
    pub fn for_each_in(&self, receiver: LinkId, f: &mut dyn FnMut(LinkId, f64)) {
        let j = receiver.index();
        self.sender_hash
            .for_each_in_radius(&self.receivers[j], self.radius[j], |i| {
                if i as usize != j {
                    let v = pair_factor(
                        &self.channel,
                        &self.senders,
                        &self.receivers,
                        &self.lengths,
                        self.powers.as_deref(),
                        i as usize,
                        j,
                    );
                    f(LinkId(i), v);
                }
            });
    }

    /// Certified bound on any single omitted factor onto `receiver`
    /// (`0` ⇒ the receiver's neighborhood is exhaustive).
    #[inline]
    pub fn tail_cut(&self, receiver: LinkId) -> f64 {
        self.cut[receiver.index()]
    }

    /// The truncation radius of `receiver`.
    pub fn truncation_radius(&self, receiver: LinkId) -> f64 {
        self.radius[receiver.index()]
    }

    /// The absolute per-factor cut budget `τ = tail_rtol · γ_ε`.
    pub fn tau(&self) -> f64 {
        self.tau
    }

    /// The configured relative cut.
    pub fn tail_rtol(&self) -> f64 {
        self.tail_rtol
    }

    /// The largest per-receiver cut (0 when exhaustive everywhere).
    pub fn max_tail_cut(&self) -> f64 {
        self.cut.iter().copied().fold(0.0, f64::max)
    }

    /// Bytes held by the interference storage proper: CSR arrays,
    /// per-receiver radii/cuts, geometry, and the sender hash's index
    /// entries. The figure the large-n memory budget is checked against.
    pub fn storage_bytes(&self) -> u64 {
        let csr = self.out_offsets.len() * std::mem::size_of::<usize>()
            + self.out_receivers.len() * std::mem::size_of::<u32>()
            + self.out_factors.len() * std::mem::size_of::<f64>();
        let per_receiver = (self.radius.len() + self.cut.len()) * std::mem::size_of::<f64>();
        let geometry = (self.senders.len() + self.receivers.len()) * std::mem::size_of::<Point2>()
            + self.lengths.len() * std::mem::size_of::<f64>()
            + self.powers.as_ref().map_or(0, |p| p.len() * 8);
        // Hash: one u32 index per point plus the point copy.
        let hash = self.sender_hash.len() * (std::mem::size_of::<u32>() + 16);
        (csr + per_receiver + geometry + hash) as u64
    }

    /// The `ζ(α−1)` packing bound on the **total** omitted interference
    /// onto `receiver` from any concurrently transmitting set whose
    /// senders are pairwise at least `min_separation` apart: omitted
    /// senders sit beyond `R_j`, and an annulus decomposition of the far
    /// field gives
    ///
    /// ```text
    /// Σ_{d_ij > R_j} f_{i,j} ≤ 8 γ_th ρ_j d_jj^α (2ζ(α−1) + ζ(α)) / (λ² R_j^{α−2}),
    /// ```
    ///
    /// with `λ = min(min_separation, R_j)`. Derivation in
    /// `docs/interference.md`. Returns `0` for exhaustive receivers.
    ///
    /// # Panics
    /// Panics if `α ≤ 2` (the far-field series diverges) or
    /// `min_separation ≤ 0`.
    pub fn far_field_packing_bound(&self, receiver: LinkId, min_separation: f64) -> f64 {
        let j = receiver.index();
        if self.cut[j] == 0.0 {
            return 0.0;
        }
        let alpha = self.channel.params.alpha;
        assert!(
            alpha > 2.0,
            "far-field packing bound needs alpha > 2, got {alpha}"
        );
        assert!(
            min_separation > 0.0,
            "min_separation must be positive, got {min_separation}"
        );
        let r = self.radius[j];
        let lambda = min_separation.min(r);
        let ratio = self
            .powers
            .as_ref()
            .map_or(1.0, |p| p.iter().copied().fold(f64::MIN, f64::max) / p[j]);
        let geometry = 2.0 * zeta(alpha - 1.0) + zeta(alpha);
        8.0 * self.channel.params.gamma_th * ratio * self.lengths[j].powf(alpha) * geometry
            / (lambda * lambda * r.powf(alpha - 2.0))
    }
}

impl InterferenceModel for SparseInterference {
    fn len(&self) -> usize {
        self.n
    }

    fn factor(&self, sender: LinkId, receiver: LinkId) -> f64 {
        SparseInterference::factor(self, sender, receiver)
    }

    fn for_each_out(&self, sender: LinkId, f: &mut dyn FnMut(LinkId, f64)) {
        SparseInterference::for_each_out(self, sender, f)
    }

    fn for_each_in(&self, receiver: LinkId, f: &mut dyn FnMut(LinkId, f64)) {
        SparseInterference::for_each_in(self, receiver, f)
    }

    fn tail_cut(&self, receiver: LinkId) -> f64 {
        SparseInterference::tail_cut(self, receiver)
    }

    fn is_exact(&self) -> bool {
        self.exact
    }

    fn stored_factors(&self) -> u64 {
        self.out_factors.len() as u64
    }
}

/// `f_{i,j}` from geometry — the single code path both the stored build
/// and on-demand lookups share (and the same one the dense build uses),
/// so every value is bit-identical across backends.
#[inline]
fn pair_factor(
    channel: &RayleighChannel,
    senders: &[Point2],
    receivers: &[Point2],
    lengths: &[f64],
    powers: Option<&[f64]>,
    i: usize,
    j: usize,
) -> f64 {
    let d_ij = senders[i].distance(&receivers[j]);
    let d_jj = lengths[j];
    match powers {
        None => channel.interference_factor(d_ij, d_jj),
        Some(p) => channel.interference_factor_scaled(d_ij, d_jj, p[i], p[j]),
    }
}

/// Diameter of the bounding box of all senders and receivers — an upper
/// bound on any sender→receiver distance, hence the "store everything"
/// radius cap.
fn instance_diameter(senders: &[Point2], receivers: &[Point2]) -> f64 {
    let mut min = Point2::new(f64::INFINITY, f64::INFINITY);
    let mut max = Point2::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
    for p in senders.iter().chain(receivers) {
        min = Point2::new(min.x.min(p.x), min.y.min(p.y));
        max = Point2::new(max.x.max(p.x), max.y.max(p.y));
    }
    if senders.is_empty() && receivers.is_empty() {
        return 1.0;
    }
    let diag = Rect::new(min, max).diagonal();
    if diag.is_finite() && diag > 0.0 {
        diag
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interference::InterferenceMatrix;
    use fading_channel::ChannelParams;
    use fading_math::gamma_eps;
    use fading_net::{TopologyGenerator, UniformGenerator};

    fn paper_pair(
        n: usize,
        seed: u64,
        rtol: f64,
    ) -> (LinkSet, InterferenceMatrix, SparseInterference) {
        let links = UniformGenerator::paper(n).generate(seed);
        let channel = RayleighChannel::new(ChannelParams::paper_defaults());
        let dense = InterferenceMatrix::build(&links, &channel);
        let sparse = SparseInterference::build(
            &links,
            &channel,
            gamma_eps(0.01),
            SparseConfig { tail_rtol: rtol },
        );
        (links, dense, sparse)
    }

    #[test]
    fn scalar_factors_are_bit_identical_to_dense() {
        let (links, dense, sparse) = paper_pair(40, 9, SparseConfig::DEFAULT_TAIL_RTOL);
        for i in links.ids() {
            for j in links.ids() {
                assert_eq!(
                    sparse.factor(i, j).to_bits(),
                    dense.factor(i, j).to_bits(),
                    "f({i},{j})"
                );
            }
        }
    }

    #[test]
    fn certified_config_is_exhaustive_at_paper_scale() {
        // Under the strictest cut the truncation radius (≈ 4642·d_jj at
        // α = 3) exceeds the paper region's 707-unit diameter for every
        // link, so the sparse store degenerates to an exact CSR: every
        // pair stored, all cuts zero.
        let (_, dense, sparse) = paper_pair(50, 10, SparseConfig::certified().tail_rtol);
        assert!(InterferenceModel::is_exact(&sparse));
        assert_eq!(
            InterferenceModel::stored_factors(&sparse),
            InterferenceModel::stored_factors(&dense)
        );
    }

    #[test]
    fn truncation_prunes_and_bounds_omitted_factors() {
        // A coarse cut on a spread-out instance must actually prune, and
        // every pruned factor must be below its receiver's cut.
        let (links, dense, sparse) = paper_pair(80, 11, 0.5);
        assert!(
            !InterferenceModel::is_exact(&sparse),
            "0.5·γ_ε must truncate"
        );
        assert!(
            InterferenceModel::stored_factors(&sparse) < InterferenceModel::stored_factors(&dense)
        );
        for i in links.ids() {
            let mut stored = vec![false; links.len()];
            sparse.for_each_out(i, &mut |j, f| {
                stored[j.index()] = true;
                assert_eq!(f.to_bits(), dense.factor(i, j).to_bits());
            });
            for j in links.ids() {
                if i != j && !stored[j.index()] {
                    assert!(
                        dense.factor(i, j) <= sparse.tail_cut(j) * (1.0 + 1e-12),
                        "omitted f({i},{j}) = {} exceeds cut {}",
                        dense.factor(i, j),
                        sparse.tail_cut(j)
                    );
                }
            }
        }
    }

    #[test]
    fn in_and_out_iteration_are_transposes() {
        let (links, _, sparse) = paper_pair(60, 12, 0.3);
        let n = links.len();
        let mut from_out = vec![vec![]; n];
        let mut from_in = vec![vec![]; n];
        for i in links.ids() {
            sparse.for_each_out(i, &mut |j, f| from_out[j.index()].push((i, f)));
            sparse.for_each_in(i, &mut |j, f| from_in[i.index()].push((j, f)));
        }
        for j in 0..n {
            from_out[j].sort_by_key(|&(i, _)| i);
            from_in[j].sort_by_key(|&(i, _)| i);
            assert_eq!(from_out[j], from_in[j], "receiver {j}");
        }
    }

    #[test]
    fn power_scales_honored() {
        let links = UniformGenerator::paper(30).generate(13);
        let channel = RayleighChannel::new(ChannelParams::paper_defaults());
        let powers: Vec<f64> = (0..30).map(|i| 0.5 + (i % 5) as f64 * 0.5).collect();
        let dense = InterferenceMatrix::build_with_powers(&links, &channel, Some(&powers));
        let sparse = SparseInterference::build_with_powers(
            &links,
            &channel,
            Some(&powers),
            gamma_eps(0.01),
            SparseConfig::default(),
        );
        for i in links.ids() {
            for j in links.ids() {
                assert_eq!(sparse.factor(i, j).to_bits(), dense.factor(i, j).to_bits());
            }
        }
    }

    #[test]
    fn far_field_bound_is_zero_when_exhaustive_and_positive_otherwise() {
        let (_, _, exact) = paper_pair(20, 14, SparseConfig::DEFAULT_TAIL_RTOL);
        assert_eq!(exact.far_field_packing_bound(LinkId(0), 10.0), 0.0);
        let (_, _, truncated) = paper_pair(80, 14, 0.5);
        let j = (0..truncated.len())
            .map(|j| LinkId(j as u32))
            .find(|&j| truncated.tail_cut(j) > 0.0)
            .expect("0.5·γ_ε must truncate somewhere");
        let b = truncated.far_field_packing_bound(j, 10.0);
        assert!(b > 0.0 && b.is_finite());
        // Tighter separation ⇒ more far senders fit ⇒ larger bound.
        assert!(truncated.far_field_packing_bound(j, 5.0) > b);
    }

    #[test]
    fn empty_and_singleton_instances() {
        let channel = RayleighChannel::new(ChannelParams::paper_defaults());
        let empty = LinkSet::new(fading_geom::Rect::square(1.0), vec![]);
        let s =
            SparseInterference::build(&empty, &channel, gamma_eps(0.01), SparseConfig::default());
        assert!(s.is_empty());
        assert_eq!(InterferenceModel::stored_factors(&s), 0);

        let one = UniformGenerator::paper(1).generate(15);
        let s = SparseInterference::build(&one, &channel, gamma_eps(0.01), SparseConfig::default());
        assert_eq!(s.len(), 1);
        assert_eq!(InterferenceModel::stored_factors(&s), 0);
        assert_eq!(s.factor(LinkId(0), LinkId(0)), 0.0);
    }

    #[test]
    #[should_panic(expected = "tail_rtol")]
    fn rejects_non_positive_tail_rtol() {
        let links = UniformGenerator::paper(3).generate(16);
        let channel = RayleighChannel::new(ChannelParams::paper_defaults());
        SparseInterference::build(
            &links,
            &channel,
            gamma_eps(0.01),
            SparseConfig { tail_rtol: 0.0 },
        );
    }
}
