//! Spatial-hash truncated interference store — the scale backend.
//!
//! The dense matrix costs `O(N²)` time and memory before any algorithm
//! runs; at `N = 10⁵` links that is 80 GB. This backend exploits the
//! geometry of Eq. (17): `f_{i,j} = ln(1 + γ_th (d_jj/d_ij)^α)` decays
//! like `d_ij^{−α}`, so almost all of a receiver's interference mass
//! comes from nearby senders. Per receiver `j` we store only the
//! factors of senders within a *truncation radius*
//!
//! ```text
//! R_j = d_jj · (γ_th · ρ_j / (e^τ − 1))^{1/α},   τ = tail_rtol · γ_ε,
//! ```
//!
//! (`ρ_j` is the worst-case power ratio onto `j`; 1 under uniform
//! power). By construction every *omitted* factor is individually below
//! the per-receiver cut `τ` — [`SparseInterference::tail_cut`] — so a
//! sum accumulated from stored factors over a selection `S` is a lower
//! bound within `|S| · τ` of the true sum. Feasibility checks account
//! for this envelope explicitly (see
//! [`within_budget_certified`](crate::feasibility::within_budget_certified))
//! and fall back to *exact* on-demand recomputation when the envelope
//! straddles the budget, so **verdicts never silently flip**: scalar
//! [`factor`](SparseInterference::factor) lookups recompute the Eq. (17)
//! formula through the same channel code path as the dense build and
//! are bit-identical to dense entries.
//!
//! When `R_j` reaches the instance diameter the receiver is stored
//! exhaustively and its cut is exactly `0` — at paper sizes and
//! densities the sparse backend therefore degenerates to a (CSR-shaped)
//! exact store. The `ζ(α−1)` packing bound on the *total* omitted mass
//! of a feasible selection is available as
//! [`far_field_packing_bound`](SparseInterference::far_field_packing_bound);
//! `docs/interference.md` derives both bounds.

use crate::feasibility::BUDGET_RTOL;
use crate::interference::{InterferenceModel, PARALLEL_THRESHOLD};
use crate::mutate::LinkSpec;
use fading_channel::RayleighChannel;
use fading_geom::{Point2, SpatialHash};
use fading_math::zeta;
use fading_net::{LinkId, LinkSet, ValidationError};
use rayon::prelude::*;

/// Truncation policy for [`SparseInterference`].
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SparseConfig {
    /// Per-factor cut as a fraction of `γ_ε`: any omitted factor is
    /// `< tail_rtol · γ_ε`. Smaller is more exact and stores more.
    pub tail_rtol: f64,
}

impl SparseConfig {
    /// Practical default: omitted factors below `10⁻³ · γ_ε`. Stored
    /// sums then carry a certified envelope of `|S| · 10⁻³ γ_ε`;
    /// verdict-producing checks resolve any straddle exactly.
    pub const DEFAULT_TAIL_RTOL: f64 = 1e-3;

    /// The strictest setting: cuts at `BUDGET_RTOL · γ_ε`, the same
    /// slack [`within_budget`](crate::feasibility::within_budget)
    /// already grants — truncation is then invisible even to raw sum
    /// comparisons. Needs far larger radii (it usually degenerates to
    /// the exhaustive store; see `docs/interference.md`).
    pub fn certified() -> Self {
        Self {
            tail_rtol: BUDGET_RTOL,
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    /// Panics unless `0 < tail_rtol ≤ 1`.
    fn validate(&self) {
        assert!(
            self.tail_rtol.is_finite() && self.tail_rtol > 0.0 && self.tail_rtol <= 1.0,
            "tail_rtol must be in (0, 1], got {}",
            self.tail_rtol
        );
    }
}

impl Default for SparseConfig {
    fn default() -> Self {
        Self {
            tail_rtol: Self::DEFAULT_TAIL_RTOL,
        }
    }
}

/// Near-field interference factors in CSR form over a spatial hash.
///
/// Stores, per *sender*, the (receiver, factor) pairs with the receiver
/// inside the sender's stored neighborhood; per *receiver*, the
/// truncation radius and cut. Keeps the geometry (positions, lengths,
/// power scales, channel), so any factor — stored or not — is
/// recomputable exactly in `O(1)`.
#[derive(Debug, Clone)]
pub struct SparseInterference {
    n: usize,
    channel: RayleighChannel,
    senders: Vec<Point2>,
    receivers: Vec<Point2>,
    lengths: Vec<f64>,
    powers: Option<Vec<f64>>,
    /// Hash over *sender* positions, for neighborhood queries.
    sender_hash: SpatialHash,
    /// Hash over *receiver* positions, for the inverse query the row
    /// wiring needs — which receivers' radius balls contain a given
    /// sender. Queried at [`max_radius`](Self::max_radius), filtered by
    /// the exact per-receiver `d² ≤ r²` predicate.
    receiver_hash: SpatialHash,
    /// Slack-row CSR by sender: the out-factors of sender `i` occupy
    /// `arena[row_start[i] .. row_start[i] + row_len[i]]` inside a
    /// reserved extent of `row_cap[i]` slots. Extents never overlap;
    /// a fresh build packs them tight (`cap == len`), and in-place
    /// mutation grows rows by relocating full ones to the arena tail
    /// (doubling their capacity) — see [`add_link`](Self::add_link).
    row_start: Vec<usize>,
    row_len: Vec<u32>,
    row_cap: Vec<u32>,
    arena_receivers: Vec<u32>,
    arena_factors: Vec<f64>,
    /// Arena slots stranded by row relocation; once more than half the
    /// arena is dead, [`maybe_compact`](Self::maybe_compact) repacks.
    dead: usize,
    /// Per-receiver truncation radius (senders within it are stored).
    radius: Vec<f64>,
    /// Per-receiver certified bound on any omitted factor (0 ⇒
    /// exhaustive).
    cut: Vec<f64>,
    /// The absolute per-factor cut budget `τ = tail_rtol · γ_ε`.
    tau: f64,
    tail_rtol: f64,
    exact: bool,
    /// Exact bbox diagonal the current radii were clamped with —
    /// maintained under mutation so reconciled radii stay bit-identical
    /// to a fresh build's.
    diameter: f64,
    /// Exact maximum power scale the current radii were computed with.
    max_scale: f64,
    /// Conservative upper bound on every entry of `radius`: exact after
    /// a build or an envelope reconcile, pushed up by appended links,
    /// never shrunk by removals (a stale-high bound only widens the
    /// inverse query, it cannot miss a receiver).
    max_radius: f64,
    /// Reusable index scratch for the mutation paths (column gathers,
    /// tail-rename holders, annulus edits) — excluded from `PartialEq`,
    /// carried so steady-state mutations allocate nothing per call.
    scratch: Vec<u32>,
}

impl PartialEq for SparseInterference {
    fn eq(&self, other: &Self) -> bool {
        // The hash, diameter, and max scale are derived from the
        // geometry; the CSR is compared row by row (logical contents,
        // not arena layout) so a mutated store with slack extents
        // equals a freshly packed build with the same stored factors.
        self.n == other.n
            && self.channel == other.channel
            && self.senders == other.senders
            && self.receivers == other.receivers
            && self.lengths == other.lengths
            && self.powers == other.powers
            && self.radius == other.radius
            && self.cut == other.cut
            && self.tau == other.tau
            && self.tail_rtol == other.tail_rtol
            && (0..self.n).all(|i| self.row(i) == other.row(i))
    }
}

impl SparseInterference {
    /// Builds the truncated store for `links` under uniform power.
    ///
    /// `gamma_eps` is the feasibility budget the truncation budget is
    /// relative to (`τ = config.tail_rtol · γ_ε`).
    pub fn build(
        links: &LinkSet,
        channel: &RayleighChannel,
        gamma_eps: f64,
        config: SparseConfig,
    ) -> Self {
        Self::build_with_powers(links, channel, None, gamma_eps, config)
    }

    /// Builds the truncated store with optional per-link power scales
    /// (same contract as
    /// [`InterferenceMatrix::build_with_powers`](crate::interference::InterferenceMatrix::build_with_powers)).
    ///
    /// # Panics
    /// Panics on an invalid `config`, a power vector of the wrong
    /// length, or non-positive scales.
    pub fn build_with_powers(
        links: &LinkSet,
        channel: &RayleighChannel,
        powers: Option<&[f64]>,
        gamma_eps: f64,
        config: SparseConfig,
    ) -> Self {
        config.validate();
        assert!(
            gamma_eps.is_finite() && gamma_eps > 0.0,
            "gamma_eps must be positive"
        );
        let _span = fading_obs::span!("core.sparse.build");
        let started = std::time::Instant::now();
        let n = links.len();
        if let Some(p) = powers {
            assert_eq!(p.len(), n, "power vector length mismatch");
            assert!(
                p.iter().all(|&s| s.is_finite() && s > 0.0),
                "power scales must be positive"
            );
        }
        let senders = links.sender_positions();
        let receivers = links.receiver_positions();
        let lengths: Vec<f64> = links.ids().map(|i| links.length(i)).collect();
        let tau = config.tail_rtol * gamma_eps;
        let diameter = instance_diameter(&senders, &receivers);
        let max_scale = max_power_scale(powers);

        // Per-receiver truncation radius: the distance at which the
        // worst-case factor onto j drops to τ. Capped at the instance
        // diameter, in which case the receiver is exhaustive (cut 0).
        let mut radius = vec![0.0f64; n];
        let mut cut = vec![0.0f64; n];
        for j in 0..n {
            let ratio = powers.map_or(1.0, |p| max_scale / p[j]);
            let (r, c) = truncation_for(channel, lengths[j], ratio, tau, diameter);
            radius[j] = r;
            cut[j] = c;
        }

        // Hash cell ≈ the typical query radius (performance only;
        // correctness is radius-driven).
        let mean_radius = if n == 0 {
            1.0
        } else {
            radius.iter().sum::<f64>() / n as f64
        };
        let cell = if mean_radius.is_finite() && mean_radius > 0.0 {
            mean_radius
        } else {
            1.0
        };
        let sender_hash = SpatialHash::build(&senders, cell);
        let receiver_hash = SpatialHash::build(&receivers, cell);
        let max_radius = radius.iter().copied().fold(0.0, f64::max);

        // Gather each receiver's stored in-neighborhood, then scatter
        // into a CSR keyed by sender.
        let gather = |j: usize| -> Vec<(u32, f64)> {
            let mut found = Vec::new();
            sender_hash.for_each_in_radius(&receivers[j], radius[j], |i| {
                if i as usize != j {
                    let f = pair_factor(
                        channel, &senders, &receivers, &lengths, powers, i as usize, j,
                    );
                    found.push((i, f));
                }
            });
            found
        };
        let in_lists: Vec<Vec<(u32, f64)>> = if n >= PARALLEL_THRESHOLD {
            (0..n).into_par_iter().map(gather).collect()
        } else {
            (0..n).map(gather).collect()
        };

        let mut degree = vec![0usize; n];
        for list in &in_lists {
            for &(i, _) in list {
                degree[i as usize] += 1;
            }
        }
        // Fresh rows are packed tight: extent capacity equals length.
        let mut row_start = vec![0usize; n];
        for i in 1..n {
            row_start[i] = row_start[i - 1] + degree[i - 1];
        }
        let total = row_start.last().map_or(0, |&s| s) + degree.last().copied().unwrap_or(0);
        let row_len: Vec<u32> = degree.iter().map(|&d| d as u32).collect();
        let row_cap = row_len.clone();
        let mut next = row_start.clone();
        let mut arena_receivers = vec![0u32; total];
        let mut arena_factors = vec![0.0f64; total];
        // Iterating receivers in ascending order leaves every CSR row
        // sorted by receiver id.
        for (j, list) in in_lists.iter().enumerate() {
            for &(i, f) in list {
                let pos = next[i as usize];
                arena_receivers[pos] = j as u32;
                arena_factors[pos] = f;
                next[i as usize] = pos + 1;
            }
        }

        let exact = cut.iter().all(|&c| c == 0.0);
        let pairs = (n as u64).saturating_mul(n.saturating_sub(1) as u64);
        fading_obs::counter("core.sparse.builds").incr();
        fading_obs::counter("core.sparse.factors_stored").add(total as u64);
        fading_obs::counter("core.sparse.factors_pruned").add(pairs - total as u64);
        fading_obs::gauge("core.sparse.build_ms").set(started.elapsed().as_secs_f64() * 1e3);
        fading_obs::gauge("core.sparse.tail_cut_max").set(cut.iter().copied().fold(0.0, f64::max));
        let neighborhood = fading_obs::histogram(
            "core.sparse.in_degree",
            &[1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0],
        );
        for list in &in_lists {
            neighborhood.record(list.len() as f64);
        }

        Self {
            n,
            channel: *channel,
            senders,
            receivers,
            lengths,
            powers: powers.map(<[f64]>::to_vec),
            sender_hash,
            receiver_hash,
            row_start,
            row_len,
            row_cap,
            arena_receivers,
            arena_factors,
            dead: 0,
            radius,
            cut,
            tau,
            tail_rtol: config.tail_rtol,
            exact,
            diameter,
            max_scale,
            max_radius,
            scratch: Vec::new(),
        }
    }

    /// Row `i` of the CSR: the stored `(receiver, factor)` pairs of
    /// sender `i`, sorted by receiver id.
    #[inline]
    fn row(&self, i: usize) -> (&[u32], &[f64]) {
        let lo = self.row_start[i];
        let hi = lo + self.row_len[i] as usize;
        (&self.arena_receivers[lo..hi], &self.arena_factors[lo..hi])
    }

    /// The stored out-row of `sender` as raw CSR slices `(receivers,
    /// factors)`, sorted by receiver id — the slice form of
    /// [`for_each_out`](Self::for_each_out), letting hot loops walk the
    /// row without a dynamic call per element.
    #[inline]
    pub fn row_slices(&self, sender: LinkId) -> (&[u32], &[f64]) {
        self.row(sender.index())
    }

    /// The sub-store over `keep` (parent link ids, in the
    /// sub-instance's id order): geometry, powers, radii, and stored
    /// factors are sliced from the parent; CSR rows keep only entries
    /// whose receiver survives, with both endpoints remapped to the
    /// dense sub-ids. No factor is recomputed.
    ///
    /// The parent's certificates remain valid verbatim: receiver `j`'s
    /// truncation radius and cut describe *geometry* ("any sender
    /// beyond `R_j` contributes `< cut`"), so dropping senders can only
    /// remove omitted factors, never add one above the cut. Receivers
    /// whose parent cut was `0` stay exhaustive; truncated receivers
    /// keep their (possibly now conservative) cut `τ`, which the
    /// verdict machinery already resolves exactly on a straddle. The
    /// per-store `exact` flag is re-validated from the sliced cuts.
    pub fn restrict(&self, keep: &[LinkId]) -> Self {
        let k = keep.len();
        // Parent id → sub id, for filtering CSR entries.
        let mut new_id = vec![u32::MAX; self.n];
        for (a, &old) in keep.iter().enumerate() {
            new_id[old.index()] = a as u32;
        }
        let senders: Vec<Point2> = keep.iter().map(|&i| self.senders[i.index()]).collect();
        let receivers: Vec<Point2> = keep.iter().map(|&i| self.receivers[i.index()]).collect();
        let lengths: Vec<f64> = keep.iter().map(|&i| self.lengths[i.index()]).collect();
        let powers = self
            .powers
            .as_ref()
            .map(|p| keep.iter().map(|&i| p[i.index()]).collect::<Vec<f64>>());
        let radius: Vec<f64> = keep.iter().map(|&i| self.radius[i.index()]).collect();
        let cut: Vec<f64> = keep.iter().map(|&i| self.cut[i.index()]).collect();

        let mut row_start = Vec::with_capacity(k);
        let mut row_len = Vec::with_capacity(k);
        let mut arena_receivers = Vec::new();
        let mut arena_factors = Vec::new();
        let mut scratch: Vec<(u32, f64)> = Vec::new();
        for &old in keep {
            row_start.push(arena_receivers.len());
            let (recv, fact) = self.row(old.index());
            for (&r, &f) in recv.iter().zip(fact) {
                let j = new_id[r as usize];
                if j != u32::MAX {
                    arena_receivers.push(j);
                    arena_factors.push(f);
                }
            }
            let lo = *row_start.last().unwrap();
            row_len.push((arena_receivers.len() - lo) as u32);
            // A non-monotone `keep` permutes receiver ids; re-sort the
            // row so the sorted-by-receiver CSR invariant (which both
            // fresh builds and in-place mutation maintain) holds for
            // every store.
            if !arena_receivers[lo..].is_sorted() {
                scratch.clear();
                scratch.extend(
                    arena_receivers[lo..]
                        .iter()
                        .copied()
                        .zip(arena_factors[lo..].iter().copied()),
                );
                scratch.sort_unstable_by_key(|&(r, _)| r);
                for (slot, &(r, f)) in scratch.iter().enumerate() {
                    arena_receivers[lo + slot] = r;
                    arena_factors[lo + slot] = f;
                }
            }
        }
        let row_cap = row_len.clone();

        // The hash cell tracks the sub-instance's typical query radius
        // (performance only; correctness is radius-driven).
        let mean_radius = if k == 0 {
            1.0
        } else {
            radius.iter().sum::<f64>() / k as f64
        };
        let cell = if mean_radius.is_finite() && mean_radius > 0.0 {
            mean_radius
        } else {
            1.0
        };
        let sender_hash = SpatialHash::build(&senders, cell);
        let receiver_hash = SpatialHash::build(&receivers, cell);
        // A valid bound for the *sliced* radii; the poisoned envelope
        // below forces a full reconcile (which recomputes it exactly)
        // before any wiring relies on it.
        let max_radius = radius.iter().copied().fold(0.0, f64::max);
        let exact = cut.iter().all(|&c| c == 0.0);

        Self {
            n: k,
            channel: self.channel,
            senders,
            receivers,
            lengths,
            powers,
            sender_hash,
            receiver_hash,
            row_start,
            row_len,
            row_cap,
            arena_receivers,
            arena_factors,
            dead: 0,
            radius,
            cut,
            tau: self.tau,
            tail_rtol: self.tail_rtol,
            exact,
            // The sliced radii are the *parent's* formula values, not
            // the sub-instance's. Poison the envelope so the first
            // mutation reconciles every radius to the fresh-build
            // formula before relying on it.
            diameter: f64::INFINITY,
            max_scale: f64::INFINITY,
            max_radius,
            scratch: Vec::new(),
        }
    }

    /// Number of links `N`.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the store covers no links.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Exact factor `f_{i,j}` — recomputed from geometry through the
    /// same channel code path as the dense build, so the value is
    /// bit-identical to the dense matrix entry whether or not the pair
    /// is stored.
    #[inline]
    pub fn factor(&self, sender: LinkId, receiver: LinkId) -> f64 {
        let (i, j) = (sender.index(), receiver.index());
        if i == j {
            return 0.0;
        }
        pair_factor(
            &self.channel,
            &self.senders,
            &self.receivers,
            &self.lengths,
            self.powers.as_deref(),
            i,
            j,
        )
    }

    /// Stored out-factors of `sender` (every omitted receiver `j` has
    /// `f_{sender,j} < tail_cut(j)`), in ascending receiver order.
    #[inline]
    pub fn for_each_out(&self, sender: LinkId, f: &mut dyn FnMut(LinkId, f64)) {
        let (recv, fact) = self.row(sender.index());
        for (&j, &v) in recv.iter().zip(fact) {
            f(LinkId(j), v);
        }
    }

    /// Stored in-factors onto `receiver`, recomputed on demand from the
    /// sender hash (nothing is stored per-receiver).
    pub fn for_each_in(&self, receiver: LinkId, f: &mut dyn FnMut(LinkId, f64)) {
        let j = receiver.index();
        self.sender_hash
            .for_each_in_radius(&self.receivers[j], self.radius[j], |i| {
                if i as usize != j {
                    let v = pair_factor(
                        &self.channel,
                        &self.senders,
                        &self.receivers,
                        &self.lengths,
                        self.powers.as_deref(),
                        i as usize,
                        j,
                    );
                    f(LinkId(i), v);
                }
            });
    }

    /// Certified bound on any single omitted factor onto `receiver`
    /// (`0` ⇒ the receiver's neighborhood is exhaustive).
    #[inline]
    pub fn tail_cut(&self, receiver: LinkId) -> f64 {
        self.cut[receiver.index()]
    }

    /// The truncation radius of `receiver`.
    pub fn truncation_radius(&self, receiver: LinkId) -> f64 {
        self.radius[receiver.index()]
    }

    /// The absolute per-factor cut budget `τ = tail_rtol · γ_ε`.
    pub fn tau(&self) -> f64 {
        self.tau
    }

    /// The configured relative cut.
    pub fn tail_rtol(&self) -> f64 {
        self.tail_rtol
    }

    /// The largest per-receiver cut (0 when exhaustive everywhere).
    pub fn max_tail_cut(&self) -> f64 {
        self.cut.iter().copied().fold(0.0, f64::max)
    }

    /// Bytes held by the interference storage proper: CSR arrays,
    /// per-receiver radii/cuts, geometry, and the sender hash's index
    /// entries. The figure the large-n memory budget is checked against.
    pub fn storage_bytes(&self) -> u64 {
        let csr = self.row_start.len() * std::mem::size_of::<usize>()
            + (self.row_len.len() + self.row_cap.len() + self.arena_receivers.len())
                * std::mem::size_of::<u32>()
            + self.arena_factors.len() * std::mem::size_of::<f64>();
        let per_receiver = (self.radius.len() + self.cut.len()) * std::mem::size_of::<f64>();
        let geometry = (self.senders.len() + self.receivers.len()) * std::mem::size_of::<Point2>()
            + self.lengths.len() * std::mem::size_of::<f64>()
            + self.powers.as_ref().map_or(0, |p| p.len() * 8);
        // Hashes: one u32 index per point plus the point copy, for the
        // sender and receiver grids.
        let hash =
            (self.sender_hash.len() + self.receiver_hash.len()) * (std::mem::size_of::<u32>() + 16);
        (csr + per_receiver + geometry + hash) as u64
    }

    /// The `ζ(α−1)` packing bound on the **total** omitted interference
    /// onto `receiver` from any concurrently transmitting set whose
    /// senders are pairwise at least `min_separation` apart: omitted
    /// senders sit beyond `R_j`, and an annulus decomposition of the far
    /// field gives
    ///
    /// ```text
    /// Σ_{d_ij > R_j} f_{i,j} ≤ 8 γ_th ρ_j d_jj^α (2ζ(α−1) + ζ(α)) / (λ² R_j^{α−2}),
    /// ```
    ///
    /// with `λ = min(min_separation, R_j)`. Derivation in
    /// `docs/interference.md`. Returns `0` for exhaustive receivers.
    ///
    /// # Panics
    /// Panics if `α ≤ 2` (the far-field series diverges) or
    /// `min_separation ≤ 0`.
    pub fn far_field_packing_bound(&self, receiver: LinkId, min_separation: f64) -> f64 {
        let j = receiver.index();
        if self.cut[j] == 0.0 {
            return 0.0;
        }
        let alpha = self.channel.params.alpha;
        assert!(
            alpha > 2.0,
            "far-field packing bound needs alpha > 2, got {alpha}"
        );
        assert!(
            min_separation > 0.0,
            "min_separation must be positive, got {min_separation}"
        );
        let r = self.radius[j];
        let lambda = min_separation.min(r);
        let ratio = self
            .powers
            .as_ref()
            .map_or(1.0, |p| p.iter().copied().fold(f64::MIN, f64::max) / p[j]);
        let geometry = 2.0 * zeta(alpha - 1.0) + zeta(alpha);
        8.0 * self.channel.params.gamma_th * ratio * self.lengths[j].powf(alpha) * geometry
            / (lambda * lambda * r.powf(alpha - 2.0))
    }

    // ------------------------------------------------------------------
    // In-place mutation.
    //
    // Invariant maintained by every operation below (and established by
    // `build_with_powers` / `restrict`): entry `(i, j)` is stored iff
    // `senders[i].distance_sq(receivers[j]) ≤ radius[j]²` and `i ≠ j`,
    // with every CSR row sorted by receiver id. Because membership is a
    // pure predicate of geometry and `radius`, and `radius` is
    // reconciled to the fresh-build formula whenever the instance
    // envelope (bbox diameter, max power scale) moves, a mutated store
    // compares equal (`PartialEq`) to a from-scratch build over the
    // mutated link set — the property `tests/mutate_equivalence.rs`
    // pins. Certified cuts can only be *re-derived by the same formula*
    // (never hand-adjusted), so a truncated receiver's bound stays a
    // true bound at every intermediate state and feasibility verdicts
    // never flip (straddles always resolve by exact recomputation).
    // ------------------------------------------------------------------

    /// Converts a uniform-power store to an explicit all-ones power
    /// profile without touching any stored state. Safe because
    /// `scale ≡ 1` evaluates every power-aware expression to the exact
    /// same bits: `γ_th · (1/1) · x` left-associates to `γ_th · x`
    /// (the unscaled formula), and the truncation ratio
    /// `max_scale / p[j]` is `1/1 = 1`, the uniform default. Called by
    /// `Problem::add_links` when the first non-uniform link arrives.
    pub(crate) fn materialize_powers(&mut self) {
        if self.powers.is_none() {
            self.powers = Some(vec![1.0; self.n]);
        }
    }

    /// Checks a batch of specs against the store's power discipline:
    /// every scale must be positive finite, and a non-unit scale needs
    /// a materialized per-link profile to extend (callers convert a
    /// uniform store first — see
    /// [`materialize_powers`](Self::materialize_powers)). `base` is the
    /// dense id the first spec would take, used for error reporting.
    fn validate_specs(&self, specs: &[LinkSpec], base: usize) -> Result<(), ValidationError> {
        for (slot, spec) in specs.iter().enumerate() {
            if !(spec.power_scale.is_finite() && spec.power_scale > 0.0) {
                return Err(ValidationError::BadPowerScale {
                    id: LinkId((base + slot) as u32),
                    scale: spec.power_scale,
                });
            }
            if self.powers.is_none() && spec.power_scale != 1.0 {
                return Err(ValidationError::PowerProfileMismatch {
                    scale: spec.power_scale,
                });
            }
        }
        Ok(())
    }

    /// Appends a link in place: the new link takes index `len()`. Cost
    /// model (`docs/online.md`): one `O(N)` envelope scan, one hash
    /// query for the new receiver's in-neighborhood, one inverse hash
    /// query for the new sender's row, plus `O(degree)` factor
    /// evaluations — versus the full `O(N·k)` transcendental rebuild.
    /// For several mutations at once,
    /// [`apply_batch`](Self::apply_batch) amortizes the `O(N)` terms
    /// over the whole batch.
    ///
    /// The spec's `power_scale` extends the store's profile when one is
    /// active; on a uniform store a non-unit scale is rejected with
    /// [`ValidationError::PowerProfileMismatch`].
    pub fn add_link(&mut self, spec: &LinkSpec) -> Result<(), ValidationError> {
        self.validate_specs(std::slice::from_ref(spec), self.n)?;
        let (sender, receiver) = (spec.sender, spec.receiver);
        let length = sender.distance(&receiver);
        let t = self.n;
        self.senders.push(sender);
        self.receivers.push(receiver);
        self.lengths.push(length);
        if let Some(p) = &mut self.powers {
            p.push(spec.power_scale);
        }
        self.n = t + 1;
        // Reconcile existing radii against the grown envelope *before*
        // wiring the new link, so its row/column are gathered under the
        // final radii. The new sender is not yet in the hash, so any
        // annulus edits touch only old pairs.
        self.refresh_envelope();
        let ratio = self.powers.as_ref().map_or(1.0, |p| self.max_scale / p[t]);
        let (r, c) = truncation_for(&self.channel, length, ratio, self.tau, self.diameter);
        self.radius.push(r);
        self.cut.push(c);
        self.max_radius = self.max_radius.max(r);
        // Column t: old senders within the new receiver's radius. The
        // new receiver id is the maximum, so each insert lands at its
        // row's tail. The reusable scratch keeps the warm mutation path
        // allocation-free.
        let mut col = std::mem::take(&mut self.scratch);
        col.clear();
        self.sender_hash
            .for_each_in_radius(&receiver, r, |i| col.push(i));
        for i in col.drain(..) {
            let f = pair_factor(
                &self.channel,
                &self.senders,
                &self.receivers,
                &self.lengths,
                self.powers.as_deref(),
                i as usize,
                t,
            );
            self.row_insert(i as usize, t as u32, f);
        }
        // Row t: receivers whose radius ball covers the new sender —
        // the inverse query, answered by the receiver hash at the
        // conservative `max_radius` bound and filtered with the exact
        // `d² ≤ r²` predicate (the same one the fresh build's hash
        // gather applies), then sorted so the CSR row invariant holds.
        col.clear();
        self.receiver_hash
            .for_each_in_radius(&sender, self.max_radius, |j| {
                let ju = j as usize;
                if sender.distance_sq(&self.receivers[ju]) <= self.radius[ju] * self.radius[ju] {
                    col.push(j);
                }
            });
        col.sort_unstable();
        let lo = self.arena_receivers.len();
        for j in col.drain(..) {
            let f = pair_factor(
                &self.channel,
                &self.senders,
                &self.receivers,
                &self.lengths,
                self.powers.as_deref(),
                t,
                j as usize,
            );
            self.arena_receivers.push(j);
            self.arena_factors.push(f);
        }
        self.scratch = col;
        self.row_start.push(lo);
        let len = (self.arena_receivers.len() - lo) as u32;
        self.row_len.push(len);
        self.row_cap.push(len);
        self.sender_hash.insert(sender);
        self.receiver_hash.insert(receiver);
        self.exact = self.cut.iter().all(|&c| c == 0.0);
        self.maybe_compact();
        Ok(())
    }

    /// Removes link `k` in place with `Vec::swap_remove` semantics (the
    /// link at `len()−1` takes index `k`), mirroring
    /// [`LinkSet::swap_remove`]. Touches only the rows that actually
    /// store the removed receiver or the renumbered one — `O(k)` row
    /// edits plus the `O(N)` envelope scan.
    ///
    /// # Panics
    /// Panics if `k` is out of bounds.
    pub fn swap_remove_link(&mut self, k: usize) {
        self.remove_one(k);
        // Bbox or max power scale may have shrunk; pull every radius
        // back to the fresh-build formula.
        self.refresh_envelope();
        self.exact = self.cut.iter().all(|&c| c == 0.0);
        self.maybe_compact();
    }

    /// The row/column edits of one swap-remove, with the envelope
    /// reconcile, exactness flag, and compaction deferred to the
    /// caller. Sound to chain: the membership invariant references the
    /// *current* `radius` array, which removal never changes for
    /// surviving receivers — only the final reconcile pulls the array
    /// back to the fresh-build formula.
    fn remove_one(&mut self, k: usize) {
        assert!(k < self.n, "link index out of bounds");
        let last = self.n - 1;
        // Drop column k: by the invariant, exactly the senders within
        // radius[k] of receiver k store an entry onto it. The reusable
        // scratch keeps the warm mutation path allocation-free.
        let mut col = std::mem::take(&mut self.scratch);
        col.clear();
        self.sender_hash
            .for_each_in_radius(&self.receivers[k], self.radius[k], |i| {
                if i as usize != k {
                    col.push(i);
                }
            });
        for i in col.drain(..) {
            self.row_remove(i as usize, k as u32);
        }
        // Row k dies with its extent.
        self.dead += self.row_cap[k] as usize;
        // Rename receiver `last` → `k` wherever it is stored. It is the
        // maximum id, hence at each row's tail; re-seat it at the new
        // id's sorted position (row k itself is already dead, row last
        // never stores its own diagonal).
        if k != last {
            self.sender_hash
                .for_each_in_radius(&self.receivers[last], self.radius[last], |i| {
                    let i = i as usize;
                    if i != last && i != k {
                        col.push(i as u32);
                    }
                });
            for i in col.drain(..) {
                self.row_rename_tail(i as usize, last as u32, k as u32);
            }
        }
        self.scratch = col;
        self.row_start.swap_remove(k);
        self.row_len.swap_remove(k);
        self.row_cap.swap_remove(k);
        self.senders.swap_remove(k);
        self.receivers.swap_remove(k);
        self.lengths.swap_remove(k);
        if let Some(p) = &mut self.powers {
            p.swap_remove(k);
        }
        self.radius.swap_remove(k);
        self.cut.swap_remove(k);
        self.sender_hash.swap_remove(k as u32);
        self.receiver_hash.swap_remove(k as u32);
        self.n = last;
    }

    /// Applies a whole transaction — removals (dense ids, strictly
    /// descending) then appended links (taking ids `n..n+k` in spec
    /// order) — with **one** envelope reconciliation and **one**
    /// compaction check for the entire batch.
    ///
    /// Equivalent to the matching sequence of
    /// [`swap_remove_link`](Self::swap_remove_link) /
    /// [`add_link`](Self::add_link) calls, and hence to a fresh build
    /// over the final link set: every intermediate state still
    /// satisfies the membership invariant *with respect to the current
    /// `radius` array*, stored factors are pure per-pair values
    /// independent of wiring order, and the final reconcile pulls the
    /// array back to the fresh-build formula once. Each new link's row
    /// and column are local hash queries (see
    /// [`wire_new_links`](Self::wire_new_links)), so a `k`-link batch
    /// costs `O(N + k·degree)` — the `O(N)` envelope scan paid once for
    /// the whole transaction, however the batch is spread over the
    /// region — instead of `k` separate `O(N)` passes.
    ///
    /// On a validation error nothing changes.
    ///
    /// # Panics
    /// Panics if `removes` is not strictly descending or out of range.
    pub fn apply_batch(
        &mut self,
        removes: &[LinkId],
        adds: &[LinkSpec],
    ) -> Result<(), ValidationError> {
        if removes.is_empty() && adds.is_empty() {
            return Ok(());
        }
        assert!(
            removes.windows(2).all(|w| w[0] > w[1]),
            "apply_batch removals must be strictly descending"
        );
        if let Some(&first) = removes.first() {
            assert!(first.index() < self.n, "link index out of bounds");
        }
        self.validate_specs(adds, self.n - removes.len())?;
        let _span = fading_obs::span!("core.sparse.apply_batch");
        for &id in removes {
            self.remove_one(id.index());
        }
        let n0 = self.n;
        // Push all new geometry and powers, then reconcile the envelope
        // once: the new senders are not yet hashed, so annulus edits
        // touch only surviving old pairs, and the new rows/columns are
        // wired directly under the final radii.
        for spec in adds {
            self.senders.push(spec.sender);
            self.receivers.push(spec.receiver);
            self.lengths.push(spec.sender.distance(&spec.receiver));
            if let Some(p) = &mut self.powers {
                p.push(spec.power_scale);
            }
        }
        self.n = n0 + adds.len();
        self.refresh_envelope();
        for t in n0..self.n {
            let ratio = self.powers.as_ref().map_or(1.0, |p| self.max_scale / p[t]);
            let (r, c) = truncation_for(
                &self.channel,
                self.lengths[t],
                ratio,
                self.tau,
                self.diameter,
            );
            self.radius.push(r);
            self.cut.push(c);
            self.max_radius = self.max_radius.max(r);
        }
        if n0 < self.n {
            self.wire_new_links(n0);
        }
        self.exact = self.cut.iter().all(|&c| c == 0.0);
        self.maybe_compact();
        Ok(())
    }

    /// Wires rows and columns for links `n0..n`, whose geometry, radii,
    /// and cuts are already in place under the reconciled envelope.
    /// Both directions are local hash queries: the column gathers the
    /// senders inside the new receiver's radius from the sender hash,
    /// and the row answers the inverse question — which receivers'
    /// radius balls contain the new sender — from the receiver hash at
    /// the conservative `max_radius` bound, filtered with the exact
    /// `d² ≤ r²` predicate. Per-link cost is the local neighborhood
    /// regardless of how the batch is spread over the region, which is
    /// what keeps a slot's worth of *scattered* churn arrivals at
    /// `O(k · degree)` instead of the `O(k · N)` per-link receiver
    /// scans (or an `O(N)`-per-batch sweep that degenerates to visiting
    /// every link once the batch's bounding circle covers the region).
    fn wire_new_links(&mut self, n0: usize) {
        let mut col = std::mem::take(&mut self.scratch);
        let mut hits: Vec<u32> = Vec::with_capacity(64);
        for t in n0..self.n {
            let (sender, receiver) = (self.senders[t], self.receivers[t]);
            // Column t: already-wired senders (old plus earlier new —
            // each enters the hash as its own wiring completes) within
            // the new receiver's radius. Receiver t is the maximum
            // stored id, so each insert lands at its row's tail.
            col.clear();
            self.sender_hash
                .for_each_in_radius(&receiver, self.radius[t], |i| col.push(i));
            for i in col.drain(..) {
                let f = pair_factor(
                    &self.channel,
                    &self.senders,
                    &self.receivers,
                    &self.lengths,
                    self.powers.as_deref(),
                    i as usize,
                    t,
                );
                self.row_insert(i as usize, t as u32, f);
            }
            // Row t: receivers (old plus earlier new) whose radius ball
            // contains the new sender — the inverse query, answered by
            // the receiver hash at the conservative `max_radius` bound
            // and filtered with the exact `d² ≤ r²` predicate, then
            // sorted so the CSR row invariant holds. Local, whatever
            // the batch's spatial spread: a slot's worth of scattered
            // churn arrivals costs `O(k · neighborhood)`, not the
            // `O(k · N)` a per-link receiver scan would pay.
            hits.clear();
            self.receiver_hash
                .for_each_in_radius(&sender, self.max_radius, |j| {
                    let ju = j as usize;
                    if sender.distance_sq(&self.receivers[ju]) <= self.radius[ju] * self.radius[ju]
                    {
                        hits.push(j);
                    }
                });
            hits.sort_unstable();
            let lo = self.arena_receivers.len();
            for &j in &hits {
                let f = pair_factor(
                    &self.channel,
                    &self.senders,
                    &self.receivers,
                    &self.lengths,
                    self.powers.as_deref(),
                    t,
                    j as usize,
                );
                self.arena_receivers.push(j);
                self.arena_factors.push(f);
            }
            self.row_start.push(lo);
            let len = (self.arena_receivers.len() - lo) as u32;
            self.row_len.push(len);
            self.row_cap.push(len);
            self.sender_hash.insert(sender);
            self.receiver_hash.insert(receiver);
        }
        self.scratch = col;
    }

    /// Truncation radius and cut of receiver `j` under the *current*
    /// envelope — the same expression `build_with_powers` evaluates, so
    /// reconciled values are bit-identical to a fresh build's.
    fn truncation_of(&self, j: usize) -> (f64, f64) {
        let ratio = self.powers.as_ref().map_or(1.0, |p| self.max_scale / p[j]);
        truncation_for(
            &self.channel,
            self.lengths[j],
            ratio,
            self.tau,
            self.diameter,
        )
    }

    /// Recomputes the instance envelope (bbox diameter, max power
    /// scale) and, if it moved, reconciles every receiver's radius/cut
    /// to the fresh-build formula — inserting or dropping exactly the
    /// annulus entries between the old and new radius. Radii whose
    /// annulus lies beyond the new diameter need no row edits (no pair
    /// can be that far apart), which makes interior mutations under
    /// uniform power a pure value update.
    fn refresh_envelope(&mut self) {
        let diameter = instance_diameter(&self.senders, &self.receivers);
        let max_scale = max_power_scale(self.powers.as_deref());
        if diameter == self.diameter && max_scale == self.max_scale {
            return;
        }
        self.diameter = diameter;
        self.max_scale = max_scale;
        let mut max_radius = 0.0f64;
        // The scratch is taken out of `self` so the hash-query closure
        // (which reads `self.senders`/`self.receivers`) and the buffer
        // can be borrowed simultaneously.
        let mut touched = std::mem::take(&mut self.scratch);
        for j in 0..self.radius.len() {
            let (r, c) = self.truncation_of(j);
            let old = self.radius[j];
            if r != old && old.min(r) < diameter {
                // The annulus between the radii can hold senders; patch
                // the affected rows. Membership uses the same `d² ≤ r²`
                // predicate as the build's hash gather.
                let (old_sq, new_sq) = (old * old, r * r);
                touched.clear();
                self.sender_hash
                    .for_each_in_radius(&self.receivers[j], old.max(r), |i| {
                        if i as usize != j {
                            let d_sq = self.senders[i as usize].distance_sq(&self.receivers[j]);
                            if d_sq <= old_sq.max(new_sq) && d_sq > old_sq.min(new_sq) {
                                touched.push(i);
                            }
                        }
                    });
                fading_obs::counter("core.sparse.reconcile_edits").add(touched.len() as u64);
                for i in touched.drain(..) {
                    if r > old {
                        let f = pair_factor(
                            &self.channel,
                            &self.senders,
                            &self.receivers,
                            &self.lengths,
                            self.powers.as_deref(),
                            i as usize,
                            j,
                        );
                        self.row_insert(i as usize, j as u32, f);
                    } else {
                        self.row_remove(i as usize, j as u32);
                    }
                }
            }
            self.radius[j] = r;
            self.cut[j] = c;
            max_radius = max_radius.max(r);
        }
        self.max_radius = max_radius;
        self.scratch = touched;
    }

    /// Inserts `(j, f)` into row `i` at its sorted position, relocating
    /// a full row to the arena tail with doubled capacity first.
    fn row_insert(&mut self, i: usize, j: u32, f: f64) {
        if self.row_len[i] == self.row_cap[i] {
            self.relocate(i);
        }
        let lo = self.row_start[i];
        let len = self.row_len[i] as usize;
        let at = lo + self.arena_receivers[lo..lo + len].partition_point(|&x| x < j);
        debug_assert!(
            at == lo + len || self.arena_receivers[at] != j,
            "duplicate entry"
        );
        self.arena_receivers.copy_within(at..lo + len, at + 1);
        self.arena_factors.copy_within(at..lo + len, at + 1);
        self.arena_receivers[at] = j;
        self.arena_factors[at] = f;
        self.row_len[i] += 1;
    }

    /// Removes receiver `j` from row `i` (which must store it).
    fn row_remove(&mut self, i: usize, j: u32) {
        let lo = self.row_start[i];
        let len = self.row_len[i] as usize;
        let at = lo + self.arena_receivers[lo..lo + len].partition_point(|&x| x < j);
        debug_assert_eq!(self.arena_receivers.get(at), Some(&j), "missing entry");
        self.arena_receivers.copy_within(at + 1..lo + len, at);
        self.arena_factors.copy_within(at + 1..lo + len, at);
        self.row_len[i] -= 1;
    }

    /// Renames row `i`'s tail entry (receiver `old`, the row maximum)
    /// to `new`, re-seating it at the sorted position.
    fn row_rename_tail(&mut self, i: usize, old: u32, new: u32) {
        let lo = self.row_start[i];
        let len = self.row_len[i] as usize;
        debug_assert_eq!(
            self.arena_receivers[lo + len - 1],
            old,
            "tail must be the max id"
        );
        let f = self.arena_factors[lo + len - 1];
        let at = lo + self.arena_receivers[lo..lo + len - 1].partition_point(|&x| x < new);
        self.arena_receivers.copy_within(at..lo + len - 1, at + 1);
        self.arena_factors.copy_within(at..lo + len - 1, at + 1);
        self.arena_receivers[at] = new;
        self.arena_factors[at] = f;
    }

    /// Moves row `i` to the arena tail with doubled capacity, stranding
    /// its old extent (counted toward lazy compaction).
    fn relocate(&mut self, i: usize) {
        fading_obs::counter("core.sparse.row_relocations").incr();
        let lo = self.row_start[i];
        let len = self.row_len[i] as usize;
        let cap = grown_row_cap(self.row_cap[i], self.row_len[i], self.n);
        let new_lo = self.arena_receivers.len();
        self.arena_receivers.resize(new_lo + cap as usize, 0);
        self.arena_factors.resize(new_lo + cap as usize, 0.0);
        self.arena_receivers.copy_within(lo..lo + len, new_lo);
        self.arena_factors.copy_within(lo..lo + len, new_lo);
        self.dead += self.row_cap[i] as usize;
        self.row_start[i] = new_lo;
        self.row_cap[i] = cap;
    }

    /// Repacks the arena once more than half of it is dead — amortized
    /// `O(stored)` across many mutations, never on the per-mutation hot
    /// path for healthy stores.
    fn maybe_compact(&mut self) {
        if self.dead == 0 || self.dead * 2 <= self.arena_receivers.len() {
            return;
        }
        fading_obs::counter("core.sparse.compactions").incr();
        let live: usize = self.row_len.iter().map(|&l| l as usize).sum();
        let mut recv = Vec::with_capacity(live);
        let mut fact = Vec::with_capacity(live);
        for i in 0..self.n {
            let lo = self.row_start[i];
            let len = self.row_len[i] as usize;
            self.row_start[i] = recv.len();
            self.row_cap[i] = self.row_len[i];
            recv.extend_from_slice(&self.arena_receivers[lo..lo + len]);
            fact.extend_from_slice(&self.arena_factors[lo..lo + len]);
        }
        self.arena_receivers = recv;
        self.arena_factors = fact;
        self.dead = 0;
    }
}

impl InterferenceModel for SparseInterference {
    fn len(&self) -> usize {
        self.n
    }

    fn factor(&self, sender: LinkId, receiver: LinkId) -> f64 {
        SparseInterference::factor(self, sender, receiver)
    }

    fn for_each_out(&self, sender: LinkId, f: &mut dyn FnMut(LinkId, f64)) {
        SparseInterference::for_each_out(self, sender, f)
    }

    fn for_each_in(&self, receiver: LinkId, f: &mut dyn FnMut(LinkId, f64)) {
        SparseInterference::for_each_in(self, receiver, f)
    }

    fn tail_cut(&self, receiver: LinkId) -> f64 {
        SparseInterference::tail_cut(self, receiver)
    }

    fn is_exact(&self) -> bool {
        self.exact
    }

    fn stored_factors(&self) -> u64 {
        self.row_len.iter().map(|&l| l as u64).sum()
    }
}

/// `f_{i,j}` from geometry — the single code path both the stored build
/// and on-demand lookups share (and the same one the dense build uses),
/// so every value is bit-identical across backends.
#[inline]
fn pair_factor(
    channel: &RayleighChannel,
    senders: &[Point2],
    receivers: &[Point2],
    lengths: &[f64],
    powers: Option<&[f64]>,
    i: usize,
    j: usize,
) -> f64 {
    let d_ij = senders[i].distance(&receivers[j]);
    let d_jj = lengths[j];
    match powers {
        None => channel.interference_factor(d_ij, d_jj),
        Some(p) => channel.interference_factor_scaled(d_ij, d_jj, p[i], p[j]),
    }
}

/// Per-receiver truncation radius and certified cut: the distance at
/// which the worst-case factor onto a receiver of length `d_jj` drops
/// to `τ`, clamped to the instance diameter (⇒ exhaustive, cut 0). The
/// single code path `build_with_powers` and the in-place mutation
/// reconcile share, so mutated radii are bit-identical to fresh ones.
#[inline]
fn truncation_for(
    channel: &RayleighChannel,
    length: f64,
    power_ratio: f64,
    tau: f64,
    diameter: f64,
) -> (f64, f64) {
    let alpha = channel.params.alpha;
    let gamma_th = channel.params.gamma_th;
    let r = length * (gamma_th * power_ratio / tau.exp_m1()).powf(1.0 / alpha);
    if r >= diameter || !r.is_finite() {
        (diameter, 0.0)
    } else {
        (r, tau)
    }
}

/// The maximum power scale of a profile — `1.0` for uniform power
/// **and for an empty profile** (a zero-link store with explicit
/// powers previously poisoned the envelope with `fold`'s `f64::MIN`
/// identity). The single code path `build_with_powers` and
/// `refresh_envelope` share, so mutate ≡ rebuild holds bit for bit.
#[inline]
fn max_power_scale(powers: Option<&[f64]>) -> f64 {
    match powers {
        None => 1.0,
        Some([]) => 1.0,
        Some(p) => p.iter().copied().fold(f64::MIN, f64::max),
    }
}

/// Doubled row capacity for relocation, computed in 64-bit and clamped
/// to the largest useful extent (a row stores at most `n − 1`
/// receivers), so arenas near the `u32` limit cannot silently truncate
/// the capacity — the old `cap as u32` cast wrapped.
///
/// # Panics
/// Panics (checked, never wrapping) if even the clamped capacity
/// exceeds `u32::MAX` — only reachable with more than `u32::MAX + 1`
/// links, which [`fading_net::LinkSet`] already rejects.
fn grown_row_cap(cap: u32, len: u32, n: usize) -> u32 {
    let max_useful = (n.saturating_sub(1) as u64).max(len as u64 + 1);
    let grown = (cap as u64 * 2).max(4).min(max_useful);
    u32::try_from(grown).expect("sparse row capacity exceeds the u32 arena index space")
}

/// Diameter of the bounding box of all senders and receivers — an upper
/// bound on any sender→receiver distance, hence the "store everything"
/// radius cap.
fn instance_diameter(senders: &[Point2], receivers: &[Point2]) -> f64 {
    let mut min = Point2::new(f64::INFINITY, f64::INFINITY);
    let mut max = Point2::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
    for p in senders.iter().chain(receivers) {
        min = Point2::new(min.x.min(p.x), min.y.min(p.y));
        max = Point2::new(max.x.max(p.x), max.y.max(p.y));
    }
    if senders.is_empty() && receivers.is_empty() {
        return 1.0;
    }
    // Straight corner-to-corner distance; `Rect::new` would reject the
    // degenerate boxes real mutations produce (a single link, or every
    // endpoint on one axis-aligned line).
    let diag = min.distance(&max);
    if diag.is_finite() && diag > 0.0 {
        diag
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interference::InterferenceMatrix;
    use fading_channel::ChannelParams;
    use fading_math::gamma_eps;
    use fading_net::{TopologyGenerator, UniformGenerator};

    fn paper_pair(
        n: usize,
        seed: u64,
        rtol: f64,
    ) -> (LinkSet, InterferenceMatrix, SparseInterference) {
        let links = UniformGenerator::paper(n).generate(seed);
        let channel = RayleighChannel::new(ChannelParams::paper_defaults());
        let dense = InterferenceMatrix::build(&links, &channel);
        let sparse = SparseInterference::build(
            &links,
            &channel,
            gamma_eps(0.01),
            SparseConfig { tail_rtol: rtol },
        );
        (links, dense, sparse)
    }

    #[test]
    fn scalar_factors_are_bit_identical_to_dense() {
        let (links, dense, sparse) = paper_pair(40, 9, SparseConfig::DEFAULT_TAIL_RTOL);
        for i in links.ids() {
            for j in links.ids() {
                assert_eq!(
                    sparse.factor(i, j).to_bits(),
                    dense.factor(i, j).to_bits(),
                    "f({i},{j})"
                );
            }
        }
    }

    #[test]
    fn certified_config_is_exhaustive_at_paper_scale() {
        // Under the strictest cut the truncation radius (≈ 4642·d_jj at
        // α = 3) exceeds the paper region's 707-unit diameter for every
        // link, so the sparse store degenerates to an exact CSR: every
        // pair stored, all cuts zero.
        let (_, dense, sparse) = paper_pair(50, 10, SparseConfig::certified().tail_rtol);
        assert!(InterferenceModel::is_exact(&sparse));
        assert_eq!(
            InterferenceModel::stored_factors(&sparse),
            InterferenceModel::stored_factors(&dense)
        );
    }

    #[test]
    fn truncation_prunes_and_bounds_omitted_factors() {
        // A coarse cut on a spread-out instance must actually prune, and
        // every pruned factor must be below its receiver's cut.
        let (links, dense, sparse) = paper_pair(80, 11, 0.5);
        assert!(
            !InterferenceModel::is_exact(&sparse),
            "0.5·γ_ε must truncate"
        );
        assert!(
            InterferenceModel::stored_factors(&sparse) < InterferenceModel::stored_factors(&dense)
        );
        for i in links.ids() {
            let mut stored = vec![false; links.len()];
            sparse.for_each_out(i, &mut |j, f| {
                stored[j.index()] = true;
                assert_eq!(f.to_bits(), dense.factor(i, j).to_bits());
            });
            for j in links.ids() {
                if i != j && !stored[j.index()] {
                    assert!(
                        dense.factor(i, j) <= sparse.tail_cut(j) * (1.0 + 1e-12),
                        "omitted f({i},{j}) = {} exceeds cut {}",
                        dense.factor(i, j),
                        sparse.tail_cut(j)
                    );
                }
            }
        }
    }

    #[test]
    fn in_and_out_iteration_are_transposes() {
        let (links, _, sparse) = paper_pair(60, 12, 0.3);
        let n = links.len();
        let mut from_out = vec![vec![]; n];
        let mut from_in = vec![vec![]; n];
        for i in links.ids() {
            sparse.for_each_out(i, &mut |j, f| from_out[j.index()].push((i, f)));
            sparse.for_each_in(i, &mut |j, f| from_in[i.index()].push((j, f)));
        }
        for j in 0..n {
            from_out[j].sort_by_key(|&(i, _)| i);
            from_in[j].sort_by_key(|&(i, _)| i);
            assert_eq!(from_out[j], from_in[j], "receiver {j}");
        }
    }

    #[test]
    fn power_scales_honored() {
        let links = UniformGenerator::paper(30).generate(13);
        let channel = RayleighChannel::new(ChannelParams::paper_defaults());
        let powers: Vec<f64> = (0..30).map(|i| 0.5 + (i % 5) as f64 * 0.5).collect();
        let dense = InterferenceMatrix::build_with_powers(&links, &channel, Some(&powers));
        let sparse = SparseInterference::build_with_powers(
            &links,
            &channel,
            Some(&powers),
            gamma_eps(0.01),
            SparseConfig::default(),
        );
        for i in links.ids() {
            for j in links.ids() {
                assert_eq!(sparse.factor(i, j).to_bits(), dense.factor(i, j).to_bits());
            }
        }
    }

    #[test]
    fn far_field_bound_is_zero_when_exhaustive_and_positive_otherwise() {
        let (_, _, exact) = paper_pair(20, 14, SparseConfig::DEFAULT_TAIL_RTOL);
        assert_eq!(exact.far_field_packing_bound(LinkId(0), 10.0), 0.0);
        let (_, _, truncated) = paper_pair(80, 14, 0.5);
        let j = (0..truncated.len())
            .map(|j| LinkId(j as u32))
            .find(|&j| truncated.tail_cut(j) > 0.0)
            .expect("0.5·γ_ε must truncate somewhere");
        let b = truncated.far_field_packing_bound(j, 10.0);
        assert!(b > 0.0 && b.is_finite());
        // Tighter separation ⇒ more far senders fit ⇒ larger bound.
        assert!(truncated.far_field_packing_bound(j, 5.0) > b);
    }

    #[test]
    fn empty_and_singleton_instances() {
        let channel = RayleighChannel::new(ChannelParams::paper_defaults());
        let empty = LinkSet::new(fading_geom::Rect::square(1.0), vec![]);
        let s =
            SparseInterference::build(&empty, &channel, gamma_eps(0.01), SparseConfig::default());
        assert!(s.is_empty());
        assert_eq!(InterferenceModel::stored_factors(&s), 0);

        let one = UniformGenerator::paper(1).generate(15);
        let s = SparseInterference::build(&one, &channel, gamma_eps(0.01), SparseConfig::default());
        assert_eq!(s.len(), 1);
        assert_eq!(InterferenceModel::stored_factors(&s), 0);
        assert_eq!(s.factor(LinkId(0), LinkId(0)), 0.0);
    }

    /// Fresh build over the same geometry, for mutation-parity checks.
    fn rebuild_of(s: &SparseInterference) -> SparseInterference {
        let links: Vec<fading_net::Link> = (0..s.n)
            .map(|i| fading_net::Link::new(LinkId(i as u32), s.senders[i], s.receivers[i], 1.0))
            .collect();
        let region = fading_geom::Rect::square(1e6);
        SparseInterference::build_with_powers(
            &LinkSet::new(region, links),
            &s.channel,
            s.powers.as_deref(),
            s.tau / s.tail_rtol,
            SparseConfig {
                tail_rtol: s.tail_rtol,
            },
        )
    }

    #[test]
    fn add_and_remove_match_fresh_build() {
        for rtol in [SparseConfig::DEFAULT_TAIL_RTOL, 0.5] {
            let full = UniformGenerator::paper(90).generate(17);
            let channel = RayleighChannel::new(ChannelParams::paper_defaults());
            let head = {
                let keep: Vec<LinkId> = (0..60).map(LinkId).collect();
                full.restrict(&keep).0
            };
            let mut s = SparseInterference::build(
                &head,
                &channel,
                gamma_eps(0.01),
                SparseConfig { tail_rtol: rtol },
            );
            for t in 60..90 {
                let l = full.link(LinkId(t));
                s.add_link(&LinkSpec::new(l.sender, l.receiver)).unwrap();
                if t % 9 == 0 || t == 89 {
                    assert_eq!(s, rebuild_of(&s), "rtol {rtol} after add {t}");
                }
            }
            // Interleave removals (interior, tail, repeated) with adds.
            for k in [3usize, 88, 0, 40, 40] {
                s.swap_remove_link(k);
                assert_eq!(s, rebuild_of(&s), "rtol {rtol} after remove {k}");
            }
        }
    }

    #[test]
    fn powered_mutation_reconciles_the_envelope() {
        // Adding a higher-power link grows every receiver's truncation
        // radius (annulus inserts); removing it shrinks them back
        // (annulus removals). Both must land exactly on the fresh
        // build. A coarse cut keeps the store truncated so the
        // envelope actually moves.
        let links = UniformGenerator::paper(70).generate(18);
        let channel = RayleighChannel::new(ChannelParams::paper_defaults());
        let powers: Vec<f64> = (0..70).map(|i| 0.5 + (i % 4) as f64 * 0.25).collect();
        let mut s = SparseInterference::build_with_powers(
            &links,
            &channel,
            Some(&powers),
            gamma_eps(0.01),
            SparseConfig { tail_rtol: 0.5 },
        );
        assert!(!InterferenceModel::is_exact(&s), "0.5·γ_ε must truncate");
        let extra = UniformGenerator::paper(80).generate(19);
        let l = extra.link(LinkId(75));
        s.add_link(&LinkSpec::new(l.sender, l.receiver).with_power_scale(4.0))
            .unwrap();
        assert_eq!(s, rebuild_of(&s), "after high-power add");
        s.swap_remove_link(70);
        assert_eq!(s, rebuild_of(&s), "after high-power remove");
    }

    #[test]
    fn mutation_after_restrict_reconciles_sliced_radii() {
        // Restricted stores inherit the parent's radii; the first
        // mutation must pull them back to the sub-instance formula
        // before extending the store.
        let links = UniformGenerator::paper(80).generate(20);
        let channel = RayleighChannel::new(ChannelParams::paper_defaults());
        let parent = SparseInterference::build(
            &links,
            &channel,
            gamma_eps(0.01),
            SparseConfig { tail_rtol: 0.5 },
        );
        let keep: Vec<LinkId> = (0..60).map(LinkId).collect();
        let mut sub = parent.restrict(&keep);
        let l = links.link(LinkId(72));
        sub.add_link(&LinkSpec::new(l.sender, l.receiver)).unwrap();
        assert_eq!(sub, rebuild_of(&sub));
    }

    #[test]
    fn drain_and_refill() {
        let links = UniformGenerator::paper(25).generate(21);
        let channel = RayleighChannel::new(ChannelParams::paper_defaults());
        let mut s =
            SparseInterference::build(&links, &channel, gamma_eps(0.01), SparseConfig::default());
        while !s.is_empty() {
            s.swap_remove_link(s.len() / 2);
        }
        assert!(s.is_empty());
        for i in 0..25 {
            let l = links.link(LinkId(i));
            s.add_link(&LinkSpec::new(l.sender, l.receiver)).unwrap();
        }
        assert_eq!(s, rebuild_of(&s));
        assert!(InterferenceModel::stored_factors(&s) > 0);
    }

    #[test]
    fn batch_matches_sequential_and_fresh_build() {
        // apply_batch defers the envelope reconcile and compaction to
        // commit time; the result must still be bit-identical to the
        // per-mutation path (and hence the fresh build). k = 50 > 32
        // also exercises the transient-hash row gather.
        for rtol in [SparseConfig::DEFAULT_TAIL_RTOL, 0.5] {
            let full = UniformGenerator::paper(90).generate(29);
            let channel = RayleighChannel::new(ChannelParams::paper_defaults());
            let head = {
                let keep: Vec<LinkId> = (0..40).map(LinkId).collect();
                full.restrict(&keep).0
            };
            let built = SparseInterference::build(
                &head,
                &channel,
                gamma_eps(0.01),
                SparseConfig { tail_rtol: rtol },
            );
            let removes = [LinkId(35), LinkId(12), LinkId(0)];
            let specs: Vec<LinkSpec> = (40..90)
                .map(|t| {
                    let l = full.link(LinkId(t));
                    LinkSpec::new(l.sender, l.receiver)
                })
                .collect();
            let mut sequential = built.clone();
            for &k in &removes {
                sequential.swap_remove_link(k.index());
            }
            for spec in &specs {
                sequential.add_link(spec).unwrap();
            }
            let mut batched = built.clone();
            batched.apply_batch(&removes, &specs).unwrap();
            assert_eq!(batched, sequential, "rtol {rtol}");
            assert_eq!(batched, rebuild_of(&batched), "rtol {rtol} vs fresh");
        }
    }

    #[test]
    fn empty_batch_is_a_no_op_and_errors_leave_the_store_untouched() {
        let links = UniformGenerator::paper(30).generate(31);
        let channel = RayleighChannel::new(ChannelParams::paper_defaults());
        let built =
            SparseInterference::build(&links, &channel, gamma_eps(0.01), SparseConfig::default());
        let mut s = built.clone();
        s.apply_batch(&[], &[]).unwrap();
        assert_eq!(s, built, "empty batch must not touch the store");
        // A non-unit power scale on a uniform store is a typed error,
        // not a panic, and rejects the whole batch atomically.
        let extra = UniformGenerator::paper(40).generate(32);
        let l = extra.link(LinkId(35));
        let bad = LinkSpec::new(l.sender, l.receiver).with_power_scale(2.0);
        assert_eq!(
            s.apply_batch(&[LinkId(3)], &[bad]),
            Err(ValidationError::PowerProfileMismatch { scale: 2.0 })
        );
        assert!(matches!(
            s.add_link(&LinkSpec::new(l.sender, l.receiver).with_power_scale(f64::NAN)),
            Err(ValidationError::BadPowerScale {
                id: LinkId(30),
                scale,
            }) if scale.is_nan()
        ));
        assert_eq!(s, built, "rejected batches must not touch the store");
    }

    #[test]
    fn grown_row_cap_doubles_clamps_and_checks_the_boundary() {
        // Ordinary growth: double, floor of 4, clamp to n − 1.
        assert_eq!(grown_row_cap(0, 0, 10), 4);
        assert_eq!(grown_row_cap(3, 3, 100), 6);
        assert_eq!(grown_row_cap(6, 6, 8), 7, "clamped to n - 1 receivers");
        // Synthetic degree profile at the u32 boundary: doubling a
        // 2³¹-entry row used to evaluate `(cap as usize * 2) as u32`
        // = 2³² mod 2³² = **0**, a silently wrapped zero capacity. The
        // 64-bit arithmetic clamps to the largest useful extent
        // (n − 1 stored receivers) instead.
        let huge_n = u32::MAX as usize; // n − 1 = u32::MAX − 1 receivers
        assert_eq!(
            grown_row_cap(1 << 31, 2_000_000_000, huge_n),
            u32::MAX - 1,
            "doubling past u32::MAX clamps to n - 1 instead of wrapping"
        );
        assert_eq!(
            grown_row_cap(u32::MAX - 1, u32::MAX - 2, huge_n),
            u32::MAX - 1
        );
        // A full row keeps at least one insert slot of headroom even
        // when the n − 1 clamp would forbid growth.
        assert_eq!(grown_row_cap(3, 3, 4), 4);
    }

    #[test]
    #[should_panic(expected = "u32 arena index space")]
    fn grown_row_cap_rejects_past_u32() {
        // Only reachable with > u32::MAX + 1 links; must be a checked
        // panic, not a silent wrap.
        grown_row_cap(u32::MAX, u32::MAX, u32::MAX as usize + 3);
    }

    #[test]
    fn instance_diameter_survives_degenerate_boxes() {
        // A single horizontal link spans a zero-height bounding box,
        // which `Rect::new` rejects; the diameter must not go through
        // it. (Surfaced by mutating an instance down to one link.)
        let s = [Point2::new(0.0, 5.0)];
        let r = [Point2::new(3.0, 5.0)];
        assert_eq!(instance_diameter(&s, &r), 3.0);
        // Coincident endpoints and the empty set fall back to 1.
        let p = [Point2::new(2.0, 2.0)];
        assert_eq!(instance_diameter(&p, &p), 1.0);
        assert_eq!(instance_diameter(&[], &[]), 1.0);
    }

    #[test]
    fn empty_powers_do_not_poison_the_envelope() {
        // A zero-link store with an explicit (empty) power profile used
        // to set max_scale = f64::MIN via the fold identity; the first
        // add_link then reconciled against garbage. Envelope values must
        // match the uniform-power empty store exactly.
        assert_eq!(max_power_scale(Some(&[])), 1.0);
        assert_eq!(max_power_scale(None), 1.0);
        assert_eq!(max_power_scale(Some(&[0.5, 2.0])), 2.0);
        let channel = RayleighChannel::new(ChannelParams::paper_defaults());
        let empty = LinkSet::new(fading_geom::Rect::square(1.0), vec![]);
        let mut s = SparseInterference::build_with_powers(
            &empty,
            &channel,
            Some(&[]),
            gamma_eps(0.01),
            SparseConfig::default(),
        );
        assert_eq!(s.max_scale, 1.0);
        // Grow from empty with powered links; must equal a fresh build.
        let links = UniformGenerator::paper(6).generate(23);
        for i in 0..6 {
            let l = links.link(LinkId(i));
            s.add_link(&LinkSpec::new(l.sender, l.receiver).with_power_scale(1.0 + i as f64 * 0.5))
                .unwrap();
        }
        assert_eq!(s, rebuild_of(&s));
    }

    #[test]
    fn row_slices_match_for_each_out() {
        let (links, _, sparse) = paper_pair(50, 24, 0.4);
        for i in links.ids() {
            let (recv, fact) = sparse.row_slices(i);
            let mut walked = Vec::new();
            sparse.for_each_out(i, &mut |j, f| walked.push((j.0, f)));
            let zipped: Vec<(u32, f64)> = recv.iter().copied().zip(fact.iter().copied()).collect();
            assert_eq!(zipped, walked);
        }
    }

    #[test]
    #[should_panic(expected = "tail_rtol")]
    fn rejects_non_positive_tail_rtol() {
        let links = UniformGenerator::paper(3).generate(16);
        let channel = RayleighChannel::new(ChannelParams::paper_defaults());
        SparseInterference::build(
            &links,
            &channel,
            gamma_eps(0.01),
            SparseConfig { tail_rtol: 0.0 },
        );
    }
}
