//! The Fading-R-LS problem instance.

use crate::interference::InterferenceMatrix;
use fading_channel::{ChannelParams, DeterministicSinr, RayleighChannel};
use fading_math::gamma_eps;
use fading_net::{LinkId, LinkSet};

/// A complete Fading-R-LS instance: links, channel, reliability target,
/// and the precomputed interference-factor matrix.
///
/// ```
/// use fading_core::Problem;
/// use fading_net::{TopologyGenerator, UniformGenerator};
///
/// let links = UniformGenerator::paper(50).generate(1);
/// let problem = Problem::paper(links, 3.0);
/// assert_eq!(problem.len(), 50);
/// // γ_ε = ln(1/(1−ε)) with the paper's ε = 0.01
/// assert!((problem.gamma_eps() - (1.0f64 / 0.99).ln()).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Problem {
    links: LinkSet,
    channel: RayleighChannel,
    epsilon: f64,
    gamma_eps: f64,
    factors: InterferenceMatrix,
    /// Per-link transmit power scales (`None` = uniform, the paper's
    /// model). Factors, feasibility, and the simulator all honor them.
    power_scales: Option<Vec<f64>>,
}

impl Problem {
    /// Builds an instance; precomputes the `N×N` interference matrix.
    ///
    /// # Panics
    /// Panics if `epsilon` is outside `(0, 1)`.
    pub fn new(links: LinkSet, params: ChannelParams, epsilon: f64) -> Self {
        let gamma_eps = gamma_eps(epsilon); // validates epsilon
        let channel = RayleighChannel::new(params);
        let factors = InterferenceMatrix::build(&links, &channel);
        Self {
            links,
            channel,
            epsilon,
            gamma_eps,
            factors,
            power_scales: None,
        }
    }

    /// Builds an instance with per-link transmit power scales
    /// (`scale_i × P` for sender `i`) — the power-control extension.
    /// Theorem 3.1 generalizes exactly, so every factor-based algorithm
    /// and checker works unchanged on the generalized factors.
    ///
    /// # Panics
    /// Panics on length mismatch, non-positive scales, or `epsilon`
    /// outside `(0, 1)`.
    pub fn with_power_scales(
        links: LinkSet,
        params: ChannelParams,
        epsilon: f64,
        power_scales: Vec<f64>,
    ) -> Self {
        let gamma_eps = gamma_eps(epsilon);
        let channel = RayleighChannel::new(params);
        let factors = InterferenceMatrix::build_with_powers(&links, &channel, Some(&power_scales));
        Self {
            links,
            channel,
            epsilon,
            gamma_eps,
            factors,
            power_scales: Some(power_scales),
        }
    }

    /// Transmit power scale of a link (1 under uniform power).
    #[inline]
    pub fn power_scale(&self, id: LinkId) -> f64 {
        self.power_scales.as_ref().map_or(1.0, |p| p[id.index()])
    }

    /// The full power-scale vector, if power control is active.
    pub fn power_scales(&self) -> Option<&[f64]> {
        self.power_scales.as_deref()
    }

    /// The paper's evaluation configuration: `ε = 0.01` and
    /// [`ChannelParams::paper_defaults`] (or a supplied `α`).
    pub fn paper(links: LinkSet, alpha: f64) -> Self {
        Self::new(links, ChannelParams::with_alpha(alpha), 0.01)
    }

    /// The links of the instance.
    pub fn links(&self) -> &LinkSet {
        &self.links
    }

    /// Number of links `N`.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Whether the instance is empty.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// The Rayleigh channel model.
    pub fn channel(&self) -> &RayleighChannel {
        &self.channel
    }

    /// The deterministic-SINR view of the same physical parameters
    /// (used by the fading-susceptible baselines).
    pub fn deterministic_channel(&self) -> DeterministicSinr {
        DeterministicSinr::new(self.channel.params)
    }

    /// Physical parameters.
    pub fn params(&self) -> &ChannelParams {
        &self.channel.params
    }

    /// Acceptable error probability `ε`.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The feasibility budget `γ_ε = ln(1/(1−ε))`.
    pub fn gamma_eps(&self) -> f64 {
        self.gamma_eps
    }

    /// The precomputed interference factors.
    pub fn factors(&self) -> &InterferenceMatrix {
        &self.factors
    }

    /// Interference factor `f_{i,j}` (Eq. (17)).
    #[inline]
    pub fn factor(&self, sender: LinkId, receiver: LinkId) -> f64 {
        self.factors.factor(sender, receiver)
    }

    /// Rate `λ_i` of a link.
    #[inline]
    pub fn rate(&self, id: LinkId) -> f64 {
        self.links.link(id).rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fading_net::{TopologyGenerator, UniformGenerator};

    #[test]
    fn paper_instance_wires_everything() {
        let links = UniformGenerator::paper(25).generate(1);
        let p = Problem::paper(links.clone(), 3.0);
        assert_eq!(p.len(), 25);
        assert_eq!(p.epsilon(), 0.01);
        assert_eq!(p.params().alpha, 3.0);
        assert_eq!(p.factors().len(), 25);
        assert!((p.gamma_eps() - (1.0f64 / 0.99).ln()).abs() < 1e-12);
        assert_eq!(p.links(), &links);
    }

    #[test]
    fn factor_shortcut_matches_matrix() {
        let links = UniformGenerator::paper(10).generate(2);
        let p = Problem::paper(links, 3.0);
        for i in p.links().ids() {
            for j in p.links().ids() {
                assert_eq!(p.factor(i, j), p.factors().factor(i, j));
            }
        }
    }

    #[test]
    fn deterministic_view_shares_params() {
        let links = UniformGenerator::paper(5).generate(3);
        let p = Problem::paper(links, 3.5);
        assert_eq!(p.deterministic_channel().params, *p.params());
    }

    #[test]
    #[should_panic(expected = "acceptable error rate")]
    fn rejects_epsilon_one() {
        let links = UniformGenerator::paper(3).generate(4);
        Problem::new(links, ChannelParams::paper_defaults(), 1.0);
    }
}
