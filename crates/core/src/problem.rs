//! The Fading-R-LS problem instance.

use crate::interference::{InterferenceBackend, InterferenceMatrix};
use crate::mutate::{BatchReceipt, LinkIdMap, LinkSpec, MutationBatch, MutationError};
use crate::sparse::{SparseConfig, SparseInterference};
use fading_channel::{ChannelParams, DeterministicSinr, RayleighChannel};
use fading_math::gamma_eps;
use fading_net::{position_key, LinkId, LinkSet, ValidationError};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotone source of [`Problem::stamp`] values — process-global so a
/// stamp identifies one content snapshot across every live instance.
static NEXT_STAMP: AtomicU64 = AtomicU64::new(1);

/// A fresh, never-before-seen stamp (`≥ 1`; `0` is the "no cached
/// stamp" sentinel in [`crate::SchedCtx`]).
fn next_stamp() -> u64 {
    NEXT_STAMP.fetch_add(1, Ordering::Relaxed)
}

/// Which interference backend a [`Problem`] should build.
#[derive(Debug, Clone, Copy, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub enum BackendChoice {
    /// The dense `N×N` matrix — exact and exhaustive, `O(N²)` memory.
    /// The default; paper-scale results are bit-identical to the
    /// pre-trait implementation.
    #[default]
    Dense,
    /// The spatial-hash truncated store with the given cut policy.
    Sparse(SparseConfig),
    /// Dense up to [`AUTO_SPARSE_THRESHOLD`] links, sparse (default
    /// [`SparseConfig`]) above it.
    Auto,
}

/// Instance size at which [`BackendChoice::Auto`] switches to the
/// sparse backend: past ~4k links the dense matrix crosses 128 MB and
/// build time dominates small sweeps.
pub const AUTO_SPARSE_THRESHOLD: usize = 4096;

impl BackendChoice {
    /// Parses a CLI-style name: `dense`, `sparse`, or `auto`.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "dense" => Ok(Self::Dense),
            "sparse" => Ok(Self::Sparse(SparseConfig::default())),
            "auto" => Ok(Self::Auto),
            other => Err(format!(
                "unknown interference backend {other:?} (expected dense, sparse, or auto)"
            )),
        }
    }

    /// The choice resolved against an instance size.
    fn resolve(self, n: usize) -> BackendChoice {
        match self {
            Self::Auto if n > AUTO_SPARSE_THRESHOLD => Self::Sparse(SparseConfig::default()),
            Self::Auto => Self::Dense,
            other => other,
        }
    }
}

/// Duplicate-position index over the live links: the
/// [`position_key`]s of every sender and every receiver. Built lazily
/// on the first mutation that validates adds and maintained
/// incrementally by every commit, so batch validation costs `O(k)`
/// hash probes instead of the `O(kN)` per-spec scans that dominated
/// sustained churn at n ≥ 10⁵. Pure cache: derivable from `links`,
/// excluded from equality.
#[derive(Debug, Clone, Default)]
struct PositionIndex {
    senders: HashSet<(u64, u64)>,
    receivers: HashSet<(u64, u64)>,
}

/// A complete Fading-R-LS instance: links, channel, reliability target,
/// and the interference-factor backend.
///
/// ```
/// use fading_core::Problem;
/// use fading_net::{TopologyGenerator, UniformGenerator};
///
/// let links = UniformGenerator::paper(50).generate(1);
/// let problem = Problem::paper(links, 3.0);
/// assert_eq!(problem.len(), 50);
/// // γ_ε = ln(1/(1−ε)) with the paper's ε = 0.01
/// assert!((problem.gamma_eps() - (1.0f64 / 0.99).ln()).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Problem {
    links: LinkSet,
    channel: RayleighChannel,
    epsilon: f64,
    gamma_eps: f64,
    factors: InterferenceBackend,
    /// Per-link transmit power scales (`None` = uniform, the paper's
    /// model). Factors, feasibility, and the simulator all honor them.
    power_scales: Option<Vec<f64>>,
    /// Content-snapshot identity: a process-globally unique value
    /// assigned at construction and replaced by every mutation — one
    /// stamp per committed transaction ([`apply`](Self::apply) /
    /// [`add_links`](Self::add_links) /
    /// [`remove_links`](Self::remove_links) /
    /// [`update_link_rates`](Self::update_link_rates)), not per link.
    /// Equal stamps imply bit-identical content (clones share their
    /// source's stamp), so [`crate::SchedCtx`] memoization can skip its
    /// `O(n)` witness compare on a stamp hit. Excluded from
    /// `PartialEq`.
    stamp: u64,
    /// Lazy duplicate-position cache (see [`PositionIndex`]). Excluded
    /// from `PartialEq`.
    position_index: Option<PositionIndex>,
}

/// Content equality — everything except the [`stamp`](Problem::stamp)
/// identity (two independently built but bit-identical instances
/// compare equal).
impl PartialEq for Problem {
    fn eq(&self, other: &Self) -> bool {
        self.links == other.links
            && self.channel == other.channel
            && self.epsilon == other.epsilon
            && self.gamma_eps == other.gamma_eps
            && self.factors == other.factors
            && self.power_scales == other.power_scales
    }
}

impl Problem {
    /// Builds an instance with the dense backend; precomputes the `N×N`
    /// interference matrix. For non-default backends, power scales, or
    /// ε, use [`Problem::builder`].
    ///
    /// # Panics
    /// Panics if `epsilon` is outside `(0, 1)`.
    pub fn new(links: LinkSet, params: ChannelParams, epsilon: f64) -> Self {
        Self::builder(links, params).epsilon(epsilon).build()
    }

    /// Starts a [`ProblemBuilder`] — the one entry point for every
    /// non-default construction option (ε, interference backend,
    /// per-link power scales).
    pub fn builder(links: LinkSet, params: ChannelParams) -> ProblemBuilder {
        ProblemBuilder {
            links,
            params,
            epsilon: PAPER_EPSILON,
            power_scales: None,
            backend: BackendChoice::Dense,
        }
    }

    /// Builds an instance with an explicit interference backend.
    ///
    /// # Panics
    /// Panics if `epsilon` is outside `(0, 1)`.
    #[deprecated(note = "use Problem::builder(links, params).epsilon(…).backend(…).build()")]
    pub fn with_backend(
        links: LinkSet,
        params: ChannelParams,
        epsilon: f64,
        backend: BackendChoice,
    ) -> Self {
        Self::build(links, params, epsilon, None, backend)
    }

    /// Builds an instance with per-link transmit power scales
    /// (`scale_i × P` for sender `i`) — the power-control extension.
    /// Theorem 3.1 generalizes exactly, so every factor-based algorithm
    /// and checker works unchanged on the generalized factors.
    ///
    /// # Panics
    /// Panics on length mismatch, non-positive scales, or `epsilon`
    /// outside `(0, 1)`.
    #[deprecated(note = "use Problem::builder(links, params).epsilon(…).power_scales(…).build()")]
    pub fn with_power_scales(
        links: LinkSet,
        params: ChannelParams,
        epsilon: f64,
        power_scales: Vec<f64>,
    ) -> Self {
        Self::build(
            links,
            params,
            epsilon,
            Some(power_scales),
            BackendChoice::Dense,
        )
    }

    /// Power scales and a backend choice together.
    ///
    /// # Panics
    /// As `Problem::with_power_scales`.
    #[deprecated(
        note = "use Problem::builder(links, params).epsilon(…).power_scales(…).backend(…).build()"
    )]
    pub fn with_power_scales_and_backend(
        links: LinkSet,
        params: ChannelParams,
        epsilon: f64,
        power_scales: Vec<f64>,
        backend: BackendChoice,
    ) -> Self {
        Self::build(links, params, epsilon, Some(power_scales), backend)
    }

    fn build(
        links: LinkSet,
        params: ChannelParams,
        epsilon: f64,
        power_scales: Option<Vec<f64>>,
        backend: BackendChoice,
    ) -> Self {
        let gamma_eps = gamma_eps(epsilon); // validates epsilon
        let channel = RayleighChannel::new(params);
        let powers = power_scales.as_deref();
        let factors = match backend.resolve(links.len()) {
            BackendChoice::Dense => InterferenceBackend::Dense(
                InterferenceMatrix::build_with_powers(&links, &channel, powers),
            ),
            BackendChoice::Sparse(config) => InterferenceBackend::Sparse(
                SparseInterference::build_with_powers(&links, &channel, powers, gamma_eps, config),
            ),
            BackendChoice::Auto => unreachable!("resolve() eliminates Auto"),
        };
        Self {
            links,
            channel,
            epsilon,
            gamma_eps,
            factors,
            power_scales,
            stamp: next_stamp(),
            position_index: None,
        }
    }

    /// The sub-problem over `keep` (parent link ids), with ids
    /// renumbered to be dense; the returned mapping gives
    /// `sub id → parent id`.
    ///
    /// Everything the parent was configured with survives: channel
    /// parameters, `ε`, the per-link power scales (sliced to `keep`),
    /// and the interference backend. The sub-problem's interference
    /// state is *derived* from the parent's instead of rebuilt — a
    /// row/column slice of the dense matrix, a remapped CSR sub-view of
    /// the sparse store (parent truncation certificates remain valid;
    /// see [`SparseInterference::restrict`]) — so per-slot residual
    /// scheduling costs `O(k²)` copies (dense) or `O(stored)` (sparse)
    /// rather than a full geometry recompute.
    pub fn restrict(&self, keep: &[LinkId]) -> (Problem, Vec<LinkId>) {
        let _span = fading_obs::span!("problem.restrict");
        let (links, mapping) = self.links.restrict(keep);
        let power_scales = self
            .power_scales
            .as_ref()
            .map(|p| mapping.iter().map(|id| p[id.index()]).collect::<Vec<f64>>());
        let factors = match &self.factors {
            InterferenceBackend::Dense(m) => InterferenceBackend::Dense(m.restrict(&mapping)),
            InterferenceBackend::Sparse(s) => InterferenceBackend::Sparse(s.restrict(&mapping)),
        };
        fading_obs::counter!("problem.restrict.calls").incr();
        fading_obs::counter!("problem.restrict.links").add(keep.len() as u64);
        let parent_stored = self.factors.stored_factors();
        if parent_stored > 0 {
            fading_obs::gauge("problem.restrict.reuse_ratio")
                .set(factors.stored_factors() as f64 / parent_stored as f64);
        }
        let sub = Self {
            links,
            channel: self.channel,
            epsilon: self.epsilon,
            gamma_eps: self.gamma_eps,
            factors,
            power_scales,
            stamp: next_stamp(),
            position_index: None,
        };
        (sub, mapping)
    }

    /// A problem with the same links and interference state but new
    /// per-link rates (e.g. MaxWeight queue-length weights).
    /// Interference factors depend only on geometry and powers — never
    /// on rates — so no interference state is recomputed or copied
    /// beyond a clone.
    ///
    /// # Panics
    /// Panics on length mismatch or a non-positive/non-finite rate.
    pub fn with_link_rates(&self, rates: &[f64]) -> Problem {
        let mut out = self.clone();
        out.links = self.links.with_rates(rates);
        out.stamp = next_stamp();
        out
    }

    /// Appends links to the live instance in place — the inverse of
    /// [`Problem::restrict`] and the online engine's arrival path (see
    /// `docs/online.md`). New links take dense ids `n..n+k` in spec
    /// order. The interference state is *patched*, not rebuilt: the
    /// dense matrix is relaid in place and only the new rows/columns
    /// are evaluated; the sparse CSR gets the new links' rows/columns
    /// via spatial-hash gathers plus an envelope reconcile, with
    /// certified cuts only ever re-derived by the build formula (so
    /// truncation bounds stay true and verdicts never flip). The
    /// mutated instance is bit-identical (`PartialEq`) to a from-scratch
    /// build over the final link set (`tests/mutate_equivalence.rs`).
    ///
    /// On a validation error (duplicate position, bad rate, non-finite
    /// coordinate, bad power scale) nothing is changed.
    pub fn add_links(&mut self, specs: &[LinkSpec]) -> Result<Vec<LinkId>, ValidationError> {
        let _span = fading_obs::span!("problem.mutate.add");
        self.validate_adds(specs, &[]).map_err(|e| match e {
            MutationError::InvalidAdd { source, .. } => source,
            MutationError::UnknownExternal(_) => unreachable!("add_links removes nothing"),
        })?;
        let n0 = self.links.len();
        self.commit_batch(&[], specs);
        fading_obs::counter!("problem.mutate.add.calls").incr();
        fading_obs::counter!("problem.mutate.add.links").add(specs.len() as u64);
        Ok((n0..self.links.len()).map(|i| LinkId(i as u32)).collect())
    }

    /// Removes links from the live instance in place — the online
    /// engine's departure path. Ids are processed in descending order
    /// after deduplication (so earlier removals cannot renumber later
    /// victims); each removal has `Vec::swap_remove` semantics — the
    /// current tail link takes the vacated id. Returns the dense ids in
    /// the order actually applied, so a [`crate::LinkIdMap`] can mirror
    /// the renumbering step by step.
    ///
    /// The interference state is patched in place (dense: one batched
    /// column/row gather; sparse: targeted row edits plus one deferred
    /// envelope reconcile) and is bit-identical to a from-scratch build
    /// over the surviving links.
    ///
    /// # Panics
    /// Panics if any id is out of range.
    pub fn remove_links(&mut self, ids: &[LinkId]) -> Vec<LinkId> {
        let _span = fading_obs::span!("problem.mutate.remove");
        let mut order: Vec<LinkId> = ids.to_vec();
        order.sort_unstable_by(|a, b| b.cmp(a));
        order.dedup();
        assert!(
            order.first().is_none_or(|id| id.index() < self.links.len()),
            "remove_links: id out of range"
        );
        self.commit_batch(&order, &[]);
        fading_obs::counter!("problem.mutate.remove.calls").incr();
        fading_obs::counter!("problem.mutate.remove.links").add(order.len() as u64);
        order
    }

    /// Applies a whole [`MutationBatch`] transactionally — removals by
    /// external id, adds by [`LinkSpec`] — committing with **one**
    /// envelope reconciliation and **one** spatial-index patch pass for
    /// the entire batch (the per-slot entry point of the churn engine;
    /// cost model in `docs/online.md`). The map is kept in sync and the
    /// receipt reports the external handles involved.
    ///
    /// Validation is atomic: on any error neither the problem nor the
    /// map changes. An empty batch is a no-op and does not move the
    /// [`stamp`](Self::stamp).
    ///
    /// # Panics
    /// Panics if `map` does not mirror this problem (length mismatch).
    pub fn apply(
        &mut self,
        batch: &MutationBatch,
        map: &mut LinkIdMap,
    ) -> Result<BatchReceipt, MutationError> {
        assert_eq!(
            map.len(),
            self.links.len(),
            "LinkIdMap out of sync with the problem"
        );
        if batch.is_empty() {
            return Ok(BatchReceipt::default());
        }
        let _span = fading_obs::span!("problem.mutate.apply");
        let mut removes: Vec<LinkId> = Vec::with_capacity(batch.removes().len());
        for &ext in batch.removes() {
            match map.dense(ext) {
                Some(id) => removes.push(id),
                None => return Err(MutationError::UnknownExternal(ext)),
            }
        }
        removes.sort_unstable_by(|a, b| b.cmp(a));
        removes.dedup();
        self.validate_adds(batch.adds(), &removes)?;
        self.commit_batch(&removes, batch.adds());
        let mut receipt = BatchReceipt {
            added: Vec::with_capacity(batch.adds().len()),
            removed: Vec::with_capacity(removes.len()),
        };
        for &id in &removes {
            receipt.removed.push(map.on_swap_remove(id));
        }
        for _ in batch.adds() {
            receipt.added.push(map.on_add());
        }
        fading_obs::counter!("problem.mutate.batch.calls").incr();
        fading_obs::counter!("problem.mutate.batch.removed").add(removes.len() as u64);
        fading_obs::counter!("problem.mutate.batch.added").add(batch.adds().len() as u64);
        Ok(receipt)
    }

    /// Overwrites the per-link rates in place — the allocation-free
    /// mutation counterpart of [`with_link_rates`](Self::with_link_rates)
    /// for engines that reuse one sub-problem across slots (MaxWeight
    /// refreshes queue-length weights every slot). Factors depend only
    /// on geometry and powers, so no interference state is touched; the
    /// stamp moves because content changed.
    ///
    /// # Panics
    /// Panics on length mismatch or a non-positive/non-finite rate.
    pub fn update_link_rates(&mut self, rates: &[f64]) {
        self.links.set_rates(rates);
        self.stamp = next_stamp();
    }

    /// Builds the lazy duplicate-position index if absent — one `O(N)`
    /// pass; every later commit maintains it incrementally.
    fn ensure_position_index(&mut self) {
        if self.position_index.is_none() {
            let mut index = PositionIndex {
                senders: HashSet::with_capacity(self.links.len()),
                receivers: HashSet::with_capacity(self.links.len()),
            };
            for l in self.links.links() {
                index.senders.insert(position_key(&l.sender));
                index.receivers.insert(position_key(&l.receiver));
            }
            self.position_index = Some(index);
        }
    }

    /// Error-path lookup (`O(N)`, only on duplicate rejection): the
    /// live link owning a sender position key.
    fn sender_owner(&self, key: (u64, u64)) -> LinkId {
        self.links
            .links()
            .iter()
            .find(|l| position_key(&l.sender) == key)
            .map(|l| l.id)
            .expect("position index says the sender key is live")
    }

    /// As [`sender_owner`](Self::sender_owner), for receiver keys.
    fn receiver_owner(&self, key: (u64, u64)) -> LinkId {
        self.links
            .links()
            .iter()
            .find(|l| position_key(&l.receiver) == key)
            .map(|l| l.id)
            .expect("position index says the receiver key is live")
    }

    /// Validates batch adds against the live instance with `removes`
    /// (dense ids, strictly descending, deduplicated) already treated
    /// as gone. Duplicate checks are `O(1)` hash probes against the
    /// incrementally maintained [`PositionIndex`]; the errors name the
    /// *pre-removal* dense ids (the set is not yet mutated). Leaves
    /// instance content untouched.
    fn validate_adds(
        &mut self,
        specs: &[LinkSpec],
        removes: &[LinkId],
    ) -> Result<(), MutationError> {
        use ValidationError as E;
        if specs.is_empty() {
            return Ok(());
        }
        let base = self.links.len() - removes.len();
        if base + specs.len() > u32::MAX as usize {
            return Err(MutationError::InvalidAdd {
                slot: (u32::MAX as usize).saturating_sub(base),
                source: E::CapacityExceeded {
                    requested: base + specs.len(),
                },
            });
        }
        self.ensure_position_index();
        let index = self.position_index.as_ref().expect("just built");
        // Position keys freed by the removals: every live key belongs
        // to exactly one link, so a freed key is reusable in-batch.
        let mut freed_senders: HashSet<(u64, u64)> = HashSet::with_capacity(removes.len());
        let mut freed_receivers: HashSet<(u64, u64)> = HashSet::with_capacity(removes.len());
        for &id in removes {
            let l = self.links.link(id);
            freed_senders.insert(position_key(&l.sender));
            freed_receivers.insert(position_key(&l.receiver));
        }
        // Keys claimed by earlier specs of this same batch.
        let mut batch_senders: HashMap<(u64, u64), usize> = HashMap::with_capacity(specs.len());
        let mut batch_receivers: HashMap<(u64, u64), usize> = HashMap::with_capacity(specs.len());
        for (slot, spec) in specs.iter().enumerate() {
            let id = LinkId((base + slot) as u32);
            let invalid = |source| MutationError::InvalidAdd { slot, source };
            if !(spec.sender.x.is_finite()
                && spec.sender.y.is_finite()
                && spec.receiver.x.is_finite()
                && spec.receiver.y.is_finite())
            {
                return Err(invalid(E::NonFiniteCoordinate(id)));
            }
            if spec.sender.distance_sq(&spec.receiver) == 0.0 {
                return Err(invalid(E::ZeroLengthLink(id)));
            }
            if !(spec.rate.is_finite() && spec.rate > 0.0) {
                return Err(invalid(E::BadRate {
                    id,
                    rate: spec.rate,
                }));
            }
            if !(spec.power_scale.is_finite() && spec.power_scale > 0.0) {
                return Err(invalid(E::BadPowerScale {
                    id,
                    scale: spec.power_scale,
                }));
            }
            let ks = position_key(&spec.sender);
            if let Some(&first) = batch_senders.get(&ks) {
                return Err(invalid(E::DuplicateSender(
                    LinkId((base + first) as u32),
                    id,
                )));
            }
            if index.senders.contains(&ks) && !freed_senders.contains(&ks) {
                return Err(invalid(E::DuplicateSender(self.sender_owner(ks), id)));
            }
            batch_senders.insert(ks, slot);
            let kr = position_key(&spec.receiver);
            if let Some(&first) = batch_receivers.get(&kr) {
                return Err(invalid(E::DuplicateReceiver(
                    LinkId((base + first) as u32),
                    id,
                )));
            }
            if index.receivers.contains(&kr) && !freed_receivers.contains(&kr) {
                return Err(invalid(E::DuplicateReceiver(self.receiver_owner(kr), id)));
            }
            batch_receivers.insert(kr, slot);
        }
        Ok(())
    }

    /// Commits validated removals (descending, deduplicated dense ids)
    /// and adds in one transaction: links, power scales, and position
    /// index first, then **one** backend patch pass (dense: batched
    /// column/row gather plus one relayout append; sparse: one
    /// deferred-reconcile [`SparseInterference::apply_batch`]), then a
    /// single stamp bump. Infallible — callers validate first.
    fn commit_batch(&mut self, removes: &[LinkId], adds: &[LinkSpec]) {
        // First non-uniform arrival on a uniform instance: materialize
        // the all-ones profile (bit-identical factors — `scale ≡ 1`
        // scales by exactly 1.0) so the new scales have a vector to
        // extend.
        if self.power_scales.is_none() && adds.iter().any(|s| s.power_scale != 1.0) {
            self.power_scales = Some(vec![1.0; self.links.len()]);
            if let InterferenceBackend::Sparse(s) = &mut self.factors {
                s.materialize_powers();
            }
        }
        for &id in removes {
            if let Some(index) = &mut self.position_index {
                let l = self.links.link(id);
                index.senders.remove(&position_key(&l.sender));
                index.receivers.remove(&position_key(&l.receiver));
            }
            self.links.swap_remove(id);
            if let Some(p) = &mut self.power_scales {
                p.swap_remove(id.index());
            }
        }
        for spec in adds {
            if let Some(index) = &mut self.position_index {
                index.senders.insert(position_key(&spec.sender));
                index.receivers.insert(position_key(&spec.receiver));
            }
            self.links
                .append_prechecked(spec.sender, spec.receiver, spec.rate)
                .expect("specs are validated before commit");
        }
        if let Some(p) = &mut self.power_scales {
            p.extend(adds.iter().map(|s| s.power_scale));
        }
        match &mut self.factors {
            InterferenceBackend::Dense(m) => {
                m.swap_remove_batch(removes);
                if !adds.is_empty() {
                    let cells = m.append(&self.links, &self.channel, self.power_scales.as_deref());
                    fading_obs::counter!("problem.mutate.dense_cells").add(cells);
                }
            }
            InterferenceBackend::Sparse(s) => {
                s.apply_batch(removes, adds)
                    .expect("specs are validated before commit");
            }
        }
        self.stamp = next_stamp();
    }

    /// The content-snapshot stamp: process-globally unique, replaced on
    /// every mutation. Equal stamps imply bit-identical problems (the
    /// converse need not hold), which is what lets [`crate::SchedCtx`]
    /// memo checks short-circuit their `O(n)` key compare.
    #[inline]
    pub fn stamp(&self) -> u64 {
        self.stamp
    }

    /// Rebuilds the instance on `links` (same link count, possibly new
    /// geometry — e.g. after a mobility step), preserving `ε`, the
    /// channel parameters, the per-link power scales, and the
    /// interference backend choice. Geometry changed, so factors *are*
    /// recomputed — this is the drifted-topology counterpart of
    /// [`Problem::restrict`].
    ///
    /// # Panics
    /// Panics if `links` has a different link count while power scales
    /// are active.
    pub fn rebuild_with_links(&self, links: LinkSet) -> Problem {
        Self::build(
            links,
            self.channel.params,
            self.epsilon,
            self.power_scales.clone(),
            self.backend_choice(),
        )
    }

    /// The [`BackendChoice`] matching this instance's concrete backend
    /// (the resolved choice — never `Auto`).
    pub fn backend_choice(&self) -> BackendChoice {
        match &self.factors {
            InterferenceBackend::Dense(_) => BackendChoice::Dense,
            InterferenceBackend::Sparse(s) => BackendChoice::Sparse(SparseConfig {
                tail_rtol: s.tail_rtol(),
            }),
        }
    }

    /// Transmit power scale of a link (1 under uniform power).
    #[inline]
    pub fn power_scale(&self, id: LinkId) -> f64 {
        self.power_scales.as_ref().map_or(1.0, |p| p[id.index()])
    }

    /// The full power-scale vector, if power control is active.
    pub fn power_scales(&self) -> Option<&[f64]> {
        self.power_scales.as_deref()
    }

    /// The paper's evaluation configuration: `ε = 0.01` and
    /// [`ChannelParams::paper_defaults`] (or a supplied `α`).
    pub fn paper(links: LinkSet, alpha: f64) -> Self {
        Self::new(links, ChannelParams::with_alpha(alpha), PAPER_EPSILON)
    }

    /// The links of the instance.
    pub fn links(&self) -> &LinkSet {
        &self.links
    }

    /// Number of links `N`.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Whether the instance is empty.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// The Rayleigh channel model.
    pub fn channel(&self) -> &RayleighChannel {
        &self.channel
    }

    /// The deterministic-SINR view of the same physical parameters
    /// (used by the fading-susceptible baselines).
    pub fn deterministic_channel(&self) -> DeterministicSinr {
        DeterministicSinr::new(self.channel.params)
    }

    /// Physical parameters.
    pub fn params(&self) -> &ChannelParams {
        &self.channel.params
    }

    /// Acceptable error probability `ε`.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The feasibility budget `γ_ε = ln(1/(1−ε))`.
    pub fn gamma_eps(&self) -> f64 {
        self.gamma_eps
    }

    /// The interference-factor backend.
    pub fn factors(&self) -> &InterferenceBackend {
        &self.factors
    }

    /// Interference factor `f_{i,j}` (Eq. (17)) — exact under every
    /// backend.
    #[inline]
    pub fn factor(&self, sender: LinkId, receiver: LinkId) -> f64 {
        self.factors.factor(sender, receiver)
    }

    /// Rate `λ_i` of a link.
    #[inline]
    pub fn rate(&self, id: LinkId) -> f64 {
        self.links.link(id).rate
    }
}

/// The paper's evaluation reliability target, `ε = 0.01` — the builder
/// default and what [`Problem::paper`] uses.
pub const PAPER_EPSILON: f64 = 0.01;

/// Builder for [`Problem`] — the single construction path for every
/// non-default option, replacing the retired `with_backend` /
/// `with_power_scales` / `with_power_scales_and_backend` constructor
/// matrix.
///
/// ```
/// use fading_core::{BackendChoice, Problem};
/// use fading_net::{TopologyGenerator, UniformGenerator};
///
/// let links = UniformGenerator::paper(50).generate(1);
/// let problem = Problem::builder(links, fading_channel::ChannelParams::paper_defaults())
///     .epsilon(0.05)
///     .backend(BackendChoice::Auto)
///     .build();
/// assert_eq!(problem.len(), 50);
/// ```
#[derive(Debug, Clone)]
pub struct ProblemBuilder {
    links: LinkSet,
    params: ChannelParams,
    epsilon: f64,
    power_scales: Option<Vec<f64>>,
    backend: BackendChoice,
}

impl ProblemBuilder {
    /// Reliability target `ε ∈ (0,1)` (default: [`PAPER_EPSILON`]).
    /// Validated by [`build`](Self::build).
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Per-link transmit power scales (`scale_i × P` for sender `i`) —
    /// the power-control extension. Default: uniform power.
    pub fn power_scales(mut self, power_scales: Vec<f64>) -> Self {
        self.power_scales = Some(power_scales);
        self
    }

    /// Interference backend (default: [`BackendChoice::Dense`]).
    pub fn backend(mut self, backend: BackendChoice) -> Self {
        self.backend = backend;
        self
    }

    /// Builds the instance, precomputing the interference state.
    ///
    /// # Panics
    /// Panics if `epsilon` is outside `(0, 1)`, or on power-scale
    /// length mismatch / non-positive scales.
    pub fn build(self) -> Problem {
        Problem::build(
            self.links,
            self.params,
            self.epsilon,
            self.power_scales,
            self.backend,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fading_net::{TopologyGenerator, UniformGenerator};

    #[test]
    fn paper_instance_wires_everything() {
        let links = UniformGenerator::paper(25).generate(1);
        let p = Problem::paper(links.clone(), 3.0);
        assert_eq!(p.len(), 25);
        assert_eq!(p.epsilon(), 0.01);
        assert_eq!(p.params().alpha, 3.0);
        assert_eq!(p.factors().len(), 25);
        assert_eq!(p.factors().name(), "dense");
        assert!((p.gamma_eps() - (1.0f64 / 0.99).ln()).abs() < 1e-12);
        assert_eq!(p.links(), &links);
    }

    #[test]
    fn factor_shortcut_matches_matrix() {
        let links = UniformGenerator::paper(10).generate(2);
        let p = Problem::paper(links, 3.0);
        for i in p.links().ids() {
            for j in p.links().ids() {
                assert_eq!(p.factor(i, j), p.factors().factor(i, j));
            }
        }
    }

    #[test]
    fn sparse_backend_matches_dense_factors() {
        let links = UniformGenerator::paper(30).generate(5);
        let dense = Problem::paper(links.clone(), 3.0);
        let sparse = Problem::builder(links, ChannelParams::with_alpha(3.0))
            .backend(BackendChoice::Sparse(SparseConfig::default()))
            .build();
        assert_eq!(sparse.factors().name(), "sparse");
        for i in dense.links().ids() {
            for j in dense.links().ids() {
                assert_eq!(
                    dense.factor(i, j).to_bits(),
                    sparse.factor(i, j).to_bits(),
                    "f({i},{j})"
                );
            }
        }
    }

    #[test]
    fn auto_resolves_by_size() {
        let links = UniformGenerator::paper(20).generate(6);
        let p = Problem::builder(links, ChannelParams::paper_defaults())
            .backend(BackendChoice::Auto)
            .build();
        // Below the threshold Auto is dense.
        assert_eq!(p.factors().name(), "dense");
    }

    #[test]
    fn backend_choice_parses_cli_names() {
        assert_eq!(BackendChoice::parse("dense"), Ok(BackendChoice::Dense));
        assert_eq!(
            BackendChoice::parse("sparse"),
            Ok(BackendChoice::Sparse(SparseConfig::default()))
        );
        assert_eq!(BackendChoice::parse("auto"), Ok(BackendChoice::Auto));
        assert!(BackendChoice::parse("csr").is_err());
    }

    #[test]
    fn deterministic_view_shares_params() {
        let links = UniformGenerator::paper(5).generate(3);
        let p = Problem::paper(links, 3.5);
        assert_eq!(p.deterministic_channel().params, *p.params());
    }

    #[test]
    #[should_panic(expected = "acceptable error rate")]
    fn rejects_epsilon_one() {
        let links = UniformGenerator::paper(3).generate(4);
        Problem::new(links, ChannelParams::paper_defaults(), 1.0);
    }
}
