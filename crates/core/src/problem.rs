//! The Fading-R-LS problem instance.

use crate::interference::{InterferenceBackend, InterferenceMatrix};
use crate::mutate::LinkSpec;
use crate::sparse::{SparseConfig, SparseInterference};
use fading_channel::{ChannelParams, DeterministicSinr, RayleighChannel};
use fading_math::gamma_eps;
use fading_net::{LinkId, LinkSet, ValidationError};
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotone source of [`Problem::stamp`] values — process-global so a
/// stamp identifies one content snapshot across every live instance.
static NEXT_STAMP: AtomicU64 = AtomicU64::new(1);

/// A fresh, never-before-seen stamp (`≥ 1`; `0` is the "no cached
/// stamp" sentinel in [`crate::SchedCtx`]).
fn next_stamp() -> u64 {
    NEXT_STAMP.fetch_add(1, Ordering::Relaxed)
}

/// Which interference backend a [`Problem`] should build.
#[derive(Debug, Clone, Copy, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub enum BackendChoice {
    /// The dense `N×N` matrix — exact and exhaustive, `O(N²)` memory.
    /// The default; paper-scale results are bit-identical to the
    /// pre-trait implementation.
    #[default]
    Dense,
    /// The spatial-hash truncated store with the given cut policy.
    Sparse(SparseConfig),
    /// Dense up to [`AUTO_SPARSE_THRESHOLD`] links, sparse (default
    /// [`SparseConfig`]) above it.
    Auto,
}

/// Instance size at which [`BackendChoice::Auto`] switches to the
/// sparse backend: past ~4k links the dense matrix crosses 128 MB and
/// build time dominates small sweeps.
pub const AUTO_SPARSE_THRESHOLD: usize = 4096;

impl BackendChoice {
    /// Parses a CLI-style name: `dense`, `sparse`, or `auto`.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "dense" => Ok(Self::Dense),
            "sparse" => Ok(Self::Sparse(SparseConfig::default())),
            "auto" => Ok(Self::Auto),
            other => Err(format!(
                "unknown interference backend {other:?} (expected dense, sparse, or auto)"
            )),
        }
    }

    /// The choice resolved against an instance size.
    fn resolve(self, n: usize) -> BackendChoice {
        match self {
            Self::Auto if n > AUTO_SPARSE_THRESHOLD => Self::Sparse(SparseConfig::default()),
            Self::Auto => Self::Dense,
            other => other,
        }
    }
}

/// A complete Fading-R-LS instance: links, channel, reliability target,
/// and the interference-factor backend.
///
/// ```
/// use fading_core::Problem;
/// use fading_net::{TopologyGenerator, UniformGenerator};
///
/// let links = UniformGenerator::paper(50).generate(1);
/// let problem = Problem::paper(links, 3.0);
/// assert_eq!(problem.len(), 50);
/// // γ_ε = ln(1/(1−ε)) with the paper's ε = 0.01
/// assert!((problem.gamma_eps() - (1.0f64 / 0.99).ln()).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Problem {
    links: LinkSet,
    channel: RayleighChannel,
    epsilon: f64,
    gamma_eps: f64,
    factors: InterferenceBackend,
    /// Per-link transmit power scales (`None` = uniform, the paper's
    /// model). Factors, feasibility, and the simulator all honor them.
    power_scales: Option<Vec<f64>>,
    /// Content-snapshot identity: a process-globally unique value
    /// assigned at construction and replaced by every mutation
    /// ([`add_links`](Self::add_links) /
    /// [`remove_links`](Self::remove_links)). Equal stamps imply
    /// bit-identical content (clones share their source's stamp), so
    /// [`crate::SchedCtx`] memoization can skip its `O(n)` witness
    /// compare on a stamp hit. Excluded from `PartialEq`.
    stamp: u64,
}

/// Content equality — everything except the [`stamp`](Problem::stamp)
/// identity (two independently built but bit-identical instances
/// compare equal).
impl PartialEq for Problem {
    fn eq(&self, other: &Self) -> bool {
        self.links == other.links
            && self.channel == other.channel
            && self.epsilon == other.epsilon
            && self.gamma_eps == other.gamma_eps
            && self.factors == other.factors
            && self.power_scales == other.power_scales
    }
}

impl Problem {
    /// Builds an instance with the dense backend; precomputes the `N×N`
    /// interference matrix. For non-default backends, power scales, or
    /// ε, use [`Problem::builder`].
    ///
    /// # Panics
    /// Panics if `epsilon` is outside `(0, 1)`.
    pub fn new(links: LinkSet, params: ChannelParams, epsilon: f64) -> Self {
        Self::builder(links, params).epsilon(epsilon).build()
    }

    /// Starts a [`ProblemBuilder`] — the one entry point for every
    /// non-default construction option (ε, interference backend,
    /// per-link power scales).
    pub fn builder(links: LinkSet, params: ChannelParams) -> ProblemBuilder {
        ProblemBuilder {
            links,
            params,
            epsilon: PAPER_EPSILON,
            power_scales: None,
            backend: BackendChoice::Dense,
        }
    }

    /// Builds an instance with an explicit interference backend.
    ///
    /// # Panics
    /// Panics if `epsilon` is outside `(0, 1)`.
    #[deprecated(note = "use Problem::builder(links, params).epsilon(…).backend(…).build()")]
    pub fn with_backend(
        links: LinkSet,
        params: ChannelParams,
        epsilon: f64,
        backend: BackendChoice,
    ) -> Self {
        Self::build(links, params, epsilon, None, backend)
    }

    /// Builds an instance with per-link transmit power scales
    /// (`scale_i × P` for sender `i`) — the power-control extension.
    /// Theorem 3.1 generalizes exactly, so every factor-based algorithm
    /// and checker works unchanged on the generalized factors.
    ///
    /// # Panics
    /// Panics on length mismatch, non-positive scales, or `epsilon`
    /// outside `(0, 1)`.
    #[deprecated(note = "use Problem::builder(links, params).epsilon(…).power_scales(…).build()")]
    pub fn with_power_scales(
        links: LinkSet,
        params: ChannelParams,
        epsilon: f64,
        power_scales: Vec<f64>,
    ) -> Self {
        Self::build(
            links,
            params,
            epsilon,
            Some(power_scales),
            BackendChoice::Dense,
        )
    }

    /// Power scales and a backend choice together.
    ///
    /// # Panics
    /// As `Problem::with_power_scales`.
    #[deprecated(
        note = "use Problem::builder(links, params).epsilon(…).power_scales(…).backend(…).build()"
    )]
    pub fn with_power_scales_and_backend(
        links: LinkSet,
        params: ChannelParams,
        epsilon: f64,
        power_scales: Vec<f64>,
        backend: BackendChoice,
    ) -> Self {
        Self::build(links, params, epsilon, Some(power_scales), backend)
    }

    fn build(
        links: LinkSet,
        params: ChannelParams,
        epsilon: f64,
        power_scales: Option<Vec<f64>>,
        backend: BackendChoice,
    ) -> Self {
        let gamma_eps = gamma_eps(epsilon); // validates epsilon
        let channel = RayleighChannel::new(params);
        let powers = power_scales.as_deref();
        let factors = match backend.resolve(links.len()) {
            BackendChoice::Dense => InterferenceBackend::Dense(
                InterferenceMatrix::build_with_powers(&links, &channel, powers),
            ),
            BackendChoice::Sparse(config) => InterferenceBackend::Sparse(
                SparseInterference::build_with_powers(&links, &channel, powers, gamma_eps, config),
            ),
            BackendChoice::Auto => unreachable!("resolve() eliminates Auto"),
        };
        Self {
            links,
            channel,
            epsilon,
            gamma_eps,
            factors,
            power_scales,
            stamp: next_stamp(),
        }
    }

    /// The sub-problem over `keep` (parent link ids), with ids
    /// renumbered to be dense; the returned mapping gives
    /// `sub id → parent id`.
    ///
    /// Everything the parent was configured with survives: channel
    /// parameters, `ε`, the per-link power scales (sliced to `keep`),
    /// and the interference backend. The sub-problem's interference
    /// state is *derived* from the parent's instead of rebuilt — a
    /// row/column slice of the dense matrix, a remapped CSR sub-view of
    /// the sparse store (parent truncation certificates remain valid;
    /// see [`SparseInterference::restrict`]) — so per-slot residual
    /// scheduling costs `O(k²)` copies (dense) or `O(stored)` (sparse)
    /// rather than a full geometry recompute.
    pub fn restrict(&self, keep: &[LinkId]) -> (Problem, Vec<LinkId>) {
        let _span = fading_obs::span!("problem.restrict");
        let (links, mapping) = self.links.restrict(keep);
        let power_scales = self
            .power_scales
            .as_ref()
            .map(|p| mapping.iter().map(|id| p[id.index()]).collect::<Vec<f64>>());
        let factors = match &self.factors {
            InterferenceBackend::Dense(m) => InterferenceBackend::Dense(m.restrict(&mapping)),
            InterferenceBackend::Sparse(s) => InterferenceBackend::Sparse(s.restrict(&mapping)),
        };
        fading_obs::counter!("problem.restrict.calls").incr();
        fading_obs::counter!("problem.restrict.links").add(keep.len() as u64);
        let parent_stored = self.factors.stored_factors();
        if parent_stored > 0 {
            fading_obs::gauge("problem.restrict.reuse_ratio")
                .set(factors.stored_factors() as f64 / parent_stored as f64);
        }
        let sub = Self {
            links,
            channel: self.channel,
            epsilon: self.epsilon,
            gamma_eps: self.gamma_eps,
            factors,
            power_scales,
            stamp: next_stamp(),
        };
        (sub, mapping)
    }

    /// A problem with the same links and interference state but new
    /// per-link rates (e.g. MaxWeight queue-length weights).
    /// Interference factors depend only on geometry and powers — never
    /// on rates — so no interference state is recomputed or copied
    /// beyond a clone.
    ///
    /// # Panics
    /// Panics on length mismatch or a non-positive/non-finite rate.
    pub fn with_link_rates(&self, rates: &[f64]) -> Problem {
        let mut out = self.clone();
        out.links = self.links.with_rates(rates);
        out.stamp = next_stamp();
        out
    }

    /// Appends links to the live instance in place — the inverse of
    /// [`Problem::restrict`] and the online engine's arrival path (see
    /// `docs/online.md`). New links take dense ids `n..n+k` in spec
    /// order. The interference state is *patched*, not rebuilt: the
    /// dense matrix is relaid in place and only the new rows/columns
    /// are evaluated; the sparse CSR gets the new links' rows/columns
    /// via spatial-hash gathers plus an envelope reconcile, with
    /// certified cuts only ever re-derived by the build formula (so
    /// truncation bounds stay true and verdicts never flip). The
    /// mutated instance is bit-identical (`PartialEq`) to a from-scratch
    /// build over the final link set (`tests/mutate_equivalence.rs`).
    ///
    /// On a validation error (duplicate position, bad rate, non-finite
    /// coordinate) nothing is changed.
    ///
    /// # Panics
    /// Panics on a non-positive or non-finite `power_scale`.
    pub fn add_links(&mut self, specs: &[LinkSpec]) -> Result<Vec<LinkId>, ValidationError> {
        let _span = fading_obs::span!("problem.mutate.add");
        for spec in specs {
            assert!(
                spec.power_scale > 0.0 && spec.power_scale.is_finite(),
                "power scales must be positive finite, got {}",
                spec.power_scale
            );
        }
        let n0 = self.links.len();
        let mut ids = Vec::with_capacity(specs.len());
        for spec in specs {
            match self.links.append(spec.sender, spec.receiver, spec.rate) {
                Ok(id) => ids.push(id),
                Err(e) => {
                    // Appended links sit at the tail; popping them
                    // restores the original set exactly. No factor
                    // state has been touched yet.
                    while self.links.len() > n0 {
                        self.links.swap_remove(LinkId(self.links.len() as u32 - 1));
                    }
                    return Err(e);
                }
            }
        }
        // First non-uniform arrival on a uniform instance: materialize
        // the all-ones profile (bit-identical factors — `scale ≡ 1`
        // scales by exactly 1.0) so the new scales have a vector to
        // extend.
        if self.power_scales.is_none() && specs.iter().any(|s| s.power_scale != 1.0) {
            self.power_scales = Some(vec![1.0; n0]);
            if let InterferenceBackend::Sparse(s) = &mut self.factors {
                s.materialize_powers();
            }
        }
        if let Some(p) = &mut self.power_scales {
            p.extend(specs.iter().map(|s| s.power_scale));
        }
        match &mut self.factors {
            InterferenceBackend::Dense(m) => {
                let cells = m.append(&self.links, &self.channel, self.power_scales.as_deref());
                fading_obs::counter!("problem.mutate.dense_cells").add(cells);
            }
            InterferenceBackend::Sparse(s) => {
                for (spec, &id) in specs.iter().zip(&ids) {
                    let length = self.links.link(id).length();
                    let power = self.power_scales.as_ref().map(|p| p[id.index()]);
                    s.add_link(spec.sender, spec.receiver, length, power);
                }
            }
        }
        fading_obs::counter!("problem.mutate.add.calls").incr();
        fading_obs::counter!("problem.mutate.add.links").add(specs.len() as u64);
        self.stamp = next_stamp();
        Ok(ids)
    }

    /// Removes links from the live instance in place — the online
    /// engine's departure path. Ids are processed in descending order
    /// after deduplication (so earlier removals cannot renumber later
    /// victims); each removal has `Vec::swap_remove` semantics — the
    /// current tail link takes the vacated id. Returns the dense ids in
    /// the order actually applied, so a [`crate::LinkIdMap`] can mirror
    /// the renumbering step by step.
    ///
    /// The interference state is patched in place (dense: column/row
    /// swap-remove; sparse: targeted row edits plus an envelope
    /// reconcile) and is bit-identical to a from-scratch build over the
    /// surviving links.
    ///
    /// # Panics
    /// Panics if any id is out of range.
    pub fn remove_links(&mut self, ids: &[LinkId]) -> Vec<LinkId> {
        let _span = fading_obs::span!("problem.mutate.remove");
        let mut order: Vec<LinkId> = ids.to_vec();
        order.sort_unstable_by(|a, b| b.cmp(a));
        order.dedup();
        assert!(
            order.first().is_none_or(|id| id.index() < self.links.len()),
            "remove_links: id out of range"
        );
        for &id in &order {
            self.links.swap_remove(id);
            if let Some(p) = &mut self.power_scales {
                p.swap_remove(id.index());
            }
            match &mut self.factors {
                InterferenceBackend::Dense(m) => m.swap_remove(id.index()),
                InterferenceBackend::Sparse(s) => s.swap_remove_link(id.index()),
            }
        }
        fading_obs::counter!("problem.mutate.remove.calls").incr();
        fading_obs::counter!("problem.mutate.remove.links").add(order.len() as u64);
        self.stamp = next_stamp();
        order
    }

    /// The content-snapshot stamp: process-globally unique, replaced on
    /// every mutation. Equal stamps imply bit-identical problems (the
    /// converse need not hold), which is what lets [`crate::SchedCtx`]
    /// memo checks short-circuit their `O(n)` key compare.
    #[inline]
    pub fn stamp(&self) -> u64 {
        self.stamp
    }

    /// Rebuilds the instance on `links` (same link count, possibly new
    /// geometry — e.g. after a mobility step), preserving `ε`, the
    /// channel parameters, the per-link power scales, and the
    /// interference backend choice. Geometry changed, so factors *are*
    /// recomputed — this is the drifted-topology counterpart of
    /// [`Problem::restrict`].
    ///
    /// # Panics
    /// Panics if `links` has a different link count while power scales
    /// are active.
    pub fn rebuild_with_links(&self, links: LinkSet) -> Problem {
        Self::build(
            links,
            self.channel.params,
            self.epsilon,
            self.power_scales.clone(),
            self.backend_choice(),
        )
    }

    /// The [`BackendChoice`] matching this instance's concrete backend
    /// (the resolved choice — never `Auto`).
    pub fn backend_choice(&self) -> BackendChoice {
        match &self.factors {
            InterferenceBackend::Dense(_) => BackendChoice::Dense,
            InterferenceBackend::Sparse(s) => BackendChoice::Sparse(SparseConfig {
                tail_rtol: s.tail_rtol(),
            }),
        }
    }

    /// Transmit power scale of a link (1 under uniform power).
    #[inline]
    pub fn power_scale(&self, id: LinkId) -> f64 {
        self.power_scales.as_ref().map_or(1.0, |p| p[id.index()])
    }

    /// The full power-scale vector, if power control is active.
    pub fn power_scales(&self) -> Option<&[f64]> {
        self.power_scales.as_deref()
    }

    /// The paper's evaluation configuration: `ε = 0.01` and
    /// [`ChannelParams::paper_defaults`] (or a supplied `α`).
    pub fn paper(links: LinkSet, alpha: f64) -> Self {
        Self::new(links, ChannelParams::with_alpha(alpha), PAPER_EPSILON)
    }

    /// The links of the instance.
    pub fn links(&self) -> &LinkSet {
        &self.links
    }

    /// Number of links `N`.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Whether the instance is empty.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// The Rayleigh channel model.
    pub fn channel(&self) -> &RayleighChannel {
        &self.channel
    }

    /// The deterministic-SINR view of the same physical parameters
    /// (used by the fading-susceptible baselines).
    pub fn deterministic_channel(&self) -> DeterministicSinr {
        DeterministicSinr::new(self.channel.params)
    }

    /// Physical parameters.
    pub fn params(&self) -> &ChannelParams {
        &self.channel.params
    }

    /// Acceptable error probability `ε`.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The feasibility budget `γ_ε = ln(1/(1−ε))`.
    pub fn gamma_eps(&self) -> f64 {
        self.gamma_eps
    }

    /// The interference-factor backend.
    pub fn factors(&self) -> &InterferenceBackend {
        &self.factors
    }

    /// Interference factor `f_{i,j}` (Eq. (17)) — exact under every
    /// backend.
    #[inline]
    pub fn factor(&self, sender: LinkId, receiver: LinkId) -> f64 {
        self.factors.factor(sender, receiver)
    }

    /// Rate `λ_i` of a link.
    #[inline]
    pub fn rate(&self, id: LinkId) -> f64 {
        self.links.link(id).rate
    }
}

/// The paper's evaluation reliability target, `ε = 0.01` — the builder
/// default and what [`Problem::paper`] uses.
pub const PAPER_EPSILON: f64 = 0.01;

/// Builder for [`Problem`] — the single construction path for every
/// non-default option, replacing the retired `with_backend` /
/// `with_power_scales` / `with_power_scales_and_backend` constructor
/// matrix.
///
/// ```
/// use fading_core::{BackendChoice, Problem};
/// use fading_net::{TopologyGenerator, UniformGenerator};
///
/// let links = UniformGenerator::paper(50).generate(1);
/// let problem = Problem::builder(links, fading_channel::ChannelParams::paper_defaults())
///     .epsilon(0.05)
///     .backend(BackendChoice::Auto)
///     .build();
/// assert_eq!(problem.len(), 50);
/// ```
#[derive(Debug, Clone)]
pub struct ProblemBuilder {
    links: LinkSet,
    params: ChannelParams,
    epsilon: f64,
    power_scales: Option<Vec<f64>>,
    backend: BackendChoice,
}

impl ProblemBuilder {
    /// Reliability target `ε ∈ (0,1)` (default: [`PAPER_EPSILON`]).
    /// Validated by [`build`](Self::build).
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Per-link transmit power scales (`scale_i × P` for sender `i`) —
    /// the power-control extension. Default: uniform power.
    pub fn power_scales(mut self, power_scales: Vec<f64>) -> Self {
        self.power_scales = Some(power_scales);
        self
    }

    /// Interference backend (default: [`BackendChoice::Dense`]).
    pub fn backend(mut self, backend: BackendChoice) -> Self {
        self.backend = backend;
        self
    }

    /// Builds the instance, precomputing the interference state.
    ///
    /// # Panics
    /// Panics if `epsilon` is outside `(0, 1)`, or on power-scale
    /// length mismatch / non-positive scales.
    pub fn build(self) -> Problem {
        Problem::build(
            self.links,
            self.params,
            self.epsilon,
            self.power_scales,
            self.backend,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fading_net::{TopologyGenerator, UniformGenerator};

    #[test]
    fn paper_instance_wires_everything() {
        let links = UniformGenerator::paper(25).generate(1);
        let p = Problem::paper(links.clone(), 3.0);
        assert_eq!(p.len(), 25);
        assert_eq!(p.epsilon(), 0.01);
        assert_eq!(p.params().alpha, 3.0);
        assert_eq!(p.factors().len(), 25);
        assert_eq!(p.factors().name(), "dense");
        assert!((p.gamma_eps() - (1.0f64 / 0.99).ln()).abs() < 1e-12);
        assert_eq!(p.links(), &links);
    }

    #[test]
    fn factor_shortcut_matches_matrix() {
        let links = UniformGenerator::paper(10).generate(2);
        let p = Problem::paper(links, 3.0);
        for i in p.links().ids() {
            for j in p.links().ids() {
                assert_eq!(p.factor(i, j), p.factors().factor(i, j));
            }
        }
    }

    #[test]
    fn sparse_backend_matches_dense_factors() {
        let links = UniformGenerator::paper(30).generate(5);
        let dense = Problem::paper(links.clone(), 3.0);
        let sparse = Problem::builder(links, ChannelParams::with_alpha(3.0))
            .backend(BackendChoice::Sparse(SparseConfig::default()))
            .build();
        assert_eq!(sparse.factors().name(), "sparse");
        for i in dense.links().ids() {
            for j in dense.links().ids() {
                assert_eq!(
                    dense.factor(i, j).to_bits(),
                    sparse.factor(i, j).to_bits(),
                    "f({i},{j})"
                );
            }
        }
    }

    #[test]
    fn auto_resolves_by_size() {
        let links = UniformGenerator::paper(20).generate(6);
        let p = Problem::builder(links, ChannelParams::paper_defaults())
            .backend(BackendChoice::Auto)
            .build();
        // Below the threshold Auto is dense.
        assert_eq!(p.factors().name(), "dense");
    }

    #[test]
    fn backend_choice_parses_cli_names() {
        assert_eq!(BackendChoice::parse("dense"), Ok(BackendChoice::Dense));
        assert_eq!(
            BackendChoice::parse("sparse"),
            Ok(BackendChoice::Sparse(SparseConfig::default()))
        );
        assert_eq!(BackendChoice::parse("auto"), Ok(BackendChoice::Auto));
        assert!(BackendChoice::parse("csr").is_err());
    }

    #[test]
    fn deterministic_view_shares_params() {
        let links = UniformGenerator::paper(5).generate(3);
        let p = Problem::paper(links, 3.5);
        assert_eq!(p.deterministic_channel().params, *p.params());
    }

    #[test]
    #[should_panic(expected = "acceptable error rate")]
    fn rejects_epsilon_one() {
        let links = UniformGenerator::paper(3).generate(4);
        Problem::new(links, ChannelParams::paper_defaults(), 1.0);
    }
}
