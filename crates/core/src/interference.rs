//! Dense interference-factor matrix.
//!
//! `f[i][j]` is the interference factor of sender `i` on receiver `j`
//! (Eq. (17)): `ln(1 + γ_th (d_jj/d_ij)^α)` for `i ≠ j` and `0` on the
//! diagonal. Every algorithm consults these values many times, so they
//! are computed once per instance — in parallel across rows for large
//! instances, since each entry is independent.

use fading_channel::RayleighChannel;
use fading_net::{LinkId, LinkSet};
use rayon::prelude::*;

/// Row-major `N×N` matrix of interference factors.
#[derive(Debug, Clone, PartialEq)]
pub struct InterferenceMatrix {
    n: usize,
    /// `data[i * n + j] = f_{i,j}`.
    data: Vec<f64>,
}

/// Instances below this size are built sequentially; the rayon
/// fork-join overhead only pays off once rows get expensive.
const PARALLEL_THRESHOLD: usize = 64;

impl InterferenceMatrix {
    /// Computes all pairwise factors for `links` under `channel` with
    /// uniform transmit power (the paper's model).
    pub fn build(links: &LinkSet, channel: &RayleighChannel) -> Self {
        Self::build_with_powers(links, channel, None)
    }

    /// Computes factors with optional per-link power scales (`scale_i ×
    /// P` for sender `i`); `None` means uniform power. Theorem 3.1 and
    /// Corollary 3.1 hold verbatim with the generalized factors.
    ///
    /// # Panics
    /// Panics if `powers` is provided with the wrong length or a
    /// non-positive entry.
    pub fn build_with_powers(
        links: &LinkSet,
        channel: &RayleighChannel,
        powers: Option<&[f64]>,
    ) -> Self {
        let n = links.len();
        if n == 0 {
            return Self {
                n,
                data: Vec::new(),
            };
        }
        if let Some(p) = powers {
            assert_eq!(p.len(), n, "power vector length mismatch");
            assert!(
                p.iter().all(|&s| s.is_finite() && s > 0.0),
                "power scales must be positive"
            );
        }
        let mut data = vec![0.0; n * n];
        let fill_row = |i: usize, row: &mut [f64]| {
            let sender = LinkId(i as u32);
            for (j, slot) in row.iter_mut().enumerate() {
                if i != j {
                    let receiver = LinkId(j as u32);
                    let d_ij = links.sender_receiver_distance(sender, receiver);
                    let d_jj = links.length(receiver);
                    *slot = match powers {
                        None => channel.interference_factor(d_ij, d_jj),
                        Some(p) => channel.interference_factor_scaled(d_ij, d_jj, p[i], p[j]),
                    };
                }
            }
        };
        if n >= PARALLEL_THRESHOLD {
            data.par_chunks_mut(n)
                .enumerate()
                .for_each(|(i, row)| fill_row(i, row));
        } else {
            for (i, row) in data.chunks_mut(n).enumerate() {
                fill_row(i, row);
            }
        }
        Self { n, data }
    }

    /// Number of links `N`.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The factor `f_{i,j}` of sender `i` on receiver `j`.
    #[inline]
    pub fn factor(&self, sender: LinkId, receiver: LinkId) -> f64 {
        self.data[sender.index() * self.n + receiver.index()]
    }

    /// Row `i`: the factors of sender `i` on every receiver.
    #[inline]
    pub fn row(&self, sender: LinkId) -> &[f64] {
        let i = sender.index();
        &self.data[i * self.n..(i + 1) * self.n]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fading_channel::ChannelParams;
    use fading_net::{TopologyGenerator, UniformGenerator};

    fn build(n: usize, seed: u64) -> (LinkSet, InterferenceMatrix) {
        let links = UniformGenerator::paper(n).generate(seed);
        let channel = RayleighChannel::new(ChannelParams::paper_defaults());
        let m = InterferenceMatrix::build(&links, &channel);
        (links, m)
    }

    #[test]
    fn diagonal_is_zero() {
        let (links, m) = build(30, 1);
        for id in links.ids() {
            assert_eq!(m.factor(id, id), 0.0);
        }
    }

    #[test]
    fn entries_match_direct_formula() {
        let (links, m) = build(20, 2);
        let channel = RayleighChannel::new(ChannelParams::paper_defaults());
        for i in links.ids() {
            for j in links.ids() {
                if i == j {
                    continue;
                }
                let d_ij = links.sender_receiver_distance(i, j);
                let d_jj = links.length(j);
                let expect = channel.interference_factor(d_ij, d_jj);
                assert_eq!(m.factor(i, j), expect, "f({i},{j})");
            }
        }
    }

    #[test]
    fn parallel_and_sequential_agree() {
        // 100 links crosses PARALLEL_THRESHOLD; rebuild a 100-link
        // instance and check entries against the scalar formula.
        let (links, m) = build(100, 3);
        assert_eq!(m.len(), 100);
        let channel = RayleighChannel::new(ChannelParams::paper_defaults());
        for i in links.ids().step_by(7) {
            for j in links.ids().step_by(11) {
                if i == j {
                    continue;
                }
                let expect = channel
                    .interference_factor(links.sender_receiver_distance(i, j), links.length(j));
                assert_eq!(m.factor(i, j), expect);
            }
        }
    }

    #[test]
    fn row_slices_align_with_factor() {
        let (links, m) = build(15, 4);
        for i in links.ids() {
            let row = m.row(i);
            for j in links.ids() {
                assert_eq!(row[j.index()], m.factor(i, j));
            }
        }
    }

    #[test]
    fn all_factors_are_positive_off_diagonal() {
        let (links, m) = build(40, 5);
        for i in links.ids() {
            for j in links.ids() {
                if i != j {
                    assert!(m.factor(i, j) > 0.0, "f({i},{j}) must be positive");
                }
            }
        }
    }

    #[test]
    fn empty_instance() {
        let links = LinkSet::new(fading_geom::Rect::square(1.0), vec![]);
        let channel = RayleighChannel::new(ChannelParams::paper_defaults());
        let m = InterferenceMatrix::build(&links, &channel);
        assert!(m.is_empty());
    }
}
