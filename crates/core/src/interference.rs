//! Interference-factor storage — the substrate every solver consults.
//!
//! `f[i][j]` is the interference factor of sender `i` on receiver `j`
//! (Eq. (17)): `ln(1 + γ_th (d_jj/d_ij)^α)` for `i ≠ j` and `0` on the
//! diagonal. Two backends provide these values behind the
//! [`InterferenceModel`] trait:
//!
//! * [`InterferenceMatrix`] — the dense `N×N` matrix, precomputed once
//!   per instance (in parallel across rows for large instances). Exact
//!   and exhaustive; `O(N²)` time and memory, the right choice at
//!   paper sizes (`N ≤ ~4k`).
//! * [`SparseInterference`](crate::sparse::SparseInterference) — a
//!   spatial-hash truncated store holding only near-field factors, with
//!   a certified per-receiver bound on every discarded factor. `O(N·k)`
//!   memory for `k` stored neighbors per receiver — the unlock for
//!   `10⁵`-link instances. See [`crate::sparse`] for the truncation
//!   error budget.
//!
//! [`InterferenceBackend`] is the concrete enum [`Problem`] stores;
//! dispatch is static (a `match`), so the dense hot paths keep their
//! slice-based loops via [`InterferenceBackend::dense_row`].
//!
//! [`Problem`]: crate::problem::Problem

use crate::sparse::SparseInterference;
use fading_channel::RayleighChannel;
use fading_net::{LinkId, LinkSet};
use rayon::prelude::*;

/// Read access to interference factors, uniform over backends.
///
/// The contract every solver relies on:
///
/// * [`factor`](Self::factor) is **exact** for *both* backends — the
///   sparse backend recomputes unstored factors from geometry through
///   the same channel code path, so the value is bit-identical to the
///   dense entry. Scalar lookups never see truncation error.
/// * [`for_each_out`](Self::for_each_out) /
///   [`for_each_in`](Self::for_each_in) iterate only *stored* factors.
///   Under the dense backend that is every off-diagonal pair; under the
///   sparse backend every *omitted* factor is individually below
///   [`tail_cut`](Self::tail_cut) of its receiver, so a sum over a
///   selection `S` accumulated from stored factors is a lower bound
///   within `|S| · tail_cut(j)` of the true sum (see
///   [`within_budget_certified`](crate::feasibility::within_budget_certified)).
pub trait InterferenceModel {
    /// Number of links `N`.
    fn len(&self) -> usize;

    /// Whether the model covers no links.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The factor `f_{i,j}` of sender `i` on receiver `j` — exact in
    /// every backend (`0` on the diagonal).
    fn factor(&self, sender: LinkId, receiver: LinkId) -> f64;

    /// Calls `f(receiver, factor)` for every *stored* out-factor of
    /// `sender` (dense: all `j ≠ sender`).
    fn for_each_out(&self, sender: LinkId, f: &mut dyn FnMut(LinkId, f64));

    /// Calls `f(sender, factor)` for every *stored* in-factor onto
    /// `receiver` (dense: all `i ≠ receiver`).
    fn for_each_in(&self, receiver: LinkId, f: &mut dyn FnMut(LinkId, f64));

    /// Certified upper bound on any single factor onto `receiver` that
    /// the iteration methods omit. `0` means the backend is exhaustive
    /// for this receiver.
    fn tail_cut(&self, receiver: LinkId) -> f64;

    /// Whether every receiver is exhaustive (`tail_cut == 0` for all).
    fn is_exact(&self) -> bool;

    /// Number of stored off-diagonal factors (dense: `N·(N−1)`).
    fn stored_factors(&self) -> u64;
}

/// Row-major `N×N` matrix of interference factors.
#[derive(Debug, Clone, PartialEq)]
pub struct InterferenceMatrix {
    n: usize,
    /// `data[i * n + j] = f_{i,j}`.
    data: Vec<f64>,
}

/// Instances below this size are built sequentially; the rayon
/// fork-join overhead only pays off once rows get expensive.
pub(crate) const PARALLEL_THRESHOLD: usize = 64;

impl InterferenceMatrix {
    /// Computes all pairwise factors for `links` under `channel` with
    /// uniform transmit power (the paper's model).
    pub fn build(links: &LinkSet, channel: &RayleighChannel) -> Self {
        Self::build_with_powers(links, channel, None)
    }

    /// Computes factors with optional per-link power scales (`scale_i ×
    /// P` for sender `i`); `None` means uniform power. Theorem 3.1 and
    /// Corollary 3.1 hold verbatim with the generalized factors.
    ///
    /// # Panics
    /// Panics if `powers` is provided with the wrong length or a
    /// non-positive entry.
    pub fn build_with_powers(
        links: &LinkSet,
        channel: &RayleighChannel,
        powers: Option<&[f64]>,
    ) -> Self {
        let n = links.len();
        if n == 0 {
            return Self {
                n,
                data: Vec::new(),
            };
        }
        if let Some(p) = powers {
            assert_eq!(p.len(), n, "power vector length mismatch");
            assert!(
                p.iter().all(|&s| s.is_finite() && s > 0.0),
                "power scales must be positive"
            );
        }
        let mut data = vec![0.0; n * n];
        // SoA views of the receiver geometry, hoisted out of the row
        // loop: the distance lane streams rx/ry/d_jj contiguously
        // instead of striding through the AoS link array. Each d_rr
        // entry is `links.length(j)` evaluated through the same code
        // path, so the hoist is bit-transparent.
        let all = links.links();
        let rx: Vec<f64> = all.iter().map(|l| l.receiver.x).collect();
        let ry: Vec<f64> = all.iter().map(|l| l.receiver.y).collect();
        let d_rr: Vec<f64> = all.iter().map(|l| l.length()).collect();
        // One shared row closure for both branches: the parallel and
        // sequential paths must compute byte-identical rows (the
        // PARALLEL_THRESHOLD regression tests below pin this). Each row
        // is processed in cache blocks: a branch-free distance lane the
        // autovectorizer keeps in SIMD registers (sub/mul/add/sqrt are
        // IEEE-exact, so every d matches `sender_receiver_distance` bit
        // for bit), then the scalar transcendental pass over the same
        // block while it is still in L1 (`powf`/`ln_1p` are libm calls
        // whose expression must stay exactly the channel's).
        const BLOCK: usize = 64;
        let fill_row = |i: usize, row: &mut [f64]| {
            let s = all[i].sender;
            let mut dist = [0.0f64; BLOCK];
            let mut j0 = 0usize;
            while j0 < n {
                let w = (n - j0).min(BLOCK);
                for (k, d) in dist[..w].iter_mut().enumerate() {
                    let dx = s.x - rx[j0 + k];
                    let dy = s.y - ry[j0 + k];
                    *d = (dx * dx + dy * dy).sqrt();
                }
                for (k, slot) in row[j0..j0 + w].iter_mut().enumerate() {
                    let j = j0 + k;
                    if i != j {
                        *slot = match powers {
                            None => channel.interference_factor(dist[k], d_rr[j]),
                            Some(p) => {
                                channel.interference_factor_scaled(dist[k], d_rr[j], p[i], p[j])
                            }
                        };
                    }
                }
                j0 += w;
            }
        };
        if n >= PARALLEL_THRESHOLD {
            data.par_chunks_mut(n)
                .enumerate()
                .for_each(|(i, row)| fill_row(i, row));
        } else {
            for (i, row) in data.chunks_mut(n).enumerate() {
                fill_row(i, row);
            }
        }
        Self { n, data }
    }

    /// Number of links `N`.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The factor `f_{i,j}` of sender `i` on receiver `j`.
    #[inline]
    pub fn factor(&self, sender: LinkId, receiver: LinkId) -> f64 {
        self.data[sender.index() * self.n + receiver.index()]
    }

    /// Row `i`: the factors of sender `i` on every receiver.
    #[inline]
    pub fn row(&self, sender: LinkId) -> &[f64] {
        let i = sender.index();
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// Grows the matrix in place to cover `links` (the *extended* link
    /// set; the first `self.len()` links must be unchanged). Existing
    /// entries are kept verbatim; only the new rows and the new columns
    /// of old rows are evaluated — `O(N·a)` transcendentals for `a`
    /// appended links instead of the full `O(N²)` rebuild. Every entry
    /// is a pure per-pair formula evaluation, so the result is
    /// bit-identical to [`build_with_powers`] over the extended set.
    ///
    /// # Panics
    /// Panics if `links` is smaller than the current matrix or `powers`
    /// has the wrong length.
    pub fn append(
        &mut self,
        links: &LinkSet,
        channel: &RayleighChannel,
        powers: Option<&[f64]>,
    ) -> u64 {
        let n = self.n;
        let m = links.len();
        assert!(m >= n, "append cannot shrink the matrix");
        if let Some(p) = powers {
            assert_eq!(p.len(), m, "power vector length mismatch");
        }
        if m == n {
            return 0;
        }
        // Re-layout rows for the wider stride, back to front so the
        // moves never overlap destructively; new slots are filled below.
        self.data.resize(m * m, 0.0);
        for i in (1..n).rev() {
            self.data.copy_within(i * n..(i + 1) * n, i * m);
        }
        let entry = |i: usize, j: usize| -> f64 {
            if i == j {
                return 0.0;
            }
            let d_ij = links.sender_receiver_distance(LinkId(i as u32), LinkId(j as u32));
            let d_jj = links.length(LinkId(j as u32));
            match powers {
                None => channel.interference_factor(d_ij, d_jj),
                Some(p) => channel.interference_factor_scaled(d_ij, d_jj, p[i], p[j]),
            }
        };
        // New columns of old rows, then the new rows in full.
        for i in 0..n {
            for j in n..m {
                self.data[i * m + j] = entry(i, j);
            }
        }
        for i in n..m {
            for j in 0..m {
                self.data[i * m + j] = entry(i, j);
            }
        }
        self.n = m;
        (2 * n as u64 + (m - n) as u64) * (m - n) as u64
    }

    /// Removes link `k` in place with `Vec::swap_remove` semantics: row
    /// and column `n−1` move into slot `k`, matching
    /// [`LinkSet::swap_remove`]'s renumbering. No factor is recomputed —
    /// surviving entries are moved bit-for-bit, so the result equals a
    /// fresh build over the mutated link set.
    ///
    /// # Panics
    /// Panics if `k` is out of bounds.
    pub fn swap_remove(&mut self, k: usize) {
        let n = self.n;
        assert!(k < n, "link index out of bounds");
        let m = n - 1;
        // Column n−1 → column k (row n−1's own entry lands on the new
        // diagonal as the old zero diagonal entry).
        for r in 0..n {
            self.data[r * n + k] = self.data[r * n + m];
        }
        // Row n−1 → row k, columns already remapped.
        self.data.copy_within(m * n..m * n + m, k * n);
        // Compact to the narrower stride and drop the tail.
        for r in 1..m {
            self.data.copy_within(r * n..r * n + m, r * m);
        }
        self.data.truncate(m * m);
        self.n = m;
    }

    /// Removes a strictly-descending batch of links, each with the same
    /// `Vec::swap_remove` semantics as [`swap_remove`](Self::swap_remove)
    /// — but every move is performed in the original stride with only
    /// the logical size shrinking, and the matrix is compacted to the
    /// final narrower stride **once**. A batch of `r` removals costs
    /// one `O(n²)` compaction total instead of `r` of them.
    ///
    /// # Panics
    /// Panics if `ids` is not strictly descending or out of bounds.
    pub fn swap_remove_batch(&mut self, ids: &[LinkId]) {
        let n = self.n;
        assert!(
            ids.windows(2).all(|w| w[0] > w[1]),
            "batch removals must be strictly descending"
        );
        let Some(&first) = ids.first() else {
            return;
        };
        assert!(first.index() < n, "link index out of bounds");
        let mut m = n; // logical size; the stride stays n until the end
        for &id in ids {
            let k = id.index();
            m -= 1;
            // Column m → column k for every surviving row plus row m
            // itself (whose entry lands on the new diagonal as the old
            // zero diagonal entry).
            for r in 0..=m {
                self.data[r * n + k] = self.data[r * n + m];
            }
            // Row m → row k, columns already remapped.
            self.data.copy_within(m * n..m * n + m, k * n);
        }
        // One compaction to the final stride.
        for r in 1..m {
            self.data.copy_within(r * n..r * n + m, r * m);
        }
        self.data.truncate(m * m);
        self.n = m;
    }

    /// The `k×k` sub-matrix over `keep` (parent link ids, in the
    /// sub-instance's id order): entry `(a, b)` is the parent's
    /// `f_{keep[a], keep[b]}`, copied bit-for-bit. Factors depend only
    /// on pairwise geometry, which restriction does not change, so the
    /// slice equals a from-scratch rebuild of the sub-instance — minus
    /// the `O(k²)` transcendental evaluations.
    pub fn restrict(&self, keep: &[LinkId]) -> Self {
        let k = keep.len();
        let mut data = vec![0.0; k * k];
        for (a, &i) in keep.iter().enumerate() {
            let row = self.row(i);
            let out = &mut data[a * k..(a + 1) * k];
            for (b, &j) in keep.iter().enumerate() {
                out[b] = row[j.index()];
            }
        }
        Self { n: k, data }
    }
}

impl InterferenceModel for InterferenceMatrix {
    #[inline]
    fn len(&self) -> usize {
        self.n
    }

    #[inline]
    fn factor(&self, sender: LinkId, receiver: LinkId) -> f64 {
        InterferenceMatrix::factor(self, sender, receiver)
    }

    fn for_each_out(&self, sender: LinkId, f: &mut dyn FnMut(LinkId, f64)) {
        let i = sender.index();
        for (j, &v) in self.row(sender).iter().enumerate() {
            if j != i {
                f(LinkId(j as u32), v);
            }
        }
    }

    fn for_each_in(&self, receiver: LinkId, f: &mut dyn FnMut(LinkId, f64)) {
        let j = receiver.index();
        for i in 0..self.n {
            if i != j {
                f(LinkId(i as u32), self.data[i * self.n + j]);
            }
        }
    }

    #[inline]
    fn tail_cut(&self, _receiver: LinkId) -> f64 {
        0.0
    }

    #[inline]
    fn is_exact(&self) -> bool {
        true
    }

    fn stored_factors(&self) -> u64 {
        let n = self.n as u64;
        n.saturating_mul(n.saturating_sub(1))
    }
}

/// The concrete interference store a [`Problem`] carries.
///
/// An enum rather than a `dyn InterferenceModel` so `Problem` keeps
/// `Clone`/`PartialEq` and hot loops dispatch statically; the dense
/// fast path stays a contiguous slice via [`dense_row`].
///
/// [`Problem`]: crate::problem::Problem
/// [`dense_row`]: InterferenceBackend::dense_row
// One backend lives per `Problem` (never in collections), so the
// variant size gap is irrelevant and boxing would only add a pointer
// hop to every factor lookup.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum InterferenceBackend {
    /// Exhaustive `N×N` matrix.
    Dense(InterferenceMatrix),
    /// Spatial-hash truncated near-field store.
    Sparse(SparseInterference),
}

impl InterferenceBackend {
    /// Number of links `N`.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            Self::Dense(m) => m.len(),
            Self::Sparse(s) => s.len(),
        }
    }

    /// Whether the backend covers no links.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Exact factor `f_{i,j}` (both backends; see [`InterferenceModel`]).
    #[inline]
    pub fn factor(&self, sender: LinkId, receiver: LinkId) -> f64 {
        match self {
            Self::Dense(m) => m.factor(sender, receiver),
            Self::Sparse(s) => s.factor(sender, receiver),
        }
    }

    /// The dense row of `sender`, when the backend is dense — lets hot
    /// loops keep their auto-vectorized slice walks with no indirect
    /// calls. Sparse callers fall back to [`for_each_out`].
    ///
    /// [`for_each_out`]: InterferenceBackend::for_each_out
    #[inline]
    pub fn dense_row(&self, sender: LinkId) -> Option<&[f64]> {
        match self {
            Self::Dense(m) => Some(m.row(sender)),
            Self::Sparse(_) => None,
        }
    }

    /// Stored out-factors of `sender` (see [`InterferenceModel`]).
    #[inline]
    pub fn for_each_out(&self, sender: LinkId, f: &mut dyn FnMut(LinkId, f64)) {
        match self {
            Self::Dense(m) => InterferenceModel::for_each_out(m, sender, f),
            Self::Sparse(s) => s.for_each_out(sender, f),
        }
    }

    /// Stored in-factors onto `receiver` (see [`InterferenceModel`]).
    #[inline]
    pub fn for_each_in(&self, receiver: LinkId, f: &mut dyn FnMut(LinkId, f64)) {
        match self {
            Self::Dense(m) => InterferenceModel::for_each_in(m, receiver, f),
            Self::Sparse(s) => s.for_each_in(receiver, f),
        }
    }

    /// Certified bound on any omitted factor onto `receiver`.
    #[inline]
    pub fn tail_cut(&self, receiver: LinkId) -> f64 {
        match self {
            Self::Dense(_) => 0.0,
            Self::Sparse(s) => s.tail_cut(receiver),
        }
    }

    /// Whether iteration is exhaustive for every receiver.
    pub fn is_exact(&self) -> bool {
        match self {
            Self::Dense(_) => true,
            Self::Sparse(s) => InterferenceModel::is_exact(s),
        }
    }

    /// Number of stored off-diagonal factors.
    pub fn stored_factors(&self) -> u64 {
        match self {
            Self::Dense(m) => InterferenceModel::stored_factors(m),
            Self::Sparse(s) => InterferenceModel::stored_factors(s),
        }
    }

    /// Backend name for logs and manifests.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Dense(_) => "dense",
            Self::Sparse(_) => "sparse",
        }
    }

    /// The dense matrix, when dense.
    pub fn as_dense(&self) -> Option<&InterferenceMatrix> {
        match self {
            Self::Dense(m) => Some(m),
            Self::Sparse(_) => None,
        }
    }

    /// The sparse store, when sparse.
    pub fn as_sparse(&self) -> Option<&SparseInterference> {
        match self {
            Self::Dense(_) => None,
            Self::Sparse(s) => Some(s),
        }
    }
}

impl InterferenceModel for InterferenceBackend {
    fn len(&self) -> usize {
        InterferenceBackend::len(self)
    }

    fn factor(&self, sender: LinkId, receiver: LinkId) -> f64 {
        InterferenceBackend::factor(self, sender, receiver)
    }

    fn for_each_out(&self, sender: LinkId, f: &mut dyn FnMut(LinkId, f64)) {
        InterferenceBackend::for_each_out(self, sender, f)
    }

    fn for_each_in(&self, receiver: LinkId, f: &mut dyn FnMut(LinkId, f64)) {
        InterferenceBackend::for_each_in(self, receiver, f)
    }

    fn tail_cut(&self, receiver: LinkId) -> f64 {
        InterferenceBackend::tail_cut(self, receiver)
    }

    fn is_exact(&self) -> bool {
        InterferenceBackend::is_exact(self)
    }

    fn stored_factors(&self) -> u64 {
        InterferenceBackend::stored_factors(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fading_channel::ChannelParams;
    use fading_net::{TopologyGenerator, UniformGenerator};

    fn build(n: usize, seed: u64) -> (LinkSet, InterferenceMatrix) {
        let links = UniformGenerator::paper(n).generate(seed);
        let channel = RayleighChannel::new(ChannelParams::paper_defaults());
        let m = InterferenceMatrix::build(&links, &channel);
        (links, m)
    }

    #[test]
    fn diagonal_is_zero() {
        let (links, m) = build(30, 1);
        for id in links.ids() {
            assert_eq!(m.factor(id, id), 0.0);
        }
    }

    #[test]
    fn entries_match_direct_formula() {
        let (links, m) = build(20, 2);
        let channel = RayleighChannel::new(ChannelParams::paper_defaults());
        for i in links.ids() {
            for j in links.ids() {
                if i == j {
                    continue;
                }
                let d_ij = links.sender_receiver_distance(i, j);
                let d_jj = links.length(j);
                let expect = channel.interference_factor(d_ij, d_jj);
                assert_eq!(m.factor(i, j), expect, "f({i},{j})");
            }
        }
    }

    #[test]
    fn parallel_and_sequential_agree() {
        // 100 links crosses PARALLEL_THRESHOLD; rebuild a 100-link
        // instance and check entries against the scalar formula.
        let (links, m) = build(100, 3);
        assert_eq!(m.len(), 100);
        let channel = RayleighChannel::new(ChannelParams::paper_defaults());
        for i in links.ids().step_by(7) {
            for j in links.ids().step_by(11) {
                if i == j {
                    continue;
                }
                let expect = channel
                    .interference_factor(links.sender_receiver_distance(i, j), links.length(j));
                assert_eq!(m.factor(i, j), expect);
            }
        }
    }

    #[test]
    fn build_is_identical_across_the_parallel_threshold() {
        // Regression pin: crossing PARALLEL_THRESHOLD must not change a
        // single bit of the output. n = 63 builds sequentially, n = 64
        // switches to rayon, n = 65 stays parallel; all three must match
        // an entry-by-entry scalar rebuild exactly.
        assert_eq!(PARALLEL_THRESHOLD, 64);
        let channel = RayleighChannel::new(ChannelParams::paper_defaults());
        for n in [
            PARALLEL_THRESHOLD - 1,
            PARALLEL_THRESHOLD,
            PARALLEL_THRESHOLD + 1,
        ] {
            let links = UniformGenerator::paper(n).generate(20170714);
            let m = InterferenceMatrix::build(&links, &channel);
            for i in links.ids() {
                for j in links.ids() {
                    let expect = if i == j {
                        0.0
                    } else {
                        channel.interference_factor(
                            links.sender_receiver_distance(i, j),
                            links.length(j),
                        )
                    };
                    assert!(
                        m.factor(i, j).to_bits() == expect.to_bits(),
                        "n={n}: f({i},{j}) = {} differs from scalar {expect}",
                        m.factor(i, j)
                    );
                }
            }
        }
    }

    #[test]
    fn powered_build_is_identical_across_the_parallel_threshold() {
        // Same pin for the power-scaled branch of the shared closure.
        let channel = RayleighChannel::new(ChannelParams::paper_defaults());
        for n in [
            PARALLEL_THRESHOLD - 1,
            PARALLEL_THRESHOLD,
            PARALLEL_THRESHOLD + 1,
        ] {
            let links = UniformGenerator::paper(n).generate(42);
            let powers: Vec<f64> = (0..n).map(|i| 0.5 + (i % 7) as f64 * 0.25).collect();
            let m = InterferenceMatrix::build_with_powers(&links, &channel, Some(&powers));
            for i in links.ids() {
                for j in links.ids() {
                    let expect = if i == j {
                        0.0
                    } else {
                        channel.interference_factor_scaled(
                            links.sender_receiver_distance(i, j),
                            links.length(j),
                            powers[i.index()],
                            powers[j.index()],
                        )
                    };
                    assert!(
                        m.factor(i, j).to_bits() == expect.to_bits(),
                        "n={n}: scaled f({i},{j}) mismatch"
                    );
                }
            }
        }
    }

    #[test]
    fn row_slices_align_with_factor() {
        let (links, m) = build(15, 4);
        for i in links.ids() {
            let row = m.row(i);
            for j in links.ids() {
                assert_eq!(row[j.index()], m.factor(i, j));
            }
        }
    }

    #[test]
    fn all_factors_are_positive_off_diagonal() {
        let (links, m) = build(40, 5);
        for i in links.ids() {
            for j in links.ids() {
                if i != j {
                    assert!(m.factor(i, j) > 0.0, "f({i},{j}) must be positive");
                }
            }
        }
    }

    #[test]
    fn empty_instance() {
        let links = LinkSet::new(fading_geom::Rect::square(1.0), vec![]);
        let channel = RayleighChannel::new(ChannelParams::paper_defaults());
        let m = InterferenceMatrix::build(&links, &channel);
        assert!(m.is_empty());
        assert_eq!(InterferenceModel::stored_factors(&m), 0);
    }

    #[test]
    fn dense_model_iteration_matches_rows() {
        let (links, m) = build(12, 6);
        for i in links.ids() {
            let mut seen = vec![];
            InterferenceModel::for_each_out(&m, i, &mut |j, f| seen.push((j, f)));
            assert_eq!(seen.len(), links.len() - 1);
            for (j, f) in seen {
                assert_ne!(j, i, "diagonal must be skipped");
                assert_eq!(f, m.factor(i, j));
            }
            let mut inbound = vec![];
            InterferenceModel::for_each_in(&m, i, &mut |j, f| inbound.push((j, f)));
            assert_eq!(inbound.len(), links.len() - 1);
            for (j, f) in inbound {
                assert_eq!(f, m.factor(j, i));
            }
        }
        assert!(InterferenceModel::is_exact(&m));
        assert_eq!(InterferenceModel::tail_cut(&m, LinkId(0)), 0.0);
        assert_eq!(InterferenceModel::stored_factors(&m), 12 * 11);
    }

    #[test]
    fn append_matches_fresh_build() {
        let channel = RayleighChannel::new(ChannelParams::paper_defaults());
        // Cross PARALLEL_THRESHOLD so the fresh reference build takes
        // the rayon path while append fills scalar — must still match
        // bit for bit.
        let full = UniformGenerator::paper(70).generate(8);
        let head = {
            let keep: Vec<LinkId> = (0..50).map(LinkId).collect();
            full.restrict(&keep).0
        };
        let mut m = InterferenceMatrix::build(&head, &channel);
        let added = m.append(&full, &channel, None);
        assert_eq!(added, 70 * 70 - 50 * 50);
        let fresh = InterferenceMatrix::build(&full, &channel);
        assert_eq!(m, fresh);
        // Power-scaled variant.
        let powers: Vec<f64> = (0..70).map(|i| 0.5 + (i % 5) as f64 * 0.375).collect();
        let mut m = InterferenceMatrix::build_with_powers(&head, &channel, Some(&powers[..50]));
        m.append(&full, &channel, Some(&powers));
        assert_eq!(
            m,
            InterferenceMatrix::build_with_powers(&full, &channel, Some(&powers))
        );
    }

    #[test]
    fn swap_remove_matches_fresh_build() {
        let channel = RayleighChannel::new(ChannelParams::paper_defaults());
        let mut links = UniformGenerator::paper(40).generate(9);
        let mut m = InterferenceMatrix::build(&links, &channel);
        // Interior, tail, and repeated removals.
        for k in [7usize, 38, 0, 20] {
            m.swap_remove(k);
            links.swap_remove(LinkId(k as u32));
            assert_eq!(m, InterferenceMatrix::build(&links, &channel), "k={k}");
        }
        // Drain to empty.
        while !m.is_empty() {
            m.swap_remove(m.len() - 1);
        }
        assert!(m.is_empty());
    }

    #[test]
    fn swap_remove_batch_matches_sequential() {
        let channel = RayleighChannel::new(ChannelParams::paper_defaults());
        let links = UniformGenerator::paper(40).generate(9);
        let built = InterferenceMatrix::build(&links, &channel);
        // Interior, tail, and head in one batch (descending).
        let ids = [LinkId(38), LinkId(20), LinkId(7), LinkId(0)];
        let mut sequential = built.clone();
        for &id in &ids {
            sequential.swap_remove(id.index());
        }
        let mut batched = built.clone();
        batched.swap_remove_batch(&ids);
        assert_eq!(batched, sequential);
        // Empty batch is a no-op; a full drain truncates to zero.
        batched.swap_remove_batch(&[]);
        assert_eq!(batched, sequential);
        let all: Vec<LinkId> = (0..batched.len() as u32).rev().map(LinkId).collect();
        batched.swap_remove_batch(&all);
        assert!(batched.is_empty());
    }

    #[test]
    fn backend_enum_delegates_to_dense() {
        let (links, m) = build(10, 7);
        let backend = InterferenceBackend::Dense(m.clone());
        assert_eq!(backend.len(), 10);
        assert_eq!(backend.name(), "dense");
        assert!(backend.is_exact());
        assert!(backend.as_dense().is_some());
        assert!(backend.as_sparse().is_none());
        for i in links.ids() {
            assert_eq!(backend.dense_row(i), Some(m.row(i)));
            for j in links.ids() {
                assert_eq!(backend.factor(i, j), m.factor(i, j));
            }
        }
    }
}
