//! Replayable schedule certificates.
//!
//! A decision trace ([`fading_obs::trace`]) is more than a log: it is a
//! *certificate* of the schedule it produced. This module replays a
//! trace against the original [`Problem`], reconstructing the schedule
//! purely from the recorded decision sequence while checking every
//! invariant the emitting algorithm claims:
//!
//! * **Elimination traces** (RLE, ApproxDiversity) — picks must follow
//!   the shortest-first order among surviving links; every `Radius`
//!   elimination must actually lie inside the picked receiver's
//!   `c₁·d_ii` disk; every `BudgetDebit` must equal the recomputed
//!   interference factor `f_{i,j}` (Eq. (17)) and leave the recorded
//!   remaining budget; every `BudgetExceeded` elimination must have a
//!   ledger above `c₂·budget` at that moment.
//! * **Grid traces** (LDP, ApproxLogN) — per-square winners of the
//!   recorded (class, color) are recomputed from geometry, and each
//!   link's recorded fate (picked / out of class / lost its square /
//!   wrong color) must match.
//! * **Generic traces** (greedy, B&B, annealing, …) — membership
//!   consistency between the picks and the final `End` record.
//!
//! When the trace header claims the schedule is *certified*
//! (`γ_ε`-feasible by construction), the replay additionally audits the
//! full interference ledger: every scheduled link's accumulated factor
//! sum from all other scheduled links must stay within `γ_ε`
//! (Corollary 3.1), via [`is_feasible`].
//!
//! Replay is exact, not approximate: factors are recomputed through the
//! same channel code path the schedulers used and compared bitwise
//! (JSONL encodes `f64` round-trip exactly), so a single flipped cause,
//! inflated debit, or substituted link id is rejected.

use crate::feasibility::is_feasible;
use crate::problem::Problem;
use crate::schedule::Schedule;
use fading_net::LinkId;
use fading_obs::{ElimCause, Trace, TraceEvent};

/// The verdict of replaying one trace block: the reconstructed
/// schedule plus what was checked along the way.
#[derive(Debug, Clone, PartialEq)]
pub struct Certificate {
    /// Scheduler name from the block header.
    pub scheduler: String,
    /// The schedule reconstructed from the decision sequence.
    pub schedule: Schedule,
    /// Whether the full γ_ε ledger was audited (only claimed-certified
    /// blocks are held to Corollary 3.1).
    pub ledger_checked: bool,
    /// Number of `Pick` records replayed.
    pub picks: usize,
    /// Number of `Eliminate` records replayed.
    pub eliminations: usize,
    /// Number of `BudgetDebit` records replayed.
    pub debits: usize,
}

/// Replays every scheduler block of `trace` against `problem`.
///
/// Fails on incomplete (ring-truncated) traces and on multi-slot
/// traces: slot blocks schedule *residual* renumbered instances the
/// caller does not have, so only single-shot traces are verifiable
/// against the parent problem.
pub fn replay_trace(problem: &Problem, trace: &Trace) -> Result<Vec<Certificate>, String> {
    if !trace.is_complete() {
        return Err(format!(
            "trace is incomplete: {} events were dropped by the ring buffer",
            trace.dropped
        ));
    }
    if trace
        .events
        .iter()
        .any(|e| matches!(e, TraceEvent::SlotStart { .. } | TraceEvent::SlotEnd { .. }))
    {
        return Err(
            "trace contains multi-slot blocks whose residual instances are not available; \
             replay supports single-shot traces only"
                .to_string(),
        );
    }
    let mut certs = Vec::new();
    for block in trace.blocks() {
        certs.push(replay_block(problem, block)?);
    }
    if certs.is_empty() {
        return Err("trace contains no scheduler blocks".to_string());
    }
    Ok(certs)
}

/// Replays a trace and asserts the final block reproduces `expected`
/// exactly. This is the full certificate check: decision sequence ⇒
/// schedule ⇒ equality with what the run emitted.
pub fn verify_schedule(
    problem: &Problem,
    trace: &Trace,
    expected: &Schedule,
) -> Result<Certificate, String> {
    let certs = replay_trace(problem, trace)?;
    let cert = certs.into_iter().next_back().expect("non-empty certs");
    if &cert.schedule != expected {
        return Err(format!(
            "replayed schedule ({} links) does not match the emitted schedule ({} links)",
            cert.schedule.len(),
            expected.len()
        ));
    }
    Ok(cert)
}

/// Replays one contiguous block (header through `End`).
pub fn replay_block(problem: &Problem, events: &[TraceEvent]) -> Result<Certificate, String> {
    match events.first() {
        Some(TraceEvent::ElimStart { .. }) => replay_elim(problem, events),
        Some(TraceEvent::GridStart { .. }) => replay_grid(problem, events),
        Some(TraceEvent::AlgoStart { .. }) => replay_algo(problem, events),
        Some(other) => Err(format!("block does not start with a header: {other:?}")),
        None => Err("empty trace block".to_string()),
    }
}

/// Audits the full γ_ε ledger of a claimed-certified schedule.
fn audit_ledger(problem: &Problem, schedule: &Schedule, scheduler: &str) -> Result<(), String> {
    if is_feasible(problem, schedule) {
        Ok(())
    } else {
        Err(format!(
            "{scheduler}: certified schedule violates the γ_ε budget (Corollary 3.1)"
        ))
    }
}

fn replay_elim(problem: &Problem, events: &[TraceEvent]) -> Result<Certificate, String> {
    let TraceEvent::ElimStart {
        scheduler,
        n,
        metric,
        budget,
        threshold,
        c1,
        c2,
    } = &events[0]
    else {
        unreachable!("caller dispatched on ElimStart");
    };
    let n = *n as usize;
    if n != problem.len() {
        return Err(format!(
            "{scheduler}: trace is for {n} links, problem has {}",
            problem.len()
        ));
    }
    let fading = match metric.as_str() {
        "fading" => true,
        "deterministic" => false,
        other => return Err(format!("{scheduler}: unknown metric {other:?}")),
    };
    let expected_budget = if fading { problem.gamma_eps() } else { 1.0 };
    if *budget != expected_budget {
        return Err(format!(
            "{scheduler}: recorded budget {budget} ≠ recomputed {expected_budget}"
        ));
    }
    if *threshold != c2 * budget {
        return Err(format!(
            "{scheduler}: recorded threshold {threshold} ≠ c₂·budget {}",
            c2 * budget
        ));
    }
    let links = problem.links();
    let contribution = |f: f64| if fading { f } else { f.exp_m1() };

    // The emitting algorithm's pick order: shortest first, ties by id.
    let mut order: Vec<LinkId> = links.ids().collect();
    order.sort_by(|&a, &b| links.length(a).total_cmp(&links.length(b)).then(a.cmp(&b)));
    let mut next = 0usize; // first not-yet-skipped position in `order`

    let mut alive = vec![true; n];
    let mut acc = vec![0.0f64; n];
    let mut picks: Vec<LinkId> = Vec::new();
    let mut last_pick: Option<LinkId> = None;
    let mut eliminations = 0usize;
    let mut debits = 0usize;
    let mut scheduled: Option<&[u32]> = None;

    for event in &events[1..] {
        if scheduled.is_some() {
            return Err(format!("{scheduler}: events after End: {event:?}"));
        }
        match event {
            TraceEvent::Pick { link } => {
                let id = check_link(*link, n, scheduler)?;
                if !alive[id.index()] {
                    return Err(format!("{scheduler}: picked dead link {link}"));
                }
                // Shortest-first: no shorter link may still be alive.
                while next < order.len() && !alive[order[next].index()] {
                    next += 1;
                }
                if next >= order.len() || order[next] != id {
                    return Err(format!(
                        "{scheduler}: pick {link} violates shortest-first order \
                         (expected link {})",
                        order.get(next).map_or(u32::MAX, |l| l.0)
                    ));
                }
                alive[id.index()] = false;
                last_pick = Some(id);
                picks.push(id);
            }
            TraceEvent::Eliminate { link, cause, by } => {
                let id = check_link(*link, n, scheduler)?;
                if !alive[id.index()] {
                    return Err(format!("{scheduler}: eliminated dead link {link}"));
                }
                let Some(pick) = last_pick else {
                    return Err(format!("{scheduler}: elimination before any pick"));
                };
                if *by != Some(pick.0) {
                    return Err(format!(
                        "{scheduler}: elimination of {link} attributed to {by:?}, \
                         but the active pick is {}",
                        pick.0
                    ));
                }
                match cause {
                    ElimCause::Radius => {
                        let radius = c1 * links.length(pick);
                        let d_sq = links
                            .link(id)
                            .sender
                            .distance_sq(&links.link(pick).receiver);
                        if d_sq > radius * radius {
                            return Err(format!(
                                "{scheduler}: link {link} eliminated by radius but its \
                                 sender is outside the c₁·d_ii disk of pick {} \
                                 ({} > {radius})",
                                pick.0,
                                d_sq.sqrt()
                            ));
                        }
                    }
                    ElimCause::BudgetExceeded => {
                        if acc[id.index()] <= *threshold {
                            return Err(format!(
                                "{scheduler}: link {link} eliminated for budget but its \
                                 ledger {} is within the threshold {threshold}",
                                acc[id.index()]
                            ));
                        }
                    }
                    other => {
                        return Err(format!(
                            "{scheduler}: cause {other:?} is impossible in an \
                             elimination trace"
                        ));
                    }
                }
                alive[id.index()] = false;
                eliminations += 1;
            }
            TraceEvent::BudgetDebit {
                receiver,
                from,
                factor,
                remaining,
            } => {
                let id = check_link(*receiver, n, scheduler)?;
                let Some(pick) = last_pick else {
                    return Err(format!("{scheduler}: debit before any pick"));
                };
                if *from != pick.0 {
                    return Err(format!(
                        "{scheduler}: debit on {receiver} from {from}, but the active \
                         pick is {}",
                        pick.0
                    ));
                }
                if !alive[id.index()] {
                    return Err(format!("{scheduler}: debit on dead link {receiver}"));
                }
                let expected = contribution(problem.factor(pick, id));
                if *factor != expected {
                    return Err(format!(
                        "{scheduler}: debit on {receiver} records factor {factor}, \
                         recomputation gives {expected}"
                    ));
                }
                acc[id.index()] += factor;
                if *remaining != threshold - acc[id.index()] {
                    return Err(format!(
                        "{scheduler}: debit on {receiver} records remaining {remaining}, \
                         ledger says {}",
                        threshold - acc[id.index()]
                    ));
                }
                debits += 1;
            }
            TraceEvent::End { scheduled: s } => scheduled = Some(s),
            other => return Err(format!("{scheduler}: unexpected event {other:?}")),
        }
    }
    let schedule = finish_block(scheduler, n, &alive, picks, scheduled, true)?;
    if fading {
        audit_ledger(problem, &schedule, scheduler)?;
    }
    Ok(Certificate {
        scheduler: scheduler.clone(),
        schedule,
        ledger_checked: fading,
        picks: 0, // overwritten below
        eliminations,
        debits,
    }
    .with_picks())
}

fn replay_grid(problem: &Problem, events: &[TraceEvent]) -> Result<Certificate, String> {
    use fading_geom::GridPartition;
    use fading_net::diversity::magnitude;
    let TraceEvent::GridStart {
        scheduler,
        n,
        scale,
        nested,
        certified,
    } = &events[0]
    else {
        unreachable!("caller dispatched on GridStart");
    };
    let n = *n as usize;
    if n != problem.len() {
        return Err(format!(
            "{scheduler}: trace is for {n} links, problem has {}",
            problem.len()
        ));
    }
    let Some(TraceEvent::ClassColorChosen {
        class,
        color,
        utility,
    }) = events.get(1)
    else {
        return Err(format!(
            "{scheduler}: grid block must record the chosen (class, color) first"
        ));
    };
    let links = problem.links();
    let delta = links
        .min_length()
        .ok_or_else(|| format!("{scheduler}: grid trace on an empty instance"))?;

    // Recompute the per-square winners of the recorded class.
    let cell = 2f64.powi(*class as i32 + 1) * scale * delta;
    let grid = GridPartition::new(links.region(), cell);
    let in_class = |length: f64| {
        let m = magnitude(length, delta);
        if *nested {
            m <= *class
        } else {
            m == *class
        }
    };
    let mut per_cell: std::collections::HashMap<fading_geom::CellIndex, LinkId> =
        std::collections::HashMap::new();
    for link in links.links() {
        if !in_class(link.length()) {
            continue;
        }
        let cell_idx = grid.cell_of(&link.receiver);
        per_cell
            .entry(cell_idx)
            .and_modify(|cur| {
                let cur_link = links.link(*cur);
                let better = (link.rate, -link.length(), std::cmp::Reverse(link.id))
                    > (
                        cur_link.rate,
                        -cur_link.length(),
                        std::cmp::Reverse(cur_link.id),
                    );
                if better {
                    *cur = link.id;
                }
            })
            .or_insert(link.id);
    }

    // The per-link records follow in id order; each must match the
    // link's recomputed fate.
    let mut picks: Vec<LinkId> = Vec::new();
    let mut eliminations = 0usize;
    let body = &events[2..];
    if body.len() != n + 1 {
        return Err(format!(
            "{scheduler}: grid block has {} per-link records for {n} links",
            body.len().saturating_sub(1)
        ));
    }
    for (link, event) in links.links().iter().zip(body) {
        let expected: TraceEvent = if !in_class(link.length()) {
            TraceEvent::Eliminate {
                link: link.id.0,
                cause: ElimCause::ClassFiltered,
                by: None,
            }
        } else {
            let cell_idx = grid.cell_of(&link.receiver);
            let winner = per_cell[&cell_idx];
            if winner != link.id {
                TraceEvent::Eliminate {
                    link: link.id.0,
                    cause: ElimCause::ColorConflict,
                    by: Some(winner.0),
                }
            } else if grid.color_of(cell_idx).0 as u32 != *color {
                TraceEvent::Eliminate {
                    link: link.id.0,
                    cause: ElimCause::ColorConflict,
                    by: None,
                }
            } else {
                TraceEvent::Pick { link: link.id.0 }
            }
        };
        if *event != expected {
            return Err(format!(
                "{scheduler}: link {} recorded as {event:?}, recomputation says \
                 {expected:?}",
                link.id.0
            ));
        }
        match event {
            TraceEvent::Pick { .. } => picks.push(link.id),
            _ => eliminations += 1,
        }
    }
    // Utility of the winning (class, color): recomputed in id order,
    // which may differ from the emitter's summation order, so compare
    // with a relative tolerance instead of bitwise.
    let recomputed: f64 = picks.iter().map(|&id| problem.rate(id)).sum();
    if (recomputed - utility).abs() > 1e-9 * recomputed.abs().max(1.0) {
        return Err(format!(
            "{scheduler}: recorded utility {utility} ≠ recomputed {recomputed}"
        ));
    }
    let scheduled = match body.last() {
        Some(TraceEvent::End { scheduled }) => Some(scheduled.as_slice()),
        _ => None,
    };
    let schedule = finish_block(scheduler, n, &[], picks, scheduled, false)?;
    if *certified {
        audit_ledger(problem, &schedule, scheduler)?;
    }
    Ok(Certificate {
        scheduler: scheduler.clone(),
        schedule,
        ledger_checked: *certified,
        picks: 0,
        eliminations,
        debits: 0,
    }
    .with_picks())
}

fn replay_algo(problem: &Problem, events: &[TraceEvent]) -> Result<Certificate, String> {
    let TraceEvent::AlgoStart {
        scheduler,
        n,
        certified,
    } = &events[0]
    else {
        unreachable!("caller dispatched on AlgoStart");
    };
    let n = *n as usize;
    if n != problem.len() {
        return Err(format!(
            "{scheduler}: trace is for {n} links, problem has {}",
            problem.len()
        ));
    }
    let mut picks: Vec<LinkId> = Vec::new();
    let mut seen = vec![false; n];
    let mut scheduled: Option<&[u32]> = None;
    for event in &events[1..] {
        if scheduled.is_some() {
            return Err(format!("{scheduler}: events after End: {event:?}"));
        }
        match event {
            TraceEvent::Pick { link } => {
                let id = check_link(*link, n, scheduler)?;
                if seen[id.index()] {
                    return Err(format!("{scheduler}: link {link} picked twice"));
                }
                seen[id.index()] = true;
                picks.push(id);
            }
            TraceEvent::Eliminate { link, .. } => {
                let id = check_link(*link, n, scheduler)?;
                if seen[id.index()] {
                    return Err(format!(
                        "{scheduler}: link {link} both picked and eliminated"
                    ));
                }
                seen[id.index()] = true;
            }
            TraceEvent::End { scheduled: s } => scheduled = Some(s),
            other => return Err(format!("{scheduler}: unexpected event {other:?}")),
        }
    }
    let schedule = finish_block(scheduler, n, &[], picks, scheduled, false)?;
    if *certified {
        audit_ledger(problem, &schedule, scheduler)?;
    }
    Ok(Certificate {
        scheduler: scheduler.clone(),
        schedule,
        ledger_checked: *certified,
        picks: 0,
        eliminations: 0,
        debits: 0,
    }
    .with_picks())
}

impl Certificate {
    fn with_picks(mut self) -> Self {
        self.picks = self.schedule.len();
        self
    }
}

fn check_link(link: u32, n: usize, scheduler: &str) -> Result<LinkId, String> {
    if (link as usize) < n {
        Ok(LinkId(link))
    } else {
        Err(format!("{scheduler}: link id {link} out of range (n={n})"))
    }
}

/// Common block epilogue: the `End` record must exist and its
/// membership must equal the replayed picks; with `require_all_dead`,
/// every link must have been picked or eliminated (`alive` empty skips
/// the check).
fn finish_block(
    scheduler: &str,
    n: usize,
    alive: &[bool],
    picks: Vec<LinkId>,
    scheduled: Option<&[u32]>,
    require_all_dead: bool,
) -> Result<Schedule, String> {
    let Some(scheduled) = scheduled else {
        return Err(format!("{scheduler}: block has no End record"));
    };
    if require_all_dead {
        if let Some(survivor) = alive.iter().position(|&a| a) {
            return Err(format!(
                "{scheduler}: link {survivor} was neither picked nor eliminated"
            ));
        }
    }
    let _ = n;
    let schedule = Schedule::from_ids(picks);
    let recorded: Vec<u32> = schedule.iter().map(|id| id.0).collect();
    if recorded != scheduled {
        return Err(format!(
            "{scheduler}: End records {} links, replay produced {}",
            scheduled.len(),
            recorded.len()
        ));
    }
    Ok(schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{GreedyRate, Ldp, Rle};
    use crate::Scheduler;
    use fading_net::{TopologyGenerator, UniformGenerator};
    use std::sync::Mutex;

    // Tracing is process-global; serialize tests that toggle it.
    static LOCK: Mutex<()> = Mutex::new(());

    fn problem(n: usize, seed: u64) -> Problem {
        Problem::paper(UniformGenerator::paper(n).generate(seed), 3.0)
    }

    fn traced_run(p: &Problem, s: &dyn Scheduler) -> (Schedule, Trace) {
        fading_obs::set_tracing(true);
        let _ = fading_obs::take_trace();
        let schedule = s.schedule(p);
        fading_obs::set_tracing(false);
        (schedule, fading_obs::take_trace())
    }

    #[test]
    fn rle_trace_replays_to_the_same_schedule() {
        let _guard = LOCK.lock().unwrap();
        let p = problem(150, 1);
        let (schedule, trace) = traced_run(&p, &Rle::new());
        let cert = verify_schedule(&p, &trace, &schedule).unwrap();
        assert_eq!(cert.schedule, schedule);
        assert!(cert.ledger_checked);
        assert!(cert.debits > 0 || cert.eliminations > 0);
    }

    #[test]
    fn ldp_trace_replays_to_the_same_schedule() {
        let _guard = LOCK.lock().unwrap();
        let p = problem(150, 2);
        let (schedule, trace) = traced_run(&p, &Ldp::new());
        let cert = verify_schedule(&p, &trace, &schedule).unwrap();
        assert_eq!(cert.schedule, schedule);
        assert!(cert.ledger_checked);
    }

    #[test]
    fn greedy_trace_replays_and_audits_ledger() {
        let _guard = LOCK.lock().unwrap();
        let p = problem(100, 3);
        let (schedule, trace) = traced_run(&p, &GreedyRate);
        let cert = verify_schedule(&p, &trace, &schedule).unwrap();
        assert!(cert.ledger_checked);
        assert_eq!(cert.picks, schedule.len());
    }

    #[test]
    fn flipped_cause_is_rejected() {
        let _guard = LOCK.lock().unwrap();
        let p = problem(120, 4);
        let (schedule, mut trace) = traced_run(&p, &Rle::new());
        let idx = trace
            .events
            .iter()
            .position(|e| {
                matches!(
                    e,
                    TraceEvent::Eliminate {
                        cause: ElimCause::BudgetExceeded,
                        ..
                    }
                )
            })
            .expect("dense 120-link instance has budget eliminations");
        if let TraceEvent::Eliminate { cause, .. } = &mut trace.events[idx] {
            *cause = ElimCause::Radius;
        }
        assert!(verify_schedule(&p, &trace, &schedule).is_err());
    }

    #[test]
    fn inflated_debit_is_rejected() {
        let _guard = LOCK.lock().unwrap();
        let p = problem(120, 5);
        let (schedule, mut trace) = traced_run(&p, &Rle::new());
        let idx = trace
            .events
            .iter()
            .position(|e| matches!(e, TraceEvent::BudgetDebit { .. }))
            .expect("trace has debits");
        if let TraceEvent::BudgetDebit { factor, .. } = &mut trace.events[idx] {
            *factor *= 2.0;
        }
        assert!(verify_schedule(&p, &trace, &schedule).is_err());
    }

    #[test]
    fn wrong_problem_is_rejected() {
        let _guard = LOCK.lock().unwrap();
        let p = problem(100, 6);
        let (schedule, trace) = traced_run(&p, &Rle::new());
        let other = problem(100, 7);
        assert!(verify_schedule(&other, &trace, &schedule).is_err());
    }
}
