//! Branch-free, cache-blocked kernels for the million-link substrate.
//!
//! Three primitives back the hot loops of the interference layer (see
//! `docs/interference.md` §"SIMD kernel layout"):
//!
//! * [`row_sum`] — chunked multi-accumulator reduction over a factor
//!   row. The eight independent accumulators break the serial-add
//!   dependency chain so the autovectorizer keeps the lanes in SIMD
//!   registers; the combine order is fixed, so the result is
//!   deterministic (same input ⇒ same bits) even though it
//!   reassociates relative to a left-fold.
//! * [`row_sum_scalar`] — the left-fold baseline, kept as the ledger
//!   reference the vectorized kernel is gated ≥2× against.
//! * [`debit_dense`] — the branch-free feasibility-debit pass: adds a
//!   full factor row into the per-receiver budget ledgers and flips
//!   `alive` bits without data-dependent branches. Verdict-equivalence
//!   with the compacted scalar walk is argued below and pinned by
//!   proptest (`crates/core/tests/kernel_equivalence.rs`).
//!
//! # Why `debit_dense` is verdict-identical to the scalar walk
//!
//! The scalar elimination loop walks only *live* receivers and does
//! `acc[j] += row[j]; if acc[j] > threshold { kill j }`. The
//! accumulator of each receiver is independent of every other
//! receiver's, and both forms apply the picks' contributions in the
//! same (ascending pick) order — so for every receiver that is alive,
//! the accumulated value is bit-identical in both forms. Dead
//! receivers' accumulators may keep growing here (garbage), but their
//! `alive` bit is already false and `was & over` masks them out of the
//! elimination count, so they are never double-counted and never
//! resurrect. Hence the surviving set after each pick — and therefore
//! the schedule — is bit-identical.

/// SIMD lane-block width used by [`row_sum`]. Eight `f64`s span one
/// AVX-512 register or two AVX2 registers; either way the independent
/// accumulators keep the reduction out of a serial dependency chain.
pub const LANES: usize = 8;

/// Left-fold reference sum (`xs.iter().sum()`), the scalar baseline
/// the vectorized [`row_sum`] is benchmarked against.
#[inline]
pub fn row_sum_scalar(xs: &[f64]) -> f64 {
    xs.iter().sum()
}

/// Chunked multi-accumulator row reduction.
///
/// Deterministic: the combine tree is fixed
/// (`((a0+a1)+(a2+a3)) + ((a4+a5)+(a6+a7)) + tail`), so equal inputs
/// produce bit-equal outputs on every run and thread count. It *does*
/// reassociate relative to [`row_sum_scalar`], which is fine for the
/// diagnostic row sums it serves (feasibility verdicts go through
/// [`debit_dense`] / the exact scalar walk, never through this).
#[inline]
pub fn row_sum(xs: &[f64]) -> f64 {
    let mut acc = [0.0f64; LANES];
    let mut chunks = xs.chunks_exact(LANES);
    for chunk in &mut chunks {
        for (a, &x) in acc.iter_mut().zip(chunk) {
            *a += x;
        }
    }
    let tail: f64 = chunks.remainder().iter().sum();
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7])) + tail
}

/// Branch-free feasibility debit over a full factor row.
///
/// For every receiver `j`: `acc[j] += row[j]`; if the ledger crosses
/// `threshold`, the receiver's `alive` bit is cleared. Returns the
/// number of receivers eliminated by *this* pass (receivers that were
/// alive on entry and crossed the threshold here).
///
/// The loop body has no data-dependent branches — the alive mask is
/// carried as boolean arithmetic — so the autovectorizer can unroll
/// and fuse it. Dead receivers accumulate garbage in `acc`, which is
/// sound because a dead receiver's ledger is never read again (see
/// module docs for the equivalence argument).
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn debit_dense(row: &[f64], acc: &mut [f64], alive: &mut [bool], threshold: f64) -> u64 {
    assert_eq!(row.len(), acc.len());
    assert_eq!(row.len(), alive.len());
    let mut newly = 0u64;
    for ((&f, a), al) in row.iter().zip(acc.iter_mut()).zip(alive.iter_mut()) {
        let was = *al;
        let x = *a + f;
        *a = x;
        let over = x > threshold;
        newly += u64::from(was & over);
        *al = was & !over;
    }
    newly
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_sum_matches_scalar_on_simple_inputs() {
        // Powers of two are exactly representable, so reassociation
        // cannot change the value — the two sums must agree exactly.
        let xs: Vec<f64> = (0..37).map(|k| (k % 5) as f64 * 0.25).collect();
        assert_eq!(row_sum(&xs), row_sum_scalar(&xs));
        assert_eq!(row_sum(&[]), 0.0);
        assert_eq!(row_sum(&[3.5]), 3.5);
    }

    #[test]
    fn row_sum_is_deterministic() {
        let xs: Vec<f64> = (0..1000).map(|k| 1.0 / (k as f64 + 1.0)).collect();
        assert_eq!(row_sum(&xs).to_bits(), row_sum(&xs).to_bits());
    }

    #[test]
    fn debit_matches_scalar_walk() {
        let row = [0.4, 0.2, 0.9, 0.05, 0.3];
        let threshold = 0.5;

        let mut acc_a = [0.2, 0.4, 0.0, 0.1, 0.45];
        let mut alive_a = [true, true, false, true, true];
        let newly = debit_dense(&row, &mut acc_a, &mut alive_a, threshold);

        let mut acc_b = [0.2, 0.4, 0.0, 0.1, 0.45];
        let mut alive_b = [true, true, false, true, true];
        let mut expect = 0u64;
        for j in 0..row.len() {
            if alive_b[j] {
                acc_b[j] += row[j];
                if acc_b[j] > threshold {
                    alive_b[j] = false;
                    expect += 1;
                }
            }
        }

        assert_eq!(newly, expect);
        assert_eq!(alive_a, alive_b);
        for j in 0..row.len() {
            if alive_a[j] {
                assert_eq!(acc_a[j].to_bits(), acc_b[j].to_bits());
            }
        }
    }

    #[test]
    fn dead_receivers_never_recount() {
        let row = [10.0, 10.0];
        let mut acc = [100.0, 0.0];
        let mut alive = [false, true];
        assert_eq!(debit_dense(&row, &mut acc, &mut alive, 5.0), 1);
        // A second pass finds nothing newly dead.
        assert_eq!(debit_dense(&row, &mut acc, &mut alive, 5.0), 0);
    }
}
