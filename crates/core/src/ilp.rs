//! The ILP formulation of Fading-R-LS (Eq. (20)–(22)) and a small 0/1
//! branch-and-bound solver for it.
//!
//! ```text
//! max  Σ_i λ_i x_i
//! s.t. Σ_i f_{i,j} x_i ≤ γ_ε + M (1 − x_j)   ∀ j
//!      x_i ∈ {0, 1}
//! ```
//!
//! The big-M constant deactivates constraint `j` when link `j` is not
//! scheduled; `M = Σ_i f_{i,j}` (the largest possible left-hand side)
//! suffices. The generic solver handles any 0/1 program with
//! non-negative constraint coefficients, which is all the model needs —
//! and lets tests validate the formulation against the combinatorial
//! solver in [`crate::algo::exact`].

use crate::problem::Problem;
use crate::schedule::Schedule;
use fading_math::KahanSum;
use fading_net::LinkId;

/// One `≤` constraint: `Σ coeffs[i]·x_i ≤ rhs`.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// Non-negative coefficients, one per variable.
    pub coeffs: Vec<f64>,
    /// Right-hand side.
    pub rhs: f64,
}

/// A 0/1 maximization program with non-negative constraint matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct IlpModel {
    /// Objective coefficients (may be any sign, though Fading-R-LS
    /// rates are positive).
    pub objective: Vec<f64>,
    /// The constraints.
    pub constraints: Vec<Constraint>,
}

/// Builds the literal Eq. (20)–(22) model for a problem instance.
///
/// Constraint `j` is rewritten in `≤` form as
/// `Σ_i f_{i,j} x_i + M_j x_j ≤ γ_ε + M_j`.
pub fn build_model(problem: &Problem) -> IlpModel {
    let n = problem.len();
    let objective = problem.links().ids().map(|i| problem.rate(i)).collect();
    let constraints = problem
        .links()
        .ids()
        .map(|j| {
            let mut coeffs: Vec<f64> = problem
                .links()
                .ids()
                .map(|i| problem.factor(i, j))
                .collect();
            let big_m = KahanSum::sum_iter(coeffs.iter().copied());
            coeffs[j.index()] += big_m; // f_{j,j} = 0, so this sets the x_j coefficient
            Constraint {
                coeffs,
                rhs: problem.gamma_eps() + big_m,
            }
        })
        .collect();
    debug_assert_eq!(n, problem.len());
    IlpModel {
        objective,
        constraints,
    }
}

/// Practical size ceiling for [`solve`].
pub const ILP_MAX_VARS: usize = 40;

/// Solves the model exactly by depth-first branch-and-bound.
///
/// Variables are branched in non-increasing objective order; the bound
/// is the sum of remaining positive objective coefficients; partial
/// assignments are pruned as soon as the committed left-hand side of
/// any constraint exceeds its right-hand side (sound because all
/// constraint coefficients are non-negative).
///
/// Returns the optimal assignment and its objective value.
///
/// # Panics
/// Panics if the model has more than [`ILP_MAX_VARS`] variables, a
/// negative constraint coefficient, or mismatched dimensions.
pub fn solve(model: &IlpModel) -> (Vec<bool>, f64) {
    let n = model.objective.len();
    assert!(
        n <= ILP_MAX_VARS,
        "ILP solver limited to {ILP_MAX_VARS} variables, got {n}"
    );
    for c in &model.constraints {
        assert_eq!(c.coeffs.len(), n, "constraint dimension mismatch");
        assert!(
            c.coeffs.iter().all(|&v| v >= 0.0),
            "solver requires non-negative constraint coefficients"
        );
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| model.objective[b].total_cmp(&model.objective[a]));
    // suffix[k] = sum of positive objective over order[k..].
    let mut suffix = vec![0.0; n + 1];
    for k in (0..n).rev() {
        suffix[k] = suffix[k + 1] + model.objective[order[k]].max(0.0);
    }

    struct Search<'m> {
        model: &'m IlpModel,
        order: Vec<usize>,
        suffix: Vec<f64>,
        lhs: Vec<f64>,
        assignment: Vec<bool>,
        best_value: f64,
        best: Vec<bool>,
        // Flushed to `core.ilp.iterations` once per solve.
        iterations: u64,
    }

    impl Search<'_> {
        fn dfs(&mut self, k: usize, value: f64) {
            self.iterations += 1;
            if value > self.best_value {
                self.best_value = value;
                self.best = self.assignment.clone();
            }
            if k == self.order.len() || value + self.suffix[k] <= self.best_value {
                return;
            }
            let var = self.order[k];
            // Branch x = 1 first (objective order makes it promising).
            let fits = self
                .model
                .constraints
                .iter()
                .zip(&self.lhs)
                .all(|(c, &lhs)| crate::feasibility::within_budget(lhs + c.coeffs[var], c.rhs));
            if fits {
                for (c, lhs) in self.model.constraints.iter().zip(&mut self.lhs) {
                    *lhs += c.coeffs[var];
                }
                self.assignment[var] = true;
                self.dfs(k + 1, value + self.model.objective[var]);
                self.assignment[var] = false;
                for (c, lhs) in self.model.constraints.iter().zip(&mut self.lhs) {
                    *lhs -= c.coeffs[var];
                }
            }
            self.dfs(k + 1, value);
        }
    }

    let mut search = Search {
        model,
        order,
        suffix,
        lhs: vec![0.0; model.constraints.len()],
        assignment: vec![false; n],
        best_value: f64::NEG_INFINITY,
        best: vec![false; n],
        iterations: 0,
    };
    search.dfs(0, 0.0);
    fading_obs::counter!("core.ilp.iterations").add(search.iterations);
    let value = search.best_value.max(0.0);
    (search.best, value)
}

/// Solves a problem instance through its ILP form, returning a schedule.
pub fn solve_problem(problem: &Problem) -> Schedule {
    let model = build_model(problem);
    let (assignment, _) = solve(&model);
    Schedule::from_ids(
        assignment
            .iter()
            .enumerate()
            .filter(|(_, &x)| x)
            .map(|(i, _)| LinkId(i as u32)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::exact::branch_and_bound;
    use crate::feasibility::is_feasible;
    use fading_net::{RateModel, TopologyGenerator, UniformGenerator};

    fn small_problem(n: usize, seed: u64) -> Problem {
        let gen = UniformGenerator {
            side: 120.0,
            n,
            len_lo: 5.0,
            len_hi: 20.0,
            rates: RateModel::Uniform { lo: 0.5, hi: 2.0 },
        };
        Problem::paper(gen.generate(seed), 3.0)
    }

    #[test]
    fn model_dimensions_match_instance() {
        let p = small_problem(9, 1);
        let m = build_model(&p);
        assert_eq!(m.objective.len(), 9);
        assert_eq!(m.constraints.len(), 9);
        for c in &m.constraints {
            assert_eq!(c.coeffs.len(), 9);
        }
    }

    #[test]
    fn big_m_deactivates_unscheduled_constraints() {
        // With x_j = 0 the constraint must hold even when every other
        // link transmits: Σ_{i≠j} f_{i,j} ≤ γ_ε + M_j by M's choice.
        let p = small_problem(8, 2);
        let m = build_model(&p);
        for (j, c) in m.constraints.iter().enumerate() {
            let all_others: f64 = c
                .coeffs
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != j)
                .map(|(_, &v)| v)
                .sum();
            assert!(
                all_others <= c.rhs + 1e-9,
                "constraint {j} not deactivatable"
            );
        }
    }

    #[test]
    fn ilp_matches_combinatorial_optimum() {
        for seed in 0..6 {
            let p = small_problem(10, seed);
            let via_ilp = solve_problem(&p);
            let via_bnb = branch_and_bound(&p);
            assert!(
                (via_ilp.utility(&p) - via_bnb.utility(&p)).abs() < 1e-9,
                "seed {seed}: ILP {} vs B&B {}",
                via_ilp.utility(&p),
                via_bnb.utility(&p)
            );
            assert!(
                is_feasible(&p, &via_ilp),
                "seed {seed}: ILP schedule infeasible"
            );
        }
    }

    #[test]
    fn solves_a_hand_built_knapsack_like_model() {
        // max 3x0 + 2x1 + 2x2 s.t. 2x0 + x1 + x2 ≤ 2 → pick x1, x2.
        let model = IlpModel {
            objective: vec![3.0, 2.0, 2.0],
            constraints: vec![Constraint {
                coeffs: vec![2.0, 1.0, 1.0],
                rhs: 2.0,
            }],
        };
        let (x, v) = solve(&model);
        assert_eq!(x, vec![false, true, true]);
        assert!((v - 4.0).abs() < 1e-12);
    }

    #[test]
    fn infeasible_positive_vars_yield_empty_solution() {
        let model = IlpModel {
            objective: vec![1.0],
            constraints: vec![Constraint {
                coeffs: vec![5.0],
                rhs: 1.0,
            }],
        };
        let (x, v) = solve(&model);
        assert_eq!(x, vec![false]);
        assert_eq!(v, 0.0);
    }

    #[test]
    fn empty_model() {
        let model = IlpModel {
            objective: vec![],
            constraints: vec![],
        };
        let (x, v) = solve(&model);
        assert!(x.is_empty());
        assert_eq!(v, 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative constraint coefficients")]
    fn rejects_negative_coefficients() {
        solve(&IlpModel {
            objective: vec![1.0],
            constraints: vec![Constraint {
                coeffs: vec![-1.0],
                rhs: 1.0,
            }],
        });
    }
}
