//! `fading` — the command-line front end.
//!
//! See `fading help` (or [`commands::usage`]) for the subcommands:
//! generate instances, inspect them, schedule with any algorithm in the
//! workspace, and Monte-Carlo the result.

mod args;
mod commands;
mod explain;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        print!("{}", commands::usage());
        std::process::exit(2);
    }
    let parsed = match args::parse(argv) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let mut stdout = std::io::stdout();
    if let Err(e) = commands::run(&parsed, &mut stdout) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
