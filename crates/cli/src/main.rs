//! `fading` — the command-line front end.
//!
//! See `fading help` (or [`commands::usage`]) for the subcommands:
//! generate instances, inspect them, schedule with any algorithm in the
//! workspace, Monte-Carlo the result, and maintain the perf-trajectory
//! ledger (`bench-report`).

mod args;
mod bench_report;
mod commands;
mod explain;

/// Counting allocator so `bench-report` can measure steady-state
/// allocations per warm `schedule_in` call (the zero-alloc engine
/// contract) in-process; the cost everywhere else is one relaxed
/// atomic increment per allocation.
#[global_allocator]
static GLOBAL_ALLOC: fading_bench::alloc::CountingAlloc = fading_bench::alloc::CountingAlloc;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        print!("{}", commands::usage());
        std::process::exit(2);
    }
    let parsed = match args::parse(argv) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let mut stdout = std::io::stdout();
    match commands::run(&parsed, &mut stdout) {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
