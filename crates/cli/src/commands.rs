//! The CLI subcommands, separated from `main` for testability.

use crate::args::Args;
use fading_core::{BackendChoice, FeasibilityReport, Problem, Schedule, Scheduler};
use fading_net::{instance_stats, io, RateModel, TopologyGenerator, UniformGenerator};
use fading_sim::simulate_many;
use std::path::Path;

/// Flags accepted by every subcommand (observability plumbing).
const GLOBAL_FLAGS: &[&str] = &["metrics-out", "trace-out", "prom-out", "progress", "quiet"];

/// Side effects a subcommand reports back to the shared [`run`]
/// wrapper: files it produced (hashed into the `--metrics-out`
/// manifest's `artifacts` list) and a non-error exit code
/// (`bench-report --check` uses `2` for fingerprint-mismatch
/// warnings; plain failures go through `Err` and exit `1`).
#[derive(Debug, Default)]
pub struct CmdEffects {
    /// Process exit code for a *successful* run; `0` unless set.
    pub exit_code: i32,
    /// `(kind, path)` pairs to record in the run manifest.
    pub artifacts: Vec<(String, std::path::PathBuf)>,
}

/// Rejects any option not in `allowed` (or [`GLOBAL_FLAGS`]), so a
/// typo'd flag fails loudly instead of silently using a default.
fn reject_unknown_flags(args: &Args, allowed: &[&str]) -> Result<(), String> {
    for key in args.options.keys() {
        if !allowed.contains(&key.as_str()) && !GLOBAL_FLAGS.contains(&key.as_str()) {
            return Err(format!(
                "unknown option --{key} for `{}`; see `fading help`",
                args.command
            ));
        }
    }
    Ok(())
}

/// Runs a parsed command, writing human output to `out`.
///
/// Every subcommand also honors `--progress` (throttled stderr
/// progress), `--quiet` (suppress progress and manifest chatter),
/// `--trace-out <path>` (write the schedulers' decision trace as
/// JSONL after a successful run), and `--metrics-out <path>` (write a
/// [`fading_obs::RunManifest`] JSON after a successful run; trace
/// files land in its `artifacts` list with their content hash).
pub fn run(args: &Args, out: &mut dyn std::io::Write) -> Result<i32, String> {
    let started = std::time::Instant::now();
    let quiet = args.flag("quiet");
    fading_obs::set_progress(args.flag("progress") && !quiet);
    let trace_out = args.get("trace-out");
    if trace_out.is_some() {
        fading_obs::set_tracing(true);
        let _ = fading_obs::take_trace(); // start from an empty ring
    }
    let mut effects = CmdEffects::default();
    let dispatched = dispatch(args, out, &mut effects);
    if trace_out.is_some() {
        fading_obs::set_tracing(false);
    }
    dispatched?;
    if let Some(path) = trace_out {
        let trace = fading_obs::take_trace();
        trace.write(Path::new(path))?;
        if !quiet {
            writeln!(out, "wrote {} trace events to {path}", trace.events.len())
                .map_err(|e| e.to_string())?;
        }
    }
    if let Some(path) = args.get("prom-out") {
        let text = fading_obs::render_prometheus(&fading_obs::snapshot());
        std::fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}"))?;
        effects.artifacts.push(("prometheus".into(), path.into()));
        if !quiet {
            writeln!(out, "wrote prometheus metrics to {path}").map_err(|e| e.to_string())?;
        }
    }
    if let Some(path) = args.get("metrics-out") {
        let mut builder = fading_obs::ManifestBuilder::new(&args.command)
            .started_at(started)
            .seed(args.get_or("seed", 0).unwrap_or(0));
        for (key, value) in &args.options {
            builder = builder.config_kv(key, value);
        }
        if let Some(trace_path) = trace_out {
            builder = builder.artifact("trace", Path::new(trace_path));
        }
        for (kind, artifact_path) in &effects.artifacts {
            builder = builder.artifact(kind, artifact_path);
        }
        builder.finish().write(Path::new(path))?;
        if !quiet {
            writeln!(out, "wrote metrics manifest to {path}").map_err(|e| e.to_string())?;
        }
    }
    Ok(effects.exit_code)
}

fn dispatch(
    args: &Args,
    out: &mut dyn std::io::Write,
    effects: &mut CmdEffects,
) -> Result<(), String> {
    match args.command.as_str() {
        "generate" => {
            reject_unknown_flags(
                args,
                &["n", "out", "side", "len-lo", "len-hi", "seed", "rate"],
            )?;
            generate(args, out)
        }
        "stats" => {
            reject_unknown_flags(args, &["instance"])?;
            stats(args, out)
        }
        "schedule" => {
            reject_unknown_flags(
                args,
                &[
                    "instance",
                    "algo",
                    "alpha",
                    "eps",
                    "out",
                    "interference",
                    "tail-rtol",
                ],
            )?;
            schedule(args, out)
        }
        "simulate" => {
            reject_unknown_flags(
                args,
                &[
                    "instance",
                    "schedule",
                    "alpha",
                    "eps",
                    "trials",
                    "seed",
                    "interference",
                    "tail-rtol",
                ],
            )?;
            simulate(args, out)
        }
        "render" => {
            reject_unknown_flags(
                args,
                &["instance", "out", "schedule", "width", "grid-cell", "disks"],
            )?;
            render(args, out)
        }
        "multislot" => {
            reject_unknown_flags(
                args,
                &[
                    "instance",
                    "algo",
                    "alpha",
                    "eps",
                    "interference",
                    "tail-rtol",
                ],
            )?;
            multislot(args, out)
        }
        "capacity" => {
            reject_unknown_flags(
                args,
                &[
                    "instance",
                    "schedule",
                    "alpha",
                    "eps",
                    "interference",
                    "tail-rtol",
                ],
            )?;
            capacity(args, out)
        }
        "explain" => {
            reject_unknown_flags(
                args,
                &[
                    "trace",
                    "link",
                    "budgets",
                    "cascade",
                    "block",
                    "verify",
                    "instance",
                    "schedule",
                    "alpha",
                    "eps",
                    "interference",
                    "tail-rtol",
                ],
            )?;
            crate::explain::explain(args, out)
        }
        "churn" => {
            reject_unknown_flags(
                args,
                &[
                    "n",
                    "slots",
                    "algo",
                    "policy",
                    "link-rate",
                    "lifetime",
                    "packet-prob",
                    "frontier",
                    "seed",
                    "alpha",
                    "eps",
                    "interference",
                    "tail-rtol",
                    "side",
                    "len-lo",
                    "len-hi",
                    "out",
                    "series-out",
                    "series-timings",
                    "series-cadence",
                    "flight-out",
                    "flight-slots",
                    "watch",
                ],
            )?;
            churn(args, out, effects)
        }
        "bench-report" => {
            reject_unknown_flags(
                args,
                &[
                    "out", "dir", "from", "baseline", "gates", "filter", "diff-out", "check",
                    "quick", "smoke",
                ],
            )?;
            crate::bench_report::bench_report(args, out, effects)
        }
        "help" | "--help" => write!(out, "{}", usage()).map_err(|e| e.to_string()),
        other => Err(format!("unknown subcommand {other}\n\n{}", usage())),
    }
}

/// The usage text.
pub fn usage() -> String {
    "fading — fading-resistant link scheduling (ICPP 2017 reproduction)

USAGE:
  fading generate --n <links> --out <file> [--side 500] [--len-lo 5]
                  [--len-hi 20] [--seed 0] [--rate 1.0]
  fading stats    --instance <file>
  fading schedule --instance <file> --algo <name> [--alpha 3] [--eps 0.01]
                  [--out <file>] [--interference dense|sparse|auto]
  fading simulate --instance <file> --schedule <file> [--alpha 3]
                  [--eps 0.01] [--trials 1000] [--seed 0]
                  [--interference dense|sparse|auto]
  fading render   --instance <file> --out <file.svg> [--schedule <file>]
                  [--width 800] [--grid-cell <units>] [--disks <radius-factor>]
  fading multislot --instance <file> --algo <name> [--alpha 3] [--eps 0.01]
                  [--interference dense|sparse|auto]
  fading capacity --instance <file> --schedule <file> [--alpha 3] [--eps 0.01]
                  [--interference dense|sparse|auto]
  fading explain  --trace <file.jsonl> [--link <id>] [--budgets]
                  [--cascade <pick#>] [--block <idx>]
                  [--verify --instance <file> [--schedule <file>]
                   [--alpha 3] [--eps 0.01] [--interference dense|sparse|auto]]
  fading churn    [--n 50] [--slots 200] [--algo greedy]
                  [--policy maxweight|plain] [--link-rate 1.0]
                  [--lifetime 50] [--packet-prob 0.2]
                  [--frontier p1,p2,...] [--seed 0] [--alpha 3]
                  [--eps 0.01] [--interference dense|sparse|auto]
                  [--side 500] [--len-lo 5] [--len-hi 20] [--out <json>]
                  [--series-out <file.jsonl>] [--series-timings]
                  [--series-cadence 1] [--flight-out <dir>]
                  [--flight-slots 64] [--watch]
                  streaming run: links arrive (Poisson, --link-rate per
                  slot) and depart (exponential --lifetime) while the
                  engine patches the live problem in place; --frontier
                  sweeps packet load and prints the stability table.
                  --series-out streams one JSON line per slot
                  (deterministic per seed; --series-timings appends the
                  measured per-phase ns fields; --series-cadence thins
                  the stream); --flight-out arms the flight recorder,
                  which keeps the last --flight-slots slots + their
                  decision traces and dumps a replayable post-mortem
                  bundle into the directory when an anomaly fires
                  (mutually exclusive with --trace-out); --watch turns
                  the progress line into a live slots/sec + phase-split
                  + health view (see docs/telemetry.md)
  fading bench-report [--out <BENCH_date.json>] [--dir <repo-root>]
                  [--check] [--baseline <file>] [--gates <bench-gates.toml>]
                  [--quick] [--smoke] [--filter <substr>] [--from <file>]
                  [--diff-out <file>]
                  runs the bench suite and writes a perf-trajectory
                  ledger entry; --check diffs it against the newest
                  committed BENCH_*.json and exits 0 (clean),
                  1 (regression), or 2 (fingerprint mismatch: would-be
                  regressions downgraded to warnings); --smoke runs the
                  release smoke workloads (smoke.* wall-clock rows
                  gated by bench-gates.toml [max]) instead of the
                  micro suite — including the 10^5- and 10^6-link
                  sparse-substrate builds with RLE+LDP end-to-end

ALGORITHMS:
  ldp | ldp-two-sided | rle | dls | greedy | random | exact | anneal |
  approx-logn | approx-diversity

INTERFERENCE BACKENDS (default dense):
  dense   exact N×N factor matrix (the paper configuration)
  sparse  spatial-hash truncated store; tune with --tail-rtol <frac>
          (omitted factors stay below tail-rtol × γ_ε; default 1e-3)
  auto    dense up to 4096 links, sparse above

GLOBAL FLAGS (every subcommand):
  --trace-out <file.jsonl>  write the schedulers' decision trace
                            (inspect and replay with `fading explain`)
  --metrics-out <file.json> write a run manifest (metrics, spans,
                            artifact hashes)
  --prom-out <file.prom>    write the metrics snapshot in Prometheus
                            text exposition format
  --progress                throttled progress on stderr
  --quiet                   suppress progress and chatter
"
    .to_string()
}

fn load_instance(args: &Args) -> Result<fading_net::LinkSet, String> {
    let path = args.require("instance")?;
    io::load(Path::new(path)).map_err(|e| format!("cannot read {path}: {e}"))
}

pub(crate) fn build_problem(args: &Args, links: fading_net::LinkSet) -> Result<Problem, String> {
    let alpha: f64 = args.get_or("alpha", 3.0)?;
    let eps: f64 = args.get_or("eps", 0.01)?;
    if !alpha.is_finite() || alpha <= 2.0 {
        return Err(format!("--alpha must be > 2, got {alpha}"));
    }
    if !eps.is_finite() || eps <= 0.0 || eps >= 1.0 {
        return Err(format!("--eps must be in (0,1), got {eps}"));
    }
    Ok(
        Problem::builder(links, fading_channel::ChannelParams::with_alpha(alpha))
            .epsilon(eps)
            .backend(parse_backend(args)?)
            .build(),
    )
}

/// Resolves `--interference` / `--tail-rtol` to a [`BackendChoice`].
fn parse_backend(args: &Args) -> Result<BackendChoice, String> {
    let mut backend = match args.get("interference") {
        None => BackendChoice::Dense,
        Some(name) => BackendChoice::parse(name)?,
    };
    if let Some(v) = args.get("tail-rtol") {
        let tail_rtol: f64 = v
            .parse()
            .map_err(|e| format!("option --tail-rtol: cannot parse {v:?}: {e}"))?;
        if !tail_rtol.is_finite() || tail_rtol <= 0.0 || tail_rtol > 1.0 {
            return Err(format!("--tail-rtol must be in (0,1], got {tail_rtol}"));
        }
        match &mut backend {
            BackendChoice::Sparse(config) => config.tail_rtol = tail_rtol,
            _ => return Err("--tail-rtol only applies with --interference sparse".into()),
        }
    }
    Ok(backend)
}

/// Resolves an algorithm name to a scheduler via the typed registry.
pub fn scheduler_by_name(name: &str) -> Result<Box<dyn Scheduler>, String> {
    let id: fading_core::AlgoId = name.parse()?;
    Ok(id.build(0))
}

fn generate(args: &Args, out: &mut dyn std::io::Write) -> Result<(), String> {
    let n: usize = args.get_or("n", 0)?;
    if n == 0 {
        return Err("--n must be a positive link count".into());
    }
    let gen = UniformGenerator {
        side: args.get_or("side", 500.0)?,
        n,
        len_lo: args.get_or("len-lo", 5.0)?,
        len_hi: args.get_or("len-hi", 20.0)?,
        rates: RateModel::Fixed(args.get_or("rate", 1.0)?),
    };
    let links = gen.generate(args.get_or("seed", 0)?);
    let path = args.require("out")?;
    io::save(&links, Path::new(path)).map_err(|e| format!("cannot write {path}: {e}"))?;
    writeln!(out, "wrote {} links to {path}", links.len()).map_err(|e| e.to_string())
}

fn stats(args: &Args, out: &mut dyn std::io::Write) -> Result<(), String> {
    let links = load_instance(args)?;
    if links.is_empty() {
        return Err("instance is empty".into());
    }
    let s = instance_stats(&links);
    writeln!(
        out,
        "links:             {}\ndensity:           {:.6} links/unit²\nlengths:           {:.2} .. {:.2} (mean {:.2})\nlength diversity:  g(L) = {}\nnearest sender:    {:.2} (mean)\ndistance spread Δ: {:.1}",
        s.n, s.density, s.min_length, s.max_length, s.mean_length, s.diversity,
        s.mean_nearest_sender, s.distance_spread
    )
    .map_err(|e| e.to_string())
}

fn schedule(args: &Args, out: &mut dyn std::io::Write) -> Result<(), String> {
    let links = load_instance(args)?;
    let problem = build_problem(args, links)?;
    let scheduler = scheduler_by_name(args.require("algo")?)?;
    let schedule = scheduler.schedule(&problem);
    let report = FeasibilityReport::evaluate(&problem, &schedule);
    writeln!(
        out,
        "{}: scheduled {} of {} links (rate {:.2}), fading-feasible: {}",
        scheduler.name(),
        schedule.len(),
        problem.len(),
        schedule.utility(&problem),
        report.is_feasible()
    )
    .map_err(|e| e.to_string())?;
    if let Some(path) = args.get("out") {
        let json = serde_json::to_string_pretty(&schedule).map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
        writeln!(out, "wrote schedule to {path}").map_err(|e| e.to_string())?;
    }
    Ok(())
}

fn simulate(args: &Args, out: &mut dyn std::io::Write) -> Result<(), String> {
    let links = load_instance(args)?;
    let problem = build_problem(args, links)?;
    let sched_path = args.require("schedule")?;
    let text = std::fs::read_to_string(sched_path)
        .map_err(|e| format!("cannot read {sched_path}: {e}"))?;
    let schedule: Schedule =
        serde_json::from_str(&text).map_err(|e| format!("cannot parse {sched_path}: {e}"))?;
    if let Some(bad) = schedule.iter().find(|id| id.index() >= problem.len()) {
        return Err(format!("schedule references nonexistent link {bad}"));
    }
    let trials: u64 = args.get_or("trials", 1000)?;
    let stats = simulate_many(&problem, &schedule, trials, args.get_or("seed", 0)?);
    writeln!(
        out,
        "{} links over {trials} Rayleigh slots:\n  failed/slot:     {:.4} ± {:.4}\n  throughput/slot: {:.3} ± {:.3}\n  budget (ε·|S|):  {:.3}",
        schedule.len(),
        stats.failed.mean,
        stats.failed.ci95,
        stats.throughput.mean,
        stats.throughput.ci95,
        problem.epsilon() * schedule.len() as f64
    )
    .map_err(|e| e.to_string())
}

fn multislot(args: &Args, out: &mut dyn std::io::Write) -> Result<(), String> {
    let links = load_instance(args)?;
    let problem = build_problem(args, links)?;
    let scheduler = scheduler_by_name(args.require("algo")?)?;
    let plan = fading_core::multislot::schedule_all(&problem, scheduler.as_ref());
    let bound = fading_core::multislot::conflict_clique_lower_bound(&problem);
    writeln!(
        out,
        "{}: {} links drained in {} slots (clique lower bound {bound})",
        scheduler.name(),
        problem.len(),
        plan.num_slots()
    )
    .map_err(|e| e.to_string())?;
    for (i, slot) in plan.slots().iter().enumerate() {
        let ids: Vec<String> = slot.iter().map(|id| id.to_string()).collect();
        writeln!(out, "  slot {:>3}: {}", i + 1, ids.join(" ")).map_err(|e| e.to_string())?;
    }
    Ok(())
}

fn capacity(args: &Args, out: &mut dyn std::io::Write) -> Result<(), String> {
    let links = load_instance(args)?;
    let problem = build_problem(args, links)?;
    let sched_path = args.require("schedule")?;
    let text = std::fs::read_to_string(sched_path)
        .map_err(|e| format!("cannot read {sched_path}: {e}"))?;
    let schedule: Schedule =
        serde_json::from_str(&text).map_err(|e| format!("cannot parse {sched_path}: {e}"))?;
    if let Some(bad) = schedule.iter().find(|id| id.index() >= problem.len()) {
        return Err(format!("schedule references nonexistent link {bad}"));
    }
    writeln!(
        out,
        "{:<8} {:>10} {:>16} {:>18}",
        "link", "success", "E[fail]/slot", "ergodic bit/s/Hz"
    )
    .map_err(|e| e.to_string())?;
    let mut total_cap = 0.0;
    for j in schedule.iter() {
        let d_jj = problem.links().length(j);
        let ds: Vec<f64> = schedule
            .iter()
            .filter(|&i| i != j)
            .map(|i| problem.links().sender_receiver_distance(i, j))
            .collect();
        let success =
            fading_channel::sinr_ccdf(problem.params(), d_jj, &ds, problem.params().gamma_th);
        let cap = fading_channel::ergodic_capacity(problem.params(), d_jj, &ds);
        if cap.is_finite() {
            total_cap += cap;
        }
        writeln!(
            out,
            "{:<8} {:>10.5} {:>16.5} {:>18.2}",
            j.to_string(),
            success,
            1.0 - success,
            cap
        )
        .map_err(|e| e.to_string())?;
    }
    writeln!(
        out,
        "total ergodic Shannon throughput: {total_cap:.2} bit/s/Hz"
    )
    .map_err(|e| e.to_string())
}

/// Streaming churn run: links arrive (Poisson) and depart (exponential
/// lifetimes) while the engine patches the live [`Problem`] in place
/// and schedules every slot. With `--frontier p1,p2,...` it sweeps the
/// packet arrival probability instead and prints the backlog-vs-load
/// stability table.
fn churn(
    args: &Args,
    out: &mut dyn std::io::Write,
    effects: &mut CmdEffects,
) -> Result<(), String> {
    let n: usize = args.get_or("n", 50)?;
    if n == 0 {
        return Err("--n must be a positive seed population".into());
    }
    let geometry = UniformGenerator {
        side: args.get_or("side", 500.0)?,
        n,
        len_lo: args.get_or("len-lo", 5.0)?,
        len_hi: args.get_or("len-hi", 20.0)?,
        rates: RateModel::Fixed(1.0),
    };
    let seed: u64 = args.get_or("seed", 0)?;
    let problem = build_problem(args, geometry.generate(seed))?;
    let scheduler = scheduler_by_name(args.get("algo").unwrap_or("greedy"))?;
    let policy = match args.get("policy").unwrap_or("maxweight") {
        "maxweight" => fading_sim::ServicePolicy::MaxWeight,
        "plain" => fading_sim::ServicePolicy::PlainRates,
        other => return Err(format!("--policy must be maxweight or plain, got {other}")),
    };
    let cfg = fading_sim::ChurnConfig {
        slots: args.get_or("slots", 200)?,
        link_arrival_rate: args.get_or("link-rate", 1.0)?,
        mean_lifetime: args.get_or("lifetime", 50.0)?,
        packet_prob: args.get_or("packet-prob", 0.2)?,
        seed,
    };
    if cfg.slots == 0 {
        return Err("--slots must be positive".into());
    }
    if !cfg.link_arrival_rate.is_finite() || cfg.link_arrival_rate < 0.0 {
        return Err(format!(
            "--link-rate must be finite and >= 0, got {}",
            cfg.link_arrival_rate
        ));
    }
    if !cfg.mean_lifetime.is_finite() || cfg.mean_lifetime < 1.0 {
        return Err(format!(
            "--lifetime must be >= 1 slot, got {}",
            cfg.mean_lifetime
        ));
    }
    if !(0.0..=1.0).contains(&cfg.packet_prob) {
        return Err(format!(
            "--packet-prob must be in [0,1], got {}",
            cfg.packet_prob
        ));
    }
    let series_out = args.get("series-out");
    let flight_out = args.get("flight-out");
    let watch = args.flag("watch");
    let series_cadence: u64 = args.get_or("series-cadence", 1)?;
    if series_cadence == 0 {
        return Err("--series-cadence must be >= 1".into());
    }
    let flight_slots: usize = args.get_or("flight-slots", 64)?;
    if flight_slots == 0 {
        return Err("--flight-slots must be >= 1".into());
    }
    if flight_out.is_some() && args.get("trace-out").is_some() {
        return Err(
            "--flight-out and --trace-out are mutually exclusive: the flight \
             recorder owns the decision-trace ring while it captures"
                .into(),
        );
    }
    if watch {
        // The watch view is the progress line with a live phase split
        // and health state; it implies --progress.
        fading_obs::set_progress(!args.flag("quiet"));
    }

    if let Some(list) = args.get("frontier") {
        if series_out.is_some() || flight_out.is_some() {
            return Err(
                "--series-out/--flight-out apply to a single churn run, not --frontier sweeps"
                    .into(),
            );
        }
        let probs: Vec<f64> = list
            .split(',')
            .map(|v| {
                v.trim()
                    .parse::<f64>()
                    .map_err(|e| format!("--frontier: cannot parse {v:?}: {e}"))
            })
            .collect::<Result<_, _>>()?;
        if probs.is_empty() || probs.iter().any(|p| !(0.0..=1.0).contains(p)) {
            return Err("--frontier needs comma-separated probabilities in [0,1]".into());
        }
        let frontier = fading_sim::stability_frontier(
            &problem,
            geometry,
            cfg,
            scheduler.as_ref(),
            policy,
            &probs,
        );
        writeln!(
            out,
            "{} over {} slots (λ_link {}, E[life] {}):",
            scheduler.name(),
            cfg.slots,
            cfg.link_arrival_rate,
            cfg.mean_lifetime
        )
        .map_err(|e| e.to_string())?;
        writeln!(
            out,
            "{:>12} {:>10} {:>12} {:>12} {:>10}",
            "packet-prob", "mean pop", "mean backlog", "max backlog", "delivered"
        )
        .map_err(|e| e.to_string())?;
        for (p, r) in &frontier {
            writeln!(
                out,
                "{:>12.3} {:>10.1} {:>12.1} {:>12} {:>10}",
                p, r.mean_population, r.mean_backlog, r.max_backlog, r.packets_delivered
            )
            .map_err(|e| e.to_string())?;
        }
        if let Some(path) = args.get("out") {
            let json = serde_json::to_string_pretty(&frontier).map_err(|e| e.to_string())?;
            std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
            effects.artifacts.push(("frontier".into(), path.into()));
            writeln!(out, "wrote frontier to {path}").map_err(|e| e.to_string())?;
        }
        return Ok(());
    }

    let mut engine = fading_sim::ChurnEngine::new(problem, geometry, cfg);
    // One declarative telemetry bundle: the flags fold into a single
    // TelemetryConfig and one arm() call (--watch alone arms the bare
    // timed path for the live phase split).
    let mut telemetry = fading_sim::TelemetryConfig::new();
    let mut armed = watch;
    if let Some(path) = series_out {
        let series_cfg = fading_obs::SeriesConfig {
            cadence: series_cadence,
            timings: args.flag("series-timings"),
            ..Default::default()
        };
        telemetry = telemetry.series(fading_obs::SlotSeries::to_path(
            series_cfg,
            Path::new(path),
        )?);
        armed = true;
    }
    if let Some(dir) = flight_out {
        let flight_cfg = fading_obs::FlightConfig {
            capacity: flight_slots,
            ..Default::default()
        };
        telemetry = telemetry.flight(flight_cfg, Some(dir.into()));
        armed = true;
    }
    if armed {
        engine.arm(telemetry);
    }
    let result = engine.run(scheduler.as_ref(), policy);
    writeln!(
        out,
        "{} over {} slots ({} policy):\n  links:   {} arrived, {} departed, mean population {:.1} (final {})\n  packets: {} arrived, {} delivered, {} abandoned, {} still queued\n  backlog: mean {:.1}, max {}\n  engine:  {:.0} slots/sec sustained",
        scheduler.name(),
        result.slots,
        match policy {
            fading_sim::ServicePolicy::MaxWeight => "maxweight",
            fading_sim::ServicePolicy::PlainRates => "plain",
        },
        result.links_arrived,
        result.links_departed,
        result.mean_population,
        result.final_population,
        result.packets_arrived,
        result.packets_delivered,
        result.packets_abandoned,
        result.final_backlog,
        result.mean_backlog,
        result.max_backlog,
        result.slots_per_sec
    )
    .map_err(|e| e.to_string())?;
    if !result.conserves_packets() {
        return Err("internal error: packet conservation violated".into());
    }
    if let Some(tel) = engine.take_telemetry() {
        if let Some(path) = series_out {
            let recorded = tel.series().map_or(0, |s| s.recorded());
            effects.artifacts.push(("series".into(), path.into()));
            writeln!(out, "wrote {recorded} slot records to {path}").map_err(|e| e.to_string())?;
        }
        if tel.health() != "ok" {
            writeln!(out, "  health:  anomaly `{}` fired", tel.health())
                .map_err(|e| e.to_string())?;
        }
        if let Some(dir) = tel.postmortem() {
            for name in [
                "postmortem.json",
                "flight_trace.jsonl",
                "replay_trace.jsonl",
                "replay_instance.json",
                "replay_meta.json",
            ] {
                let p = dir.join(name);
                if p.exists() {
                    effects.artifacts.push(("postmortem".into(), p));
                }
            }
            writeln!(out, "  post-mortem bundle at {}", dir.display())
                .map_err(|e| e.to_string())?;
        }
    }
    if let Some(path) = args.get("out") {
        let json = serde_json::to_string_pretty(&result).map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
        effects.artifacts.push(("churn".into(), path.into()));
        writeln!(out, "wrote churn result to {path}").map_err(|e| e.to_string())?;
    }
    Ok(())
}

fn render(args: &Args, out: &mut dyn std::io::Write) -> Result<(), String> {
    let links = load_instance(args)?;
    let schedule: Option<Schedule> = match args.get("schedule") {
        None => None,
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            Some(serde_json::from_str(&text).map_err(|e| format!("cannot parse {path}: {e}"))?)
        }
    };
    let options = fading_viz::RenderOptions {
        width_px: args.get_or("width", 800.0)?,
        grid_cell: match args.get("grid-cell") {
            None => None,
            Some(v) => Some(
                v.parse()
                    .map_err(|_| format!("--grid-cell: bad value {v}"))?,
            ),
        },
        deletion_radius_factor: match args.get("disks") {
            None => None,
            Some(v) => Some(v.parse().map_err(|_| format!("--disks: bad value {v}"))?),
        },
    };
    let svg = fading_viz::render_instance(&links, schedule.as_ref(), &options);
    let path = args.require("out")?;
    std::fs::write(path, svg).map_err(|e| format!("cannot write {path}: {e}"))?;
    writeln!(out, "rendered {} links to {path}", links.len()).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn run_line(line: &str) -> Result<String, String> {
        run_code(line).map(|(_, out)| out)
    }

    /// Like [`run_line`] but also returns the success exit code.
    fn run_code(line: &str) -> Result<(i32, String), String> {
        let args = parse(line.split_whitespace().map(String::from))?;
        let mut buf = Vec::new();
        let code = run(&args, &mut buf)?;
        Ok((code, String::from_utf8(buf).unwrap()))
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("fading_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn full_pipeline_generate_stats_schedule_simulate() {
        let inst = tmp("pipeline.json");
        let sched = tmp("pipeline_schedule.json");
        let out = run_line(&format!("generate --n 60 --seed 3 --out {inst}")).unwrap();
        assert!(out.contains("wrote 60 links"));

        let out = run_line(&format!("stats --instance {inst}")).unwrap();
        assert!(out.contains("links:             60"));
        assert!(out.contains("length diversity"));

        let out = run_line(&format!(
            "schedule --instance {inst} --algo rle --out {sched}"
        ))
        .unwrap();
        assert!(out.contains("RLE: scheduled"));
        assert!(out.contains("fading-feasible: true"));

        let out = run_line(&format!(
            "simulate --instance {inst} --schedule {sched} --trials 200"
        ))
        .unwrap();
        assert!(out.contains("failed/slot"));
    }

    #[test]
    fn churn_runs_a_streaming_horizon() {
        let json = tmp("churn_result.json");
        let out = run_line(&format!(
            "churn --n 25 --slots 30 --algo greedy --seed 7 --out {json}"
        ))
        .unwrap();
        assert!(out.contains("over 30 slots (maxweight policy)"));
        assert!(out.contains("slots/sec sustained"));
        assert!(out.contains(&format!("wrote churn result to {json}")));
        let text = std::fs::read_to_string(&json).unwrap();
        assert!(text.contains("\"slots\": 30"));
        assert!(text.contains("\"slots_per_sec\""));

        // Same seed, same run — everything but wall-clock slots/sec
        // (the last summary line) is deterministic.
        let again = run_line("churn --n 25 --slots 30 --algo greedy --seed 7").unwrap();
        let summary = out.lines().take(4).collect::<Vec<_>>().join("\n");
        assert!(again.starts_with(&summary));
    }

    #[test]
    fn churn_frontier_sweeps_packet_load() {
        let out =
            run_line("churn --n 20 --slots 25 --frontier 0.05,0.8 --seed 1 --interference sparse")
                .unwrap();
        assert!(out.contains("packet-prob"));
        assert!(out.contains("0.050"));
        assert!(out.contains("0.800"));
    }

    #[test]
    fn churn_rejects_bad_knobs() {
        assert!(run_line("churn --policy bogus").is_err());
        assert!(run_line("churn --lifetime 0.2").is_err());
        assert!(run_line("churn --packet-prob 1.5").is_err());
        assert!(run_line("churn --frontier 0.1,oops").is_err());
        assert!(run_line("churn --what 3").is_err());
        // Telemetry knobs validate too.
        assert!(run_line("churn --series-cadence 0").is_err());
        assert!(run_line("churn --flight-slots 0").is_err());
        let err = run_line("churn --flight-out d --trace-out t.jsonl").unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
        let err = run_line("churn --frontier 0.1 --series-out s.jsonl").unwrap_err();
        assert!(err.contains("--frontier"), "{err}");
    }

    #[test]
    fn churn_series_stream_is_byte_identical_across_reruns() {
        // Acceptance: the deterministic series is byte-stable at a
        // fixed seed; --series-timings opts into the measured fields.
        let s1 = tmp("churn_series_a.jsonl");
        let s2 = tmp("churn_series_b.jsonl");
        for s in [&s1, &s2] {
            let out = run_line(&format!(
                "churn --n 25 --slots 40 --seed 5 --series-out {s}"
            ))
            .unwrap();
            assert!(
                out.contains(&format!("wrote 40 slot records to {s}")),
                "{out}"
            );
        }
        let a = std::fs::read(&s1).unwrap();
        assert_eq!(a, std::fs::read(&s2).unwrap(), "series bytes diverged");
        let text = String::from_utf8(a).unwrap();
        assert_eq!(text.lines().count(), 40);
        assert!(!text.contains("_ns"), "det mode must omit timings");
        assert!(text.lines().all(|l| l.starts_with("{\"slot\":")));

        let s3 = tmp("churn_series_timed.jsonl");
        run_line(&format!(
            "churn --n 25 --slots 40 --seed 5 --series-timings --series-out {s3} --series-cadence 4"
        ))
        .unwrap();
        let timed = std::fs::read_to_string(&s3).unwrap();
        assert_eq!(timed.lines().count(), 10, "cadence 4 over 40 slots");
        assert!(timed.contains("\"slot_ns\":"));
    }

    #[test]
    fn churn_flight_out_stays_quiet_without_an_anomaly() {
        let dir = std::env::temp_dir().join("fading_cli_flight_quiet");
        let _ = std::fs::remove_dir_all(&dir);
        let out = run_line(&format!(
            "churn --n 20 --slots 30 --seed 3 --flight-out {}",
            dir.display()
        ))
        .unwrap();
        assert!(!out.contains("post-mortem"), "{out}");
        assert!(!dir.join("postmortem.json").exists());
    }

    #[test]
    fn churn_overload_dumps_a_postmortem_bundle_into_the_manifest() {
        // Every link draws a packet every slot: backlog grows strictly
        // and the queue-growth detector fires within the horizon.
        let dir = std::env::temp_dir().join("fading_cli_flight_fire");
        let _ = std::fs::remove_dir_all(&dir);
        let manifest = tmp("churn_flight_manifest.json");
        let out = run_line(&format!(
            "churn --n 25 --slots 150 --seed 2 --packet-prob 1.0 --lifetime 80 \
             --flight-out {} --metrics-out {manifest}",
            dir.display()
        ))
        .unwrap();
        assert!(out.contains("anomaly `queue_growth` fired"), "{out}");
        assert!(out.contains("post-mortem bundle at"), "{out}");
        for name in [
            "postmortem.json",
            "flight_trace.jsonl",
            "replay_trace.jsonl",
        ] {
            assert!(dir.join(name).exists(), "missing {name}");
        }
        let m: fading_obs::RunManifest =
            serde_json::from_str(&std::fs::read_to_string(&manifest).unwrap()).unwrap();
        let bundle: Vec<_> = m
            .artifacts
            .iter()
            .filter(|a| a.kind == "postmortem")
            .collect();
        assert!(bundle.len() >= 3, "bundle files hashed into the manifest");
        assert!(bundle.iter().all(|a| a.sha256.len() == 64));
    }

    #[test]
    fn prom_out_renders_the_metrics_snapshot() {
        let prom = tmp("churn_prom.prom");
        let series = tmp("churn_prom_series.jsonl");
        let manifest = tmp("churn_prom_manifest.json");
        run_line(&format!(
            "churn --n 20 --slots 20 --seed 4 --series-out {series} \
             --prom-out {prom} --metrics-out {manifest} --watch --quiet"
        ))
        .unwrap();
        let text = std::fs::read_to_string(&prom).unwrap();
        assert!(text.contains("# TYPE"), "{text}");
        // The armed run registered the phase histograms globally.
        assert!(text.contains("churn_slot_ns"), "{text}");
        let body = std::fs::read_to_string(&manifest).unwrap();
        let m: fading_obs::RunManifest = serde_json::from_str(&body).unwrap();
        assert!(m.artifacts.iter().any(|a| a.kind == "series"));
        assert!(m.artifacts.iter().any(|a| a.kind == "prometheus"));
        // Satellite: derived quantiles ride along in the manifest.
        assert!(body.contains("\"p50\""), "quantiles missing from manifest");
    }

    #[test]
    fn every_algorithm_name_resolves() {
        for name in [
            "ldp",
            "ldp-two-sided",
            "rle",
            "dls",
            "greedy",
            "random",
            "exact",
            "anneal",
            "approx-logn",
            "approx-diversity",
        ] {
            assert!(scheduler_by_name(name).is_ok(), "{name}");
        }
        assert!(scheduler_by_name("nope").is_err());
    }

    #[test]
    fn sparse_backend_schedules_identically_to_dense() {
        let inst = tmp("backend.json");
        run_line(&format!("generate --n 80 --seed 11 --out {inst}")).unwrap();
        let dense = run_line(&format!("schedule --instance {inst} --algo rle")).unwrap();
        let sparse = run_line(&format!(
            "schedule --instance {inst} --algo rle --interference sparse"
        ))
        .unwrap();
        let auto = run_line(&format!(
            "schedule --instance {inst} --algo rle --interference auto"
        ))
        .unwrap();
        assert_eq!(dense, sparse);
        assert_eq!(dense, auto);
        assert!(dense.contains("fading-feasible: true"));
    }

    #[test]
    fn backend_flag_errors_are_clean() {
        let inst = tmp("backend_err.json");
        run_line(&format!("generate --n 5 --out {inst}")).unwrap();
        let err = run_line(&format!(
            "schedule --instance {inst} --algo rle --interference csr"
        ))
        .unwrap_err();
        assert!(err.contains("unknown interference backend"), "{err}");
        let err = run_line(&format!(
            "schedule --instance {inst} --algo rle --tail-rtol 1e-4"
        ))
        .unwrap_err();
        assert!(err.contains("--interference sparse"), "{err}");
        let err = run_line(&format!(
            "schedule --instance {inst} --algo rle --interference sparse --tail-rtol 2"
        ))
        .unwrap_err();
        assert!(err.contains("--tail-rtol"), "{err}");
    }

    #[test]
    fn unknown_subcommand_shows_usage() {
        let err = run_line("frobnicate").unwrap_err();
        assert!(err.contains("unknown subcommand"));
        assert!(err.contains("USAGE"));
    }

    #[test]
    fn schedule_rejects_bad_alpha() {
        let inst = tmp("bad_alpha.json");
        run_line(&format!("generate --n 5 --out {inst}")).unwrap();
        let err = run_line(&format!(
            "schedule --instance {inst} --algo rle --alpha 1.5"
        ))
        .unwrap_err();
        assert!(err.contains("--alpha"));
    }

    #[test]
    fn simulate_rejects_mismatched_schedule() {
        let inst_big = tmp("mismatch_big.json");
        let inst_small = tmp("mismatch_small.json");
        let sched = tmp("mismatch_schedule.json");
        run_line(&format!("generate --n 50 --out {inst_big}")).unwrap();
        run_line(&format!("generate --n 3 --out {inst_small}")).unwrap();
        run_line(&format!(
            "schedule --instance {inst_big} --algo greedy --out {sched}"
        ))
        .unwrap();
        let err = run_line(&format!(
            "simulate --instance {inst_small} --schedule {sched}"
        ))
        .unwrap_err();
        assert!(err.contains("nonexistent link"), "{err}");
    }

    #[test]
    fn missing_instance_file_is_a_clean_error() {
        let err = run_line("stats --instance /nonexistent/inst.json").unwrap_err();
        assert!(err.contains("cannot read"));
    }

    #[test]
    fn multislot_drains_everything() {
        let inst = tmp("multislot.json");
        run_line(&format!("generate --n 25 --out {inst}")).unwrap();
        let out = run_line(&format!("multislot --instance {inst} --algo greedy")).unwrap();
        assert!(out.contains("25 links drained"));
        assert!(out.contains("clique lower bound"));
        // Every link id appears exactly once across slots.
        let mut count = 0;
        for line in out.lines().filter(|l| l.trim_start().starts_with("slot")) {
            count += line.split_whitespace().skip(2).count();
        }
        assert_eq!(count, 25);
    }

    #[test]
    fn capacity_reports_per_link_numbers() {
        let inst = tmp("capacity.json");
        let sched = tmp("capacity_schedule.json");
        run_line(&format!("generate --n 40 --out {inst}")).unwrap();
        run_line(&format!(
            "schedule --instance {inst} --algo rle --out {sched}"
        ))
        .unwrap();
        let out = run_line(&format!("capacity --instance {inst} --schedule {sched}")).unwrap();
        assert!(out.contains("ergodic"));
        assert!(out.contains("total ergodic Shannon throughput"));
    }

    #[test]
    fn render_writes_svg() {
        let inst = tmp("render.json");
        let sched = tmp("render_schedule.json");
        let svg = tmp("render.svg");
        run_line(&format!("generate --n 30 --out {inst}")).unwrap();
        run_line(&format!(
            "schedule --instance {inst} --algo rle --out {sched}"
        ))
        .unwrap();
        let out = run_line(&format!(
            "render --instance {inst} --schedule {sched} --out {svg} --grid-cell 125 --disks 5"
        ))
        .unwrap();
        assert!(out.contains("rendered 30 links"));
        let body = std::fs::read_to_string(&svg).unwrap();
        assert!(body.starts_with("<svg"));
        assert!(body.contains("<line"));
    }

    #[test]
    fn help_prints_usage() {
        let out = run_line("help").unwrap();
        assert!(out.contains("USAGE"));
        assert!(out.contains("approx-diversity"));
        assert!(out.contains("bench-report"));
        assert!(out.contains("--check"));
    }

    #[test]
    fn unknown_flag_is_rejected_per_subcommand() {
        let err = run_line("generate --n 10 --trails 5").unwrap_err();
        assert!(err.contains("unknown option --trails"), "{err}");
        assert!(err.contains("generate"), "{err}");
        // `trials` is valid for simulate but not for schedule.
        let err = run_line("schedule --instance x --trials 10").unwrap_err();
        assert!(err.contains("unknown option --trials"), "{err}");
    }

    #[test]
    fn global_flags_are_accepted_everywhere() {
        let inst = tmp("globals.json");
        run_line(&format!("generate --n 10 --out {inst} --quiet")).unwrap();
        run_line(&format!("stats --instance {inst} --quiet")).unwrap();
    }

    #[test]
    fn metrics_out_writes_a_parseable_manifest() {
        let inst = tmp("manifest_inst.json");
        let sched = tmp("manifest_schedule.json");
        let manifest = tmp("manifest.json");
        run_line(&format!("generate --n 20 --seed 9 --out {inst}")).unwrap();
        run_line(&format!(
            "schedule --instance {inst} --algo rle --out {sched}"
        ))
        .unwrap();
        let out = run_line(&format!(
            "simulate --instance {inst} --schedule {sched} --trials 64 --seed 9 --metrics-out {manifest}"
        ))
        .unwrap();
        assert!(out.contains("wrote metrics manifest"), "{out}");
        let body = std::fs::read_to_string(&manifest).unwrap();
        let m: fading_obs::RunManifest = serde_json::from_str(&body).unwrap();
        assert_eq!(m.name, "simulate");
        assert_eq!(m.seed, 9);
        assert_eq!(m.config.get("trials").map(String::as_str), Some("64"));
        // The Monte-Carlo loop ran, so its trial counter must be ≥ 64
        // (other tests on the shared registry may add more).
        assert!(*m.metrics.counters.get("sim.mc.trials").unwrap_or(&0) >= 64);
    }

    /// A synthetic two-metric ledger entry for the `--check` tests.
    fn synthetic_report(rle_ns: f64) -> fading_bench::schema::BenchReport {
        use fading_bench::schema::{BenchReport, MetricKind, MetricRecord};
        let rec = |id: &str, value: f64| MetricRecord {
            id: id.to_string(),
            kind: MetricKind::NsPerOp,
            value,
            ci95: value * 0.01,
            samples: 7,
            lower_is_better: true,
        };
        BenchReport::new(
            "2026-08-08".into(),
            vec![
                rec("schedule/rle/1000", rle_ns),
                rec("schedule/ldp/1000", 5_000.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn bench_report_check_flags_a_doctored_regression_naming_bench_and_threshold() {
        let baseline_path = tmp("bench_baseline.json");
        let current_path = tmp("bench_current.json");
        // Doctored history: the baseline ran `schedule/rle/1000` 2×
        // faster than the current report claims.
        synthetic_report(1_000.0)
            .write(std::path::Path::new(&baseline_path))
            .unwrap();
        synthetic_report(2_000.0)
            .write(std::path::Path::new(&current_path))
            .unwrap();
        let err = run_line(&format!(
            "bench-report --from {current_path} --baseline {baseline_path} --check"
        ))
        .unwrap_err();
        assert!(err.contains("schedule/rle/1000"), "{err}");
        assert!(err.contains("threshold 30%"), "{err}");
        assert!(err.contains(&baseline_path), "{err}");
    }

    #[test]
    fn bench_report_check_is_clean_on_identical_history() {
        let baseline_path = tmp("bench_clean_baseline.json");
        let current_path = tmp("bench_clean_current.json");
        synthetic_report(1_000.0)
            .write(std::path::Path::new(&baseline_path))
            .unwrap();
        synthetic_report(1_010.0)
            .write(std::path::Path::new(&current_path))
            .unwrap();
        let (code, out) = run_code(&format!(
            "bench-report --from {current_path} --baseline {baseline_path} --check"
        ))
        .unwrap();
        assert_eq!(code, 0);
        assert!(out.contains("clean"), "{out}");
    }

    #[test]
    fn bench_report_check_downgrades_regressions_on_fingerprint_mismatch() {
        let baseline_path = tmp("bench_fp_baseline.json");
        let current_path = tmp("bench_fp_current.json");
        let mut baseline = synthetic_report(1_000.0);
        baseline.fingerprint.cpu_model = "some other machine".into();
        baseline
            .write(std::path::Path::new(&baseline_path))
            .unwrap();
        synthetic_report(2_000.0)
            .write(std::path::Path::new(&current_path))
            .unwrap();
        let (code, out) = run_code(&format!(
            "bench-report --from {current_path} --baseline {baseline_path} --check"
        ))
        .unwrap();
        assert_eq!(code, 2);
        assert!(out.contains("fingerprint mismatch"), "{out}");
        assert!(out.contains("warning"), "{out}");
        assert!(out.contains("schedule/rle/1000"), "{out}");
    }

    #[test]
    fn bench_report_check_enforces_absolute_ceilings_across_fingerprints() {
        let baseline_path = tmp("bench_max_baseline.json");
        let current_path = tmp("bench_max_current.json");
        let gates_path = tmp("bench_max_gates.toml");
        let mut baseline = synthetic_report(1_000.0);
        baseline.fingerprint.cpu_model = "some other machine".into();
        baseline
            .write(std::path::Path::new(&baseline_path))
            .unwrap();
        synthetic_report(1_000.0)
            .write(std::path::Path::new(&current_path))
            .unwrap();
        std::fs::write(&gates_path, "[max]\n\"schedule/ldp/1000\" = 10.0\n").unwrap();
        let err = run_line(&format!(
            "bench-report --from {current_path} --baseline {baseline_path} \
             --gates {gates_path} --check"
        ))
        .unwrap_err();
        assert!(err.contains("schedule/ldp/1000"), "{err}");
        assert!(err.contains("ceiling"), "{err}");
    }

    #[test]
    fn bench_report_writes_a_real_ledger_entry_for_a_filtered_run() {
        let dir = std::env::temp_dir().join("fading_bench_report_emit");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let out_path = dir.join("BENCH_out.json");
        let manifest = dir.join("manifest.json");
        // A single cheap bench keeps this a plumbing test, not a perf
        // run; debug timings are irrelevant.
        let (code, out) = run_code(&format!(
            "bench-report --filter schedule/greedy/300 --quick --out {} --metrics-out {}",
            out_path.display(),
            manifest.display()
        ))
        .unwrap();
        assert_eq!(code, 0);
        assert!(out.contains("wrote 1 metrics"), "{out}");
        let report =
            fading_bench::schema::BenchReport::load(&out_path).expect("emitted report parses");
        assert_eq!(
            report.schema_version,
            fading_bench::schema::BENCH_SCHEMA_VERSION
        );
        assert_eq!(report.metrics.len(), 1);
        assert_eq!(report.metrics[0].id, "schedule/greedy/300");
        assert!(report.metrics[0].value > 0.0);
        // The ledger entry lands in the manifest's artifacts, hashed.
        let m: fading_obs::RunManifest =
            serde_json::from_str(&std::fs::read_to_string(&manifest).unwrap()).unwrap();
        let artifact = m
            .artifacts
            .iter()
            .find(|a| a.kind == "bench-report")
            .expect("bench-report artifact recorded");
        assert_eq!(artifact.sha256.len(), 64);
    }

    #[test]
    fn bench_report_check_survives_a_same_day_committed_baseline() {
        let dir = std::env::temp_dir().join("fading_bench_report_sameday");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // The newest (and only) committed entry bears today's date —
        // the merge-day seed state that used to make --check error
        // with "no committed BENCH_*.json found" (the default out
        // path collided with it and was excluded from the search).
        let committed = dir.join(format!("BENCH_{}.json", fading_bench::schema::today_utc()));
        synthetic_report(1_000.0).write(&committed).unwrap();
        let before = std::fs::read_to_string(&committed).unwrap();
        // The filtered run shares no metric ids with the baseline, so
        // the diff is all added/removed rows — verdict clean.
        let (code, out) = run_code(&format!(
            "bench-report --quick --filter schedule/greedy/300 --check --dir {}",
            dir.display()
        ))
        .unwrap();
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("clean"), "{out}");
        // The committed entry served as the baseline and is untouched;
        // the fresh numbers landed outside the ledger scan.
        assert_eq!(std::fs::read_to_string(&committed).unwrap(), before);
        assert!(dir.join("target").join("BENCH_current.json").exists());
    }

    #[test]
    fn bench_report_check_never_diffs_a_report_against_itself() {
        let dir = std::env::temp_dir().join("fading_bench_report_selfdiff");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let committed = dir.join("BENCH_2026-01-01.json");
        synthetic_report(1_000.0).write(&committed).unwrap();
        // Spell the --from path differently from how the dir scan
        // finds it (`..` survives raw `Path` comparison); the
        // canonical-path exclusion must still recognize the sole
        // committed entry as the report under check instead of
        // reporting a trivially clean self-diff.
        std::fs::create_dir_all(dir.join("sub")).unwrap();
        let alias = dir.join("sub").join("..").join("BENCH_2026-01-01.json");
        let err = run_line(&format!(
            "bench-report --from {} --check --dir {}",
            alias.display(),
            dir.display()
        ))
        .unwrap_err();
        assert!(err.contains("no committed BENCH_"), "{err}");
        assert!(err.contains("other than the report under check"), "{err}");
    }

    #[test]
    fn bench_report_check_without_baseline_names_the_search_dir() {
        let dir = std::env::temp_dir().join("fading_bench_report_nobase");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let current_path = tmp("bench_nobase_current.json");
        synthetic_report(1.0)
            .write(std::path::Path::new(&current_path))
            .unwrap();
        let err = run_line(&format!(
            "bench-report --from {current_path} --check --dir {}",
            dir.display()
        ))
        .unwrap_err();
        assert!(err.contains("no committed BENCH_"), "{err}");
        assert!(err.contains("fading_bench_report_nobase"), "{err}");
    }

    #[test]
    fn quiet_suppresses_manifest_chatter() {
        let inst = tmp("quiet_inst.json");
        let manifest = tmp("quiet_manifest.json");
        run_line(&format!("generate --n 10 --out {inst}")).unwrap();
        let out = run_line(&format!(
            "stats --instance {inst} --metrics-out {manifest} --quiet"
        ))
        .unwrap();
        assert!(!out.contains("wrote metrics manifest"), "{out}");
        assert!(std::path::Path::new(&manifest).exists());
    }
}
