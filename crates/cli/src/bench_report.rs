//! `fading bench-report` — the perf-trajectory ledger command.
//!
//! Runs the programmatic bench suite (`fading_bench::report`), writes
//! a schema-versioned `BENCH_<date>.json`, and with `--check` diffs it
//! against the newest committed ledger entry under the thresholds in
//! `bench-gates.toml`. Check runs default their output to
//! `<dir>/target/BENCH_current.json` — outside the ledger scan — so a
//! same-day committed entry (e.g. the seed on merge day) stays both
//! findable as the baseline and untouched on disk. Exit codes: 0
//! clean, 1 regression (via the normal error path, naming the
//! offending bench and threshold), 2 fingerprint mismatch (would-be
//! regressions reported as warnings). See `docs/bench-report.md`.

use crate::args::Args;
use crate::commands::CmdEffects;
use fading_bench::gates::{GateConfig, Status, Verdict};
use fading_bench::report::{run_report, ReportOptions};
use fading_bench::schema::{latest_report_path, today_utc, BenchReport};
use std::path::{Path, PathBuf};

pub fn bench_report(
    args: &Args,
    out: &mut dyn std::io::Write,
    effects: &mut CmdEffects,
) -> Result<(), String> {
    let quiet = args.flag("quiet");
    let check = args.flag("check");
    let dir = PathBuf::from(args.get("dir").unwrap_or("."));
    let out_path = match args.get("out") {
        Some(path) => PathBuf::from(path),
        // A check run must never drop its fresh numbers into the
        // ledger dir: a BENCH_<today>.json default would collide with
        // a committed same-day entry (overwriting the baseline it is
        // supposed to be judged against). `target/` is outside the
        // top-level BENCH_*.json scan.
        None if check => dir.join("target").join("BENCH_current.json"),
        None => dir.join(format!("BENCH_{}.json", today_utc())),
    };

    // Measure (or reuse a prior report with --from, for re-checks and
    // tests that must not pay a bench run).
    let current = match args.get("from") {
        Some(path) => BenchReport::load(Path::new(path))?,
        None => {
            if !quiet {
                writeln!(out, "running bench suite (this takes a minute)...")
                    .map_err(|e| e.to_string())?;
            }
            run_report(&ReportOptions {
                quick: args.flag("quick"),
                filter: args.get("filter").map(String::from),
                smoke: args.flag("smoke"),
            })?
        }
    };

    // Resolve and *load* the baseline before writing the new report:
    // an explicit --out naming a committed entry then diffs against
    // that entry's pre-overwrite content. The only file excluded from
    // the search is the --from source — the one case where the diff
    // would trivially compare a report against itself.
    let baseline_path = match args.get("baseline") {
        Some(path) => Some(PathBuf::from(path)),
        None if check => {
            let under_check = args.get("from").map(Path::new);
            Some(latest_report_path(&dir, under_check).ok_or_else(|| {
                format!(
                    "no committed BENCH_*.json found in {}{} to check against; \
                     pass --baseline <file> or commit a seed report first",
                    dir.display(),
                    if under_check.is_some() {
                        " (other than the report under check)"
                    } else {
                        ""
                    }
                )
            })?)
        }
        None => None,
    };
    let baseline = baseline_path
        .as_deref()
        .map(BenchReport::load)
        .transpose()?;

    // Persist the ledger entry (skipped for --from unless --out asks
    // for a copy) and summarize.
    if args.get("from").is_none() || args.get("out").is_some() {
        if let Some(parent) = out_path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
        }
        current.write(&out_path)?;
        effects
            .artifacts
            .push(("bench-report".to_string(), out_path.clone()));
        if !quiet {
            writeln!(
                out,
                "wrote {} metrics to {} ({})",
                current.metrics.len(),
                out_path.display(),
                current.fingerprint.describe()
            )
            .map_err(|e| e.to_string())?;
        }
    }

    let Some(baseline) = baseline else {
        return Ok(());
    };
    let gates = load_gates(args, &dir)?;
    let diff = fading_bench::gates::diff_reports(&baseline, &current, &gates);
    let table = diff.render_table();
    write!(out, "{table}").map_err(|e| e.to_string())?;
    if let Some(path) = args.get("diff-out") {
        std::fs::write(path, &table).map_err(|e| format!("cannot write {path}: {e}"))?;
        effects
            .artifacts
            .push(("bench-diff".to_string(), PathBuf::from(path)));
        if !quiet {
            writeln!(out, "wrote diff table to {path}").map_err(|e| e.to_string())?;
        }
    }
    if !check {
        return Ok(());
    }
    match diff.verdict() {
        Verdict::Clean => {
            writeln!(
                out,
                "bench-report check: clean against {}",
                baseline_path.as_deref().unwrap_or(Path::new("?")).display()
            )
            .map_err(|e| e.to_string())?;
            Ok(())
        }
        Verdict::Regression => Err(format!(
            "bench-report check failed against {}:\n  {}",
            baseline_path.as_deref().unwrap_or(Path::new("?")).display(),
            diff.failures().join("\n  ")
        )),
        Verdict::FingerprintWarning => {
            writeln!(
                out,
                "bench-report check: fingerprint mismatch — {} would-be regression(s) \
                 reported as warnings, not failures:",
                diff.with_status(Status::Regressed).count()
            )
            .map_err(|e| e.to_string())?;
            for line in diff.failures() {
                writeln!(out, "  warning: {line}").map_err(|e| e.to_string())?;
            }
            effects.exit_code = 2;
            Ok(())
        }
    }
}

/// `--gates <path>`, else `<dir>/bench-gates.toml` when present, else
/// built-in defaults (no per-metric overrides, no ceilings).
fn load_gates(args: &Args, dir: &Path) -> Result<GateConfig, String> {
    match args.get("gates") {
        Some(path) => GateConfig::load(Path::new(path)),
        None => {
            let default = dir.join("bench-gates.toml");
            if default.exists() {
                GateConfig::load(&default)
            } else {
                Ok(GateConfig::default())
            }
        }
    }
}
