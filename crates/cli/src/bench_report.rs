//! `fading bench-report` — the perf-trajectory ledger command.
//!
//! Runs the programmatic bench suite (`fading_bench::report`), writes
//! a schema-versioned `BENCH_<date>.json`, and with `--check` diffs it
//! against the newest committed ledger entry under the thresholds in
//! `bench-gates.toml`. Exit codes: 0 clean, 1 regression (via the
//! normal error path, naming the offending bench and threshold), 2
//! fingerprint mismatch (would-be regressions reported as warnings).
//! See `docs/bench-report.md`.

use crate::args::Args;
use crate::commands::CmdEffects;
use fading_bench::gates::{GateConfig, Status, Verdict};
use fading_bench::report::{run_report, ReportOptions};
use fading_bench::schema::{latest_report_path, today_utc, BenchReport};
use std::path::{Path, PathBuf};

pub fn bench_report(
    args: &Args,
    out: &mut dyn std::io::Write,
    effects: &mut CmdEffects,
) -> Result<(), String> {
    let quiet = args.flag("quiet");
    let dir = PathBuf::from(args.get("dir").unwrap_or("."));
    let out_path = args
        .get("out")
        .map(PathBuf::from)
        .unwrap_or_else(|| dir.join(format!("BENCH_{}.json", today_utc())));

    // Measure (or reuse a prior report with --from, for re-checks and
    // tests that must not pay a bench run).
    let current = match args.get("from") {
        Some(path) => BenchReport::load(Path::new(path))?,
        None => {
            if !quiet {
                writeln!(out, "running bench suite (this takes a minute)...")
                    .map_err(|e| e.to_string())?;
            }
            run_report(&ReportOptions {
                quick: args.flag("quick"),
                filter: args.get("filter").map(String::from),
            })?
        }
    };

    // Resolve the baseline *before* writing the new report, so a
    // same-day rerun never diffs a file against itself.
    let check = args.flag("check");
    let baseline_path = match args.get("baseline") {
        Some(path) => Some(PathBuf::from(path)),
        None if check => Some(latest_report_path(&dir, Some(&out_path)).ok_or_else(|| {
            format!(
                "no committed BENCH_*.json found in {} to check against; \
                 pass --baseline <file> or commit a seed report first",
                dir.display()
            )
        })?),
        None => None,
    };
    let baseline = baseline_path
        .as_deref()
        .map(BenchReport::load)
        .transpose()?;

    // Persist the ledger entry (skipped for --from unless --out asks
    // for a copy) and summarize.
    if args.get("from").is_none() || args.get("out").is_some() {
        current.write(&out_path)?;
        effects
            .artifacts
            .push(("bench-report".to_string(), out_path.clone()));
        if !quiet {
            writeln!(
                out,
                "wrote {} metrics to {} ({})",
                current.metrics.len(),
                out_path.display(),
                current.fingerprint.describe()
            )
            .map_err(|e| e.to_string())?;
        }
    }

    let Some(baseline) = baseline else {
        return Ok(());
    };
    let gates = load_gates(args, &dir)?;
    let diff = fading_bench::gates::diff_reports(&baseline, &current, &gates);
    let table = diff.render_table();
    write!(out, "{table}").map_err(|e| e.to_string())?;
    if let Some(path) = args.get("diff-out") {
        std::fs::write(path, &table).map_err(|e| format!("cannot write {path}: {e}"))?;
        effects
            .artifacts
            .push(("bench-diff".to_string(), PathBuf::from(path)));
        if !quiet {
            writeln!(out, "wrote diff table to {path}").map_err(|e| e.to_string())?;
        }
    }
    if !check {
        return Ok(());
    }
    match diff.verdict() {
        Verdict::Clean => {
            writeln!(
                out,
                "bench-report check: clean against {}",
                baseline_path.as_deref().unwrap_or(Path::new("?")).display()
            )
            .map_err(|e| e.to_string())?;
            Ok(())
        }
        Verdict::Regression => Err(format!(
            "bench-report check failed against {}:\n  {}",
            baseline_path.as_deref().unwrap_or(Path::new("?")).display(),
            diff.failures().join("\n  ")
        )),
        Verdict::FingerprintWarning => {
            writeln!(
                out,
                "bench-report check: fingerprint mismatch — {} would-be regression(s) \
                 reported as warnings, not failures:",
                diff.with_status(Status::Regressed).count()
            )
            .map_err(|e| e.to_string())?;
            for line in diff.failures() {
                writeln!(out, "  warning: {line}").map_err(|e| e.to_string())?;
            }
            effects.exit_code = 2;
            Ok(())
        }
    }
}

/// `--gates <path>`, else `<dir>/bench-gates.toml` when present, else
/// built-in defaults (no per-metric overrides, no ceilings).
fn load_gates(args: &Args, dir: &Path) -> Result<GateConfig, String> {
    match args.get("gates") {
        Some(path) => GateConfig::load(Path::new(path)),
        None => {
            let default = dir.join("bench-gates.toml");
            if default.exists() {
                GateConfig::load(&default)
            } else {
                Ok(GateConfig::default())
            }
        }
    }
}
