//! `fading explain` — interrogate a decision trace.
//!
//! Answers provenance questions about a JSONL trace written with
//! `--trace-out`: why a given link was dropped (the eliminating rule
//! and the budget state at that moment), how the interference budget
//! was spent per receiver, which eliminations a pick triggered, and —
//! given the original instance — whether the trace replays to the
//! exact schedule it claims (`--verify`).

use crate::args::Args;
use fading_obs::{ElimCause, Trace, TraceEvent};
use std::path::Path;

/// Entry point for the `explain` subcommand.
pub fn explain(args: &Args, out: &mut dyn std::io::Write) -> Result<(), String> {
    let path = args.require("trace")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let trace = Trace::from_jsonl(&text)?;
    if trace.events.is_empty() {
        return Err(format!("{path}: trace contains no events"));
    }
    let blocks = trace.blocks();

    let mut did_something = false;
    if let Some(link) = args.get("link") {
        let link: u32 = link
            .parse()
            .map_err(|e| format!("option --link: cannot parse {link:?}: {e}"))?;
        explain_link(&blocks, link, out)?;
        did_something = true;
    }
    if args.flag("budgets") {
        explain_budgets(&blocks, args.get_or("block", 0usize)?, out)?;
        did_something = true;
    }
    if let Some(pick) = args.get("cascade") {
        let pick: usize = pick
            .parse()
            .map_err(|e| format!("option --cascade: cannot parse {pick:?}: {e}"))?;
        explain_cascade(&blocks, args.get_or("block", 0usize)?, pick, out)?;
        did_something = true;
    }
    if args.flag("verify") {
        verify(args, &trace, out)?;
        did_something = true;
    }
    if !did_something {
        summarize(&trace, &blocks, out)?;
    }
    Ok(())
}

fn w(out: &mut dyn std::io::Write, s: String) -> Result<(), String> {
    writeln!(out, "{s}").map_err(|e| e.to_string())
}

/// Header fields of a block, normalized across the three block kinds.
struct Header<'a> {
    scheduler: &'a str,
    threshold: Option<f64>,
}

fn header(block: &[TraceEvent]) -> Option<Header<'_>> {
    match block.first()? {
        TraceEvent::ElimStart {
            scheduler,
            threshold,
            ..
        } => Some(Header {
            scheduler,
            threshold: Some(*threshold),
        }),
        TraceEvent::GridStart { scheduler, .. } | TraceEvent::AlgoStart { scheduler, .. } => {
            Some(Header {
                scheduler,
                threshold: None,
            })
        }
        _ => None,
    }
}

fn cause_name(cause: ElimCause) -> &'static str {
    match cause {
        ElimCause::Radius => "Radius (sender inside the picked receiver's c₁·d_ii disk)",
        ElimCause::BudgetExceeded => "BudgetExceeded (accumulated interference above c₂·budget)",
        ElimCause::ColorConflict => "ColorConflict (lost its square or the square's color lost)",
        ElimCause::ClassFiltered => "ClassFiltered (outside the winning length class)",
    }
}

/// One-line-per-block overview: scheduler, picks, eliminations by
/// cause, debits.
fn summarize(
    trace: &Trace,
    blocks: &[&[TraceEvent]],
    out: &mut dyn std::io::Write,
) -> Result<(), String> {
    if !trace.is_complete() {
        w(
            out,
            format!(
                "warning: ring buffer dropped {} events; the trace head is truncated",
                trace.dropped
            ),
        )?;
    }
    for (i, block) in blocks.iter().enumerate() {
        match block.first() {
            Some(TraceEvent::SlotStart { slot, backlog }) => {
                w(
                    out,
                    format!("block {i}: slot {slot} start (backlog {backlog})"),
                )?;
                continue;
            }
            Some(TraceEvent::SlotEnd { slot, links }) => {
                w(
                    out,
                    format!(
                        "block {i}: slot {slot} end ({} links committed)",
                        links.len()
                    ),
                )?;
                continue;
            }
            _ => {}
        }
        let Some(h) = header(block) else {
            w(out, format!("block {i}: {} unheaded events", block.len()))?;
            continue;
        };
        let mut picks = 0usize;
        let mut debits = 0usize;
        let mut by_cause = [0usize; 4];
        for e in *block {
            match e {
                TraceEvent::Pick { .. } => picks += 1,
                TraceEvent::BudgetDebit { .. } => debits += 1,
                TraceEvent::Eliminate { cause, .. } => {
                    by_cause[*cause as usize] += 1;
                }
                _ => {}
            }
        }
        w(
            out,
            format!(
                "block {i}: {} — {picks} picks, eliminations: {} radius, {} budget, \
                 {} color, {} class; {debits} budget debits",
                h.scheduler,
                by_cause[ElimCause::Radius as usize],
                by_cause[ElimCause::BudgetExceeded as usize],
                by_cause[ElimCause::ColorConflict as usize],
                by_cause[ElimCause::ClassFiltered as usize],
            ),
        )?;
    }
    Ok(())
}

/// Why was link `link` scheduled or dropped? Scans every block the
/// link appears in, reporting the deciding rule and — for budget
/// decisions — the ledger state at that moment.
fn explain_link(
    blocks: &[&[TraceEvent]],
    link: u32,
    out: &mut dyn std::io::Write,
) -> Result<(), String> {
    let mut found = false;
    for (i, block) in blocks.iter().enumerate() {
        let Some(h) = header(block) else { continue };
        // Replay the link's ledger as the block unfolds so the budget
        // state at decision time is available.
        let mut used = 0.0f64;
        let mut debits = 0usize;
        let mut pick_no = 0usize;
        let mut last_pick: Option<u32> = None;
        for e in *block {
            match e {
                TraceEvent::Pick { link: l } => {
                    pick_no += 1;
                    last_pick = Some(*l);
                    if *l == link {
                        found = true;
                        let budget_note = match h.threshold {
                            Some(t) => format!(
                                "; ledger at pick time: {used:.6} of threshold {t:.6} \
                                 ({debits} debits)"
                            ),
                            None => String::new(),
                        };
                        w(
                            out,
                            format!(
                                "block {i}: link {link} PICKED by {} (pick #{pick_no}){budget_note}",
                                h.scheduler
                            ),
                        )?;
                    }
                }
                TraceEvent::BudgetDebit {
                    receiver, factor, ..
                } if *receiver == link => {
                    used += factor;
                    debits += 1;
                }
                TraceEvent::Eliminate { link: l, cause, by } if *l == link => {
                    found = true;
                    let by_note = match by {
                        Some(b) => format!(" by pick of link {b}"),
                        None => String::new(),
                    };
                    let budget_note = match h.threshold {
                        Some(t) => format!(
                            "; ledger at elimination: {used:.6} of threshold {t:.6} \
                             ({debits} debits, last pick {})",
                            last_pick.map_or("none".to_string(), |p| format!("link {p}")),
                        ),
                        None => String::new(),
                    };
                    w(
                        out,
                        format!(
                            "block {i}: link {link} ELIMINATED{by_note} — rule {}{budget_note}",
                            cause_name(*cause)
                        ),
                    )?;
                }
                _ => {}
            }
        }
    }
    if !found {
        return Err(format!("link {link} appears in no decision of this trace"));
    }
    Ok(())
}

/// Budget utilization per receiver for one elimination block.
fn explain_budgets(
    blocks: &[&[TraceEvent]],
    block_idx: usize,
    out: &mut dyn std::io::Write,
) -> Result<(), String> {
    let block = blocks.get(block_idx).ok_or_else(|| {
        format!(
            "--block {block_idx}: trace has only {} blocks",
            blocks.len()
        )
    })?;
    let Some(TraceEvent::ElimStart {
        scheduler,
        threshold,
        budget,
        ..
    }) = block.first()
    else {
        return Err(format!(
            "--budgets needs an elimination block (RLE/ApproxDiversity); \
             block {block_idx} is not one"
        ));
    };
    // receiver → (used, debits, fate)
    let mut ledgers: std::collections::BTreeMap<u32, (f64, usize, &'static str)> =
        std::collections::BTreeMap::new();
    for e in *block {
        match e {
            TraceEvent::BudgetDebit {
                receiver, factor, ..
            } => {
                let entry = ledgers.entry(*receiver).or_insert((0.0, 0, "alive"));
                entry.0 += factor;
                entry.1 += 1;
            }
            TraceEvent::Pick { link } => {
                ledgers.entry(*link).or_insert((0.0, 0, "alive")).2 = "picked";
            }
            TraceEvent::Eliminate { link, cause, .. } => {
                ledgers.entry(*link).or_insert((0.0, 0, "alive")).2 = match cause {
                    ElimCause::Radius => "radius-eliminated",
                    ElimCause::BudgetExceeded => "budget-eliminated",
                    ElimCause::ColorConflict => "color-eliminated",
                    ElimCause::ClassFiltered => "class-filtered",
                };
            }
            _ => {}
        }
    }
    w(
        out,
        format!(
            "{scheduler}: budget {budget:.6}, threshold c₂·budget {threshold:.6}; \
             {} receivers debited",
            ledgers.values().filter(|(_, d, _)| *d > 0).count()
        ),
    )?;
    w(
        out,
        format!(
            "{:<8} {:>12} {:>8} {:>12} {:>10}  fate",
            "receiver", "used", "debits", "remaining", "used%"
        ),
    )?;
    for (receiver, (used, debits, fate)) in &ledgers {
        if *debits == 0 {
            continue;
        }
        w(
            out,
            format!(
                "{receiver:<8} {used:>12.6} {debits:>8} {:>12.6} {:>9.1}%  {fate}",
                threshold - used,
                100.0 * used / threshold
            ),
        )?;
    }
    Ok(())
}

/// The elimination cascade triggered by pick number `pick_no`
/// (1-based) of one block.
fn explain_cascade(
    blocks: &[&[TraceEvent]],
    block_idx: usize,
    pick_no: usize,
    out: &mut dyn std::io::Write,
) -> Result<(), String> {
    let block = blocks.get(block_idx).ok_or_else(|| {
        format!(
            "--block {block_idx}: trace has only {} blocks",
            blocks.len()
        )
    })?;
    let h = header(block).ok_or_else(|| format!("block {block_idx} has no scheduler header"))?;
    if pick_no == 0 {
        return Err("--cascade counts picks from 1".to_string());
    }
    let mut current = 0usize;
    let mut in_target = false;
    let mut eliminated: Vec<String> = Vec::new();
    let mut debits = 0usize;
    let mut picked: Option<u32> = None;
    for e in *block {
        match e {
            TraceEvent::Pick { link } => {
                current += 1;
                if current == pick_no {
                    in_target = true;
                    picked = Some(*link);
                } else if in_target {
                    break;
                }
            }
            TraceEvent::Eliminate { link, cause, .. } if in_target => {
                eliminated.push(format!(
                    "link {link} ({})",
                    match cause {
                        ElimCause::Radius => "radius",
                        ElimCause::BudgetExceeded => "budget",
                        ElimCause::ColorConflict => "color",
                        ElimCause::ClassFiltered => "class",
                    }
                ));
            }
            TraceEvent::BudgetDebit { .. } if in_target => debits += 1,
            _ => {}
        }
    }
    let Some(picked) = picked else {
        return Err(format!(
            "block {block_idx} has only {current} picks; --cascade {pick_no} is out of range"
        ));
    };
    w(
        out,
        format!(
            "{}: pick #{pick_no} = link {picked} eliminated {} links, debited {debits} ledgers",
            h.scheduler,
            eliminated.len()
        ),
    )?;
    for line in eliminated {
        w(out, format!("  {line}"))?;
    }
    Ok(())
}

/// Replays the trace against the original instance and reports the
/// certificate; with `--schedule`, additionally requires the replayed
/// schedule to equal the stored one.
fn verify(args: &Args, trace: &Trace, out: &mut dyn std::io::Write) -> Result<(), String> {
    let links = {
        let path = args.require("instance").map_err(|e| {
            format!("{e} (--verify replays the trace against the original instance)")
        })?;
        fading_net::io::load(Path::new(path)).map_err(|e| format!("cannot read {path}: {e}"))?
    };
    let problem = crate::commands::build_problem(args, links)?;
    let certs = fading_core::replay_trace(&problem, trace)?;
    if let Some(path) = args.get("schedule") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let expected: fading_core::Schedule =
            serde_json::from_str(&text).map_err(|e| format!("cannot parse {path}: {e}"))?;
        let last = certs.last().expect("replay_trace returns ≥1 certificate");
        if last.schedule != expected {
            return Err(format!(
                "replayed schedule ({} links) does not match {path} ({} links)",
                last.schedule.len(),
                expected.len()
            ));
        }
    }
    for cert in &certs {
        w(
            out,
            format!(
                "VERIFIED {}: {} links replayed from {} picks, {} eliminations, \
                 {} debits; γ_ε ledger {}",
                cert.scheduler,
                cert.schedule.len(),
                cert.picks,
                cert.eliminations,
                cert.debits,
                if cert.ledger_checked {
                    "audited (Corollary 3.1 holds)"
                } else {
                    "not claimed"
                }
            ),
        )?;
    }
    Ok(())
}
