//! Minimal `--key value` argument parsing.
//!
//! Deliberately hand-rolled: the CLI needs exactly flag/value pairs and
//! positional subcommands, not a parser framework dependency.

use std::collections::BTreeMap;

/// Parsed command line: a subcommand plus `--key value` options.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Args {
    /// The first positional argument.
    pub command: String,
    /// All `--key value` pairs (later occurrences win).
    pub options: BTreeMap<String, String>,
}

/// Parses an argument vector (excluding the program name).
///
/// Grammar: `<command> (--key value)*`. A trailing `--key` without a
/// value, or a stray positional, is an error.
pub fn parse<I: IntoIterator<Item = String>>(argv: I) -> Result<Args, String> {
    let mut it = argv.into_iter();
    let command = it.next().ok_or("missing subcommand")?;
    if command.starts_with("--") {
        return Err(format!("expected a subcommand, got flag {command}"));
    }
    let mut options = BTreeMap::new();
    while let Some(tok) = it.next() {
        let key = tok
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got {tok}"))?;
        let value = it
            .next()
            .ok_or_else(|| format!("flag --{key} is missing its value"))?;
        options.insert(key.to_string(), value);
    }
    Ok(Args { command, options })
}

impl Args {
    /// A required string option.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.options
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required option --{key}"))
    }

    /// An optional string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// An optional typed option with a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("option --{key}: cannot parse {v:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_command_and_flags() {
        let a = parse(argv("generate --n 100 --seed 7")).unwrap();
        assert_eq!(a.command, "generate");
        assert_eq!(a.require("n").unwrap(), "100");
        assert_eq!(a.get_or::<u64>("seed", 0).unwrap(), 7);
    }

    #[test]
    fn later_flags_override_earlier() {
        let a = parse(argv("x --k 1 --k 2")).unwrap();
        assert_eq!(a.get("k"), Some("2"));
    }

    #[test]
    fn defaults_apply_when_absent() {
        let a = parse(argv("x")).unwrap();
        assert_eq!(a.get_or::<f64>("alpha", 3.0).unwrap(), 3.0);
        assert!(a.get("missing").is_none());
    }

    #[test]
    fn missing_subcommand_is_an_error() {
        assert!(parse(Vec::<String>::new()).is_err());
        assert!(parse(argv("--n 5")).is_err());
    }

    #[test]
    fn dangling_flag_is_an_error() {
        assert!(parse(argv("x --n")).is_err());
    }

    #[test]
    fn unparsable_value_is_an_error() {
        let a = parse(argv("x --n five")).unwrap();
        assert!(a.get_or::<usize>("n", 1).is_err());
    }

    #[test]
    fn require_reports_the_flag_name() {
        let a = parse(argv("x")).unwrap();
        let err = a.require("out").unwrap_err();
        assert!(err.contains("--out"), "{err}");
    }
}
