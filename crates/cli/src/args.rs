//! Minimal `--key value` argument parsing.
//!
//! Deliberately hand-rolled: the CLI needs exactly flag/value pairs and
//! positional subcommands, not a parser framework dependency.

use std::collections::BTreeMap;

/// Parsed command line: a subcommand plus `--key value` options.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Args {
    /// The first positional argument.
    pub command: String,
    /// All `--key value` pairs (later occurrences win).
    pub options: BTreeMap<String, String>,
}

/// Flags that never take a value; their presence stores `"true"`.
pub const BOOLEAN_FLAGS: &[&str] = &[
    "progress",
    "quiet",
    "budgets",
    "verify",
    "check",
    "quick",
    "smoke",
    "watch",
    "series-timings",
];

/// Parses an argument vector (excluding the program name).
///
/// Grammar: `<command> (--key value | --boolean-flag)*`. A trailing
/// `--key` without a value, or a stray positional, is an error.
pub fn parse<I: IntoIterator<Item = String>>(argv: I) -> Result<Args, String> {
    let mut it = argv.into_iter();
    let command = it.next().ok_or("missing subcommand")?;
    if command.starts_with("--") {
        return Err(format!("expected a subcommand, got flag {command}"));
    }
    let mut options = BTreeMap::new();
    while let Some(tok) = it.next() {
        let key = tok
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got {tok}"))?;
        if BOOLEAN_FLAGS.contains(&key) {
            options.insert(key.to_string(), "true".to_string());
            continue;
        }
        let value = it
            .next()
            .ok_or_else(|| format!("flag --{key} is missing its value"))?;
        options.insert(key.to_string(), value);
    }
    Ok(Args { command, options })
}

impl Args {
    /// A required string option.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.options
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required option --{key}"))
    }

    /// An optional string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// An optional typed option with a default. The error names the
    /// flag, echoes the raw value, and keeps the parser's own message.
    pub fn get_or<T>(&self, key: &str, default: T) -> Result<T, String>
    where
        T: std::str::FromStr,
        T::Err: std::fmt::Display,
    {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|e| format!("option --{key}: cannot parse {v:?}: {e}")),
        }
    }

    /// Whether a boolean flag (see [`BOOLEAN_FLAGS`]) was given.
    pub fn flag(&self, key: &str) -> bool {
        self.options.get(key).is_some_and(|v| v != "false")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_command_and_flags() {
        let a = parse(argv("generate --n 100 --seed 7")).unwrap();
        assert_eq!(a.command, "generate");
        assert_eq!(a.require("n").unwrap(), "100");
        assert_eq!(a.get_or::<u64>("seed", 0).unwrap(), 7);
    }

    #[test]
    fn later_flags_override_earlier() {
        let a = parse(argv("x --k 1 --k 2")).unwrap();
        assert_eq!(a.get("k"), Some("2"));
    }

    #[test]
    fn defaults_apply_when_absent() {
        let a = parse(argv("x")).unwrap();
        assert_eq!(a.get_or::<f64>("alpha", 3.0).unwrap(), 3.0);
        assert!(a.get("missing").is_none());
    }

    #[test]
    fn missing_subcommand_is_an_error() {
        assert!(parse(Vec::<String>::new()).is_err());
        assert!(parse(argv("--n 5")).is_err());
    }

    #[test]
    fn dangling_flag_is_an_error() {
        assert!(parse(argv("x --n")).is_err());
    }

    #[test]
    fn unparsable_value_is_an_error() {
        let a = parse(argv("x --n five")).unwrap();
        assert!(a.get_or::<usize>("n", 1).is_err());
    }

    #[test]
    fn parse_errors_name_flag_value_and_cause() {
        let a = parse(argv("x --n five")).unwrap();
        let err = a.get_or::<usize>("n", 1).unwrap_err();
        assert!(err.contains("--n"), "{err}");
        assert!(err.contains("\"five\""), "{err}");
        assert!(err.contains("invalid digit"), "kept cause: {err}");
    }

    #[test]
    fn boolean_flags_take_no_value() {
        let a = parse(argv("simulate --progress --trials 50 --quiet")).unwrap();
        assert!(a.flag("progress"));
        assert!(a.flag("quiet"));
        assert!(!a.flag("metrics-out"));
        assert_eq!(a.get_or::<u64>("trials", 0).unwrap(), 50);
    }

    #[test]
    fn telemetry_booleans_do_not_swallow_values() {
        let a = parse(argv(
            "churn --watch --series-timings --series-out s.jsonl --slots 10",
        ))
        .unwrap();
        assert!(a.flag("watch"));
        assert!(a.flag("series-timings"));
        assert_eq!(a.get("series-out"), Some("s.jsonl"));
        assert_eq!(a.get_or::<u64>("slots", 0).unwrap(), 10);
    }

    #[test]
    fn bench_report_booleans_do_not_swallow_values() {
        // `--check`/`--quick` are presence flags: the token after them
        // must still parse as its own flag.
        let a = parse(argv("bench-report --check --quick --filter rle")).unwrap();
        assert!(a.flag("check"));
        assert!(a.flag("quick"));
        assert_eq!(a.get("filter"), Some("rle"));
    }

    #[test]
    fn require_reports_the_flag_name() {
        let a = parse(argv("x")).unwrap();
        let err = a.require("out").unwrap_err();
        assert!(err.contains("--out"), "{err}");
    }
}
