//! Fuzz-style tests for the CLI: arbitrary token streams must never
//! crash the binary, and the documented grammar must roundtrip.

use proptest::prelude::*;

fn run_binary(args: &[&str]) -> std::process::Output {
    let exe = env!("CARGO_BIN_EXE_fading");
    std::process::Command::new(exe)
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn no_args_prints_usage_and_exits_2() {
    let out = run_binary(&[]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

#[test]
fn help_exits_zero() {
    let out = run_binary(&["help"]);
    assert!(out.status.success());
}

#[test]
fn unknown_command_exits_nonzero_with_usage() {
    let out = run_binary(&["explode"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown subcommand"));
}

#[test]
fn generate_roundtrip_through_the_binary() {
    let dir = std::env::temp_dir().join("fading_parser_fuzz");
    std::fs::create_dir_all(&dir).unwrap();
    let inst = dir.join("roundtrip.json");
    let out = run_binary(&["generate", "--n", "12", "--out", inst.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = run_binary(&["stats", "--instance", inst.to_str().unwrap()]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("12"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary argument soup: the binary must exit cleanly (status
    /// code 0, 1 or 2 — never a crash/abort) and never hang.
    #[test]
    fn arbitrary_args_never_crash(
        tokens in proptest::collection::vec("[a-z0-9=./-]{0,12}", 0..6)
    ) {
        let refs: Vec<&str> = tokens.iter().map(String::as_str).collect();
        let out = run_binary(&refs);
        let code = out.status.code();
        prop_assert!(
            matches!(code, Some(0) | Some(1) | Some(2)),
            "unexpected exit {code:?} for {tokens:?}"
        );
    }
}
