//! End-to-end tests for `--trace-out` and the `explain` subcommand.
//!
//! Each test spawns the real binary, so the global trace ring lives in
//! its own process and tests can run in parallel. The heavyweight
//! n=1000 traced smoke lives in the ledgered release smoke suite
//! (`fading bench-report --smoke`, `smoke.traced.wall_s`).

use fading_core::{verify_schedule, BackendChoice, Problem, Scheduler};
use fading_obs::Trace;
use std::path::{Path, PathBuf};

fn run_binary(args: &[&str]) -> std::process::Output {
    let exe = env!("CARGO_BIN_EXE_fading");
    std::process::Command::new(exe)
        .args(args)
        .output()
        .expect("binary runs")
}

fn ok(args: &[&str]) -> String {
    let out = run_binary(args);
    assert!(
        out.status.success(),
        "`fading {}` failed: {}",
        args.join(" "),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("fading_traced_smoke");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn load_problem(instance: &Path, backend: BackendChoice) -> Problem {
    let json = std::fs::read_to_string(instance).unwrap();
    let links = fading_net::io::from_json(&json).unwrap();
    Problem::builder(links, fading_channel::ChannelParams::with_alpha(3.0))
        .backend(backend)
        .build()
}

#[test]
fn trace_out_writes_replayable_jsonl_and_manifest_artifact() {
    let inst = tmp("small.json");
    let trace_path = tmp("small_rle.trace.jsonl");
    let manifest_path = tmp("small_rle.manifest.json");
    ok(&[
        "generate",
        "--n",
        "80",
        "--seed",
        "5",
        "--out",
        inst.to_str().unwrap(),
    ]);
    let out = ok(&[
        "schedule",
        "--instance",
        inst.to_str().unwrap(),
        "--algo",
        "rle",
        "--trace-out",
        trace_path.to_str().unwrap(),
        "--metrics-out",
        manifest_path.to_str().unwrap(),
    ]);
    assert!(out.contains("trace events"), "{out}");

    // The trace file is valid JSONL, complete, and replays to the
    // emitted schedule with a clean γ_ε ledger.
    let jsonl = std::fs::read_to_string(&trace_path).unwrap();
    let trace = Trace::from_jsonl(&jsonl).unwrap();
    assert!(trace.is_complete(), "trace ring overflowed on n=80");
    let problem = load_problem(&inst, BackendChoice::Dense);
    let expected = fading_core::algo::Rle::default().schedule(&problem);
    let cert = verify_schedule(&problem, &trace, &expected).unwrap();
    assert_eq!(cert.scheduler, "RLE");
    assert!(cert.ledger_checked);

    // The manifest records the trace artifact with its content hash.
    let manifest = std::fs::read_to_string(&manifest_path).unwrap();
    let expected_hash = fading_obs::sha256_hex(jsonl.as_bytes());
    assert!(manifest.contains("\"kind\": \"trace\""), "{manifest}");
    assert!(manifest.contains(&expected_hash), "{manifest}");
}

#[test]
fn explain_names_the_eliminating_rule_and_budget_state() {
    let inst = tmp("explain.json");
    let trace_path = tmp("explain_rle.trace.jsonl");
    ok(&[
        "generate",
        "--n",
        "60",
        "--seed",
        "7",
        "--out",
        inst.to_str().unwrap(),
    ]);
    ok(&[
        "schedule",
        "--instance",
        inst.to_str().unwrap(),
        "--algo",
        "rle",
        "--trace-out",
        trace_path.to_str().unwrap(),
    ]);

    // Summary view names the scheduler and elimination causes.
    let out = ok(&["explain", "--trace", trace_path.to_str().unwrap()]);
    assert!(out.contains("RLE"), "{out}");
    assert!(out.contains("radius"), "{out}");

    // Per-link view names the rule and the ledger at elimination time.
    let out = ok(&[
        "explain",
        "--trace",
        trace_path.to_str().unwrap(),
        "--link",
        "17",
    ]);
    assert!(
        out.contains("rule Radius")
            || out.contains("rule BudgetExceeded")
            || out.contains("PICKED"),
        "{out}"
    );
    assert!(out.contains("threshold"), "{out}");

    // Budget ledger view shows per-receiver utilization.
    let out = ok(&[
        "explain",
        "--trace",
        trace_path.to_str().unwrap(),
        "--budgets",
    ]);
    assert!(out.contains("used%"), "{out}");
    assert!(out.contains("threshold"), "{out}");

    // Replay verification against the instance succeeds.
    let out = ok(&[
        "explain",
        "--trace",
        trace_path.to_str().unwrap(),
        "--verify",
        "--instance",
        inst.to_str().unwrap(),
    ]);
    assert!(out.contains("VERIFIED RLE"), "{out}");
    assert!(out.contains("Corollary 3.1"), "{out}");
}

#[test]
fn explain_rejects_missing_and_mismatched_inputs() {
    let out = run_binary(&["explain"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--trace"));

    let bogus = tmp("not_a_trace.jsonl");
    std::fs::write(&bogus, "{\"type\":\"nope\"}\n").unwrap();
    let out = run_binary(&["explain", "--trace", bogus.to_str().unwrap()]);
    assert!(!out.status.success());
}
