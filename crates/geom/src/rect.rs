//! Axis-aligned rectangles (deployment regions).

use crate::point::Point2;
use serde::{Deserialize, Serialize};

/// An axis-aligned rectangle `[x0, x1] × [y0, y1]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    x0: f64,
    y0: f64,
    x1: f64,
    y1: f64,
}

impl Rect {
    /// Creates a rectangle from two opposite corners (any order).
    ///
    /// # Panics
    /// Panics if any coordinate is non-finite or the rectangle is
    /// degenerate (zero width or height).
    pub fn new(a: Point2, b: Point2) -> Self {
        let (x0, x1) = if a.x <= b.x { (a.x, b.x) } else { (b.x, a.x) };
        let (y0, y1) = if a.y <= b.y { (a.y, b.y) } else { (b.y, a.y) };
        assert!(
            x0.is_finite() && x1.is_finite() && y0.is_finite() && y1.is_finite(),
            "rect corners must be finite"
        );
        assert!(x0 < x1 && y0 < y1, "rect must have positive area");
        Self { x0, y0, x1, y1 }
    }

    /// Square `[0, side] × [0, side]` — the paper's deployment region is
    /// the 500 × 500 instance of this.
    pub fn square(side: f64) -> Self {
        Self::new(Point2::origin(), Point2::new(side, side))
    }

    /// Lower-left corner.
    pub fn min(&self) -> Point2 {
        Point2::new(self.x0, self.y0)
    }

    /// Upper-right corner.
    pub fn max(&self) -> Point2 {
        Point2::new(self.x1, self.y1)
    }

    /// Width (x extent).
    pub fn width(&self) -> f64 {
        self.x1 - self.x0
    }

    /// Height (y extent).
    pub fn height(&self) -> f64 {
        self.y1 - self.y0
    }

    /// Area.
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Length of the diagonal — an upper bound on any pairwise distance
    /// inside the region (the paper's `Δ` denominator scale).
    pub fn diagonal(&self) -> f64 {
        self.width().hypot(self.height())
    }

    /// Whether `p` lies inside (closed boundary).
    pub fn contains(&self, p: &Point2) -> bool {
        p.x >= self.x0 && p.x <= self.x1 && p.y >= self.y0 && p.y <= self.y1
    }

    /// Clamps `p` to the rectangle.
    pub fn clamp(&self, p: Point2) -> Point2 {
        Point2::new(p.x.clamp(self.x0, self.x1), p.y.clamp(self.y0, self.y1))
    }

    /// Grows the rectangle by `margin` on every side.
    pub fn expand(&self, margin: f64) -> Rect {
        Rect::new(
            Point2::new(self.x0 - margin, self.y0 - margin),
            Point2::new(self.x1 + margin, self.y1 + margin),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn square_has_expected_bounds() {
        let r = Rect::square(500.0);
        assert_eq!(r.min(), Point2::origin());
        assert_eq!(r.max(), Point2::new(500.0, 500.0));
        assert_eq!(r.area(), 250_000.0);
        assert!((r.diagonal() - 500.0 * 2f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn corners_normalize() {
        let r = Rect::new(Point2::new(5.0, 7.0), Point2::new(1.0, 2.0));
        assert_eq!(r.min(), Point2::new(1.0, 2.0));
        assert_eq!(r.max(), Point2::new(5.0, 7.0));
    }

    #[test]
    fn contains_boundary() {
        let r = Rect::square(1.0);
        assert!(r.contains(&Point2::origin()));
        assert!(r.contains(&Point2::new(1.0, 1.0)));
        assert!(!r.contains(&Point2::new(1.0 + 1e-12, 0.5)));
    }

    #[test]
    fn clamp_moves_outside_points_to_boundary() {
        let r = Rect::square(1.0);
        assert_eq!(r.clamp(Point2::new(2.0, -1.0)), Point2::new(1.0, 0.0));
        let inside = Point2::new(0.3, 0.4);
        assert_eq!(r.clamp(inside), inside);
    }

    #[test]
    fn expand_grows_symmetrically() {
        let r = Rect::square(2.0).expand(1.0);
        assert_eq!(r.min(), Point2::new(-1.0, -1.0));
        assert_eq!(r.max(), Point2::new(3.0, 3.0));
    }

    #[test]
    #[should_panic(expected = "positive area")]
    fn rejects_degenerate() {
        Rect::new(Point2::origin(), Point2::new(0.0, 5.0));
    }

    proptest! {
        #[test]
        fn clamped_point_is_contained(
            px in -1e4f64..1e4, py in -1e4f64..1e4, side in 0.1f64..1e3
        ) {
            let r = Rect::square(side);
            prop_assert!(r.contains(&r.clamp(Point2::new(px, py))));
        }
    }
}
