//! Poisson-disk (blue-noise) sampling via Bridson's algorithm.
//!
//! Uniform random deployments produce clumps; real radio deployments
//! are often planned with a minimum spacing. Poisson-disk sampling
//! yields points that are uniform at large scales but never closer
//! than a radius `r` — a standard workload in wireless evaluation.
//! Used by `fading-net`'s [`PoissonGenerator`].
//!
//! [`PoissonGenerator`]: ../../fading_net/generator/struct.PoissonGenerator.html

use crate::point::Point2;
use crate::rect::Rect;
use rand::Rng;

/// Bridson's attempts-per-active-point constant; 30 is the paper's
/// recommendation.
const ATTEMPTS: usize = 30;

/// Samples points in `region` such that all pairwise distances are at
/// least `r`, until no more points fit (maximal sample) or `max_points`
/// is reached.
///
/// # Panics
/// Panics unless `r > 0`.
pub fn poisson_disk<R: Rng + ?Sized>(
    rng: &mut R,
    region: &Rect,
    r: f64,
    max_points: usize,
) -> Vec<Point2> {
    assert!(r.is_finite() && r > 0.0, "radius must be positive, got {r}");
    if max_points == 0 {
        return Vec::new();
    }
    // Background grid with cells of r/√2 holds at most one sample each.
    let cell = r / 2f64.sqrt();
    let cols = (region.width() / cell).ceil() as usize + 1;
    let rows = (region.height() / cell).ceil() as usize + 1;
    let mut grid: Vec<Option<u32>> = vec![None; cols * rows];
    let origin = region.min();
    let index = |p: &Point2| -> usize {
        let a = ((p.x - origin.x) / cell) as usize;
        let b = ((p.y - origin.y) / cell) as usize;
        b.min(rows - 1) * cols + a.min(cols - 1)
    };

    let mut points: Vec<Point2> = Vec::new();
    let mut active: Vec<u32> = Vec::new();

    let first = Point2::new(
        rng.gen_range(region.min().x..=region.max().x),
        rng.gen_range(region.min().y..=region.max().y),
    );
    grid[index(&first)] = Some(0);
    points.push(first);
    active.push(0);

    let fits = |p: &Point2, points: &[Point2], grid: &[Option<u32>]| -> bool {
        if !region.contains(p) {
            return false;
        }
        let a = ((p.x - origin.x) / cell) as i64;
        let b = ((p.y - origin.y) / cell) as i64;
        for db in -2..=2i64 {
            for da in -2..=2i64 {
                let (na, nb) = (a + da, b + db);
                if na < 0 || nb < 0 || na as usize >= cols || nb as usize >= rows {
                    continue;
                }
                if let Some(i) = grid[nb as usize * cols + na as usize] {
                    if points[i as usize].distance(p) < r {
                        return false;
                    }
                }
            }
        }
        true
    };

    while !active.is_empty() && points.len() < max_points {
        let slot = rng.gen_range(0..active.len());
        let base = points[active[slot] as usize];
        let mut placed = false;
        for _ in 0..ATTEMPTS {
            // Candidate uniform in the annulus [r, 2r) around base.
            let rho = r * (1.0 + rng.gen::<f64>());
            let theta = rng.gen_range(0.0..std::f64::consts::TAU);
            let candidate = base.offset_polar(rho, theta);
            if fits(&candidate, &points, &grid) {
                let id = points.len() as u32;
                grid[index(&candidate)] = Some(id);
                points.push(candidate);
                active.push(id);
                placed = true;
                break;
            }
        }
        if !placed {
            active.swap_remove(slot);
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn respects_minimum_separation() {
        let region = Rect::square(100.0);
        let pts = poisson_disk(&mut rng(1), &region, 8.0, usize::MAX);
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                assert!(
                    pts[i].distance(&pts[j]) >= 8.0 - 1e-9,
                    "{i} and {j} too close"
                );
            }
        }
    }

    #[test]
    fn all_points_inside_region() {
        let region = Rect::square(50.0);
        for p in poisson_disk(&mut rng(2), &region, 5.0, usize::MAX) {
            assert!(region.contains(&p));
        }
    }

    #[test]
    fn maximal_sample_is_dense() {
        // A maximal r-separated set in a L×L square has at least
        // (L/2r)² points (greedy packing argument).
        let region = Rect::square(100.0);
        let r = 10.0;
        let pts = poisson_disk(&mut rng(3), &region, r, usize::MAX);
        let lower = (100.0 / (2.0 * r)).powi(2) as usize;
        assert!(
            pts.len() >= lower,
            "only {} points, expected ≥ {lower}",
            pts.len()
        );
    }

    #[test]
    fn max_points_caps_the_sample() {
        let region = Rect::square(200.0);
        let pts = poisson_disk(&mut rng(4), &region, 3.0, 25);
        assert_eq!(pts.len(), 25);
    }

    #[test]
    fn deterministic_per_seed() {
        let region = Rect::square(80.0);
        let a = poisson_disk(&mut rng(5), &region, 6.0, usize::MAX);
        let b = poisson_disk(&mut rng(5), &region, 6.0, usize::MAX);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "radius must be positive")]
    fn rejects_zero_radius() {
        poisson_disk(&mut rng(6), &Rect::square(10.0), 0.0, 10);
    }
}
