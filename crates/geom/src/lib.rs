//! 2-D geometry substrate for the fading-rls workspace.
//!
//! The scheduling algorithms are geometric at heart: LDP partitions the
//! deployment region into a 4-colored grid of squares ([`grid`]), RLE
//! deletes all senders inside a disk around each chosen receiver
//! ([`spatial`] provides sub-quadratic radius queries), and every
//! topology generator works with [`Point2`]/[`Rect`].

pub mod grid;
pub mod point;
pub mod poisson;
pub mod rect;
pub mod spatial;

pub use grid::{CellIndex, GridColor, GridPartition};
pub use point::Point2;
pub use poisson::poisson_disk;
pub use rect::Rect;
pub use spatial::{SpatialGrid, SpatialHash};
