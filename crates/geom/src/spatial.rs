//! Uniform-grid spatial hash for radius queries over point sets.
//!
//! RLE deletes every sender within radius `c₁·d_ii` of each chosen
//! receiver; with `N` links and `Θ(N)` iterations a naive scan is
//! `O(N²)` per instance sweep. The spatial hash buckets points into
//! cells of the query radius scale so each query touches only nearby
//! buckets. Topology generators also use it for minimum-separation
//! checks.

use crate::point::Point2;
use rayon::prelude::*;
use std::collections::HashMap;

/// Contiguous index-stripe width used by the tiled build paths.
///
/// Construction over `points` is sharded into ⌈n / TILE_SIZE⌉ stripes
/// that are built independently (no locking) and merged in stripe
/// order. The stripe count depends only on `n`, never on the thread
/// count, so the merged structure is identical for every
/// `RAYON_NUM_THREADS` — including 1 (the sequential build is the
/// 1-stripe special case of the same merge).
pub(crate) const TILE_SIZE: usize = 16_384;

/// Minimum point count before [`SpatialGrid::rebuild`] runs its
/// key-computation stage in parallel. Kept well above engine-scale
/// instances (n ≤ ~4k) so warm `schedule_in` rebuilds stay on the
/// sequential, allocation-free path; stage dispatch is per-stage
/// tile scheduling, not one global switch.
const GRID_PARALLEL_MIN: usize = 65_536;

/// A static spatial hash over indexed points.
///
/// Equality is structural (same cell size, buckets, and points) — used
/// by tests to certify that in-place mutation leaves the index
/// indistinguishable from a fresh [`build`](Self::build).
#[derive(Debug, Clone, PartialEq)]
pub struct SpatialHash {
    cell: f64,
    buckets: HashMap<(i64, i64), Vec<u32>>,
    points: Vec<Point2>,
}

impl SpatialHash {
    /// Builds a hash over `points` with bucket side `cell`.
    ///
    /// A good `cell` is the typical query radius; correctness does not
    /// depend on the choice, only performance.
    ///
    /// # Panics
    /// Panics if `cell` is not finite and positive.
    pub fn build(points: &[Point2], cell: f64) -> Self {
        // Large instances shard construction into index stripes; the
        // stripe count derives from n alone, so the result is the same
        // structure the sequential path produces (pinned by
        // `tiled_build_matches_sequential`).
        if points.len() >= 2 * TILE_SIZE {
            return Self::build_tiled(points, cell, points.len().div_ceil(TILE_SIZE));
        }
        assert!(
            cell.is_finite() && cell > 0.0,
            "spatial hash cell must be finite and positive, got {cell}"
        );
        let mut buckets: HashMap<(i64, i64), Vec<u32>> = HashMap::new();
        for (i, p) in points.iter().enumerate() {
            buckets
                .entry(Self::key(p, cell))
                .or_default()
                .push(i as u32);
        }
        Self {
            cell,
            buckets,
            points: points.to_vec(),
        }
    }

    /// Builds the hash from `tiles` independently constructed,
    /// contiguous index stripes, merged in stripe order.
    ///
    /// Structurally identical to the sequential [`build`](Self::build)
    /// for **every** `tiles ≥ 1`: each stripe's per-cell runs are
    /// ascending (stripe indices ascend), stripes are disjoint and
    /// ascending, and the merge appends stripe `t`'s run before stripe
    /// `t + 1`'s — so every merged bucket is exactly the ascending
    /// sequence the one-pass build pushes. Bucket-map iteration order is
    /// never observable (queries look cells up by key; equality is
    /// content-based), so thread count and tile count cannot leak into
    /// results.
    ///
    /// # Panics
    /// Panics if `cell` is not finite and positive.
    pub fn build_tiled(points: &[Point2], cell: f64, tiles: usize) -> Self {
        assert!(
            cell.is_finite() && cell > 0.0,
            "spatial hash cell must be finite and positive, got {cell}"
        );
        let tiles = tiles.max(1);
        let stripe = points.len().div_ceil(tiles).max(1);
        let parts: Vec<HashMap<(i64, i64), Vec<u32>>> = (0..tiles as u32)
            .into_par_iter()
            .map(|t| {
                let lo = (t as usize * stripe).min(points.len());
                let hi = (lo + stripe).min(points.len());
                let mut m: HashMap<(i64, i64), Vec<u32>> = HashMap::new();
                for (k, p) in points[lo..hi].iter().enumerate() {
                    m.entry(Self::key(p, cell))
                        .or_default()
                        .push((lo + k) as u32);
                }
                m
            })
            .collect();
        let mut buckets: HashMap<(i64, i64), Vec<u32>> = HashMap::new();
        for mut part in parts {
            for (key, mut run) in part.drain() {
                buckets.entry(key).or_default().append(&mut run);
            }
        }
        Self {
            cell,
            buckets,
            points: points.to_vec(),
        }
    }

    #[inline]
    fn key(p: &Point2, cell: f64) -> (i64, i64) {
        ((p.x / cell).floor() as i64, (p.y / cell).floor() as i64)
    }

    /// Appends a point in place and returns its index (`len() - 1`).
    ///
    /// Equivalent to rebuilding over the extended point array: the new
    /// index is the largest, so pushing it keeps every bucket in
    /// ascending index order — exactly what [`build`](Self::build)
    /// produces.
    pub fn insert(&mut self, p: Point2) -> u32 {
        let idx = self.points.len() as u32;
        self.points.push(p);
        self.buckets
            .entry(Self::key(&p, self.cell))
            .or_default()
            .push(idx);
        idx
    }

    /// Removes point `i` in place with `Vec::swap_remove` semantics:
    /// the point previously at index `len() - 1` takes index `i`.
    ///
    /// The structure afterwards is indistinguishable from a fresh
    /// [`build`](Self::build) over the mutated point array (ascending
    /// index order within every bucket, no empty buckets), so query
    /// results and visit order match a rebuild bit for bit.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    pub fn swap_remove(&mut self, i: u32) {
        let last = (self.points.len() - 1) as u32;
        remove_from_bucket(
            &mut self.buckets,
            Self::key(&self.points[i as usize], self.cell),
            i,
        );
        if i != last {
            // The moved point keeps its cell; only its index changes.
            // Its entry is the bucket maximum (ascending order), so it
            // sits at the tail: pull it out and reinsert at the new
            // index's sorted position.
            let key = Self::key(&self.points[last as usize], self.cell);
            let bucket = self
                .buckets
                .get_mut(&key)
                .expect("moved point must be indexed");
            debug_assert_eq!(bucket.last(), Some(&last));
            bucket.pop();
            let at = bucket.partition_point(|&x| x < i);
            bucket.insert(at, i);
        }
        self.points.swap_remove(i as usize);
    }

    /// The bucket side length the index was built with.
    pub fn cell(&self) -> f64 {
        self.cell
    }

    /// The indexed points, in index order.
    pub fn points(&self) -> &[Point2] {
        &self.points
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Indices of all points with `distance(center, p) <= radius`.
    pub fn query_radius(&self, center: &Point2, radius: f64) -> Vec<u32> {
        assert!(radius >= 0.0, "radius must be non-negative");
        let mut out = Vec::new();
        self.for_each_in_radius(center, radius, |i| out.push(i));
        out
    }

    /// Calls `f` for each point index within `radius` of `center`.
    pub fn for_each_in_radius<F: FnMut(u32)>(&self, center: &Point2, radius: f64, mut f: F) {
        let r_sq = radius * radius;
        let span = (radius / self.cell).ceil() as i64;
        let (ca, cb) = Self::key(center, self.cell);
        for a in (ca - span)..=(ca + span) {
            for b in (cb - span)..=(cb + span) {
                if let Some(bucket) = self.buckets.get(&(a, b)) {
                    for &i in bucket {
                        if self.points[i as usize].distance_sq(center) <= r_sq {
                            f(i);
                        }
                    }
                }
            }
        }
    }

    /// Index of the nearest point to `center`, or `None` when empty.
    /// Expanding-ring search over buckets, starting at the nearest
    /// occupied ring so queries far outside the point cloud stay cheap.
    pub fn nearest(&self, center: &Point2) -> Option<u32> {
        if self.points.is_empty() {
            return None;
        }
        let (ca, cb) = Self::key(center, self.cell);
        let (mut ring, max_ring) = self.ring_bounds(ca, cb);
        let mut best: Option<(u32, f64)> = None;
        while ring <= max_ring {
            self.visit_ring(ca, cb, ring, |bucket| {
                for &i in bucket {
                    let d = self.points[i as usize].distance_sq(center);
                    if best.is_none_or(|(_, bd)| d < bd) {
                        best = Some((i, d));
                    }
                }
            });
            // A point in a farther ring is at distance ≥ (ring − 1)·cell
            // from the center cell, so once the best candidate is within
            // that bound no farther ring can beat it.
            if let Some((idx, d_sq)) = best {
                if d_sq.sqrt() <= (ring as f64 - 1.0).max(0.0) * self.cell {
                    return Some(idx);
                }
            }
            ring += 1;
        }
        best.map(|(i, _)| i)
    }

    /// Chebyshev distances (in cells) from `(ca, cb)` to the closest and
    /// farthest occupied bucket.
    fn ring_bounds(&self, ca: i64, cb: i64) -> (i64, i64) {
        let mut lo = i64::MAX;
        let mut hi = 0;
        for &(a, b) in self.buckets.keys() {
            let d = (a - ca).abs().max((b - cb).abs());
            lo = lo.min(d);
            hi = hi.max(d);
        }
        (lo.min(hi), hi)
    }

    /// Calls `f` with each occupied bucket on the Chebyshev ring of
    /// radius `ring` around `(ca, cb)`; iterates only the ring boundary.
    fn visit_ring<F: FnMut(&[u32])>(&self, ca: i64, cb: i64, ring: i64, mut f: F) {
        let mut visit = |a: i64, b: i64| {
            if let Some(bucket) = self.buckets.get(&(a, b)) {
                f(bucket);
            }
        };
        if ring == 0 {
            visit(ca, cb);
            return;
        }
        for a in (ca - ring)..=(ca + ring) {
            visit(a, cb - ring);
            visit(a, cb + ring);
        }
        for b in (cb - ring + 1)..=(cb + ring - 1) {
            visit(ca - ring, b);
            visit(ca + ring, b);
        }
    }
}

/// Removes index `value` from the (ascending) bucket at `key`,
/// dropping the bucket when it empties — a fresh build allocates no
/// empty buckets, and `SpatialHash::swap_remove` promises structural
/// equality with one.
fn remove_from_bucket(buckets: &mut HashMap<(i64, i64), Vec<u32>>, key: (i64, i64), value: u32) {
    let bucket = buckets.get_mut(&key).expect("point must be indexed");
    let at = bucket.partition_point(|&x| x < value);
    debug_assert_eq!(bucket.get(at), Some(&value));
    bucket.remove(at);
    if bucket.is_empty() {
        buckets.remove(&key);
    }
}

/// A reusable spatial index: the same radius-query semantics as
/// [`SpatialHash`], backed by buffers that survive rebuilds.
///
/// [`SpatialHash::build`] allocates a bucket `Vec` per occupied cell on
/// every call — fine for one-shot use, but the zero-allocation
/// scheduling engine rebuilds its index once per `schedule_in` call.
/// `SpatialGrid` stores the same structure in CSR form (one `items`
/// array sliced by per-cell offsets) over reusable buffers: after a
/// warm-up rebuild at a given size, further rebuilds touch no heap.
///
/// Query results and *visit order* are identical to `SpatialHash` over
/// the same points: cells are scanned in the same window order and
/// points within a cell in index order (CSR placement preserves the
/// bucket insertion order). Schedulers rely on that equivalence for
/// bit-identical output; `grid_matches_hash_order` pins it.
#[derive(Debug, Clone, Default)]
pub struct SpatialGrid {
    cell: f64,
    points: Vec<Point2>,
    /// cell key -> slot in the CSR arrays.
    slots: HashMap<(i64, i64), u32>,
    /// Per-slot start offsets into `items` (length `slots.len() + 1`).
    starts: Vec<u32>,
    /// Point indices grouped by cell, each group in ascending order.
    items: Vec<u32>,
    /// Scratch: per-point slot, reused between the counting and
    /// placement passes.
    point_slot: Vec<u32>,
    /// Scratch: per-slot write cursor for the placement pass.
    offsets: Vec<u32>,
    /// Scratch: per-point cell key, filled (in parallel for large
    /// rebuilds) before the sequential slot-assignment pass.
    key_scratch: Vec<(i64, i64)>,
}

impl SpatialGrid {
    /// An empty index; call [`rebuild`](Self::rebuild) before querying.
    pub fn new() -> Self {
        Self::default()
    }

    /// Re-indexes `points` with bucket side `cell`, reusing all
    /// internal buffers.
    ///
    /// When `points` and `cell` are bit-identical to the previous
    /// rebuild the call returns immediately: the stored index is
    /// already exactly what this input produces, so steady-state
    /// callers re-indexing an unchanged instance pay one `memcmp`
    /// instead of a full rebuild. (A `NaN` coordinate never compares
    /// equal and therefore always rebuilds — conservative, not wrong.)
    ///
    /// # Panics
    /// Panics if `cell` is not finite and positive.
    pub fn rebuild(&mut self, points: &[Point2], cell: f64) {
        assert!(
            cell.is_finite() && cell > 0.0,
            "spatial grid cell must be finite and positive, got {cell}"
        );
        if self.cell == cell && self.points == points {
            return;
        }
        self.cell = cell;
        self.points.clear();
        self.points.extend_from_slice(points);
        self.slots.clear();
        self.point_slot.clear();
        self.starts.clear();
        // Key stage: each point's cell key is a pure function of
        // (point, cell), so the tile-parallel fill is bit-identical to
        // the sequential one; only the slot-assignment pass below is
        // order-sensitive, and it stays sequential.
        self.key_scratch.clear();
        if points.len() >= GRID_PARALLEL_MIN {
            self.key_scratch.resize(points.len(), (0, 0));
            self.key_scratch
                .par_chunks_mut(TILE_SIZE)
                .enumerate()
                .for_each(|(t, chunk)| {
                    let base = t * TILE_SIZE;
                    for (k, slot) in chunk.iter_mut().enumerate() {
                        *slot = SpatialHash::key(&points[base + k], cell);
                    }
                });
        } else {
            self.key_scratch
                .extend(points.iter().map(|p| SpatialHash::key(p, cell)));
        }
        // Pass 1: assign each point a cell slot and count occupancy
        // (counts accumulate in `starts`, shifted by one for the
        // prefix-sum below). First-encounter order assigns slot ids,
        // which must stay the sequential point order.
        self.starts.push(0);
        for key in self.key_scratch.iter().copied() {
            let next = self.slots.len() as u32;
            let slot = *self.slots.entry(key).or_insert(next);
            if slot == next {
                self.starts.push(0);
            }
            self.starts[slot as usize + 1] += 1;
            self.point_slot.push(slot);
        }
        for i in 1..self.starts.len() {
            self.starts[i] += self.starts[i - 1];
        }
        // Pass 2: place indices; ascending point order within each cell
        // reproduces SpatialHash's bucket push order.
        self.items.clear();
        self.items.resize(points.len(), 0);
        self.offsets.clear();
        self.offsets
            .extend_from_slice(&self.starts[..self.starts.len() - 1]);
        for (i, &slot) in self.point_slot.iter().enumerate() {
            let at = self.offsets[slot as usize];
            self.items[at as usize] = i as u32;
            self.offsets[slot as usize] = at + 1;
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Appends a point in place — the incremental counterpart of a full
    /// [`rebuild`](Self::rebuild) over the extended array. The new index
    /// is the maximum, so placing it at the end of its cell's CSR
    /// segment keeps the segment ascending, which is the property the
    /// bucket-order equivalence contract with [`SpatialHash`] rests on.
    /// Cost: one `memmove` of the items tail plus an offset walk —
    /// no rehash of existing points.
    ///
    /// # Panics
    /// Panics unless the grid was built (or rebuilt) at least once —
    /// the cell size comes from that build.
    pub fn insert(&mut self, p: Point2) -> u32 {
        assert!(
            self.cell.is_finite() && self.cell > 0.0,
            "insert requires a prior rebuild (cell size unset)"
        );
        let idx = self.points.len() as u32;
        self.points.push(p);
        let key = SpatialHash::key(&p, self.cell);
        match self.slots.get(&key) {
            Some(&slot) => {
                let at = self.starts[slot as usize + 1] as usize;
                self.items.insert(at, idx);
                for s in &mut self.starts[slot as usize + 1..] {
                    *s += 1;
                }
            }
            None => {
                // A brand-new cell gets the next CSR slot, whose
                // segment sits at the very end of `items`.
                self.slots.insert(key, self.slots.len() as u32);
                self.items.push(idx);
                self.starts.push(self.items.len() as u32);
            }
        }
        idx
    }

    /// Removes point `i` in place with `Vec::swap_remove` semantics
    /// (the point at `len() - 1` takes index `i`), mirroring
    /// [`SpatialHash::swap_remove`]: every cell segment stays in
    /// ascending index order, so queries keep visiting points in the
    /// exact order a fresh build would. Emptied cells keep their (now
    /// zero-width) CSR slot — harmless to queries, reclaimed by the
    /// next full rebuild.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    pub fn swap_remove(&mut self, i: u32) {
        let last = (self.points.len() - 1) as u32;
        // Drop `i` from its segment.
        let key = SpatialHash::key(&self.points[i as usize], self.cell);
        let slot = self.slots[&key] as usize;
        let (lo, hi) = (self.starts[slot] as usize, self.starts[slot + 1] as usize);
        let at = lo + self.items[lo..hi].partition_point(|&x| x < i);
        debug_assert_eq!(self.items.get(at), Some(&i));
        self.items.remove(at);
        for s in &mut self.starts[slot + 1..] {
            *s -= 1;
        }
        if i != last {
            // Rename `last` → `i` inside its segment: the entry is the
            // segment maximum (tail position); reinsert at the new
            // index's sorted position within the same segment.
            let key = SpatialHash::key(&self.points[last as usize], self.cell);
            let slot = self.slots[&key] as usize;
            let (lo, hi) = (self.starts[slot] as usize, self.starts[slot + 1] as usize);
            debug_assert_eq!(self.items.get(hi - 1), Some(&last));
            let at = lo + self.items[lo..hi - 1].partition_point(|&x| x < i);
            self.items[at..hi].rotate_right(1);
            self.items[at] = i;
        }
        self.points.swap_remove(i as usize);
    }

    /// Calls `f` for each point index within `radius` of `center`, in
    /// the same order as [`SpatialHash::for_each_in_radius`].
    pub fn for_each_in_radius<F: FnMut(u32)>(&self, center: &Point2, radius: f64, mut f: F) {
        let r_sq = radius * radius;
        let span = (radius / self.cell).ceil() as i64;
        let (ca, cb) = SpatialHash::key(center, self.cell);
        for a in (ca - span)..=(ca + span) {
            for b in (cb - span)..=(cb + span) {
                if let Some(&slot) = self.slots.get(&(a, b)) {
                    let lo = self.starts[slot as usize] as usize;
                    let hi = self.starts[slot as usize + 1] as usize;
                    for &i in &self.items[lo..hi] {
                        if self.points[i as usize].distance_sq(center) <= r_sq {
                            f(i);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::Rng;
    use rand::SeedableRng;

    fn random_points(n: usize, seed: u64) -> Vec<Point2> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point2::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
            .collect()
    }

    fn brute_force_radius(points: &[Point2], c: &Point2, r: f64) -> Vec<u32> {
        let mut v: Vec<u32> = points
            .iter()
            .enumerate()
            .filter(|(_, p)| p.distance(c) <= r)
            .map(|(i, _)| i as u32)
            .collect();
        v.sort_unstable();
        v
    }

    /// Schedulers require the reusable grid to visit candidates in the
    /// exact order `SpatialHash` does — membership parity alone is not
    /// enough for bit-identical schedules.
    #[test]
    fn grid_matches_hash_order() {
        let mut grid = SpatialGrid::new();
        for (seed, n, cell) in [(1u64, 500usize, 10.0f64), (5, 173, 3.7), (9, 64, 25.0)] {
            let pts = random_points(n, seed);
            let hash = SpatialHash::build(&pts, cell);
            grid.rebuild(&pts, cell);
            assert_eq!(grid.len(), n);
            for (i, c) in random_points(40, seed + 100).iter().enumerate() {
                let r = 0.5 + (i as f64) % 30.0;
                let mut from_hash = Vec::new();
                hash.for_each_in_radius(c, r, |id| from_hash.push(id));
                let mut from_grid = Vec::new();
                grid.for_each_in_radius(c, r, |id| from_grid.push(id));
                assert_eq!(from_grid, from_hash, "center {c:?} r {r} cell {cell}");
            }
        }
    }

    /// Rebuilding over a smaller point set must fully replace the old
    /// contents (stale items from the previous, larger build must not
    /// leak into queries).
    #[test]
    fn grid_rebuild_replaces_contents() {
        let mut grid = SpatialGrid::new();
        grid.rebuild(&random_points(400, 11), 5.0);
        let pts = random_points(30, 12);
        grid.rebuild(&pts, 8.0);
        let hash = SpatialHash::build(&pts, 8.0);
        let c = Point2::new(50.0, 50.0);
        let mut from_hash = Vec::new();
        hash.for_each_in_radius(&c, 200.0, |id| from_hash.push(id));
        let mut from_grid = Vec::new();
        grid.for_each_in_radius(&c, 200.0, |id| from_grid.push(id));
        assert_eq!(from_grid, from_hash);
        assert_eq!(from_grid.len(), 30, "radius covers everything");
    }

    #[test]
    fn grid_empty_rebuild() {
        let mut grid = SpatialGrid::new();
        grid.rebuild(&[], 1.0);
        assert!(grid.is_empty());
        let mut seen = 0;
        grid.for_each_in_radius(&Point2::origin(), 10.0, |_| seen += 1);
        assert_eq!(seen, 0);
    }

    proptest! {
        #[test]
        fn grid_order_parity_prop(
            seed in 0u64..1000,
            n in 0usize..200,
            cell in 0.5f64..20.0,
            r in 0.0f64..40.0,
        ) {
            let pts = random_points(n, seed);
            let hash = SpatialHash::build(&pts, cell);
            let mut grid = SpatialGrid::new();
            grid.rebuild(&pts, cell);
            let c = Point2::new(50.0, 50.0);
            let mut from_hash = Vec::new();
            hash.for_each_in_radius(&c, r, |id| from_hash.push(id));
            let mut from_grid = Vec::new();
            grid.for_each_in_radius(&c, r, |id| from_grid.push(id));
            prop_assert_eq!(from_grid, from_hash);
        }
    }

    /// Tile-sharded construction must be structurally identical to the
    /// sequential build for every tile count — the tile count (and
    /// hence the thread count) must never be observable.
    #[test]
    fn tiled_build_matches_sequential() {
        let pts = random_points(3000, 77);
        let seq = SpatialHash::build(&pts, 4.0);
        for tiles in [1usize, 2, 3, 7, 16, 3000, 5000] {
            let tiled = SpatialHash::build_tiled(&pts, 4.0, tiles);
            assert_eq!(tiled, seq, "tiles={tiles}");
        }
        assert_eq!(
            SpatialHash::build_tiled(&[], 1.0, 4),
            SpatialHash::build(&[], 1.0)
        );
        let one = random_points(1, 5);
        assert_eq!(
            SpatialHash::build_tiled(&one, 1.0, 8),
            SpatialHash::build(&one, 1.0)
        );
    }

    /// Above the auto-tiling threshold `build` takes the sharded path
    /// and `SpatialGrid::rebuild` the parallel key stage; both must
    /// keep exact visit-order parity with each other and set-parity
    /// with a brute-force scan.
    #[test]
    fn large_build_keeps_order_parity() {
        // Forces both the tiled hash build (n ≥ 2·TILE_SIZE) and the
        // grid's parallel key stage (n ≥ GRID_PARALLEL_MIN).
        let n = GRID_PARALLEL_MIN + 137;
        let pts = random_points(n, 81);
        let cell = 2.0;
        let hash = SpatialHash::build(&pts, cell);
        let mut grid = SpatialGrid::new();
        grid.rebuild(&pts, cell);
        for (k, c) in random_points(10, 82).iter().enumerate() {
            let r = 1.0 + (k as f64) % 8.0;
            let mut from_hash = Vec::new();
            hash.for_each_in_radius(c, r, |id| from_hash.push(id));
            let mut from_grid = Vec::new();
            grid.for_each_in_radius(c, r, |id| from_grid.push(id));
            assert_eq!(from_grid, from_hash, "center {c:?} r {r}");
            let mut sorted = from_hash.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, brute_force_radius(&pts, c, r));
        }
    }

    #[test]
    fn radius_query_matches_brute_force() {
        let pts = random_points(500, 1);
        let hash = SpatialHash::build(&pts, 10.0);
        for (i, c) in random_points(50, 2).iter().enumerate() {
            let r = 1.0 + (i as f64) % 30.0;
            let mut got = hash.query_radius(c, r);
            got.sort_unstable();
            assert_eq!(got, brute_force_radius(&pts, c, r), "center {c:?} r {r}");
        }
    }

    #[test]
    fn zero_radius_finds_exact_duplicates() {
        let pts = vec![
            Point2::new(1.0, 1.0),
            Point2::new(2.0, 2.0),
            Point2::new(1.0, 1.0),
        ];
        let hash = SpatialHash::build(&pts, 1.0);
        let mut got = hash.query_radius(&Point2::new(1.0, 1.0), 0.0);
        got.sort_unstable();
        assert_eq!(got, vec![0, 2]);
    }

    #[test]
    fn empty_index() {
        let hash = SpatialHash::build(&[], 1.0);
        assert!(hash.is_empty());
        assert!(hash.query_radius(&Point2::origin(), 10.0).is_empty());
        assert_eq!(hash.nearest(&Point2::origin()), None);
    }

    #[test]
    fn nearest_matches_brute_force() {
        let pts = random_points(300, 3);
        let hash = SpatialHash::build(&pts, 7.0);
        for c in random_points(60, 4) {
            let got = hash.nearest(&c).unwrap();
            let best = pts
                .iter()
                .enumerate()
                .min_by(|(_, p), (_, q)| p.distance(&c).total_cmp(&q.distance(&c)))
                .map(|(i, _)| i as u32)
                .unwrap();
            assert_eq!(
                pts[got as usize].distance(&c),
                pts[best as usize].distance(&c),
                "center {c:?}"
            );
        }
    }

    #[test]
    fn nearest_far_outside_the_cloud() {
        let pts = random_points(50, 5);
        let hash = SpatialHash::build(&pts, 5.0);
        let far = Point2::new(-1e4, 1e4);
        let got = hash.nearest(&far).unwrap();
        let best = pts
            .iter()
            .enumerate()
            .min_by(|(_, p), (_, q)| p.distance(&far).total_cmp(&q.distance(&far)))
            .map(|(i, _)| i as u32)
            .unwrap();
        assert_eq!(got, best);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn radius_query_agrees_with_scan(
            seed in 0u64..1000,
            n in 1usize..120,
            cx in 0.0f64..100.0, cy in 0.0f64..100.0,
            r in 0.0f64..60.0,
            cell in 0.5f64..25.0,
        ) {
            let pts = random_points(n, seed);
            let hash = SpatialHash::build(&pts, cell);
            let c = Point2::new(cx, cy);
            let mut got = hash.query_radius(&c, r);
            got.sort_unstable();
            prop_assert_eq!(got, brute_force_radius(&pts, &c, r));
        }
    }

    /// The mutation contract: after any interleaving of inserts and
    /// swap-removes, both structures must be indistinguishable from a
    /// fresh build over the mutated point array — same members *and*
    /// the same visit order, since schedulers depend on order for
    /// bit-identical results.
    fn assert_matches_fresh_build(
        hash: &SpatialHash,
        grid: &SpatialGrid,
        pts: &[Point2],
        cell: f64,
        seed: u64,
    ) {
        assert_eq!(hash.points(), pts);
        let fresh = SpatialHash::build(pts, cell);
        assert_eq!(hash, &fresh, "mutated hash differs from fresh build");
        for (i, c) in random_points(20, seed).iter().enumerate() {
            let r = 0.5 + (i as f64) % 30.0;
            let mut want = Vec::new();
            fresh.for_each_in_radius(c, r, |id| want.push(id));
            let mut from_hash = Vec::new();
            hash.for_each_in_radius(c, r, |id| from_hash.push(id));
            assert_eq!(from_hash, want, "hash order diverged at {c:?} r {r}");
            let mut from_grid = Vec::new();
            grid.for_each_in_radius(c, r, |id| from_grid.push(id));
            assert_eq!(from_grid, want, "grid order diverged at {c:?} r {r}");
        }
    }

    #[test]
    fn insert_matches_fresh_build() {
        let cell = 6.0;
        let mut pts = random_points(60, 21);
        let mut hash = SpatialHash::build(&pts, cell);
        let mut grid = SpatialGrid::new();
        grid.rebuild(&pts, cell);
        for (k, p) in random_points(40, 22).into_iter().enumerate() {
            let got_h = hash.insert(p);
            let got_g = grid.insert(p);
            assert_eq!(got_h as usize, pts.len());
            assert_eq!(got_g, got_h);
            pts.push(p);
            if k % 7 == 0 {
                assert_matches_fresh_build(&hash, &grid, &pts, cell, 23 + k as u64);
            }
        }
        assert_matches_fresh_build(&hash, &grid, &pts, cell, 99);
    }

    #[test]
    fn swap_remove_matches_fresh_build() {
        let cell = 6.0;
        let mut pts = random_points(80, 31);
        let mut hash = SpatialHash::build(&pts, cell);
        let mut grid = SpatialGrid::new();
        grid.rebuild(&pts, cell);
        let mut rng = rand::rngs::StdRng::seed_from_u64(32);
        for k in 0..60 {
            let i = rng.gen_range(0..pts.len()) as u32;
            hash.swap_remove(i);
            grid.swap_remove(i);
            pts.swap_remove(i as usize);
            if k % 7 == 0 {
                assert_matches_fresh_build(&hash, &grid, &pts, cell, 33 + k as u64);
            }
        }
        assert_matches_fresh_build(&hash, &grid, &pts, cell, 98);
    }

    #[test]
    fn swap_remove_down_to_empty() {
        let cell = 3.0;
        let mut pts = random_points(17, 41);
        let mut hash = SpatialHash::build(&pts, cell);
        let mut grid = SpatialGrid::new();
        grid.rebuild(&pts, cell);
        while !pts.is_empty() {
            let i = (pts.len() / 2) as u32;
            hash.swap_remove(i);
            grid.swap_remove(i);
            pts.swap_remove(i as usize);
            assert_matches_fresh_build(&hash, &grid, &pts, cell, pts.len() as u64);
        }
        assert!(hash.buckets.is_empty(), "empty buckets must be dropped");
        // Refill after draining: mutation must not wedge the structures.
        for p in random_points(9, 42) {
            hash.insert(p);
            grid.insert(p);
            pts.push(p);
        }
        assert_matches_fresh_build(&hash, &grid, &pts, cell, 43);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        /// Satellite: interleaved insert/remove/query against a naive
        /// reference (plain point vector + brute-force scan). Ops are
        /// driven by a byte script so shrinking yields minimal
        /// counterexample sequences.
        #[test]
        fn mutation_interleaving_matches_naive(
            seed in 0u64..1000,
            n0 in 0usize..40,
            cell in 0.5f64..15.0,
            ops in proptest::collection::vec((0u8..3, 0.0f64..100.0, 0.0f64..100.0, 0.0f64..60.0), 1..60),
        ) {
            let mut pts = random_points(n0, seed);
            let mut hash = SpatialHash::build(&pts, cell);
            let mut grid = SpatialGrid::new();
            grid.rebuild(&pts, cell);
            for (op, x, y, r) in ops {
                match op {
                    0 => {
                        let p = Point2::new(x, y);
                        hash.insert(p);
                        grid.insert(p);
                        pts.push(p);
                    }
                    1 if !pts.is_empty() => {
                        // Derive the victim index from the coordinate
                        // payload so shrinking stays meaningful.
                        let i = ((x / 100.0) * pts.len() as f64) as u32;
                        let i = i.min(pts.len() as u32 - 1);
                        hash.swap_remove(i);
                        grid.swap_remove(i);
                        pts.swap_remove(i as usize);
                    }
                    _ => {
                        let c = Point2::new(x, y);
                        let mut got = hash.query_radius(&c, r);
                        got.sort_unstable();
                        prop_assert_eq!(got, brute_force_radius(&pts, &c, r));
                        let mut from_grid = Vec::new();
                        grid.for_each_in_radius(&c, r, |id| from_grid.push(id));
                        let mut from_hash = Vec::new();
                        hash.for_each_in_radius(&c, r, |id| from_hash.push(id));
                        prop_assert_eq!(from_grid, from_hash);
                    }
                }
            }
            let fresh = SpatialHash::build(&pts, cell);
            prop_assert_eq!(&hash, &fresh);
        }
    }
}
