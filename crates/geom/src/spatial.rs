//! Uniform-grid spatial hash for radius queries over point sets.
//!
//! RLE deletes every sender within radius `c₁·d_ii` of each chosen
//! receiver; with `N` links and `Θ(N)` iterations a naive scan is
//! `O(N²)` per instance sweep. The spatial hash buckets points into
//! cells of the query radius scale so each query touches only nearby
//! buckets. Topology generators also use it for minimum-separation
//! checks.

use crate::point::Point2;
use std::collections::HashMap;

/// A static spatial hash over indexed points.
#[derive(Debug, Clone)]
pub struct SpatialHash {
    cell: f64,
    buckets: HashMap<(i64, i64), Vec<u32>>,
    points: Vec<Point2>,
}

impl SpatialHash {
    /// Builds a hash over `points` with bucket side `cell`.
    ///
    /// A good `cell` is the typical query radius; correctness does not
    /// depend on the choice, only performance.
    ///
    /// # Panics
    /// Panics if `cell` is not finite and positive.
    pub fn build(points: &[Point2], cell: f64) -> Self {
        assert!(
            cell.is_finite() && cell > 0.0,
            "spatial hash cell must be finite and positive, got {cell}"
        );
        let mut buckets: HashMap<(i64, i64), Vec<u32>> = HashMap::new();
        for (i, p) in points.iter().enumerate() {
            buckets
                .entry(Self::key(p, cell))
                .or_default()
                .push(i as u32);
        }
        Self {
            cell,
            buckets,
            points: points.to_vec(),
        }
    }

    #[inline]
    fn key(p: &Point2, cell: f64) -> (i64, i64) {
        ((p.x / cell).floor() as i64, (p.y / cell).floor() as i64)
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Indices of all points with `distance(center, p) <= radius`.
    pub fn query_radius(&self, center: &Point2, radius: f64) -> Vec<u32> {
        assert!(radius >= 0.0, "radius must be non-negative");
        let mut out = Vec::new();
        self.for_each_in_radius(center, radius, |i| out.push(i));
        out
    }

    /// Calls `f` for each point index within `radius` of `center`.
    pub fn for_each_in_radius<F: FnMut(u32)>(&self, center: &Point2, radius: f64, mut f: F) {
        let r_sq = radius * radius;
        let span = (radius / self.cell).ceil() as i64;
        let (ca, cb) = Self::key(center, self.cell);
        for a in (ca - span)..=(ca + span) {
            for b in (cb - span)..=(cb + span) {
                if let Some(bucket) = self.buckets.get(&(a, b)) {
                    for &i in bucket {
                        if self.points[i as usize].distance_sq(center) <= r_sq {
                            f(i);
                        }
                    }
                }
            }
        }
    }

    /// Index of the nearest point to `center`, or `None` when empty.
    /// Expanding-ring search over buckets, starting at the nearest
    /// occupied ring so queries far outside the point cloud stay cheap.
    pub fn nearest(&self, center: &Point2) -> Option<u32> {
        if self.points.is_empty() {
            return None;
        }
        let (ca, cb) = Self::key(center, self.cell);
        let (mut ring, max_ring) = self.ring_bounds(ca, cb);
        let mut best: Option<(u32, f64)> = None;
        while ring <= max_ring {
            self.visit_ring(ca, cb, ring, |bucket| {
                for &i in bucket {
                    let d = self.points[i as usize].distance_sq(center);
                    if best.is_none_or(|(_, bd)| d < bd) {
                        best = Some((i, d));
                    }
                }
            });
            // A point in a farther ring is at distance ≥ (ring − 1)·cell
            // from the center cell, so once the best candidate is within
            // that bound no farther ring can beat it.
            if let Some((idx, d_sq)) = best {
                if d_sq.sqrt() <= (ring as f64 - 1.0).max(0.0) * self.cell {
                    return Some(idx);
                }
            }
            ring += 1;
        }
        best.map(|(i, _)| i)
    }

    /// Chebyshev distances (in cells) from `(ca, cb)` to the closest and
    /// farthest occupied bucket.
    fn ring_bounds(&self, ca: i64, cb: i64) -> (i64, i64) {
        let mut lo = i64::MAX;
        let mut hi = 0;
        for &(a, b) in self.buckets.keys() {
            let d = (a - ca).abs().max((b - cb).abs());
            lo = lo.min(d);
            hi = hi.max(d);
        }
        (lo.min(hi), hi)
    }

    /// Calls `f` with each occupied bucket on the Chebyshev ring of
    /// radius `ring` around `(ca, cb)`; iterates only the ring boundary.
    fn visit_ring<F: FnMut(&[u32])>(&self, ca: i64, cb: i64, ring: i64, mut f: F) {
        let mut visit = |a: i64, b: i64| {
            if let Some(bucket) = self.buckets.get(&(a, b)) {
                f(bucket);
            }
        };
        if ring == 0 {
            visit(ca, cb);
            return;
        }
        for a in (ca - ring)..=(ca + ring) {
            visit(a, cb - ring);
            visit(a, cb + ring);
        }
        for b in (cb - ring + 1)..=(cb + ring - 1) {
            visit(ca - ring, b);
            visit(ca + ring, b);
        }
    }
}

/// A reusable spatial index: the same radius-query semantics as
/// [`SpatialHash`], backed by buffers that survive rebuilds.
///
/// [`SpatialHash::build`] allocates a bucket `Vec` per occupied cell on
/// every call — fine for one-shot use, but the zero-allocation
/// scheduling engine rebuilds its index once per `schedule_in` call.
/// `SpatialGrid` stores the same structure in CSR form (one `items`
/// array sliced by per-cell offsets) over reusable buffers: after a
/// warm-up rebuild at a given size, further rebuilds touch no heap.
///
/// Query results and *visit order* are identical to `SpatialHash` over
/// the same points: cells are scanned in the same window order and
/// points within a cell in index order (CSR placement preserves the
/// bucket insertion order). Schedulers rely on that equivalence for
/// bit-identical output; `grid_matches_hash_order` pins it.
#[derive(Debug, Clone, Default)]
pub struct SpatialGrid {
    cell: f64,
    points: Vec<Point2>,
    /// cell key -> slot in the CSR arrays.
    slots: HashMap<(i64, i64), u32>,
    /// Per-slot start offsets into `items` (length `slots.len() + 1`).
    starts: Vec<u32>,
    /// Point indices grouped by cell, each group in ascending order.
    items: Vec<u32>,
    /// Scratch: per-point slot, reused between the counting and
    /// placement passes.
    point_slot: Vec<u32>,
    /// Scratch: per-slot write cursor for the placement pass.
    offsets: Vec<u32>,
}

impl SpatialGrid {
    /// An empty index; call [`rebuild`](Self::rebuild) before querying.
    pub fn new() -> Self {
        Self::default()
    }

    /// Re-indexes `points` with bucket side `cell`, reusing all
    /// internal buffers.
    ///
    /// When `points` and `cell` are bit-identical to the previous
    /// rebuild the call returns immediately: the stored index is
    /// already exactly what this input produces, so steady-state
    /// callers re-indexing an unchanged instance pay one `memcmp`
    /// instead of a full rebuild. (A `NaN` coordinate never compares
    /// equal and therefore always rebuilds — conservative, not wrong.)
    ///
    /// # Panics
    /// Panics if `cell` is not finite and positive.
    pub fn rebuild(&mut self, points: &[Point2], cell: f64) {
        assert!(
            cell.is_finite() && cell > 0.0,
            "spatial grid cell must be finite and positive, got {cell}"
        );
        if self.cell == cell && self.points == points {
            return;
        }
        self.cell = cell;
        self.points.clear();
        self.points.extend_from_slice(points);
        self.slots.clear();
        self.point_slot.clear();
        self.starts.clear();
        // Pass 1: assign each point a cell slot and count occupancy
        // (counts accumulate in `starts`, shifted by one for the
        // prefix-sum below).
        self.starts.push(0);
        for p in points {
            let next = self.slots.len() as u32;
            let slot = *self.slots.entry(SpatialHash::key(p, cell)).or_insert(next);
            if slot == next {
                self.starts.push(0);
            }
            self.starts[slot as usize + 1] += 1;
            self.point_slot.push(slot);
        }
        for i in 1..self.starts.len() {
            self.starts[i] += self.starts[i - 1];
        }
        // Pass 2: place indices; ascending point order within each cell
        // reproduces SpatialHash's bucket push order.
        self.items.clear();
        self.items.resize(points.len(), 0);
        self.offsets.clear();
        self.offsets
            .extend_from_slice(&self.starts[..self.starts.len() - 1]);
        for (i, &slot) in self.point_slot.iter().enumerate() {
            let at = self.offsets[slot as usize];
            self.items[at as usize] = i as u32;
            self.offsets[slot as usize] = at + 1;
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Calls `f` for each point index within `radius` of `center`, in
    /// the same order as [`SpatialHash::for_each_in_radius`].
    pub fn for_each_in_radius<F: FnMut(u32)>(&self, center: &Point2, radius: f64, mut f: F) {
        let r_sq = radius * radius;
        let span = (radius / self.cell).ceil() as i64;
        let (ca, cb) = SpatialHash::key(center, self.cell);
        for a in (ca - span)..=(ca + span) {
            for b in (cb - span)..=(cb + span) {
                if let Some(&slot) = self.slots.get(&(a, b)) {
                    let lo = self.starts[slot as usize] as usize;
                    let hi = self.starts[slot as usize + 1] as usize;
                    for &i in &self.items[lo..hi] {
                        if self.points[i as usize].distance_sq(center) <= r_sq {
                            f(i);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::Rng;
    use rand::SeedableRng;

    fn random_points(n: usize, seed: u64) -> Vec<Point2> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point2::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
            .collect()
    }

    fn brute_force_radius(points: &[Point2], c: &Point2, r: f64) -> Vec<u32> {
        let mut v: Vec<u32> = points
            .iter()
            .enumerate()
            .filter(|(_, p)| p.distance(c) <= r)
            .map(|(i, _)| i as u32)
            .collect();
        v.sort_unstable();
        v
    }

    /// Schedulers require the reusable grid to visit candidates in the
    /// exact order `SpatialHash` does — membership parity alone is not
    /// enough for bit-identical schedules.
    #[test]
    fn grid_matches_hash_order() {
        let mut grid = SpatialGrid::new();
        for (seed, n, cell) in [(1u64, 500usize, 10.0f64), (5, 173, 3.7), (9, 64, 25.0)] {
            let pts = random_points(n, seed);
            let hash = SpatialHash::build(&pts, cell);
            grid.rebuild(&pts, cell);
            assert_eq!(grid.len(), n);
            for (i, c) in random_points(40, seed + 100).iter().enumerate() {
                let r = 0.5 + (i as f64) % 30.0;
                let mut from_hash = Vec::new();
                hash.for_each_in_radius(c, r, |id| from_hash.push(id));
                let mut from_grid = Vec::new();
                grid.for_each_in_radius(c, r, |id| from_grid.push(id));
                assert_eq!(from_grid, from_hash, "center {c:?} r {r} cell {cell}");
            }
        }
    }

    /// Rebuilding over a smaller point set must fully replace the old
    /// contents (stale items from the previous, larger build must not
    /// leak into queries).
    #[test]
    fn grid_rebuild_replaces_contents() {
        let mut grid = SpatialGrid::new();
        grid.rebuild(&random_points(400, 11), 5.0);
        let pts = random_points(30, 12);
        grid.rebuild(&pts, 8.0);
        let hash = SpatialHash::build(&pts, 8.0);
        let c = Point2::new(50.0, 50.0);
        let mut from_hash = Vec::new();
        hash.for_each_in_radius(&c, 200.0, |id| from_hash.push(id));
        let mut from_grid = Vec::new();
        grid.for_each_in_radius(&c, 200.0, |id| from_grid.push(id));
        assert_eq!(from_grid, from_hash);
        assert_eq!(from_grid.len(), 30, "radius covers everything");
    }

    #[test]
    fn grid_empty_rebuild() {
        let mut grid = SpatialGrid::new();
        grid.rebuild(&[], 1.0);
        assert!(grid.is_empty());
        let mut seen = 0;
        grid.for_each_in_radius(&Point2::origin(), 10.0, |_| seen += 1);
        assert_eq!(seen, 0);
    }

    proptest! {
        #[test]
        fn grid_order_parity_prop(
            seed in 0u64..1000,
            n in 0usize..200,
            cell in 0.5f64..20.0,
            r in 0.0f64..40.0,
        ) {
            let pts = random_points(n, seed);
            let hash = SpatialHash::build(&pts, cell);
            let mut grid = SpatialGrid::new();
            grid.rebuild(&pts, cell);
            let c = Point2::new(50.0, 50.0);
            let mut from_hash = Vec::new();
            hash.for_each_in_radius(&c, r, |id| from_hash.push(id));
            let mut from_grid = Vec::new();
            grid.for_each_in_radius(&c, r, |id| from_grid.push(id));
            prop_assert_eq!(from_grid, from_hash);
        }
    }

    #[test]
    fn radius_query_matches_brute_force() {
        let pts = random_points(500, 1);
        let hash = SpatialHash::build(&pts, 10.0);
        for (i, c) in random_points(50, 2).iter().enumerate() {
            let r = 1.0 + (i as f64) % 30.0;
            let mut got = hash.query_radius(c, r);
            got.sort_unstable();
            assert_eq!(got, brute_force_radius(&pts, c, r), "center {c:?} r {r}");
        }
    }

    #[test]
    fn zero_radius_finds_exact_duplicates() {
        let pts = vec![
            Point2::new(1.0, 1.0),
            Point2::new(2.0, 2.0),
            Point2::new(1.0, 1.0),
        ];
        let hash = SpatialHash::build(&pts, 1.0);
        let mut got = hash.query_radius(&Point2::new(1.0, 1.0), 0.0);
        got.sort_unstable();
        assert_eq!(got, vec![0, 2]);
    }

    #[test]
    fn empty_index() {
        let hash = SpatialHash::build(&[], 1.0);
        assert!(hash.is_empty());
        assert!(hash.query_radius(&Point2::origin(), 10.0).is_empty());
        assert_eq!(hash.nearest(&Point2::origin()), None);
    }

    #[test]
    fn nearest_matches_brute_force() {
        let pts = random_points(300, 3);
        let hash = SpatialHash::build(&pts, 7.0);
        for c in random_points(60, 4) {
            let got = hash.nearest(&c).unwrap();
            let best = pts
                .iter()
                .enumerate()
                .min_by(|(_, p), (_, q)| p.distance(&c).total_cmp(&q.distance(&c)))
                .map(|(i, _)| i as u32)
                .unwrap();
            assert_eq!(
                pts[got as usize].distance(&c),
                pts[best as usize].distance(&c),
                "center {c:?}"
            );
        }
    }

    #[test]
    fn nearest_far_outside_the_cloud() {
        let pts = random_points(50, 5);
        let hash = SpatialHash::build(&pts, 5.0);
        let far = Point2::new(-1e4, 1e4);
        let got = hash.nearest(&far).unwrap();
        let best = pts
            .iter()
            .enumerate()
            .min_by(|(_, p), (_, q)| p.distance(&far).total_cmp(&q.distance(&far)))
            .map(|(i, _)| i as u32)
            .unwrap();
        assert_eq!(got, best);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn radius_query_agrees_with_scan(
            seed in 0u64..1000,
            n in 1usize..120,
            cx in 0.0f64..100.0, cy in 0.0f64..100.0,
            r in 0.0f64..60.0,
            cell in 0.5f64..25.0,
        ) {
            let pts = random_points(n, seed);
            let hash = SpatialHash::build(&pts, cell);
            let c = Point2::new(cx, cy);
            let mut got = hash.query_radius(&c, r);
            got.sort_unstable();
            prop_assert_eq!(got, brute_force_radius(&pts, &c, r));
        }
    }
}
