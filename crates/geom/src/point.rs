//! Points in the Euclidean plane.

use serde::{Deserialize, Serialize};
use std::ops::{Add, Sub};

/// A point (or displacement) in the 2-D Euclidean plane.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point2 {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point2 {
    /// Creates a point from coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// The origin `(0, 0)`.
    #[inline]
    pub const fn origin() -> Self {
        Self { x: 0.0, y: 0.0 }
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(&self, other: &Self) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance to `other` (avoids the sqrt when only
    /// comparisons are needed, e.g. in radius queries).
    #[inline]
    pub fn distance_sq(&self, other: &Self) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Euclidean norm when interpreted as a vector from the origin.
    #[inline]
    pub fn norm(&self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Point at distance `r` from `self` in direction `theta` (radians).
    #[inline]
    pub fn offset_polar(&self, r: f64, theta: f64) -> Self {
        Self::new(self.x + r * theta.cos(), self.y + r * theta.sin())
    }
}

impl Add for Point2 {
    type Output = Point2;
    #[inline]
    fn add(self, rhs: Point2) -> Point2 {
        Point2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point2 {
    type Output = Point2;
    #[inline]
    fn sub(self, rhs: Point2) -> Point2 {
        Point2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl From<(f64, f64)> for Point2 {
    fn from((x, y): (f64, f64)) -> Self {
        Self::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(a.distance_sq(&b), 25.0);
    }

    #[test]
    fn distance_to_self_is_zero() {
        let p = Point2::new(1.5, -2.5);
        assert_eq!(p.distance(&p), 0.0);
    }

    #[test]
    fn offset_polar_lands_at_expected_distance() {
        let p = Point2::new(1.0, 1.0);
        for i in 0..8 {
            let theta = i as f64 * std::f64::consts::FRAC_PI_4;
            let q = p.offset_polar(2.0, theta);
            assert!((p.distance(&q) - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Point2::new(1.0, 2.0);
        let b = Point2::new(-0.5, 4.0);
        assert_eq!((a + b) - b, a);
    }

    #[test]
    fn serde_roundtrip() {
        let p = Point2::new(1.25, -3.5);
        let json = serde_json::to_string(&p).unwrap();
        let q: Point2 = serde_json::from_str(&json).unwrap();
        assert_eq!(p, q);
    }

    proptest! {
        #[test]
        fn distance_is_symmetric(
            ax in -1e3f64..1e3, ay in -1e3f64..1e3,
            bx in -1e3f64..1e3, by in -1e3f64..1e3,
        ) {
            let a = Point2::new(ax, ay);
            let b = Point2::new(bx, by);
            prop_assert_eq!(a.distance(&b), b.distance(&a));
        }

        #[test]
        fn triangle_inequality(
            ax in -1e3f64..1e3, ay in -1e3f64..1e3,
            bx in -1e3f64..1e3, by in -1e3f64..1e3,
            cx in -1e3f64..1e3, cy in -1e3f64..1e3,
        ) {
            let a = Point2::new(ax, ay);
            let b = Point2::new(bx, by);
            let c = Point2::new(cx, cy);
            prop_assert!(a.distance(&c) <= a.distance(&b) + b.distance(&c) + 1e-9);
        }

        #[test]
        fn distance_sq_consistent_with_distance(
            ax in -1e3f64..1e3, ay in -1e3f64..1e3,
            bx in -1e3f64..1e3, by in -1e3f64..1e3,
        ) {
            let a = Point2::new(ax, ay);
            let b = Point2::new(bx, by);
            let d = a.distance(&b);
            prop_assert!((d * d - a.distance_sq(&b)).abs() <= 1e-9 * (1.0 + d * d));
        }
    }
}
