//! Grid partition of a region into equal squares with a 4-coloring.
//!
//! This is the geometric core of LDP (Algorithm 1 of the paper) and of
//! the ApproxLogN baseline: the region is tiled with axis-aligned squares
//! of side `β_k`, colored with four colors so that no two adjacent
//! squares (sharing an edge or corner) have the same color. Two distinct
//! squares of the same color are then at least one full square apart in
//! every axis, i.e. any two points in distinct same-color squares are at
//! distance ≥ the square side.

use crate::point::Point2;
use crate::rect::Rect;
use serde::{Deserialize, Serialize};

/// Integer coordinates of a square in the grid (column `a`, row `b`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CellIndex {
    /// Column (x direction).
    pub a: i64,
    /// Row (y direction).
    pub b: i64,
}

/// One of the four grid colors; the coloring pattern has period 2 in
/// both axes (Fig. 2(a) of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GridColor(pub u8);

impl GridColor {
    /// All four colors in order.
    pub const ALL: [GridColor; 4] = [GridColor(0), GridColor(1), GridColor(2), GridColor(3)];
}

/// A partition of (the plane around) a region into `cell × cell` squares.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridPartition {
    origin: Point2,
    cell: f64,
}

impl GridPartition {
    /// Creates a grid of squares of side `cell`, anchored at the
    /// region's lower-left corner.
    ///
    /// # Panics
    /// Panics if `cell` is not finite and positive.
    pub fn new(region: &Rect, cell: f64) -> Self {
        assert!(
            cell.is_finite() && cell > 0.0,
            "grid cell size must be finite and positive, got {cell}"
        );
        Self {
            origin: region.min(),
            cell,
        }
    }

    /// Side length of each square.
    #[inline]
    pub fn cell_size(&self) -> f64 {
        self.cell
    }

    /// Index of the square containing `p` (squares are half-open
    /// `[a·β, (a+1)·β)` so every point belongs to exactly one square).
    #[inline]
    pub fn cell_of(&self, p: &Point2) -> CellIndex {
        CellIndex {
            a: ((p.x - self.origin.x) / self.cell).floor() as i64,
            b: ((p.y - self.origin.y) / self.cell).floor() as i64,
        }
    }

    /// The 4-coloring: color depends only on the parity of the cell
    /// coordinates, so same-color cells differ by an even count of cells
    /// in each axis.
    #[inline]
    pub fn color_of(&self, cell: CellIndex) -> GridColor {
        GridColor(((cell.a.rem_euclid(2)) + 2 * (cell.b.rem_euclid(2))) as u8)
    }

    /// Color of the square containing `p`.
    #[inline]
    pub fn color_at(&self, p: &Point2) -> GridColor {
        self.color_of(self.cell_of(p))
    }

    /// Lower-left corner of a square.
    pub fn cell_origin(&self, cell: CellIndex) -> Point2 {
        Point2::new(
            self.origin.x + cell.a as f64 * self.cell,
            self.origin.y + cell.b as f64 * self.cell,
        )
    }

    /// Chebyshev (cell-count) distance between two squares.
    pub fn cell_distance(&self, a: CellIndex, b: CellIndex) -> i64 {
        (a.a - b.a).abs().max((a.b - b.b).abs())
    }

    /// Lower bound on the Euclidean distance between any point of square
    /// `a` and any point of square `b` (0 for equal/adjacent squares).
    pub fn min_point_distance(&self, a: CellIndex, b: CellIndex) -> f64 {
        let gap_x = ((a.a - b.a).abs() - 1).max(0) as f64;
        let gap_y = ((a.b - b.b).abs() - 1).max(0) as f64;
        self.cell * gap_x.hypot(gap_y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn grid(cell: f64) -> GridPartition {
        GridPartition::new(&Rect::square(100.0), cell)
    }

    #[test]
    fn cell_of_maps_points_to_tiles() {
        let g = grid(10.0);
        assert_eq!(g.cell_of(&Point2::new(0.0, 0.0)), CellIndex { a: 0, b: 0 });
        assert_eq!(
            g.cell_of(&Point2::new(9.999, 0.0)),
            CellIndex { a: 0, b: 0 }
        );
        assert_eq!(g.cell_of(&Point2::new(10.0, 0.0)), CellIndex { a: 1, b: 0 });
        assert_eq!(
            g.cell_of(&Point2::new(25.0, 37.0)),
            CellIndex { a: 2, b: 3 }
        );
    }

    #[test]
    fn negative_coordinates_are_handled() {
        let g = grid(10.0);
        assert_eq!(
            g.cell_of(&Point2::new(-0.5, -0.5)),
            CellIndex { a: -1, b: -1 }
        );
        // Color is still well-defined and periodic for negative cells.
        assert_eq!(
            g.color_of(CellIndex { a: -1, b: -1 }),
            g.color_of(CellIndex { a: 1, b: 1 })
        );
    }

    #[test]
    fn four_colors_cover_a_2x2_block() {
        let g = grid(1.0);
        let g = &g;
        let mut colors: Vec<u8> = (0..2)
            .flat_map(|a| (0..2).map(move |b| g.color_of(CellIndex { a, b }).0))
            .collect();
        colors.sort_unstable();
        assert_eq!(colors, vec![0, 1, 2, 3]);
    }

    #[test]
    fn adjacent_cells_never_share_color() {
        let g = grid(1.0);
        for a in -3..3i64 {
            for b in -3..3i64 {
                let c = g.color_of(CellIndex { a, b });
                for (da, db) in [(0, 1), (1, 0), (1, 1), (1, -1)] {
                    let n = CellIndex {
                        a: a + da,
                        b: b + db,
                    };
                    assert_ne!(c, g.color_of(n), "cells ({a},{b}) and {n:?} share color");
                }
            }
        }
    }

    #[test]
    fn same_color_cells_are_a_square_apart() {
        // The LDP feasibility proof relies on: points in distinct
        // same-color squares are at Euclidean distance ≥ cell size.
        let g = grid(7.0);
        for a in -4..4i64 {
            for b in -4..4i64 {
                let x = CellIndex { a, b };
                for a2 in -4..4i64 {
                    for b2 in -4..4i64 {
                        let y = CellIndex { a: a2, b: b2 };
                        if x != y && g.color_of(x) == g.color_of(y) {
                            assert!(
                                g.min_point_distance(x, y) >= g.cell_size() - 1e-12,
                                "{x:?} vs {y:?}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn min_point_distance_examples() {
        let g = grid(10.0);
        let o = CellIndex { a: 0, b: 0 };
        assert_eq!(g.min_point_distance(o, o), 0.0);
        assert_eq!(g.min_point_distance(o, CellIndex { a: 1, b: 0 }), 0.0);
        assert_eq!(g.min_point_distance(o, CellIndex { a: 2, b: 0 }), 10.0);
        let diag = g.min_point_distance(o, CellIndex { a: 2, b: 2 });
        assert!((diag - 10.0 * 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn cell_origin_roundtrip() {
        let g = grid(5.0);
        let c = CellIndex { a: 3, b: -2 };
        let p = g.cell_origin(c);
        assert_eq!(g.cell_of(&Point2::new(p.x + 0.1, p.y + 0.1)), c);
    }

    #[test]
    #[should_panic(expected = "cell size must be finite and positive")]
    fn rejects_nonpositive_cell() {
        grid(0.0);
    }

    proptest! {
        #[test]
        fn min_point_distance_is_a_true_lower_bound(
            px in 0.0f64..100.0, py in 0.0f64..100.0,
            qx in 0.0f64..100.0, qy in 0.0f64..100.0,
            cell in 0.5f64..20.0,
        ) {
            let g = grid(cell);
            let p = Point2::new(px, py);
            let q = Point2::new(qx, qy);
            let bound = g.min_point_distance(g.cell_of(&p), g.cell_of(&q));
            prop_assert!(p.distance(&q) >= bound - 1e-9);
        }

        #[test]
        fn color_has_period_two(a in -100i64..100, b in -100i64..100, cell in 0.5f64..20.0) {
            let g = grid(cell);
            let c = CellIndex { a, b };
            let shifted = CellIndex { a: a + 2, b: b - 2 };
            prop_assert_eq!(g.color_of(c), g.color_of(shifted));
        }
    }
}
