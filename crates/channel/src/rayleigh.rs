//! The Rayleigh-fading channel model (Section II of the paper).
//!
//! Received powers are independent exponentials with mean `P·d^{−α}`.
//! Theorem 3.1 gives the closed-form success probability of a link under
//! a set of concurrent interferers, and Corollary 3.1 linearizes the
//! feasibility test via *interference factors*
//! `f_{i,j} = ln(1 + γ_th (d_jj/d_ij)^α)`:
//! link `j` meets its `1 − ε` reliability target iff
//! `Σ_{i ∈ P\{j}} f_{i,j} ≤ γ_ε = ln(1/(1−ε))`.

use crate::params::ChannelParams;
use fading_math::{Exponential, KahanSum};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The Rayleigh-fading channel.
///
/// ```
/// use fading_channel::{ChannelParams, RayleighChannel};
///
/// let ch = RayleighChannel::new(ChannelParams::paper_defaults());
/// // One interferer at the same distance as the link: Pr = 1/(1+γ_th) = 1/2.
/// let p = ch.success_probability(10.0, [10.0]);
/// assert!((p - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RayleighChannel {
    /// Physical constants.
    pub params: ChannelParams,
}

impl RayleighChannel {
    /// Creates the model over the given parameters.
    pub fn new(params: ChannelParams) -> Self {
        Self { params }
    }

    /// Samples the instantaneous received power `Z` at distance `d`
    /// (Eq. (5): `Z ~ Exp(mean = P·d^{−α})`).
    #[inline]
    pub fn sample_gain<R: Rng + ?Sized>(&self, rng: &mut R, d: f64) -> f64 {
        Exponential::with_mean(self.params.mean_gain(d)).sample(rng)
    }

    /// Samples the received power when the sender transmits at
    /// `power_scale × P` (per-link power control; the paper's model is
    /// `power_scale = 1`).
    #[inline]
    pub fn sample_gain_scaled<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        d: f64,
        power_scale: f64,
    ) -> f64 {
        debug_assert!(power_scale > 0.0, "power scale must be positive");
        Exponential::with_mean(self.params.mean_gain(d) * power_scale).sample(rng)
    }

    /// Interference factor with per-link power control: sender `i`
    /// transmits at `scale_i × P`, the desired sender at `scale_j × P`;
    /// the Theorem 3.1 derivation carries through with
    /// `f_{i,j} = ln(1 + γ_th (scale_i/scale_j) (d_jj/d_ij)^α)`.
    #[inline]
    pub fn interference_factor_scaled(
        &self,
        d_ij: f64,
        d_jj: f64,
        scale_i: f64,
        scale_j: f64,
    ) -> f64 {
        assert!(
            d_ij > 0.0 && d_jj > 0.0,
            "interference factor needs positive distances"
        );
        assert!(
            scale_i > 0.0 && scale_j > 0.0,
            "power scales must be positive"
        );
        (self.params.gamma_th * (scale_i / scale_j) * self.params.pow_alpha(d_jj / d_ij)).ln_1p()
    }

    /// The interference factor `f_{i,j}` of a sender at distance `d_ij`
    /// from receiver `j`, whose own link has length `d_jj` (Eq. (17)).
    ///
    /// `f_{i,j} = ln(1 + γ_th · (d_ij/d_jj)^{−α}) = ln(1 + γ_th (d_jj/d_ij)^α)`.
    ///
    /// # Panics
    /// Panics if either distance is non-positive.
    #[inline]
    pub fn interference_factor(&self, d_ij: f64, d_jj: f64) -> f64 {
        assert!(
            d_ij > 0.0 && d_jj > 0.0,
            "interference factor needs positive distances, got d_ij={d_ij}, d_jj={d_jj}"
        );
        (self.params.gamma_th * self.params.pow_alpha(d_jj / d_ij)).ln_1p()
    }

    /// Closed-form probability that receiver `j` decodes successfully
    /// (Theorem 3.1):
    /// `Pr(X_j ≥ γ_th) = Π_i 1/(1 + γ_th (d_jj/d_ij)^α) = exp(−Σ_i f_{i,j})`.
    ///
    /// `interferer_distances` yields `d_ij` for each concurrent
    /// *interfering* sender (the desired sender must not be included).
    pub fn success_probability<I>(&self, d_jj: f64, interferer_distances: I) -> f64
    where
        I: IntoIterator<Item = f64>,
    {
        (-self.sum_interference(d_jj, interferer_distances)).exp()
    }

    /// Sum of interference factors `Σ_i f_{i,j}` (compensated).
    pub fn sum_interference<I>(&self, d_jj: f64, interferer_distances: I) -> f64
    where
        I: IntoIterator<Item = f64>,
    {
        KahanSum::sum_iter(
            interferer_distances
                .into_iter()
                .map(|d_ij| self.interference_factor(d_ij, d_jj)),
        )
    }

    /// Corollary 3.1: whether receiver `j` can be *informed* with error
    /// probability at most `ε`, i.e. `Σ f_{i,j} ≤ γ_ε`.
    pub fn is_informed<I>(&self, d_jj: f64, interferer_distances: I, gamma_eps: f64) -> bool
    where
        I: IntoIterator<Item = f64>,
    {
        self.sum_interference(d_jj, interferer_distances) <= gamma_eps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fading_math::{gamma_eps, seeded_rng, OnlineStats};
    use proptest::prelude::*;

    fn chan() -> RayleighChannel {
        RayleighChannel::new(ChannelParams::paper_defaults())
    }

    #[test]
    fn gain_sampling_mean_matches_power_law() {
        let c = chan();
        let mut rng = seeded_rng(21);
        let d = 4.0;
        let mut stats = OnlineStats::new();
        for _ in 0..100_000 {
            stats.push(c.sample_gain(&mut rng, d));
        }
        let expect = c.params.mean_gain(d);
        let rel = (stats.mean() - expect).abs() / expect;
        assert!(rel < 0.02, "rel error {rel}");
    }

    #[test]
    fn interference_factor_matches_eq_17() {
        let c = chan(); // α = 3, γ_th = 1
                        // d_ij = d_jj → f = ln(1 + 1) = ln 2.
        assert!((c.interference_factor(5.0, 5.0) - 2f64.ln()).abs() < 1e-15);
        // Interferer twice as far: f = ln(1 + 1/8).
        assert!((c.interference_factor(10.0, 5.0) - 1.125f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn interference_factor_decreases_with_interferer_distance() {
        let c = chan();
        let mut prev = f64::INFINITY;
        for i in 1..50 {
            let d_ij = i as f64;
            let f = c.interference_factor(d_ij, 5.0);
            assert!(f < prev);
            assert!(f > 0.0);
            prev = f;
        }
    }

    #[test]
    fn interference_factor_increases_with_link_length() {
        let c = chan();
        let mut prev = 0.0;
        for i in 1..50 {
            let d_jj = i as f64;
            let f = c.interference_factor(30.0, d_jj);
            assert!(f > prev, "longer links are easier to break");
            prev = f;
        }
    }

    #[test]
    fn success_probability_closed_form_is_product() {
        let c = chan();
        let d_jj = 5.0;
        let ds = [20.0, 35.0, 50.0];
        let product: f64 = ds
            .iter()
            .map(|&d: &f64| 1.0 / (1.0 + c.params.gamma_th * (d_jj / d).powf(c.params.alpha)))
            .product();
        let closed = c.success_probability(d_jj, ds.iter().copied());
        assert!((product - closed).abs() < 1e-12, "{product} vs {closed}");
    }

    #[test]
    fn no_interferers_means_certain_success() {
        // With N₀ ignored (Eq. (8)), SINR is infinite without interferers.
        let c = chan();
        assert_eq!(c.success_probability(10.0, std::iter::empty()), 1.0);
        assert!(c.is_informed(10.0, std::iter::empty(), gamma_eps(0.01)));
    }

    #[test]
    fn monte_carlo_agrees_with_theorem_3_1() {
        // Empirical Pr(Z_jj / ΣZ_ij ≥ γ_th) vs the closed form.
        let c = chan();
        let d_jj = 6.0;
        let interferers = [15.0, 22.0, 40.0];
        let closed = c.success_probability(d_jj, interferers.iter().copied());
        let mut rng = seeded_rng(33);
        let trials = 200_000;
        let mut ok = 0u64;
        for _ in 0..trials {
            let signal = c.sample_gain(&mut rng, d_jj);
            let interference: f64 = interferers
                .iter()
                .map(|&d| c.sample_gain(&mut rng, d))
                .sum();
            if signal / interference >= c.params.gamma_th {
                ok += 1;
            }
        }
        let emp = ok as f64 / trials as f64;
        assert!(
            (emp - closed).abs() < 0.005,
            "empirical {emp} vs closed-form {closed}"
        );
    }

    #[test]
    fn is_informed_threshold_is_sharp() {
        let c = chan();
        let g = gamma_eps(0.01);
        // Find an interferer distance where the factor equals γ_ε exactly:
        // ln(1 + (d_jj/d)^3) = g  →  d = d_jj / (e^g − 1)^{1/3}.
        let d_jj = 5.0;
        let d_crit = d_jj / (g.exp() - 1.0).powf(1.0 / 3.0);
        assert!(c.is_informed(d_jj, [d_crit * 1.0001], g));
        assert!(!c.is_informed(d_jj, [d_crit * 0.9999], g));
    }

    proptest! {
        #[test]
        fn success_probability_in_unit_interval(
            d_jj in 0.1f64..100.0,
            ds in proptest::collection::vec(0.1f64..1e4, 0..50),
            alpha in 2.1f64..6.0,
        ) {
            let c = RayleighChannel::new(ChannelParams::with_alpha(alpha));
            let p = c.success_probability(d_jj, ds.iter().copied());
            prop_assert!((0.0..=1.0).contains(&p), "p={p}");
        }

        #[test]
        fn adding_an_interferer_never_helps(
            d_jj in 0.1f64..100.0,
            ds in proptest::collection::vec(0.1f64..1e4, 1..30),
        ) {
            let c = chan();
            let without = c.success_probability(d_jj, ds[1..].iter().copied());
            let with = c.success_probability(d_jj, ds.iter().copied());
            prop_assert!(with <= without + 1e-12);
        }

        #[test]
        fn interference_sum_is_additive(
            d_jj in 0.1f64..100.0,
            ds in proptest::collection::vec(0.1f64..1e4, 0..30),
            extra in 0.1f64..1e4,
        ) {
            let c = chan();
            let base = c.sum_interference(d_jj, ds.iter().copied());
            let more = c.sum_interference(d_jj, ds.iter().copied().chain([extra]));
            let single = c.interference_factor(extra, d_jj);
            prop_assert!((more - base - single).abs() < 1e-9 * (1.0 + more.abs()));
        }
    }
}
