//! Physical-layer constants shared by all channel models.

use serde::{Deserialize, Serialize};

/// Physical parameters of the wireless channel.
///
/// The paper's defaults (Section V): `γ_th = 1`, `α` swept around 3,
/// unit transmit power, zero ambient noise (`N₀` is ignored per Eq. (8)).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChannelParams {
    /// Path-loss exponent `α`; the paper assumes `α > 2`.
    pub alpha: f64,
    /// Decoding SINR threshold `γ_th`.
    pub gamma_th: f64,
    /// Transmit power `P` (identical for every sender, per the model).
    pub power: f64,
    /// Ambient noise floor `N₀`. The paper sets this to zero (Eq. (8));
    /// keeping it as a parameter lets the extension experiments study
    /// noise sensitivity.
    pub noise: f64,
}

impl ChannelParams {
    /// Creates validated parameters.
    ///
    /// # Panics
    /// Panics unless `alpha > 2`, `gamma_th > 0`, `power > 0`,
    /// `noise >= 0`, and all are finite.
    pub fn new(alpha: f64, gamma_th: f64, power: f64, noise: f64) -> Self {
        assert!(
            alpha.is_finite() && alpha > 2.0,
            "path-loss exponent must satisfy α > 2 (paper convention), got {alpha}"
        );
        assert!(
            gamma_th.is_finite() && gamma_th > 0.0,
            "decoding threshold must be positive, got {gamma_th}"
        );
        assert!(
            power.is_finite() && power > 0.0,
            "transmit power must be positive, got {power}"
        );
        assert!(
            noise.is_finite() && noise >= 0.0,
            "noise must be non-negative, got {noise}"
        );
        Self {
            alpha,
            gamma_th,
            power,
            noise,
        }
    }

    /// The paper's evaluation setup: `α = 3`, `γ_th = 1`, `P = 1`, `N₀ = 0`.
    pub fn paper_defaults() -> Self {
        Self::new(3.0, 1.0, 1.0, 0.0)
    }

    /// Same defaults with a different path-loss exponent (the Fig. 5(b)
    /// and 6(b) sweeps).
    pub fn with_alpha(alpha: f64) -> Self {
        Self::new(alpha, 1.0, 1.0, 0.0)
    }

    /// Mean (and, in the deterministic model, exact) received power at
    /// distance `d`: `P · d^{−α}`.
    ///
    /// # Panics
    /// Panics if `d <= 0` — the far-field path-loss law is meaningless
    /// at zero distance and instance generators must never co-locate a
    /// sender and an interfered receiver.
    #[inline]
    pub fn mean_gain(&self, d: f64) -> f64 {
        assert!(d > 0.0, "path loss undefined at distance {d}");
        self.power * d.powf(-self.alpha)
    }

    /// `x^α`, with the paper's integer path-loss exponents (2, 3, 4, 6)
    /// specialized to repeated squaring. `powf` is a libm call that
    /// prices every stored interference factor — at build time and on
    /// every CSR mutation — and the specialization is ~20× cheaper
    /// (within 1 ulp). Every factor producer must go through this one
    /// helper so sparse/dense builds and in-place mutations keep
    /// computing bit-identical values.
    #[inline]
    pub fn pow_alpha(&self, x: f64) -> f64 {
        if self.alpha == 2.0 {
            x * x
        } else if self.alpha == 3.0 {
            (x * x) * x
        } else if self.alpha == 4.0 {
            let x2 = x * x;
            x2 * x2
        } else if self.alpha == 6.0 {
            let x2 = x * x;
            (x2 * x2) * x2
        } else {
            x.powf(self.alpha)
        }
    }
}

impl Default for ChannelParams {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_v() {
        let p = ChannelParams::paper_defaults();
        assert_eq!(p.alpha, 3.0);
        assert_eq!(p.gamma_th, 1.0);
        assert_eq!(p.power, 1.0);
        assert_eq!(p.noise, 0.0);
    }

    #[test]
    fn mean_gain_follows_power_law() {
        let p = ChannelParams::paper_defaults();
        assert!((p.mean_gain(2.0) - 0.125).abs() < 1e-15);
        assert!((p.mean_gain(1.0) - 1.0).abs() < 1e-15);
        // Doubling distance divides gain by 2^α.
        let ratio = p.mean_gain(5.0) / p.mean_gain(10.0);
        assert!((ratio - 8.0).abs() < 1e-12);
    }

    #[test]
    fn mean_gain_scales_with_power() {
        let p = ChannelParams::new(3.0, 1.0, 4.0, 0.0);
        assert!((p.mean_gain(2.0) - 0.5).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "α > 2")]
    fn rejects_small_alpha() {
        ChannelParams::new(2.0, 1.0, 1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_zero_threshold() {
        ChannelParams::new(3.0, 0.0, 1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "path loss undefined")]
    fn rejects_zero_distance() {
        ChannelParams::paper_defaults().mean_gain(0.0);
    }

    #[test]
    fn serde_roundtrip() {
        let p = ChannelParams::with_alpha(3.5);
        let json = serde_json::to_string(&p).unwrap();
        let q: ChannelParams = serde_json::from_str(&json).unwrap();
        assert_eq!(p, q);
    }
}
