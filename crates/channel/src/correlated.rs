//! Temporally correlated Rayleigh fading (first-order Gauss–Markov).
//!
//! The paper treats every slot as an independent fading draw; physical
//! channels decorrelate over a coherence time, so consecutive slots are
//! correlated and losses come in bursts. The standard discrete-time
//! model keeps the underlying complex channel coefficient as an AR(1)
//! process,
//!
//! `h_t = ρ·h_{t−1} + √(1−ρ²)·w_t`,  `w_t ~ CN(0, σ²)`,
//!
//! whose envelope-power `|h_t|²` is marginally exponential with mean
//! `σ² = P·d^{−α}` (so every single slot still obeys Theorem 3.1
//! exactly), while the autocorrelation of the power process is `ρ²` per
//! slot. `ρ = J₀(2π f_D T)` links the coefficient to Doppler `f_D` and
//! slot length `T` in the Jakes model; here `ρ` is a direct parameter.
//!
//! Used by the burstiness extension (E12): expected failures per slot
//! are unchanged, but failures *cluster*, which is what ARQ and
//! higher-layer recovery actually feel.

use crate::params::ChannelParams;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A correlated Rayleigh process for one (sender, receiver) pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorrelatedGain {
    /// In-phase component of `h`.
    re: f64,
    /// Quadrature component of `h`.
    im: f64,
    /// Per-slot coefficient correlation `ρ ∈ [0, 1)`.
    rho: f64,
    /// Mean power `σ² = P·d^{−α}`.
    mean_power: f64,
}

/// The correlated-fading channel factory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CorrelatedRayleigh {
    /// Physical constants.
    pub params: ChannelParams,
    /// Per-slot correlation of the complex coefficient (`0` recovers
    /// i.i.d. Rayleigh slots; power autocorrelation is `ρ²`).
    pub rho: f64,
}

impl CorrelatedRayleigh {
    /// Creates the model.
    ///
    /// # Panics
    /// Panics unless `0 ≤ ρ < 1`.
    pub fn new(params: ChannelParams, rho: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&rho),
            "coefficient correlation must be in [0,1), got {rho}"
        );
        Self { params, rho }
    }

    /// Initializes the process for a pair at distance `d`, drawing the
    /// stationary state.
    pub fn init<R: Rng + ?Sized>(&self, rng: &mut R, d: f64) -> CorrelatedGain {
        let mean_power = self.params.mean_gain(d);
        let s = (mean_power / 2.0).sqrt();
        CorrelatedGain {
            re: s * gaussian(rng),
            im: s * gaussian(rng),
            rho: self.rho,
            mean_power,
        }
    }
}

impl CorrelatedGain {
    /// Advances one slot and returns the realized power `|h_t|²`.
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        let s = ((1.0 - self.rho * self.rho) * self.mean_power / 2.0).sqrt();
        self.re = self.rho * self.re + s * gaussian(rng);
        self.im = self.rho * self.im + s * gaussian(rng);
        self.re * self.re + self.im * self.im
    }

    /// The mean power of the process.
    pub fn mean_power(&self) -> f64 {
        self.mean_power
    }
}

/// Standard normal via Box–Muller.
fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fading_math::{seeded_rng, OnlineStats};

    fn chan(rho: f64) -> CorrelatedRayleigh {
        CorrelatedRayleigh::new(ChannelParams::paper_defaults(), rho)
    }

    #[test]
    fn marginal_power_is_exponential_with_the_rayleigh_mean() {
        // At any fixed t the power must match the paper's model: mean
        // P·d^{−α} and CDF 1 − e^{−x/mean}.
        let c = chan(0.9);
        let mut rng = seeded_rng(1);
        let d = 6.0;
        let mean = c.params.mean_gain(d);
        let mut stats = OnlineStats::new();
        let mut below_mean = 0u64;
        let n = 50_000;
        for _ in 0..n {
            // Fresh process each time: stationary marginal.
            let mut g = c.init(&mut rng, d);
            let p = g.step(&mut rng);
            stats.push(p);
            if p <= mean {
                below_mean += 1;
            }
        }
        assert!(
            (stats.mean() - mean).abs() < 0.03 * mean,
            "{}",
            stats.mean()
        );
        let frac = below_mean as f64 / n as f64;
        let expect = 1.0 - (-1.0f64).exp();
        assert!((frac - expect).abs() < 0.01, "{frac} vs {expect}");
    }

    #[test]
    fn rho_zero_is_iid() {
        let c = chan(0.0);
        let mut rng = seeded_rng(2);
        let mut g = c.init(&mut rng, 5.0);
        // Lag-1 power correlation ≈ 0.
        let mut xs = Vec::new();
        for _ in 0..40_000 {
            xs.push(g.step(&mut rng));
        }
        let corr = lag1_correlation(&xs);
        assert!(corr.abs() < 0.03, "lag-1 corr {corr}");
    }

    #[test]
    fn power_autocorrelation_is_rho_squared() {
        let rho = 0.9;
        let c = chan(rho);
        let mut rng = seeded_rng(3);
        let mut g = c.init(&mut rng, 5.0);
        let mut xs = Vec::new();
        for _ in 0..200_000 {
            xs.push(g.step(&mut rng));
        }
        let corr = lag1_correlation(&xs);
        assert!(
            (corr - rho * rho).abs() < 0.03,
            "lag-1 power corr {corr} vs ρ² = {}",
            rho * rho
        );
    }

    #[test]
    fn higher_rho_means_longer_outage_runs() {
        // Below-median runs lengthen with correlation.
        let mut rng = seeded_rng(4);
        let mut mean_run = |rho: f64| {
            let c = chan(rho);
            let mut g = c.init(&mut rng, 5.0);
            let median = c.params.mean_gain(5.0) * std::f64::consts::LN_2;
            let mut runs = Vec::new();
            let mut current = 0u32;
            for _ in 0..100_000 {
                if g.step(&mut rng) < median {
                    current += 1;
                } else if current > 0 {
                    runs.push(current);
                    current = 0;
                }
            }
            runs.iter().map(|&r| r as f64).sum::<f64>() / runs.len() as f64
        };
        let iid = mean_run(0.0);
        let sticky = mean_run(0.95);
        assert!(sticky > 2.0 * iid, "iid {iid}, ρ=0.95 {sticky}");
    }

    #[test]
    #[should_panic(expected = "must be in [0,1)")]
    fn rejects_rho_one() {
        chan(1.0);
    }

    fn lag1_correlation(xs: &[f64]) -> f64 {
        let n = xs.len() - 1;
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        let cov = (0..n)
            .map(|i| (xs[i] - mean) * (xs[i + 1] - mean))
            .sum::<f64>()
            / n as f64;
        cov / var
    }
}
