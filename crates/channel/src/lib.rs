//! Wireless channel models for the fading-rls workspace.
//!
//! Two models live here:
//!
//! * [`rayleigh`] — the paper's model (Section II): the instantaneous
//!   power received at distance `d` from a sender transmitting at power
//!   `P` is exponential with mean `P·d^{−α}`. Theorem 3.1's closed-form
//!   success probability and Corollary 3.1's linear *interference
//!   factors* are implemented here.
//! * [`deterministic`] — the classical (non-fading) SINR model used by
//!   the ApproxLogN / ApproxDiversity baselines, in which the received
//!   power is exactly `P·d^{−α}`.
//!
//! [`sinr`] computes realized SINRs from sampled gain matrices, and
//! [`params`] holds the shared physical constants.

pub mod capacity;
pub mod correlated;
pub mod deterministic;
pub mod nakagami;
pub mod params;
pub mod rayleigh;
pub mod shadowing;
pub mod sinr;

pub use capacity::{ergodic_capacity, outage_probability, sinr_ccdf};
pub use correlated::{CorrelatedGain, CorrelatedRayleigh};
pub use deterministic::DeterministicSinr;
pub use nakagami::NakagamiChannel;
pub use params::ChannelParams;
pub use rayleigh::RayleighChannel;
pub use shadowing::ShadowedRayleigh;
pub use sinr::{sinr_of, SinrOutcome};
